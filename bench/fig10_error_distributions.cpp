// Fig. 10: per-edge prediction-error distributions (violin plots in the
// paper; quantile tables here), linear regression vs gradient boosting on
// the same 70/30 split. XGB's distribution is narrower and lower on most
// edges.
#include <cstdio>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "core/edge_model.hpp"

int main() {
  using namespace xfl;
  xflbench::print_banner(
      "Fig. 10 - Per-edge error distributions: LR vs XGB",
      "XGB violins sit lower/narrower than LR on most edges");

  const auto context = xflbench::production_context();
  const auto edges = xflbench::heavy_edges(context);
  ThreadPool pool;
  const auto reports = core::study_edges(context, edges, {}, &pool);

  TextTable table;
  table.set_header({"edge", "n", "LR p5", "LR p25", "LR p50", "LR p75",
                    "LR p95", "XGB p5", "XGB p25", "XGB p50", "XGB p75",
                    "XGB p95"});
  std::size_t narrower = 0;
  for (std::size_t e = 0; e < reports.size(); ++e) {
    const auto& r = reports[e];
    table.add_row({std::to_string(e + 1), std::to_string(r.samples),
                   TextTable::num(r.lr_ape.p5, 1), TextTable::num(r.lr_ape.p25, 1),
                   TextTable::num(r.lr_ape.p50, 1), TextTable::num(r.lr_ape.p75, 1),
                   TextTable::num(r.lr_ape.p95, 1), TextTable::num(r.xgb_ape.p5, 1),
                   TextTable::num(r.xgb_ape.p25, 1), TextTable::num(r.xgb_ape.p50, 1),
                   TextTable::num(r.xgb_ape.p75, 1),
                   TextTable::num(r.xgb_ape.p95, 1)});
    const double lr_spread = r.lr_ape.p75 - r.lr_ape.p25;
    const double xgb_spread = r.xgb_ape.p75 - r.xgb_ape.p25;
    if (xgb_spread <= lr_spread) ++narrower;
  }
  table.print(stdout);
  std::printf("\n(values are absolute percentage error quantiles)\n");
  std::printf("edges where the XGB interquartile spread <= LR's: %zu of %zu\n",
              narrower, reports.size());

  xflbench::print_comparison(
      "Paper Fig. 10: on most of the 30 edges the XGB error distribution "
      "is visibly tighter and lower than the LR one. Expect the XGB "
      "interquartile range to be at most the LR range on a majority of "
      "edges above.");
  return 0;
}
