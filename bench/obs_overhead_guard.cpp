// Observability overhead guard: asserts that the instrumented train and
// batch-predict hot paths stay within tolerance of the uninstrumented
// paths, and (PR 10) that resident-but-unused explain support costs the
// predict path under 1% — measured against a bit-identical ensemble built
// without the attribution table. "On" is the default production posture (metrics enabled, logging
// at info, tracing off); "off" flips the metrics kill switch so every
// counter/histogram write degenerates to one relaxed load. The two
// configurations alternate back-to-back in pairs and the verdict is the
// median pairwise ratio, which cancels host drift on a shared 1-core box.
//
// Exits nonzero when the ratio exceeds the budget, so CI (or a human
// running build/bench/obs_overhead_guard, or ctest — the guard is a
// registered test) gets a hard failure, and prints the per-pair samples
// recorded in BENCH_gbt.json / BENCH_predict.json.
//
// A hot path over budget is re-measured up to kAttempts times and passes
// if ANY attempt meets the budget: on a shared single-core box scheduler
// noise only ever inflates a ratio, so a genuine regression fails every
// attempt while a noisy spike fails at most one.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "common/rng.hpp"
#include "ml/gbt.hpp"
#include "ml/gbt_flat.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace {

using namespace xfl;

/// Median overhead budget: obs-on may cost at most 2% over obs-off.
constexpr double kMaxRatio = 1.02;
/// Explain support must cost the predict path under 1% when unused.
constexpr double kMaxExplainRatio = 1.01;
constexpr int kPairs = 7;
/// Over-budget measurements are retried this many times in total.
constexpr int kAttempts = 3;

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Workload {
  ml::Matrix x{0, 0};
  std::vector<double> y;
};

Workload make_workload(std::size_t rows) {
  Workload w;
  w.x = ml::Matrix(rows, 15);
  w.y.resize(rows);
  Rng rng(3);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t c = 0; c < 15; ++c) w.x.at(i, c) = rng.normal();
    w.y[i] = w.x.at(i, 0) * w.x.at(i, 0) + 2.0 * w.x.at(i, 5) +
             rng.normal(0.0, 0.1);
  }
  return w;
}

/// ms per fit of the PR 1 benchmark workload (2000x15, 100 trees, serial).
double time_fit_ms(const Workload& w, int iterations) {
  ml::GbtConfig config;
  config.trees = 100;
  config.threads = 1;
  const double start = now_ms();
  for (int i = 0; i < iterations; ++i) {
    ml::GradientBoostedTrees model(config);
    model.fit(w.x, w.y);
  }
  return (now_ms() - start) / iterations;
}

/// ms per serial predict_batch of the PR 2 benchmark workload (2000 rows,
/// default 200-tree depth-4 model).
double time_predict_ms(const ml::GradientBoostedTrees& model,
                       const Workload& w, std::vector<double>& out,
                       int iterations) {
  const double start = now_ms();
  for (int i = 0; i < iterations; ++i) model.predict_batch(w.x, out);
  return (now_ms() - start) / iterations;
}

/// A random flat ensemble (200 complete depth-4 trees over the workload's
/// 15 features). Called twice with a fixed seed it produces structurally
/// identical ensembles; `attribution` is the explain-support A/B lever.
ml::FlatEnsemble make_flat(bool attribution) {
  ml::FlatEnsemble::Builder builder(0.5, 0.1);
  builder.set_attribution(attribution);
  Rng rng(11);
  for (int t = 0; t < 200; ++t) {
    builder.begin_tree();
    // Complete depth-4 tree in level order: internals 0..14, leaves 15..30.
    for (int i = 0; i < 15; ++i)
      builder.add_node(static_cast<std::int32_t>(rng.uniform_int(0, 14)),
                       rng.normal(), 2 * i + 1, 2 * i + 2);
    for (int i = 0; i < 16; ++i)
      builder.add_node(-1, rng.normal(0.0, 0.1), 0, 0);
  }
  return std::move(builder).build();
}

double time_flat_predict_ms(const ml::FlatEnsemble& flat, const Workload& w,
                            std::vector<double>& out, int iterations) {
  const double start = now_ms();
  for (int i = 0; i < iterations; ++i) flat.predict_batch(w.x, out);
  return (now_ms() - start) / iterations;
}

double median(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  return values[values.size() / 2];
}

struct PairedResult {
  std::vector<double> on_ms;
  std::vector<double> off_ms;
  double median_ratio = 0.0;
};

/// One "on" vs "off" alternation per pair; the verdict is the median
/// pairwise ratio. The two thunks define what on/off mean (metrics
/// toggled, attribution table present/absent, ...).
template <typename TimeOn, typename TimeOff>
PairedResult run_pairs_ab(TimeOn&& time_on, TimeOff&& time_off) {
  PairedResult result;
  std::vector<double> ratios;
  for (int p = 0; p < kPairs; ++p) {
    // Alternate which side runs first so monotonic host drift (thermal,
    // neighbours on a shared box) cancels across pairs instead of biasing
    // every ratio the same way.
    double on, off;
    if (p % 2 == 0) {
      on = time_on();
      off = time_off();
    } else {
      off = time_off();
      on = time_on();
    }
    result.on_ms.push_back(on);
    result.off_ms.push_back(off);
    ratios.push_back(on / off);
  }
  result.median_ratio = median(ratios);
  return result;
}

template <typename TimeOnce>
PairedResult run_pairs(TimeOnce&& time_once) {
  return run_pairs_ab(
      [&] {
        obs::set_metrics_enabled(true);
        return time_once();
      },
      [&] {
        obs::set_metrics_enabled(false);
        const double off = time_once();
        obs::set_metrics_enabled(true);
        return off;
      });
}

void print_result(const char* label, const PairedResult& result,
                  double budget) {
  std::printf("%s\n  on_ms  =", label);
  for (const double v : result.on_ms) std::printf(" %.3f", v);
  std::printf("\n  off_ms =");
  for (const double v : result.off_ms) std::printf(" %.3f", v);
  std::printf("\n  median on/off ratio = %.4f (budget %.2f)\n",
              result.median_ratio, budget);
}

/// Measure until one attempt meets budget (prints every attempt).
template <typename TimeOn, typename TimeOff>
bool guard_ab(const char* label, double budget, TimeOn&& time_on,
              TimeOff&& time_off) {
  PairedResult result;
  for (int attempt = 1; attempt <= kAttempts; ++attempt) {
    result = run_pairs_ab(time_on, time_off);
    print_result(label, result, budget);
    if (result.median_ratio <= budget) return true;
    if (attempt < kAttempts)
      std::printf("  over budget — retrying (attempt %d/%d)\n", attempt + 1,
                  kAttempts);
  }
  std::printf("FAIL: %s overhead %.2f%% exceeds budget in %d attempts\n",
              label, 100.0 * (result.median_ratio - 1.0), kAttempts);
  return false;
}

template <typename TimeOnce>
bool guard(const char* label, TimeOnce&& time_once) {
  PairedResult result;
  for (int attempt = 1; attempt <= kAttempts; ++attempt) {
    result = run_pairs(time_once);
    print_result(label, result, kMaxRatio);
    if (result.median_ratio <= kMaxRatio) return true;
    if (attempt < kAttempts)
      std::printf("  over budget — retrying (attempt %d/%d)\n", attempt + 1,
                  kAttempts);
  }
  std::printf("FAIL: %s overhead %.2f%% exceeds budget in %d attempts\n",
              label, 100.0 * (result.median_ratio - 1.0), kAttempts);
  return false;
}

}  // namespace

int main() {
  // Default production posture; hot-path logs are debug-level, so info
  // keeps the logger resident but silent, matching real runs.
  obs::configure_logging({obs::LogLevel::kInfo, false, nullptr});
  obs::set_tracing_enabled(false);

  std::printf("observability overhead guard (paired on/off, %d pairs)\n",
              kPairs);

  const Workload train = make_workload(2000);
  // Warm-up outside the measurement (binning buffers, metric shards).
  time_fit_ms(train, 1);
  const bool fit_ok = guard("gbt fit 2000x15 trees=100 serial",
                            [&] { return time_fit_ms(train, 3); });

  ml::GradientBoostedTrees model;  // Default config: 200 trees, depth 4.
  model.fit(train.x, train.y);
  // Dispatch is host-dependent; name the measured kernel so recorded
  // numbers (BENCH_predict.json) stay comparable across hosts.
  std::printf("predict kernel = %s\n",
              ml::kernel_name(model.flat().effective_kernel()));
  std::vector<double> out(train.x.rows());
  time_predict_ms(model, train, out, 2);
  const bool predict_ok =
      guard("gbt predict_batch 2000 rows serial",
            [&] { return time_predict_ms(model, train, out, 10); });

  // Explain-support guard: two bit-identical random ensembles, one
  // carrying the Saabas attribution table and one built with
  // set_attribution(false). predict_batch never reads the table, so the
  // resident-but-unused explain machinery must cost the predict hot path
  // under 1% (its only possible mechanism is cache/memory footprint).
  const ml::FlatEnsemble with_attr = make_flat(true);
  const ml::FlatEnsemble without_attr = make_flat(false);
  std::vector<double> flat_a(train.x.rows()), flat_b(train.x.rows());
  with_attr.predict_batch(train.x, flat_a);
  without_attr.predict_batch(train.x, flat_b);
  if (flat_a != flat_b) {
    std::printf("FAIL: attribution-free ensemble predicts different bits\n");
    return 1;
  }
  // A 1% budget needs quieter samples than the 2% guards: 50 iterations
  // per sample instead of 10 averages scheduler noise down far enough for
  // the median pairwise ratio to resolve sub-percent differences.
  const bool explain_ok = guard_ab(
      "predict_batch, explain machinery resident-but-unused vs absent",
      kMaxExplainRatio,
      [&] { return time_flat_predict_ms(with_attr, train, flat_a, 50); },
      [&] { return time_flat_predict_ms(without_attr, train, flat_b, 50); });

  if (fit_ok && predict_ok && explain_ok)
    std::printf("PASS: observability stays within %.0f%% on both hot paths"
                " and unused explain support within %.0f%%\n",
                100.0 * (kMaxRatio - 1.0), 100.0 * (kMaxExplainRatio - 1.0));
  return fit_ok && predict_ok && explain_ok ? 0 : 1;
}
