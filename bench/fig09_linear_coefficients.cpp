// Fig. 9: relative significance of each feature in the per-edge linear
// models (circle size in the paper; numeric grid here). Low-variance
// features are eliminated (red crosses; 'x' here) - notably C and P on
// every edge. Load features on the direct path (Ksout, Kdin) and GridFTP
// instance counts (Gsrc, Gdst) carry large weights on most edges.
#include <cstdio>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "core/edge_model.hpp"

int main() {
  using namespace xfl;
  xflbench::print_banner(
      "Fig. 9 - Linear-model coefficient significance per edge",
      "C and P eliminated everywhere; K/G/S load features dominate");

  const auto context = xflbench::production_context();
  const auto edges = xflbench::heavy_edges(context);
  ThreadPool pool;
  const auto reports = core::study_edges(context, edges, {}, &pool);
  if (reports.empty()) {
    std::printf("no qualifying edges\n");
    return 1;
  }

  TextTable table;
  std::vector<std::string> header = {"edge"};
  for (const auto& name : reports.front().feature_names) header.push_back(name);
  table.set_header(header);
  std::size_t c_eliminated = 0, p_eliminated = 0;
  for (std::size_t e = 0; e < reports.size(); ++e) {
    const auto& report = reports[e];
    std::vector<std::string> row = {std::to_string(e + 1)};
    for (std::size_t c = 0; c < report.feature_names.size(); ++c) {
      row.push_back(report.eliminated[c]
                        ? "x"
                        : TextTable::num(report.lr_coefficients[c], 2));
    }
    // Columns 2/3 are C/P in the canonical order.
    if (report.eliminated[2]) ++c_eliminated;
    if (report.eliminated[3]) ++p_eliminated;
    table.add_row(row);
  }
  table.print(stdout);
  std::printf(
      "\n('x' = eliminated for low variance; values are |beta|/max|beta| "
      "per edge)\nC eliminated on %zu/%zu edges, P on %zu/%zu\n",
      c_eliminated, reports.size(), p_eliminated, reports.size());

  xflbench::print_comparison(
      "Paper Fig. 9: C and P are crossed out on all 30 edges (no variance "
      "in the logs); Ksout/Kdin (direct contention) and Gsrc/Gdst (CPU/"
      "storage contention) are significant on most edges, with S-features "
      "weighted differently from K-features (streams != rate). Expect the "
      "same pattern: C/P mostly 'x', large weights concentrated in the "
      "K/G/S columns and Nb.");
  return 0;
}
