// Fig. 5: file characteristics vs transfer performance on one heavy edge
// (JLAB to NERSC in the paper). Transfers are grouped into total-size
// buckets; within each bucket, transfers are split at the median average
// file size into "small files" and "big files" subgroups. Findings:
// bigger transfers achieve higher rates, and within a bucket the big-file
// subgroup beats the small-file subgroup.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/units.hpp"

int main() {
  using namespace xfl;
  xflbench::print_banner(
      "Fig. 5 - File characteristics vs transfer performance",
      "bigger total size -> higher rate; within a size bucket, bigger files -> higher rate");

  const auto context = xflbench::production_context();
  const auto scenario = xflbench::production_scenario();

  // The JLAB->NERSC analogue: our heaviest edge.
  const auto edges = xflbench::heavy_edges(context);
  if (edges.empty()) {
    std::printf("no heavy edges - scenario misconfigured\n");
    return 1;
  }
  const auto edge = edges.front();
  std::printf("edge under study: %s -> %s\n",
              xflbench::endpoint_name(scenario, edge.src).c_str(),
              xflbench::endpoint_name(scenario, edge.dst).c_str());

  struct Sample {
    double bytes;
    double mean_file;
    double rate_mbps;
  };
  std::vector<Sample> samples;
  for (const auto i : context.log.edge_transfers(edge)) {
    const auto& record = context.log[i];
    samples.push_back({record.bytes,
                       record.bytes / static_cast<double>(record.files),
                       to_mbps(record.rate_Bps())});
  }
  std::sort(samples.begin(), samples.end(),
            [](const Sample& a, const Sample& b) { return a.bytes < b.bytes; });

  // 20 equal-count total-size buckets (paper: "group transfers by total
  // size to form 20 groups").
  constexpr std::size_t kBuckets = 20;
  TextTable table;
  table.set_header({"bucket median size", "n", "small-file rate (MB/s)",
                    "big-file rate (MB/s)", "big wins"});
  std::size_t big_wins = 0, buckets_used = 0;
  std::vector<double> bucket_mean_rate;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    const std::size_t begin = b * samples.size() / kBuckets;
    const std::size_t end = (b + 1) * samples.size() / kBuckets;
    if (end - begin < 6) continue;
    std::vector<Sample> bucket(samples.begin() + begin, samples.begin() + end);
    // Split at the median average file size within the bucket.
    std::vector<double> file_sizes;
    for (const auto& sample : bucket) file_sizes.push_back(sample.mean_file);
    const double median_file = median(file_sizes);
    std::vector<double> small_rates, big_rates, all_rates;
    for (const auto& sample : bucket) {
      all_rates.push_back(sample.rate_mbps);
      (sample.mean_file <= median_file ? small_rates : big_rates)
          .push_back(sample.rate_mbps);
    }
    if (small_rates.empty() || big_rates.empty()) continue;
    const double small_mean = mean(small_rates);
    const double big_mean = mean(big_rates);
    const double median_bytes = bucket[bucket.size() / 2].bytes;
    ++buckets_used;
    if (big_mean > small_mean) ++big_wins;
    bucket_mean_rate.push_back(mean(all_rates));
    table.add_row({format_bytes(median_bytes), std::to_string(bucket.size()),
                   TextTable::num(small_mean, 1), TextTable::num(big_mean, 1),
                   big_mean > small_mean ? "yes" : "no"});
  }
  table.print(stdout);

  // Trend across buckets: later (bigger) buckets should be faster.
  std::size_t rising = 0;
  for (std::size_t i = 1; i < bucket_mean_rate.size(); ++i)
    if (bucket_mean_rate[i] > bucket_mean_rate[i - 1]) ++rising;
  std::printf(
      "\nbig-file subgroup wins in %zu of %zu buckets; bucket-to-bucket "
      "rate increases %zu of %zu times\n",
      big_wins, buckets_used, rising, bucket_mean_rate.size() - 1);

  xflbench::print_comparison(
      "Paper Fig. 5: rates grow with total transfer size, and the "
      "big-file subgroup beats the small-file subgroup in almost every "
      "bucket (with occasional inversions when the subgroup file sizes are "
      "similar). Expect 'big wins' in a clear majority of buckets and an "
      "overall rising rate trend across buckets.");
  return 0;
}
