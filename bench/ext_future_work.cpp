// The two model improvements the paper names as future work, implemented:
//
//   §5.4: "In future work, we will incorporate round-trip times for each
//   edge, which we expect to reduce errors further."  -> the RTT column of
//   the pooled (Eq. 5) model.
//
//   §8: "we plan to incorporate SNMP data from routers to characterize
//   network conditions."  -> SNMP-style WAN load sampling; the mean path
//   load during each transfer becomes an extra per-edge feature. Evaluated
//   on a chronically cross-loaded edge, where network conditions are the
//   dominant unknown.
#include <cstdio>
#include <map>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "core/global_model.hpp"
#include "features/dataset.hpp"
#include "ml/gbt.hpp"
#include "ml/metrics.hpp"
#include "ml/scaler.hpp"
#include "net/path.hpp"

namespace {

using namespace xfl;

/// Mean WAN load over [t0, t1] from SNMP-style samples.
double wan_window_mean(const std::vector<sim::WanSample>& samples, double t0,
                       double t1) {
  double sum = 0.0;
  std::size_t count = 0;
  for (const auto& sample : samples) {
    if (sample.time_s < t0) continue;
    if (sample.time_s > t1) break;
    sum += sample.load_Bps;
    ++count;
  }
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

}  // namespace

int main() {
  xflbench::print_banner(
      "Extensions - the paper's stated future work (RTT + SNMP features)",
      "Sec. 5.4: RTT should reduce the pooled-model error; Sec. 8: router "
      "counters should expose network-condition unknowns");

  // ---- Part 1: RTT feature in the pooled model (§5.4) ----------------------
  const auto context = xflbench::production_context();
  const auto scenario = xflbench::production_scenario();
  const auto edges = xflbench::heavy_edges(context);

  std::map<logs::EdgeKey, double> edge_rtt;
  for (const auto& edge : edges) {
    const auto path = net::derive_path(scenario.sites,
                                       scenario.endpoints[edge.src].site,
                                       scenario.endpoints[edge.dst].site);
    edge_rtt[edge] = path.rtt_s;
  }

  const auto without_rtt = core::study_global_model(context, edges, {});
  core::GlobalModelConfig rtt_config;
  rtt_config.edge_rtt_s = &edge_rtt;
  const auto with_rtt = core::study_global_model(context, edges, rtt_config);

  TextTable rtt_table;
  rtt_table.set_title("Pooled model (Sec. 5.4) with and without the RTT feature:");
  rtt_table.set_header({"model", "LR MdAPE %", "XGB MdAPE %"});
  rtt_table.add_row({"without RTT", TextTable::num(without_rtt.lr_mdape, 1),
                     TextTable::num(without_rtt.xgb_mdape, 1)});
  rtt_table.add_row({"with RTT", TextTable::num(with_rtt.lr_mdape, 1),
                     TextTable::num(with_rtt.xgb_mdape, 1)});
  rtt_table.print(stdout);

  // ---- Part 2: SNMP-style WAN load feature (§8) -----------------------------
  // Re-simulate a production slice with WAN sampling on the chronically
  // cross-loaded CERN->FNAL path, then train the per-edge model with and
  // without the mean-path-load feature.
  std::printf("\nsimulating a monitored slice for the SNMP study...\n");
  sim::ProductionConfig monitored_config;
  monitored_config.duration_s = 9.0 * 86400.0;
  auto monitored_scenario = sim::make_production(monitored_config);
  endpoint::EndpointId cern = 0, fnal = 0;
  monitored_scenario.endpoints.find("CERN-dtn", cern);
  monitored_scenario.endpoints.find("FNAL-dtn", fnal);
  const auto cern_site = monitored_scenario.endpoints[cern].site;
  const auto fnal_site = monitored_scenario.endpoints[fnal].site;
  monitored_scenario.monitored_wan_paths.push_back({cern_site, fnal_site});
  monitored_scenario.wan_sample_interval_s = 30.0;
  // Make the cross traffic on the monitored path time-varying: a constant
  // load is indistinguishable from a lower link capacity and the models
  // absorb it into the intercept — router counters only pay off when
  // network conditions actually change between transfers.
  for (auto& background : monitored_scenario.backgrounds) {
    if (background.component != sim::Component::kWan) continue;
    if (background.wan_src != cern_site || background.wan_dst != fnal_site)
      continue;
    background.mean_on_s = 1200.0;
    background.mean_off_s = 1200.0;
    background.demand_lo_Bps = 0.15 * 1.175e9;
    background.demand_hi_Bps = 0.75 * 1.175e9;
  }
  const auto result = monitored_scenario.run();
  const auto& wan_series = result.wan_samples.at({cern_site, fnal_site});

  const auto monitored_context = core::analyze_log(result.log);
  const logs::EdgeKey edge{cern, fnal};
  features::DatasetOptions options;
  options.load_threshold = 0.5;
  const auto baseline = features::build_edge_dataset(
      monitored_context.log, monitored_context.contention, edge, options);

  features::Dataset augmented = baseline;
  augmented.feature_names.emplace_back("WAN_load");
  ml::Matrix x(baseline.rows(), baseline.cols() + 1);
  for (std::size_t r = 0; r < baseline.rows(); ++r) {
    for (std::size_t c = 0; c < baseline.cols(); ++c)
      x.at(r, c) = baseline.x.at(r, c);
    const auto& record = monitored_context.log[baseline.record_indices[r]];
    x.at(r, baseline.cols()) =
        to_mbps(wan_window_mean(wan_series, record.start_s, record.end_s));
  }
  augmented.x = std::move(x);

  auto evaluate = [](const features::Dataset& dataset) {
    const auto split = features::split_dataset(dataset, 0.7, 4242);
    ml::StandardScaler scaler;
    const auto x_train = scaler.fit_transform(split.train.x);
    const auto x_test = scaler.transform(split.test.x);
    ml::GradientBoostedTrees model;
    model.fit(x_train, split.train.y);
    return ml::mdape(split.test.y, model.predict(x_test));
  };
  const double baseline_mdape = evaluate(baseline);
  const double augmented_mdape = evaluate(augmented);

  TextTable wan_table;
  wan_table.set_title("\nPer-edge XGB on the chronically loaded CERN->FNAL path:");
  wan_table.set_header({"model", "samples", "MdAPE %"});
  wan_table.add_row({"log features only", std::to_string(baseline.rows()),
                     TextTable::num(baseline_mdape, 2)});
  wan_table.add_row({"+ SNMP WAN load", std::to_string(augmented.rows()),
                     TextTable::num(augmented_mdape, 2)});
  wan_table.print(stdout);

  xflbench::print_comparison(
      "No paper table (stated future work). Expected direction per the "
      "paper's own hypotheses: the RTT feature should not hurt and "
      "typically trims the pooled-model error; the SNMP WAN-load feature "
      "should clearly reduce the error on paths whose dominant unknown is "
      "cross traffic, mirroring how the LMT features work for storage "
      "(Sec. 5.5.2).");
  return 0;
}
