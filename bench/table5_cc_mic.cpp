// Table 5: Pearson correlation coefficient (CC) vs maximal information
// coefficient (MIC) between each feature and the transfer rate, for four
// heavily used edges. The paper's finding: several features show much
// higher MIC than |CC| — nonlinear dependence a linear model cannot use —
// and the constant C and P columns score 0.00 MIC ("-" CC).
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "features/dataset.hpp"
#include "ml/correlation.hpp"
#include "ml/mic.hpp"

int main() {
  using namespace xfl;
  xflbench::print_banner(
      "Table 5 - Pearson CC vs MIC per feature, four heavy edges",
      "MIC >> |CC| for several load features; constant C/P give MIC 0.00");

  const auto context = xflbench::production_context();
  const auto scenario = xflbench::production_scenario();
  auto edges = xflbench::heavy_edges(context);
  if (edges.size() > 4) edges.resize(4);

  features::DatasetOptions options;
  options.load_threshold = 0.5;

  std::size_t nonlinear_features = 0;
  for (const auto& edge : edges) {
    const auto dataset =
        features::build_edge_dataset(context.log, context.contention, edge, options);
    TextTable table;
    table.set_title("\nedge " +
                    xflbench::endpoint_name(scenario, edge.src) + " -> " +
                    xflbench::endpoint_name(scenario, edge.dst) + "  (n=" +
                    std::to_string(dataset.rows()) + ")");
    std::vector<std::string> header = {"metric"};
    for (const auto& name : dataset.feature_names) header.push_back(name);
    table.set_header(header);

    std::vector<std::string> cc_row = {"CC"};
    std::vector<std::string> mic_row = {"MIC"};
    for (std::size_t c = 0; c < dataset.cols(); ++c) {
      const auto column = dataset.x.column(c);
      const double cc = ml::pearson_correlation(column, dataset.y);
      const double information = ml::mic(column, dataset.y);
      const bool constant = [&column] {
        for (const double v : column)
          if (v != column[0]) return false;
        return true;
      }();
      cc_row.push_back(constant ? "-" : TextTable::num(std::fabs(cc), 2));
      mic_row.push_back(TextTable::num(information, 2));
      if (!constant && information > std::fabs(cc) + 0.15)
        ++nonlinear_features;
    }
    table.add_row(cc_row);
    table.add_row(mic_row);
    table.print(stdout);
  }

  std::printf(
      "\nfeatures with MIC exceeding |CC| by > 0.15 across the four edges: %zu\n",
      nonlinear_features);
  xflbench::print_comparison(
      "Paper Table 5: on each of four edges, several inputs (e.g. Kdin, "
      "Kdout, Nb, Gdst) have MIC well above the Pearson CC (e.g. CC 0.03 "
      "vs MIC 0.24), revealing nonlinear dependencies, while constant C/P "
      "columns show '-' CC and 0.00 MIC. Expect a nonzero count of "
      "MIC>>|CC| features above and zeros for any constant column.");
  return 0;
}
