// Shared helpers for the experiment harnesses in bench/.
//
// Every table/figure binary prints (a) the regenerated rows/series and
// (b) a "paper vs measured" note, so `for b in build/bench/*; do $b; done`
// reproduces the whole evaluation section. The 12-day production
// simulation is cached on disk (CSV transfer log) so that only the first
// binary that needs it pays the simulation cost.
#pragma once

#include <string>

#include "core/pipeline.hpp"
#include "sim/scenario.hpp"

namespace xflbench {

/// Directory used for cross-binary caching (override with XFL_CACHE_DIR).
std::string cache_dir();

/// The production scenario used by §4-§5 benches (fixed seed).
xfl::sim::Scenario production_scenario();

/// Simulated production log, loaded from cache or simulated then cached.
/// `tag` isolates caches of scenario variants.
xfl::logs::LogStore cached_production_log(const std::string& tag = "default");

/// Full analysis context (log + contention + capabilities) for the cached
/// production log.
xfl::core::AnalysisContext production_context(const std::string& tag = "default");

/// The paper's 30 heavy edges as realised in the simulation: edges with at
/// least 300 transfers above 0.5 Rmax, heaviest first, at most 30.
std::vector<xfl::logs::EdgeKey> heavy_edges(
    const xfl::core::AnalysisContext& context);

/// Pretty banner printed at the top of each harness.
void print_banner(const std::string& experiment, const std::string& paper_claim);

/// Closing paper-vs-measured note, followed by a compact snapshot of the
/// nonzero metrics counters the run produced (fit/predict/sweep totals),
/// so each harness's output records how much work the numbers rest on.
void print_comparison(const std::string& text);

/// Full metrics-registry text dump (XFL_BENCH_METRICS=json switches to the
/// JSON document written by `xferlearn --metrics-out`).
void print_metrics_snapshot();

/// Name an endpoint for display.
std::string endpoint_name(const xfl::sim::Scenario& scenario,
                          xfl::endpoint::EndpointId id);

}  // namespace xflbench
