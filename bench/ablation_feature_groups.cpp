// Ablation: which engineered feature groups carry the predictive power?
// Retrains the per-edge XGB model with each group removed: the K group
// (contending rates, Eq. 2), the S group (contending TCP streams), the G
// group (GridFTP instance counts), and the transfer-characteristics group
// (Nb/Nf/Nd). This quantifies the paper's central claim that competing-
// load features explain transfer performance.
#include <cstdio>
#include <functional>
#include <vector>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "features/dataset.hpp"
#include "ml/gbt.hpp"
#include "ml/metrics.hpp"
#include "ml/scaler.hpp"

namespace {

using namespace xfl;

/// MdAPE of an XGB model on one edge with a subset of features.
double edge_mdape(const core::AnalysisContext& context,
                  const logs::EdgeKey& edge,
                  const std::function<bool(const std::string&)>& keep_name) {
  features::DatasetOptions options;
  options.load_threshold = 0.5;
  const auto dataset =
      features::build_edge_dataset(context.log, context.contention, edge, options);
  std::vector<bool> keep(dataset.cols());
  for (std::size_t c = 0; c < dataset.cols(); ++c)
    keep[c] = keep_name(dataset.feature_names[c]);
  const auto reduced = dataset.select_features(keep);
  const auto split = features::split_dataset(reduced, 0.7, 42);
  ml::StandardScaler scaler;
  const auto x_train = scaler.fit_transform(split.train.x);
  const auto x_test = scaler.transform(split.test.x);
  ml::GradientBoostedTrees model;
  model.fit(x_train, split.train.y);
  return ml::mdape(split.test.y, model.predict(x_test));
}

bool in_group(const std::string& name, const char* group) {
  const std::string g(group);
  if (g == "K") return name[0] == 'K';
  if (g == "S") return name[0] == 'S';
  if (g == "G") return name[0] == 'G';
  if (g == "chars") return name == "Nb" || name == "Nf" || name == "Nd";
  return false;
}

}  // namespace

int main() {
  xflbench::print_banner(
      "Ablation - per-edge XGB MdAPE with feature groups removed",
      "competing-load features (K/G/S) drive accuracy (paper contribution 2/3)");

  const auto context = xflbench::production_context();
  auto edges = xflbench::heavy_edges(context);
  if (edges.size() > 8) edges.resize(8);  // Keep the sweep quick.

  const char* variants[] = {"full", "no-K", "no-S", "no-G", "no-chars",
                            "no-load(K,S,G)"};
  TextTable table;
  table.set_header({"variant", "median MdAPE %", "vs full"});
  double full_median = 0.0;
  for (const char* variant : variants) {
    std::vector<double> mdapes;
    for (const auto& edge : edges) {
      auto keep = [variant](const std::string& name) {
        const std::string v(variant);
        if (v == "full") return true;
        if (v == "no-K") return !in_group(name, "K");
        if (v == "no-S") return !in_group(name, "S");
        if (v == "no-G") return !in_group(name, "G");
        if (v == "no-chars") return !in_group(name, "chars");
        return !in_group(name, "K") && !in_group(name, "S") &&
               !in_group(name, "G");
      };
      mdapes.push_back(edge_mdape(context, edge, keep));
    }
    const double median_mdape = xfl::median(mdapes);
    if (std::string(variant) == "full") full_median = median_mdape;
    char delta[32];
    std::snprintf(delta, sizeof delta, "%+.1f%%", median_mdape - full_median);
    table.add_row({variant, xfl::TextTable::num(median_mdape, 1),
                   std::string(variant) == "full" ? "-" : delta});
  }
  table.print(stdout);

  xflbench::print_comparison(
      "No direct paper table, but implied by Figs. 9/12: the K, S, and G "
      "groups all describe the same underlying competition, so removing "
      "any one of them barely moves the error (the others substitute - "
      "which is why Fig. 9 notes they still earn *different* weights), "
      "while removing all three at once increases the error clearly. "
      "Transfer characteristics (Nb/Nf/Nd) are independently necessary: "
      "startup and per-file costs make small transfers slow regardless of "
      "load (Fig. 5).");
  return 0;
}
