// Table 3: edge length statistics (great-circle km) at the 25th/50th/90th
// percentiles, for all edges vs the 30 heavy edges. The paper's point: the
// 30 heavy edges are representative of the full edge population in length.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

int main() {
  using namespace xfl;
  xflbench::print_banner(
      "Table 3 - Edge length percentiles (km)",
      "all edges 235/1976/3062 km; 30 edges 247/1436/3947 km - same scale");

  const auto context = xflbench::production_context();
  const auto scenario = xflbench::production_scenario();

  auto edge_km = [&](const logs::EdgeKey& edge) {
    return scenario.sites.distance_km(scenario.endpoints[edge.src].site,
                                      scenario.endpoints[edge.dst].site);
  };

  std::vector<double> all_lengths;
  for (const auto& edge : context.log.edges_by_usage())
    all_lengths.push_back(edge_km(edge));
  std::vector<double> heavy_lengths;
  for (const auto& edge : xflbench::heavy_edges(context))
    heavy_lengths.push_back(edge_km(edge));

  const std::vector<double> ps = {25.0, 50.0, 90.0};
  const auto all_p = percentiles(all_lengths, ps);
  const auto heavy_p = percentiles(heavy_lengths, ps);

  TextTable table;
  table.set_header({"Dataset", "25th", "50th", "90th", "edges"});
  table.add_row({"All edges", TextTable::num(all_p[0], 0),
                 TextTable::num(all_p[1], 0), TextTable::num(all_p[2], 0),
                 std::to_string(all_lengths.size())});
  table.add_row({"30 edges", TextTable::num(heavy_p[0], 0),
                 TextTable::num(heavy_p[1], 0), TextTable::num(heavy_p[2], 0),
                 std::to_string(heavy_lengths.size())});
  table.print(stdout);

  xflbench::print_comparison(
      "Paper Table 3: all edges 235 / 1,976 / 3,062 km vs 30 edges "
      "247 / 1,436 / 3,947 km - the heavy edges cover the same length "
      "scale as the population (hundreds to thousands of km, with the "
      "90th percentile in the 3,000-4,000 km range). Expect the two rows "
      "above to overlap in the same way.");
  return 0;
}
