// Fig. 11 (and the headline result): MdAPE of the per-edge linear and
// gradient-boosting models, with the sample count per edge. Paper: median
// across edges 7.0% (LR) vs 4.6% (XGB); XGB lower on most edges.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "core/edge_model.hpp"

int main() {
  using namespace xfl;
  xflbench::print_banner(
      "Fig. 11 - Per-edge MdAPE: linear regression vs gradient boosting",
      "paper medians: LR 7.0%, XGB 4.6%; XGB wins on most edges");

  const auto context = xflbench::production_context();
  const auto scenario = xflbench::production_scenario();
  const auto edges = xflbench::heavy_edges(context);
  ThreadPool pool;
  const auto reports = core::study_edges(context, edges, {}, &pool);

  TextTable table;
  table.set_header({"edge", "pair", "samples", "LR MdAPE %", "XGB MdAPE %",
                    "winner"});
  std::vector<double> lr_mdapes, xgb_mdapes;
  std::size_t xgb_wins = 0;
  for (std::size_t e = 0; e < reports.size(); ++e) {
    const auto& report = reports[e];
    lr_mdapes.push_back(report.lr_mdape);
    xgb_mdapes.push_back(report.xgb_mdape);
    const bool xgb_better = report.xgb_mdape <= report.lr_mdape;
    if (xgb_better) ++xgb_wins;
    table.add_row({std::to_string(e + 1),
                   xflbench::endpoint_name(scenario, report.edge.src) + "->" +
                       xflbench::endpoint_name(scenario, report.edge.dst),
                   std::to_string(report.samples),
                   TextTable::num(report.lr_mdape, 1),
                   TextTable::num(report.xgb_mdape, 1),
                   xgb_better ? "XGB" : "LR"});
  }
  table.print(stdout);

  std::printf("\nmedian MdAPE across %zu edges: LR %.1f%%, XGB %.1f%%\n",
              reports.size(), median(lr_mdapes), median(xgb_mdapes));
  std::printf("XGB wins on %zu of %zu edges\n", xgb_wins, reports.size());

  xflbench::print_comparison(
      "Paper Fig. 11 / abstract: per-edge MdAPE medians 7.0% (LR) vs 4.6% "
      "(XGB) over 30 edges / 30,653 transfers; XGB has lower error on most "
      "edges. Expect the XGB column to sit below the LR column for a clear "
      "majority of edges and the XGB median to be lower (absolute values "
      "depend on the simulated noise floor, not expected to match exactly).");
  return 0;
}
