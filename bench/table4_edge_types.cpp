// Table 4: edge type shares (%) - GCS=>GCS, GCS=>GCP, GCP=>GCS - for all
// edges vs the 30 heavy edges. (No GCP=>GCP: Globus did not support
// personal-to-personal transfers before 2016.)
#include <cstdio>
#include <map>

#include "bench_util.hpp"
#include "common/table.hpp"

int main() {
  using namespace xfl;
  using endpoint::EndpointType;
  xflbench::print_banner(
      "Table 4 - Edge type shares (%)",
      "all edges 45/34/20; 30 edges 51/30/19 (GCS=>GCS / GCS=>GCP / GCP=>GCS)");

  const auto context = xflbench::production_context();
  const auto scenario = xflbench::production_scenario();

  auto classify = [&](const logs::EdgeKey& edge) {
    const auto src = scenario.endpoints[edge.src].type;
    const auto dst = scenario.endpoints[edge.dst].type;
    if (src == EndpointType::kServer && dst == EndpointType::kServer)
      return 0;  // GCS=>GCS
    if (src == EndpointType::kServer) return 1;  // GCS=>GCP
    if (dst == EndpointType::kServer) return 2;  // GCP=>GCS
    return 3;                                    // GCP=>GCP (should not exist)
  };

  auto shares = [&](const std::vector<logs::EdgeKey>& edges) {
    std::map<int, int> counts;
    for (const auto& edge : edges) counts[classify(edge)]++;
    std::array<double, 4> out{};
    for (const auto& [type, count] : counts)
      out[static_cast<std::size_t>(type)] =
          100.0 * count / static_cast<double>(edges.size());
    return out;
  };

  const auto all_edges = context.log.edges_by_usage();
  const auto heavy = xflbench::heavy_edges(context);
  const auto all_shares = shares(all_edges);
  const auto heavy_shares = shares(heavy);

  TextTable table;
  table.set_header(
      {"Dataset", "GCS=>GCS", "GCS=>GCP", "GCP=>GCS", "GCP=>GCP"});
  table.add_row({"All edges", TextTable::num(all_shares[0], 0),
                 TextTable::num(all_shares[1], 0),
                 TextTable::num(all_shares[2], 0),
                 TextTable::num(all_shares[3], 0)});
  table.add_row({"30 edges", TextTable::num(heavy_shares[0], 0),
                 TextTable::num(heavy_shares[1], 0),
                 TextTable::num(heavy_shares[2], 0),
                 TextTable::num(heavy_shares[3], 0)});
  table.print(stdout);

  const bool no_gcp_gcp = all_shares[3] == 0.0 && heavy_shares[3] == 0.0;
  std::printf("\nGCP=>GCP edges present: %s (paper: none before 2016)\n",
              no_gcp_gcp ? "no" : "YES - unexpected");

  xflbench::print_comparison(
      "Paper Table 4: all edges split 45/34/20 (plus 0 GCP=>GCP); the 30 "
      "heavy edges split 51/30/19. Expect GCS=>GCS to dominate both rows, "
      "a sizeable GCS=>GCP share, a smaller GCP=>GCS share, and zero "
      "GCP=>GCP edges.");
  return no_gcp_gcp ? 0 : 1;
}
