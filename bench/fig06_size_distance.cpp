// Fig. 6: transfer size vs estimated transfer distance (great-circle km),
// colour-encoding the transfer rate. Findings: sizes span many decades,
// rate correlates with transfer size, and intracontinental vs
// intercontinental transfers separate cleanly in distance.
#include <cmath>
#include <cstdio>
#include <map>
#include <vector>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/units.hpp"

int main() {
  using namespace xfl;
  xflbench::print_banner(
      "Fig. 6 - Transfer size vs distance, colour = rate",
      "sizes span ~1 B..1 PB; rate correlates with size; intra/intercontinental split");

  const auto context = xflbench::production_context();
  const auto scenario = xflbench::production_scenario();

  // 2-D histogram: log10(size) x distance band, cell = mean rate.
  const double size_decades[] = {0, 6, 8, 9, 10, 11, 12, 15};  // log-ish edges
  const double distance_bands_km[] = {0, 500, 1500, 3000, 5000, 12000};
  constexpr std::size_t kSizeBins = std::size(size_decades) - 1;
  constexpr std::size_t kDistanceBins = std::size(distance_bands_km) - 1;

  std::vector<std::vector<std::vector<double>>> cells(
      kSizeBins, std::vector<std::vector<double>>(kDistanceBins));
  double min_bytes = 1e30, max_bytes = 0.0;
  std::vector<double> log_sizes, rates;
  for (const auto& record : context.log.records()) {
    const double km = scenario.sites.distance_km(
        scenario.endpoints[record.src].site, scenario.endpoints[record.dst].site);
    min_bytes = std::min(min_bytes, record.bytes);
    max_bytes = std::max(max_bytes, record.bytes);
    std::size_t size_bin = 0;
    while (size_bin + 1 < kSizeBins &&
           record.bytes >= std::pow(10.0, size_decades[size_bin + 1]))
      ++size_bin;
    std::size_t distance_bin = 0;
    while (distance_bin + 1 < kDistanceBins &&
           km >= distance_bands_km[distance_bin + 1])
      ++distance_bin;
    cells[size_bin][distance_bin].push_back(to_mbps(record.rate_Bps()));
    log_sizes.push_back(std::log10(std::max(1.0, record.bytes)));
    rates.push_back(std::log10(std::max(1e-3, to_mbps(record.rate_Bps()))));
  }

  TextTable table;
  std::vector<std::string> header = {"size \\ km"};
  for (std::size_t d = 0; d < kDistanceBins; ++d) {
    char label[48];
    std::snprintf(label, sizeof label, "%.0f-%.0f", distance_bands_km[d],
                  distance_bands_km[d + 1]);
    header.emplace_back(label);
  }
  table.set_header(header);
  for (std::size_t s = 0; s < kSizeBins; ++s) {
    char label[48];
    std::snprintf(label, sizeof label, "1e%.0f-1e%.0f B", size_decades[s],
                  size_decades[s + 1]);
    std::vector<std::string> row = {label};
    for (std::size_t d = 0; d < kDistanceBins; ++d) {
      const auto& cell = cells[s][d];
      row.push_back(cell.empty()
                        ? "-"
                        : TextTable::num(mean(cell), 1) + " (" +
                              std::to_string(cell.size()) + ")");
    }
    table.add_row(row);
  }
  std::printf("cell = mean rate MB/s (count)\n\n");
  table.print(stdout);

  std::printf("\nobserved size span: %s .. %s\n", format_bytes(min_bytes).c_str(),
              format_bytes(max_bytes).c_str());
  std::printf("corr(log10 size, log10 rate) = %.3f\n",
              pearson(log_sizes, rates));

  xflbench::print_comparison(
      "Paper Fig. 6: transfer sizes span ~1 B to ~1 PB with rates from "
      "0.1 B/s to ~1 GB/s; rate visibly correlates with transfer size "
      "(bigger -> faster cells toward the bottom of each column), and "
      "intercontinental transfers (>5,000 km) form a separate band. Expect "
      "a clearly positive size-rate correlation and populated cells in "
      "both the <3,000 km and >5,000 km bands.");
  return 0;
}
