// Explain-throughput benchmark (PR 10): measures the Saabas path-
// attribution kernel on the standard 2000x15 / 200-tree / depth-4
// workload that BENCH_predict.json uses, so the explain numbers are
// directly comparable with the predict numbers recorded there.
//
//   * predict_batch serial      — the serving baseline;
//   * explain_nodewalk per row  — the kept reference implementation;
//   * explain_batch serial      — the flat explain kernel;
//   * explain_batch pooled      — the same through a hardware ThreadPool.
//
// Every row is medians of kReps repetitions. Prints a JSON document to
// stdout; the repository's BENCH_explain.json records a run of this
// binary on the reference host.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <span>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "ml/gbt.hpp"
#include "ml/gbt_flat.hpp"

namespace {

using namespace xfl;

constexpr std::size_t kRows = 2000;
constexpr std::size_t kCols = 15;
constexpr int kReps = 9;

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double median(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  return values[values.size() / 2];
}

/// Median ms over kReps calls of `body` (one warm-up call first).
template <typename Body>
double median_ms(Body&& body) {
  body();
  std::vector<double> samples;
  for (int rep = 0; rep < kReps; ++rep) {
    const double start = now_ms();
    body();
    samples.push_back(now_ms() - start);
  }
  return median(std::move(samples));
}

}  // namespace

int main() {
  // The PR 2 benchmark workload: 2000x15, y = x0^2 + 2*x5 + noise.
  ml::Matrix x(kRows, kCols);
  std::vector<double> y(kRows);
  Rng rng(3);
  for (std::size_t i = 0; i < kRows; ++i) {
    for (std::size_t c = 0; c < kCols; ++c) x.at(i, c) = rng.normal();
    y[i] = x.at(i, 0) * x.at(i, 0) + 2.0 * x.at(i, 5) + rng.normal(0.0, 0.1);
  }
  ml::GradientBoostedTrees model;  // Default config: 200 trees, depth 4.
  model.fit(x, y);

  std::vector<double> pred(kRows), bias(kRows), contrib(kRows * kCols);

  const double predict_ms =
      median_ms([&] { model.predict_batch(x, pred); });

  const double nodewalk_ms = median_ms([&] {
    for (std::size_t r = 0; r < kRows; ++r)
      pred[r] = model.explain_nodewalk(
          x.row(r), std::span(contrib.data() + r * kCols, kCols), bias[r]);
  });

  const double serial_ms =
      median_ms([&] { model.explain_batch(x, pred, bias, contrib); });

  ThreadPool pool;
  const double pooled_ms =
      median_ms([&] { model.explain_batch(x, pred, bias, contrib, &pool); });

  const auto rows_per_s = [](double ms) {
    return static_cast<double>(kRows) / (ms / 1000.0);
  };
  std::printf("{\n");
  std::printf("  \"workload\": \"%zu rows x %zu features, default "
              "GbtConfig{trees=200, max_depth=4}\",\n",
              kRows, kCols);
  std::printf("  \"reps\": %d,\n", kReps);
  std::printf("  \"threads\": %u,\n", std::thread::hardware_concurrency());
  std::printf("  \"predict_kernel\": \"%s\",\n",
              ml::kernel_name(model.flat().effective_kernel()));
  std::printf("  \"predict_batch_serial\": "
              "{\"median_ms\": %.3f, \"rows_per_s\": %.0f},\n",
              predict_ms, rows_per_s(predict_ms));
  std::printf("  \"explain_nodewalk_per_row\": "
              "{\"median_ms\": %.3f, \"rows_per_s\": %.0f},\n",
              nodewalk_ms, rows_per_s(nodewalk_ms));
  std::printf("  \"explain_batch_serial\": "
              "{\"median_ms\": %.3f, \"rows_per_s\": %.0f},\n",
              serial_ms, rows_per_s(serial_ms));
  std::printf("  \"explain_batch_pooled\": "
              "{\"median_ms\": %.3f, \"rows_per_s\": %.0f},\n",
              pooled_ms, rows_per_s(pooled_ms));
  std::printf("  \"explain_vs_predict_serial\": %.2f,\n",
              serial_ms / predict_ms);
  std::printf("  \"flat_vs_nodewalk_serial\": %.2f\n",
              nodewalk_ms / serial_ms);
  std::printf("}\n");
  return 0;
}
