// Ablation of the "unknown load" mechanism: rerun the production scenario
// with the non-Globus background processes disabled and compare (a) the
// fraction of transfers surviving the 0.5*Rmax filter and (b) the per-edge
// XGB MdAPE. With no unknowns, retention should rise and the models
// should get more accurate - the paper's whole §5.5 is about this.
#include <cstdio>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "core/edge_model.hpp"
#include "sim/scenario.hpp"

namespace {

using namespace xfl;

struct Outcome {
  double retention = 0.0;
  double median_mdape = 0.0;
  std::size_t edges = 0;
};

Outcome evaluate(bool background) {
  sim::ProductionConfig config;
  // A lighter slice than the cached default keeps this ablation quick.
  config.duration_s = 6.0 * 86400.0;
  config.session_arrivals_per_s = 0.012;
  config.enable_background = background;
  const auto scenario = sim::make_production(config);
  const auto context = core::analyze_log(scenario.run().log);
  const auto edges = core::select_heavy_edges(context, 150, 0.5, 10);

  Outcome outcome;
  outcome.edges = edges.size();
  std::size_t raw = 0, kept = 0;
  for (const auto& edge : edges) {
    const double cutoff = 0.5 * context.log.edge_max_rate(edge);
    for (const auto i : context.log.edge_transfers(edge)) {
      ++raw;
      if (context.log[i].rate_Bps() >= cutoff) ++kept;
    }
  }
  outcome.retention = raw == 0 ? 0.0 : 100.0 * kept / static_cast<double>(raw);

  ThreadPool pool;
  core::EdgeModelConfig edge_config;
  edge_config.gbt.trees = 120;
  const auto reports = core::study_edges(context, edges, edge_config, &pool);
  std::vector<double> mdapes;
  for (const auto& report : reports) mdapes.push_back(report.xgb_mdape);
  if (!mdapes.empty()) outcome.median_mdape = median(mdapes);
  return outcome;
}

}  // namespace

int main() {
  xflbench::print_banner(
      "Ablation - unknown (non-Globus) background load on vs off",
      "unknowns depress the 0.5*Rmax retention and inflate model error");

  const auto with_bg = evaluate(true);
  const auto without_bg = evaluate(false);

  xfl::TextTable table;
  table.set_header({"scenario", "heavy edges", "retention @0.5Rmax %",
                    "median XGB MdAPE %"});
  table.add_row({"background on", std::to_string(with_bg.edges),
                 xfl::TextTable::num(with_bg.retention, 1),
                 xfl::TextTable::num(with_bg.median_mdape, 1)});
  table.add_row({"background off", std::to_string(without_bg.edges),
                 xfl::TextTable::num(without_bg.retention, 1),
                 xfl::TextTable::num(without_bg.median_mdape, 1)});
  table.print(stdout);

  xflbench::print_comparison(
      "The paper reports 46.5% retention at 0.5*Rmax on real logs (where "
      "unknown load exists) and shows in §5.5 that removing/observing "
      "unknowns improves accuracy. Expect the background-on row to have "
      "lower retention and higher MdAPE than the background-off row.");
  return 0;
}
