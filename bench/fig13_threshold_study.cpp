// Fig. 13 / §5.5.1: prediction error vs the unknown-load threshold T. For
// the eight edges that keep >= 300 transfers at 0.8 Rmax, models are
// retrained at T in {0.5, 0.6, 0.7, 0.8}. The paper: "prediction errors
// generally decline as the threshold increases" - transfers closer to the
// edge maximum are less likely to carry unobserved competing load.
#include <cstdio>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "core/threshold_study.hpp"

int main() {
  using namespace xfl;
  xflbench::print_banner(
      "Fig. 13 - MdAPE vs load threshold T*Rmax (8 heaviest qualifying edges)",
      "error declines as T rises from 0.5 to 0.8");

  const auto context = xflbench::production_context();
  core::ThresholdStudyConfig config;
  // Thin simulated edges qualify with fewer 0.8-threshold transfers than
  // the paper's production log; keep the paper's 8-edge panel count.
  config.min_transfers_at_max = 150;
  config.max_edges = 8;
  ThreadPool pool;
  const auto series = core::run_threshold_study(context, config, &pool);
  if (series.empty()) {
    std::printf("no edges qualify at the 0.8 threshold - increase workload\n");
    return 1;
  }

  TextTable table;
  table.set_header({"edge", "metric", "T=0.5", "T=0.6", "T=0.7", "T=0.8"});
  std::size_t improving = 0;
  for (std::size_t e = 0; e < series.size(); ++e) {
    const auto& entry = series[e];
    std::vector<std::string> samples_row = {std::to_string(e + 1), "samples"};
    std::vector<std::string> lr_row = {"", "LR MdAPE %"};
    std::vector<std::string> xgb_row = {"", "XGB MdAPE %"};
    for (std::size_t t = 0; t < entry.samples.size(); ++t) {
      samples_row.push_back(std::to_string(entry.samples[t]));
      lr_row.push_back(TextTable::num(entry.lr_mdape[t], 1));
      xgb_row.push_back(TextTable::num(entry.xgb_mdape[t], 1));
    }
    table.add_row(samples_row);
    table.add_row(lr_row);
    table.add_row(xgb_row);
    if (entry.xgb_mdape.back() <= entry.xgb_mdape.front()) ++improving;
  }
  table.print(stdout);
  std::printf(
      "\nedges where XGB MdAPE at T=0.8 <= MdAPE at T=0.5: %zu of %zu\n",
      improving, series.size());

  xflbench::print_comparison(
      "Paper Fig. 13: for all eight edges the MdAPE generally declines as "
      "the threshold grows (fewer unknown-load-contaminated samples), with "
      "shrinking sample counts shown above each group. Expect the T=0.8 "
      "error to be at or below the T=0.5 error for most edges.");
  return 0;
}
