// Fig. 12: relative feature importance in the per-edge gradient-boosting
// models (gain-based). The paper's observations: the importance pattern
// broadly matches the linear coefficients (Fig. 9) for load features, but
// the fault count Nflt - significant in the linear model - becomes far
// less important in the nonlinear model, because faults correlate with a
// nonlinear function of load the trees can already express.
#include <cstdio>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "core/edge_model.hpp"
#include "features/dataset.hpp"

int main() {
  using namespace xfl;
  xflbench::print_banner(
      "Fig. 12 - XGB feature importance per edge",
      "load features important in both models; Nflt matters less than in LR");

  const auto context = xflbench::production_context();
  const auto edges = xflbench::heavy_edges(context);
  ThreadPool pool;
  const auto reports = core::study_edges(context, edges, {}, &pool);
  if (reports.empty()) return 1;

  TextTable table;
  std::vector<std::string> header = {"edge"};
  for (const auto& name : reports.front().feature_names) header.push_back(name);
  table.set_header(header);
  for (std::size_t e = 0; e < reports.size(); ++e) {
    const auto& report = reports[e];
    std::vector<std::string> row = {std::to_string(e + 1)};
    for (std::size_t c = 0; c < report.feature_names.size(); ++c)
      row.push_back(report.eliminated[c]
                        ? "x"
                        : TextTable::num(report.xgb_importance[c], 2));
    table.add_row(row);
  }
  table.print(stdout);

  // The Nflt comparison: linear weight vs boosting importance, averaged
  // over edges where Nflt survived the variance filter.
  const auto nflt =
      static_cast<std::size_t>(features::FeatureId::kNflt);
  std::vector<double> lr_weight, xgb_weight;
  for (const auto& report : reports) {
    if (report.eliminated[nflt]) continue;
    lr_weight.push_back(report.lr_coefficients[nflt]);
    xgb_weight.push_back(report.xgb_importance[nflt]);
  }
  if (!lr_weight.empty()) {
    std::printf(
        "\nNflt mean relative weight: linear %.3f vs boosting %.3f "
        "(over %zu edges where Nflt varies)\n",
        mean(lr_weight), mean(xgb_weight), lr_weight.size());
  } else {
    std::printf("\nNflt constant on all edges in this run\n");
  }

  xflbench::print_comparison(
      "Paper Fig. 12 vs Fig. 9: most features keep similar importance "
      "across the two model families (Ksout, Ssout, Nb important in "
      "both), but Nflt is 'far less important' in the nonlinear model. "
      "Expect the boosting Nflt weight above to be below the linear one.");
  return 0;
}
