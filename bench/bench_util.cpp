#include "bench_util.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>

#include "obs/metrics.hpp"

namespace xflbench {

std::string cache_dir() {
  if (const char* env = std::getenv("XFL_CACHE_DIR")) return env;
  return "/tmp/xfl_bench_cache";
}

xfl::sim::Scenario production_scenario() {
  return xfl::sim::make_production({});
}

xfl::logs::LogStore cached_production_log(const std::string& tag) {
  namespace fs = std::filesystem;
  const fs::path dir = cache_dir();
  const fs::path path = dir / ("production_log_" + tag + ".csv");
  if (fs::exists(path)) {
    std::ifstream in(path);
    if (in) {
      auto log = xfl::logs::LogStore::read_csv(in);
      if (!log.empty()) {
        std::printf("[cache] loaded %zu transfers from %s\n", log.size(),
                    path.c_str());
        return log;
      }
    }
  }
  std::printf("[cache] simulating production workload (one-time, cached to %s)...\n",
              path.c_str());
  std::fflush(stdout);
  const auto scenario = production_scenario();
  auto result = scenario.run();
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (!ec) {
    std::ofstream out(path);
    if (out) result.log.write_csv(out);
  }
  std::printf("[cache] simulated %zu transfers\n", result.log.size());
  return std::move(result.log);
}

xfl::core::AnalysisContext production_context(const std::string& tag) {
  return xfl::core::analyze_log(cached_production_log(tag));
}

std::vector<xfl::logs::EdgeKey> heavy_edges(
    const xfl::core::AnalysisContext& context) {
  return xfl::core::select_heavy_edges(context, 300, 0.5, 30);
}

void print_banner(const std::string& experiment,
                  const std::string& paper_claim) {
  std::printf("==============================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("Paper: %s\n", paper_claim.c_str());
  std::printf("==============================================================\n");
}

void print_comparison(const std::string& text) {
  std::printf("\n[paper-vs-measured] %s\n", text.c_str());
  const std::string counters = xfl::obs::Registry::instance().counters_compact();
  if (!counters.empty()) std::printf("[metrics] %s\n", counters.c_str());
  std::printf("\n");
}

void print_metrics_snapshot() {
  const char* mode = std::getenv("XFL_BENCH_METRICS");
  if (mode != nullptr && std::strcmp(mode, "json") == 0) {
    xfl::obs::Registry::instance().write_json(std::cout);
    std::cout << '\n';
    return;
  }
  std::printf("-- metrics --\n");
  xfl::obs::Registry::instance().write_text(std::cout);
}

std::string endpoint_name(const xfl::sim::Scenario& scenario,
                          xfl::endpoint::EndpointId id) {
  return scenario.endpoints[id].name;
}

}  // namespace xflbench
