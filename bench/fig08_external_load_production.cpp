// Fig. 8: transfer rate vs relative external load for four production
// edges (TACC->ALCF, TACC->NERSC-Edison, SDSC->TACC, NERSC-DTN->JLAB in
// the paper). Unlike the clean testbed (Fig. 3), the relationship is
// muddied by *unknown* (non-Globus) load: high rates occur at nonzero
// known load and vice versa, and the maximum-rate transfer usually does
// NOT sit at zero known load.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/units.hpp"

int main() {
  using namespace xfl;
  xflbench::print_banner(
      "Fig. 8 - Rate vs relative external load (production, unknown load present)",
      "relationship is noisy; max-rate transfer often at nonzero known load");

  const auto context = xflbench::production_context();
  const auto scenario = xflbench::production_scenario();
  auto edges = xflbench::heavy_edges(context);
  if (edges.size() > 4) edges.resize(4);

  int max_at_nonzero_load = 0;
  for (const auto& edge : edges) {
    constexpr int kBins = 10;
    std::vector<std::vector<double>> bins(kBins);
    double best_rate = 0.0, load_at_best = 0.0;
    for (const auto i : context.log.edge_transfers(edge)) {
      const auto& record = context.log[i];
      const double load =
          features::relative_external_load(record, context.contention[i]);
      const double rate = record.rate_Bps();
      bins[static_cast<std::size_t>(
              std::min(kBins - 1, static_cast<int>(load * kBins)))]
          .push_back(to_mbps(rate));
      if (rate > best_rate) {
        best_rate = rate;
        load_at_best = load;
      }
    }
    TextTable table;
    table.set_title("\n" + xflbench::endpoint_name(scenario, edge.src) +
                    " -> " + xflbench::endpoint_name(scenario, edge.dst));
    table.set_header({"load bin", "n", "mean rate (MB/s)", "max (MB/s)"});
    for (int b = 0; b < kBins; ++b) {
      const auto& bin = bins[static_cast<std::size_t>(b)];
      char range[32];
      std::snprintf(range, sizeof range, "%.1f-%.1f", b / 10.0, (b + 1) / 10.0);
      if (bin.empty()) {
        table.add_row({range, "0", "-", "-"});
      } else {
        table.add_row({range, std::to_string(bin.size()),
                       TextTable::num(mean(bin), 1),
                       TextTable::num(max_value(bin), 1)});
      }
    }
    table.print(stdout);
    std::printf("max-rate transfer: %.1f MB/s at relative load %.3f\n",
                to_mbps(best_rate), load_at_best);
    if (load_at_best > 0.02) ++max_at_nonzero_load;
  }

  std::printf("\nedges whose max-rate transfer has load > 0.02: %d of %zu\n",
              max_at_nonzero_load, edges.size());
  xflbench::print_comparison(
      "Paper Fig. 8: on three of the four production edges the "
      "maximum-rate transfer occurs at a visibly nonzero known load - "
      "evidence of unknown (non-Globus) competition. Expect at least one "
      "edge above with its maximum away from load 0, and noisier bin "
      "means than the Fig. 3 testbed.");
  return 0;
}
