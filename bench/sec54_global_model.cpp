// §5.4: a single model for all edges. The pooled dataset over the 30
// heavy edges gains two endpoint-capability features - ROmax(src) and
// RImax(dst), reconstructed from history plus known competing load
// (Eq. 5). Paper: pooled LR MdAPE 19%, pooled XGB 4.9% (the abstract
// quotes 7.8% for the all-edges nonlinear setting); both far worse for
// LR than per-edge models, while XGB stays close to per-edge accuracy.
#include <cstdio>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "core/edge_model.hpp"
#include "core/global_model.hpp"

int main() {
  using namespace xfl;
  xflbench::print_banner(
      "Sec. 5.4 - One model for all edges (Eq. 5 capability features)",
      "pooled LR ~19% MdAPE; pooled XGB ~4.9-7.8%; capability features carry signal");

  const auto context = xflbench::production_context();
  const auto edges = xflbench::heavy_edges(context);
  std::printf("pooling %zu heavy edges\n\n", edges.size());

  // Per-edge baseline (for the "pooled LR much worse" comparison).
  ThreadPool pool;
  const auto per_edge = core::study_edges(context, edges, {}, &pool);
  std::vector<double> lr_per_edge, xgb_per_edge;
  for (const auto& report : per_edge) {
    lr_per_edge.push_back(report.lr_mdape);
    xgb_per_edge.push_back(report.xgb_mdape);
  }

  const auto with_caps = core::study_global_model(context, edges, {});
  core::GlobalModelConfig no_caps_config;
  no_caps_config.without_capability_features = true;
  const auto no_caps = core::study_global_model(context, edges, no_caps_config);

  TextTable table;
  table.set_header({"model", "samples", "LR MdAPE %", "XGB MdAPE %"});
  table.add_row({"per-edge (median of 30)", "-",
                 TextTable::num(median(lr_per_edge), 1),
                 TextTable::num(median(xgb_per_edge), 1)});
  table.add_row({"global with ROmax/RImax", std::to_string(with_caps.samples),
                 TextTable::num(with_caps.lr_mdape, 1),
                 TextTable::num(with_caps.xgb_mdape, 1)});
  table.add_row({"global without capabilities", std::to_string(no_caps.samples),
                 TextTable::num(no_caps.lr_mdape, 1),
                 TextTable::num(no_caps.xgb_mdape, 1)});
  table.print(stdout);

  std::printf("\nglobal XGB top importances:\n");
  for (std::size_t c = 0;
       c < with_caps.feature_names.size() && c < with_caps.xgb_importance.size();
       ++c) {
    if (with_caps.xgb_importance[c] >= 0.15)
      std::printf("  %-10s %.2f\n", with_caps.feature_names[c].c_str(),
                  with_caps.xgb_importance[c]);
  }

  xflbench::print_comparison(
      "Paper Sec. 5.4: pooling all 30 edges costs the linear model dearly "
      "(19% vs 7.0% per-edge) while the nonlinear model stays accurate "
      "(4.9% vs 4.6%). Expect: global LR MdAPE >> per-edge LR median; "
      "global XGB close to the per-edge XGB median; and the capability "
      "features improving (or at worst matching) the capability-free "
      "global model.");
  return 0;
}
