// google-benchmark microbenchmarks for the performance-critical substrate:
// the max-min flow solver (hot path of every simulation event), the
// contention sweep (feature engineering over the full log), gradient
// boosting training, and MIC estimation.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "features/contention.hpp"
#include "logs/log_store.hpp"
#include "ml/gbt.hpp"
#include "ml/gbt_flat.hpp"
#include "ml/mic.hpp"
#include "sim/resources.hpp"

namespace {

using namespace xfl;

void BM_MaxMinAllocate(benchmark::State& state) {
  const auto flow_count = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  sim::ResourcePool pool;
  for (int r = 0; r < 64; ++r)
    pool.add("r" + std::to_string(r), rng.uniform(1e8, 2e9));
  std::vector<sim::FlowSpec> flows(flow_count);
  for (auto& flow : flows) {
    for (int u = 0; u < 6; ++u)
      flow.usage.push_back({static_cast<sim::ResourceId>(rng.uniform_int(0, 63)),
                            rng.uniform(1.0, 16.0), 1.0});
    flow.cap_Bps = rng.uniform(1e7, 2e9);
  }
  for (auto _ : state) {
    auto rates = sim::maxmin_allocate(pool, flows);
    benchmark::DoNotOptimize(rates);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(flow_count));
}
BENCHMARK(BM_MaxMinAllocate)->Arg(16)->Arg(64)->Arg(256);

logs::LogStore synthetic_log(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  logs::LogStore log;
  for (std::size_t i = 0; i < n; ++i) {
    logs::TransferRecord r;
    r.id = i + 1;
    r.src = static_cast<endpoint::EndpointId>(rng.uniform_int(0, 19));
    r.dst = static_cast<endpoint::EndpointId>(rng.uniform_int(0, 19));
    if (r.dst == r.src) r.dst = (r.src + 1) % 20;
    r.start_s = rng.uniform(0.0, 1.0e6);
    r.end_s = r.start_s + rng.uniform(10.0, 2000.0);
    r.bytes = rng.lognormal(23.0, 2.0);
    r.files = 1 + static_cast<std::uint64_t>(rng.uniform_int(0, 500));
    r.dirs = 1;
    r.concurrency = 4;
    r.parallelism = 4;
    log.append(r);
  }
  return log;
}

// Arg 0: record count; arg 1: sweep threads (0 = hardware concurrency,
// 1 = serial). Results are bit-identical across thread counts.
void BM_ContentionSweep(benchmark::State& state) {
  const auto log = synthetic_log(static_cast<std::size_t>(state.range(0)), 2);
  const int threads = static_cast<int>(state.range(1));
  for (auto _ : state) {
    auto features = features::compute_contention(log, threads);
    benchmark::DoNotOptimize(features);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ContentionSweep)
    ->Args({1000, 1})
    ->Args({5000, 1})
    ->Args({20000, 1})
    ->Args({20000, 0});

// Arg 0: training rows; arg 1: GbtConfig::threads (0 = hardware
// concurrency, 1 = serial). The fitted model is bit-identical across
// thread counts, so the configurations are directly comparable.
void BM_GbtTrain(benchmark::State& state) {
  const auto rows = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  ml::Matrix x(rows, 15);
  std::vector<double> y(rows);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t c = 0; c < 15; ++c) x.at(i, c) = rng.normal();
    y[i] = x.at(i, 0) * x.at(i, 0) + 2.0 * x.at(i, 5) + rng.normal(0.0, 0.1);
  }
  ml::GbtConfig config;
  config.trees = 100;
  config.threads = static_cast<int>(state.range(1));
  for (auto _ : state) {
    ml::GradientBoostedTrees model(config);
    model.fit(x, y);
    benchmark::DoNotOptimize(model);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GbtTrain)
    ->Args({500, 1})
    ->Args({2000, 1})
    ->Args({2000, 0});

// Serving-path engines on the same fitted model (default config: 200
// trees, depth 4) and the same 2000-row batch. Arg 0 selects the engine:
//   0 = per-row pointer node-walk (the reference path and pre-flattening
//       serving path),
//   1 = per-row flattened walk (predict routed through the FlatEnsemble),
//   2 = flattened row-blocked batch engine, serial,
//   3 = flattened batch engine over a hardware-concurrency pool.
// All four produce bit-identical outputs (pinned by the tier-2
// equivalence suite), so the times are directly comparable; speedups are
// recorded in BENCH_predict.json.
void BM_GbtPredict(benchmark::State& state) {
  Rng rng(4);
  ml::Matrix x(2000, 15);
  std::vector<double> y(2000);
  for (std::size_t i = 0; i < 2000; ++i) {
    for (std::size_t c = 0; c < 15; ++c) x.at(i, c) = rng.normal();
    y[i] = x.at(i, 2) + rng.normal(0.0, 0.1);
  }
  ml::GradientBoostedTrees model;
  model.fit(x, y);
  const int engine = static_cast<int>(state.range(0));
  std::vector<double> out(x.rows());
  std::unique_ptr<ThreadPool> pool;
  if (engine == 3) pool = std::make_unique<ThreadPool>();
  for (auto _ : state) {
    switch (engine) {
      case 0:
        for (std::size_t r = 0; r < x.rows(); ++r)
          out[r] = model.predict_nodewalk(x.row(r));
        break;
      case 1:
        for (std::size_t r = 0; r < x.rows(); ++r)
          out[r] = model.predict(x.row(r));
        break;
      case 2:
        model.predict_batch(x, out);
        break;
      default:
        model.predict_batch(x, out, pool.get());
        break;
    }
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(x.rows()));
}
BENCHMARK(BM_GbtPredict)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

// Kernel-family ablation on the BM_GbtPredict workload: arg 0 is the
// forced ml::Kernel (1 = scalar, 2 = avx2, 3 = quantized), arg 1 selects
// serial (0) or a hardware-concurrency pool (1). Rows whose kernel this
// host/build cannot run (e.g. avx2 under XFL_DISABLE_SIMD) are skipped
// rather than silently measuring the fallback; every runnable row is
// bit-identical to BM_GbtPredict/2, so the times are directly comparable.
void BM_GbtPredictKernel(benchmark::State& state) {
  Rng rng(4);
  ml::Matrix x(2000, 15);
  std::vector<double> y(2000);
  for (std::size_t i = 0; i < 2000; ++i) {
    for (std::size_t c = 0; c < 15; ++c) x.at(i, c) = rng.normal();
    y[i] = x.at(i, 2) + rng.normal(0.0, 0.1);
  }
  ml::GradientBoostedTrees model;
  model.fit(x, y);
  const auto kernel = static_cast<ml::Kernel>(state.range(0));
  if (model.flat().effective_kernel(kernel) != kernel) {
    state.SkipWithError("kernel unavailable on this host/build");
    return;
  }
  std::unique_ptr<ThreadPool> pool;
  if (state.range(1) != 0) pool = std::make_unique<ThreadPool>();
  std::vector<double> out(x.rows());
  for (auto _ : state) {
    model.flat().predict_batch(x, out, pool.get(), kernel);
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetLabel(ml::kernel_name(kernel));
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(x.rows()));
}
BENCHMARK(BM_GbtPredictKernel)
    ->ArgNames({"kernel", "pool"})
    ->Args({1, 0})
    ->Args({2, 0})
    ->Args({3, 0})
    ->Args({1, 1})
    ->Args({2, 1})
    ->Args({3, 1});

// Batch prediction over row blocks; arg is GbtConfig::threads.
void BM_GbtPredictBatch(benchmark::State& state) {
  Rng rng(4);
  ml::Matrix x(20000, 15);
  std::vector<double> y(20000);
  for (std::size_t i = 0; i < 20000; ++i) {
    for (std::size_t c = 0; c < 15; ++c) x.at(i, c) = rng.normal();
    y[i] = x.at(i, 2) + rng.normal(0.0, 0.1);
  }
  ml::GbtConfig config;
  config.threads = static_cast<int>(state.range(0));
  ml::GradientBoostedTrees model(config);
  model.fit(x, y);
  for (auto _ : state) {
    auto out = model.predict(x);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * 20000);
}
BENCHMARK(BM_GbtPredictBatch)->Arg(1)->Arg(0);

void BM_Mic(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(5);
  std::vector<double> x(n), y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = rng.uniform();
    y[i] = x[i] * x[i] + rng.normal(0.0, 0.1);
  }
  for (auto _ : state) benchmark::DoNotOptimize(ml::mic(x, y));
}
BENCHMARK(BM_Mic)->Arg(250)->Arg(1000);

}  // namespace

// BENCHMARK_MAIN plus a --kernel {auto,scalar,avx2,quantized} flag: forces
// the process-wide default kernel (the same lever as XFL_KERNEL) before
// any benchmark runs, so the non-kernel rows can be A/B-ed too.
int main(int argc, char** argv) {
  std::vector<char*> args;
  args.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--kernel=", 9) == 0) {
      const auto kernel = xfl::ml::parse_kernel(arg + 9);
      if (!kernel) {
        std::fprintf(stderr,
                     "unknown --kernel value '%s' "
                     "(want auto|scalar|avx2|quantized)\n",
                     arg + 9);
        return 1;
      }
      xfl::ml::set_active_kernel(*kernel);
      continue;
    }
    args.push_back(argv[i]);
  }
  int bench_argc = static_cast<int>(args.size());
  benchmark::Initialize(&bench_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, args.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
