// Fig. 4: aggregate incoming transfer rate vs total concurrency
// (instantaneous number of GridFTP server instances) at four endpoints,
// with a Weibull curve fitted. The paper's finding: "aggregate transfer
// throughput first increases but eventually declines as total concurrency
// across all transfers increases".
#include <cstdio>
#include <map>
#include <vector>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "ml/weibull.hpp"
#include "sim/scenario.hpp"

int main() {
  using namespace xfl;
  xflbench::print_banner(
      "Fig. 4 - Aggregate incoming rate vs total concurrency (Weibull fit)",
      "throughput rises with concurrency, peaks, then declines (Weibull shape)");

  // Shorter, much denser production slice with endpoint sampling enabled:
  // Fig. 4's panels are heavily loaded endpoints sweeping concurrency well
  // past the throughput peak, so this stress scenario raises the arrival
  // rate and relaxes the per-endpoint admission cap (the cap would
  // otherwise hold endpoints below the declining regime).
  sim::ProductionConfig config;
  config.duration_s = 1.5 * 86400.0;
  config.session_arrivals_per_s = 0.06;
  auto scenario = sim::make_production(config);
  scenario.sim_config.max_active_per_endpoint = 96;
  // Sample the four panel endpoints (paper: NERSC-DTN, Colorado, JLAB, UCAR).
  const char* panel_names[] = {"NERSC-dtn", "Colorado-dtn", "JLAB-dtn",
                               "UCAR-dtn"};
  for (const char* name : panel_names) {
    endpoint::EndpointId id = 0;
    if (scenario.endpoints.find(name, id))
      scenario.monitored_endpoints.push_back(id);
  }
  scenario.sample_interval_s = 60.0;
  const auto result = scenario.run();

  for (const char* name : panel_names) {
    endpoint::EndpointId id = 0;
    if (!scenario.endpoints.find(name, id)) continue;
    const auto it = result.samples.find(id);
    if (it == result.samples.end() || it->second.size() < 10) continue;

    // Aggregate samples by instantaneous concurrency.
    std::map<int, std::vector<double>> by_concurrency;
    for (const auto& sample : it->second) {
      const int instances = static_cast<int>(sample.gridftp_instances);
      if (instances == 0) continue;
      by_concurrency[instances].push_back(to_mbps(sample.in_Bps));
    }
    std::vector<double> x, y;
    TextTable table;
    table.set_title(std::string("\n") + name);
    table.set_header({"instances", "samples", "mean in-rate (MB/s)"});
    for (const auto& [instances, rates] : by_concurrency) {
      const double mean_rate = mean(rates);
      x.push_back(static_cast<double>(instances));
      y.push_back(mean_rate);
      if (instances <= 40 || instances % 8 == 0)
        table.add_row({std::to_string(instances),
                       std::to_string(rates.size()),
                       TextTable::num(mean_rate, 1)});
    }
    table.print(stdout);
    if (x.size() >= 5) {
      const auto curve = ml::fit_weibull_curve(x, y);
      std::printf(
          "Weibull fit: amplitude=%.3g shape=%.2f scale=%.1f -> peak at "
          "%.1f instances\n",
          curve.amplitude, curve.shape, curve.scale, curve.mode());
    }
  }

  xflbench::print_comparison(
      "Paper Fig. 4: each endpoint's aggregate incoming rate vs total "
      "concurrency follows a rise-then-fall Weibull-like curve. The fitted "
      "shape parameter should exceed 1 (an interior peak), with mean rates "
      "above declining beyond the fitted mode.");
  return 0;
}
