// Fig. 3: transfer rate vs relative external load for four ESnet testbed
// edges. The paper's finding: on the clean testbed the achieved rate
// declines with the external Globus load, and the maximum-rate transfer
// sits at (or very near) zero external load.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "features/contention.hpp"
#include "sim/scenario.hpp"

int main() {
  using namespace xfl;
  xflbench::print_banner(
      "Fig. 3 - Transfer rate vs relative external load (ESnet testbed)",
      "rate declines with external load; max-rate transfer at load ~ 0");

  sim::EsnetConfig config;
  config.transfers = 5000;
  config.duration_s = 5.0 * 86400.0;
  const auto scenario = sim::make_esnet_testbed(config);
  const auto result = scenario.run();
  const auto contention = features::compute_contention(result.log);

  // The four panels of Fig. 3.
  struct Panel {
    endpoint::EndpointId src, dst;
    const char* label;
  };
  // kEsnetSites order: ANL BNL CERN LBL.
  const Panel panels[] = {{0, 1, "ANL to BNL"},
                          {2, 1, "CERN to BNL"},
                          {1, 3, "BNL to LBL"},
                          {2, 0, "CERN to ANL"}};

  for (const auto& panel : panels) {
    // Bin transfers by relative external load and print the mean rate per
    // bin (the figure is a scatter; binned means convey the trend).
    constexpr int kBins = 10;
    std::vector<std::vector<double>> bins(kBins);
    double best_rate = 0.0;
    double load_at_best = 0.0;
    for (std::size_t i = 0; i < result.log.size(); ++i) {
      const auto& record = result.log[i];
      if (record.src != panel.src || record.dst != panel.dst) continue;
      const double load =
          features::relative_external_load(record, contention[i]);
      const double rate = record.rate_Bps();
      const int bin = std::min(kBins - 1, static_cast<int>(load * kBins));
      bins[static_cast<std::size_t>(bin)].push_back(to_mbps(rate));
      if (rate > best_rate) {
        best_rate = rate;
        load_at_best = load;
      }
    }
    TextTable table;
    table.set_title(std::string("\n") + panel.label);
    table.set_header({"load bin", "n", "mean rate (MB/s)", "p90 (MB/s)"});
    for (int b = 0; b < kBins; ++b) {
      const auto& bin = bins[static_cast<std::size_t>(b)];
      char range[32];
      std::snprintf(range, sizeof range, "%.1f-%.1f", b / 10.0, (b + 1) / 10.0);
      if (bin.empty()) {
        table.add_row({range, "0", "-", "-"});
      } else {
        table.add_row({range, std::to_string(bin.size()),
                       TextTable::num(mean(bin), 1),
                       TextTable::num(percentile(bin, 90.0), 1)});
      }
    }
    table.print(stdout);
    std::printf("max-rate transfer: %.1f MB/s at relative load %.3f\n",
                to_mbps(best_rate), load_at_best);
  }

  xflbench::print_comparison(
      "Paper Fig. 3: on all four testbed edges the rate falls roughly "
      "monotonically as relative external load grows from 0 to ~1, and the "
      "starred maximum-rate transfer sits at load ~= 0. The binned means "
      "above should decline from the first to the last populated bin, and "
      "each panel's max-rate transfer should report a near-zero load.");
  return 0;
}
