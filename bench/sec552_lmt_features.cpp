// §5.5.2: eliminating the unknowns with storage monitoring. 666 uniform
// Lustre-to-Lustre transfers run alongside ~10 concurrent Globus load
// transfers and unmonitored non-Globus disk load; an LMT-style monitor
// samples OST disk I/O and OSS CPU every 5 seconds. Paper: the 15-feature
// baseline model reaches a 95th-percentile error of 9.29%; adding the four
// monitored storage-load features drops it to 1.26%.
#include <cstdio>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "core/lmt_model.hpp"
#include "sim/scenario.hpp"

int main() {
  using namespace xfl;
  xflbench::print_banner(
      "Sec. 5.5.2 - LMT-monitored storage load as model features",
      "p95 error collapses (paper: 9.29% -> 1.26%) once true load is visible");

  const sim::LmtConfig scenario_config;  // 666 test transfers, 5 s samples.
  const auto scenario = sim::make_nersc_lmt(scenario_config);
  std::printf("simulating %zu transfers (%zu controlled tests + load)...\n",
              scenario.workload.size(), scenario_config.test_transfers);
  const auto result = scenario.run();

  core::LmtStudyConfig study;
  study.gbt.trees = 400;
  study.gbt.max_depth = 6;
  study.gbt.min_child_weight = 3.0;
  study.gbt.learning_rate = 0.05;
  const auto report = core::run_lmt_study(result,
                                          scenario.monitored_endpoints[0],
                                          scenario.monitored_endpoints[1],
                                          study);

  TextTable table;
  table.set_header({"model", "MdAPE %", "p95 APE %"});
  table.add_row({"baseline (15 log features)",
                 TextTable::num(report.baseline_mdape, 2),
                 TextTable::num(report.baseline_p95, 2)});
  table.add_row({"+ OSS CPU / OST I/O (LMT)",
                 TextTable::num(report.augmented_mdape, 2),
                 TextTable::num(report.augmented_p95, 2)});
  table.print(stdout);
  std::printf("\ntest transfers evaluated: %zu\n", report.test_transfers);
  std::printf("p95 improvement factor: %.1fx\n",
              report.baseline_p95 / std::max(1e-9, report.augmented_p95));

  xflbench::print_comparison(
      "Paper Sec. 5.5.2: with uniform transfer characteristics, the "
      "baseline model's 95th-percentile error was 9.29%; adding the four "
      "monitored storage-load features cut it to 1.26% (~7x). Expect the "
      "same direction here: MdAPE and the p95 error both drop sharply "
      "(~2x) once true storage load becomes visible. The paper's full 7x "
      "needs load that is essentially constant within each transfer; the "
      "simulator's competing slots and background processes churn faster, "
      "leaving residual within-window dynamics no window-mean feature can "
      "explain.");
  return 0;
}
