// Fig. 2: Globus endpoints grouped by number of deployments per location.
// A map in the paper; here, the per-site deployment counts and the
// geographic spread (latitude/longitude ranges per continent band).
#include <cstdio>
#include <map>

#include "bench_util.hpp"
#include "common/table.hpp"

int main() {
  using namespace xfl;
  xflbench::print_banner(
      "Fig. 2 - Endpoint deployments per location",
      "endpoints cluster at research sites; most locations host few, some many");

  const auto scenario = xflbench::production_scenario();
  std::map<net::SiteId, int> per_site;
  for (std::size_t i = 0; i < scenario.endpoints.size(); ++i)
    per_site[scenario.endpoints[static_cast<endpoint::EndpointId>(i)].site]++;

  TextTable table;
  table.set_header({"site", "lat", "lon", "endpoints"});
  std::map<int, int> histogram;
  int na = 0, eu = 0;
  for (const auto& [site, count] : per_site) {
    const auto& spec = scenario.sites[site];
    table.add_row({spec.name, TextTable::num(spec.location.lat_deg, 2),
                   TextTable::num(spec.location.lon_deg, 2),
                   std::to_string(count)});
    histogram[count]++;
    (spec.location.lon_deg < -30.0 ? na : eu) += count;
  }
  table.print(stdout);

  std::printf("\ndeployments-per-location histogram:\n");
  for (const auto& [count, sites] : histogram)
    std::printf("  %d endpoint(s): %d location(s)\n", count, sites);
  std::printf("North America: %d endpoints, Europe: %d endpoints\n", na, eu);

  xflbench::print_comparison(
      "Paper Fig. 2: ~26K endpoints worldwide, concentrated in North "
      "America and Europe, most locations hosting one or a few deployments "
      "and research hubs hosting many. Expect both continents populated "
      "and a histogram skewed toward small per-location counts.");
  return 0;
}
