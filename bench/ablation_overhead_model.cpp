// Ablation of a simulator design decision (DESIGN.md §5.2): the
// two-pass per-file-overhead fixed point in the flow solver. With
// allocation_passes=1 the solver ignores per-file dead time, so
// small-file transfers become as fast as big-file ones and the Fig. 5
// size effect disappears; with 2 passes the effect is present.
#include <cstdio>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "sim/simulator.hpp"

int main() {
  using namespace xfl;
  xflbench::print_banner(
      "Ablation - per-file-overhead modeling (allocation passes 1 vs 2)",
      "the overhead pass creates the small-file penalty the paper observes");

  net::SiteCatalog sites;
  sites.add({"A", {41.708, -87.983}});
  sites.add({"B", {40.873, -72.872}});
  endpoint::EndpointCatalog endpoints;
  endpoints.add(endpoint::make_dtn("a-dtn", 0));
  endpoints.add(endpoint::make_dtn("b-dtn", 1));

  TextTable table;
  table.set_header({"passes", "files", "mean file", "rate (MB/s)"});
  double rates[2][3] = {};
  for (int passes = 1; passes <= 2; ++passes) {
    const std::uint64_t file_counts[] = {10, 1000, 100000};
    for (int fc = 0; fc < 3; ++fc) {
      sim::SimConfig config;
      config.enable_faults = false;
      config.allocation_passes = passes;
      sim::Simulator simulator(sites, endpoints, config);
      sim::TransferRequest req;
      req.id = 1;
      req.src = 0;
      req.dst = 1;
      req.submit_s = 0.0;
      req.bytes = 100.0 * kGB;
      req.files = file_counts[fc];
      req.dirs = 1;
      simulator.submit(req);
      const auto result = simulator.run();
      rates[passes - 1][fc] = to_mbps(result.log[0].rate_Bps());
      table.add_row({std::to_string(passes), std::to_string(file_counts[fc]),
                     format_bytes(100.0 * kGB /
                                  static_cast<double>(file_counts[fc])),
                     TextTable::num(rates[passes - 1][fc], 1)});
    }
  }
  table.print(stdout);

  const double penalty_1pass = rates[0][0] / std::max(1.0, rates[0][2]);
  const double penalty_2pass = rates[1][0] / std::max(1.0, rates[1][2]);
  std::printf(
      "\nbig-file/small-file rate ratio: 1-pass %.2fx, 2-pass %.2fx\n",
      penalty_1pass, penalty_2pass);
  xflbench::print_comparison(
      "Fig. 5 of the paper shows small-file transfers achieving a fraction "
      "of the big-file rate. With the overhead pass disabled (1 pass) the "
      "ratio above should collapse toward 1x; with it enabled (2 passes, "
      "the default) small-file transfers should be several times slower.");
  return 0;
}
