// §3.2: validating Eq. 1 on production edges. DRmax/DWmax are estimated
// from history (max observed rate as source / destination); MMmax comes
// from perfSONAR-style memory-to-memory probes. The paper's funnel over 77
// usable edges: 38 consistent immediately, +7 after accounting for known
// Globus load, of the 45 consistent edges 11 were read-limited, 14
// network-limited, 20 write-limited; the remaining 32 sat well below the
// bound (unknown competing load).
#include <algorithm>
#include <cstdio>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "core/analytical.hpp"
#include "core/bound_survey.hpp"

int main() {
  using namespace xfl;
  xflbench::print_banner(
      "Sec. 3.2 - Eq. 1 validation on production edges",
      "most probed edges consistent with min(DR, MM, DW); mixed bottleneck types");

  const auto context = xflbench::production_context();
  const auto scenario = xflbench::production_scenario();

  // The paper's funnel probes every site pair with enough history (not
  // just the 30 heavy edges): lightly used edges rarely contain a
  // transfer that hit the subsystem bound, so a "below" population
  // emerges.
  core::BoundSurveyConfig survey_config;
  survey_config.min_transfers = 40;
  survey_config.max_edges = 100;
  const auto reports = core::survey_bounds(
      context, scenario.sites, scenario.endpoints, scenario.sim_config,
      survey_config);
  const auto summary = core::summarize_survey(reports);

  TextTable table;
  table.set_header({"edge", "observed max", "DRmax(hist)", "MMmax(probe)",
                    "DWmax(hist)", "ratio", "verdict", "bottleneck"});
  for (const auto& report : reports) {
    table.add_row({xflbench::endpoint_name(scenario, report.edge.src) + "->" +
                       xflbench::endpoint_name(scenario, report.edge.dst),
                   TextTable::num(to_mbps(report.observed_max_Bps), 0) + " MB/s",
                   TextTable::num(to_mbps(report.estimate.dr_max_Bps), 0),
                   TextTable::num(to_mbps(report.estimate.mm_max_Bps), 0),
                   TextTable::num(to_mbps(report.estimate.dw_max_Bps), 0),
                   TextTable::num(report.validation.ratio, 2),
                   report.validation.consistent
                       ? "consistent"
                       : (report.validation.exceeds ? "exceeds" : "below"),
                   core::to_string(report.validation.bottleneck)});
  }
  table.print(stdout);

  std::printf(
      "\nfunnel: %zu probed edges -> %zu consistent with Eq. 1 "
      "(read-limited %zu, network %zu, write %zu), %zu below, %zu exceed\n",
      reports.size(), summary.consistent, summary.read_limited,
      summary.network_limited, summary.write_limited, summary.below,
      summary.exceeds);

  xflbench::print_comparison(
      "Paper Sec. 3.2: of 77 probed edges, 45 were consistent with Eq. 1 "
      "(11 disk-read-, 14 network-, 20 disk-write-limited) and 32 fell "
      "well below the bound due to unknown competing load. Expect a "
      "majority-consistent split dominated by the disk classes and a "
      "small 'below' group on chronically loaded paths (e.g. CERN->FNAL). "
      "The 'below' class is rarer here than in the paper: most simulated "
      "endpoints host few edges, so their historical DR/DW estimates come "
      "from the probed edge itself and fold chronic unknown load into the "
      "bound; the paper's endpoints had hundreds of decorrelated edges.");
  return 0;
}
