// Table 1: experimentally determined Rmax, DWmax, DRmax and MMmax (Gb/s)
// on the ESnet testbed, one row per directed edge, minimum in bold (here:
// marked with '*'). The paper's finding: every row satisfies Eq. 1,
// R <= min(DR, MM, DW); disks write slower than they read; CERN paths have
// slightly lower MMmax.
#include <cstdio>
#include <string>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "core/analytical.hpp"
#include "sim/probe.hpp"
#include "sim/scenario.hpp"

int main() {
  using namespace xfl;
  xflbench::print_banner(
      "Table 1 - ESnet testbed subsystem maxima (Gb/s)",
      "R is always <= min(DR, MM, DW); DW ~7.1-7.9, DR ~8.7-9.3, MM 8.8-9.5");

  sim::EsnetConfig config;
  config.transfers = 0;  // Idle testbed: probes only.
  const auto scenario = sim::make_esnet_testbed(config);
  sim::SimConfig sim_config = scenario.sim_config;
  sim_config.enable_faults = false;

  TextTable table;
  table.set_header({"From", "To", "Rmax", "DWmax", "DRmax", "MMmax", "bound ok"});
  int violations = 0;
  for (endpoint::EndpointId src = 0; src < 4; ++src) {
    for (endpoint::EndpointId dst = 0; dst < 4; ++dst) {
      if (src == dst) continue;
      const auto maxima = sim::measure_subsystem_maxima(
          scenario.sites, scenario.endpoints, sim_config, src, dst);
      const core::BoundEstimate estimate{maxima.dr_max, maxima.mm_max,
                                         maxima.dw_max};
      const bool bound_ok = maxima.r_max <= estimate.r_max_Bps() * 1.0001;
      if (!bound_ok) ++violations;
      // Mark the row minimum with '*' (the paper bolds it).
      const double row_min = estimate.r_max_Bps();
      auto cell = [row_min](double value) {
        std::string text = TextTable::num(to_gbit(value), 3);
        if (value == row_min) text += "*";
        return text;
      };
      table.add_row({net::kEsnetSites[src], net::kEsnetSites[dst],
                     TextTable::num(to_gbit(maxima.r_max), 3),
                     cell(maxima.dw_max), cell(maxima.dr_max),
                     cell(maxima.mm_max), bound_ok ? "yes" : "NO"});
    }
  }
  table.print(stdout);
  std::printf("\nEq. 1 violations: %d of 12 edges\n", violations);
  xflbench::print_comparison(
      "Paper Table 1: all 12 edges consistent with Eq. 1; disk write "
      "(7.1-7.9 Gb/s) is usually the minimum, reads ~8.7-9.3 Gb/s, "
      "memory-to-memory 8.8-9.5 Gb/s with CERN edges lowest. Measured "
      "table above should show the same ordering and zero violations.");
  return violations == 0 ? 0 : 1;
}
