// make_golden_fixtures - regenerate the committed golden-model fixtures in
// tests/data/ that test_golden_models exercises.
//
//   make_golden_fixtures [output_dir]   (default: tests/data)
//
// Writes:
//   golden_gbt.txt                  - a small fitted GradientBoostedTrees
//   golden_gbt_predictions.csv      - feature rows + expected predictions
//   golden_predictor.txt            - a small fitted TransferPredictor
//   golden_predictor_predictions.csv- planned transfers + expected rates
//
// Everything is derived from fixed seeds and an explicit splitmix64
// generator (no std::<random> distributions), so the fixtures are
// reproducible bit-for-bit from this source. Predictions are written with
// %.17g so they round-trip exactly through text.
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/predictor.hpp"
#include "ml/gbt.hpp"
#include "ml/matrix.hpp"
#include "sim/scenario.hpp"

namespace {

using namespace xfl;

/// Deterministic uniform doubles in [0, 1) from splitmix64 — identical on
/// every platform, unlike std::uniform_real_distribution.
class SplitMix {
 public:
  explicit SplitMix(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  double next_unit() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

 private:
  std::uint64_t state_;
};

std::string g17(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  return buffer;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string dir = argc > 1 ? argv[1] : "tests/data";

  // --- GBT fixture: small ensemble fitted on synthetic data -------------
  constexpr std::size_t kRows = 240;
  constexpr std::size_t kCols = 6;
  SplitMix rng(0xf17f5eedULL);
  ml::Matrix x(kRows, kCols);
  std::vector<double> y(kRows);
  for (std::size_t r = 0; r < kRows; ++r) {
    for (std::size_t c = 0; c < kCols; ++c) x.at(r, c) = rng.next_unit() * 10.0;
    y[r] = 3.0 * x.at(r, 0) - 2.0 * x.at(r, 1) + x.at(r, 2) * x.at(r, 3) * 0.5 +
           (rng.next_unit() - 0.5);
  }

  ml::GbtConfig config;
  config.trees = 20;
  config.max_depth = 3;
  config.seed = 42;
  ml::GradientBoostedTrees boosted(config);
  boosted.fit(x, y);

  {
    std::ofstream out(dir + "/golden_gbt.txt");
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s/golden_gbt.txt\n",
                   dir.c_str());
      return 1;
    }
    boosted.save(out);
  }
  {
    std::ofstream out(dir + "/golden_gbt_predictions.csv");
    out << "f0,f1,f2,f3,f4,f5,prediction\n";
    for (std::size_t r = 0; r < 32; ++r) {
      for (std::size_t c = 0; c < kCols; ++c) out << g17(x.at(r, c)) << ",";
      out << g17(boosted.predict(x.row(r))) << "\n";
    }
  }

  // --- Predictor fixture: fitted on a small simulated log ---------------
  sim::EsnetConfig scenario_config;
  scenario_config.seed = 20170622;  // HPDC'17.
  scenario_config.transfers = 900;
  auto scenario = sim::make_esnet_testbed(scenario_config);
  const auto log = scenario.run().log;

  core::TransferPredictor::Options options;
  options.min_edge_transfers = 60;
  options.gbt.trees = 25;
  options.gbt.max_depth = 3;
  core::TransferPredictor predictor(options);
  predictor.fit(log);

  {
    std::ofstream out(dir + "/golden_predictor.txt");
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s/golden_predictor.txt\n",
                   dir.c_str());
      return 1;
    }
    predictor.save(out);
  }
  {
    // A spread of planned transfers: per-edge models and global fallbacks
    // (endpoint 9 has no history in the scenario).
    std::vector<core::PlannedTransfer> planned;
    SplitMix plan_rng(0xbeefULL);
    for (std::uint32_t s = 0; s < 4; ++s) {
      for (std::uint32_t d = 0; d < 4; ++d) {
        if (s == d) continue;
        core::PlannedTransfer transfer;
        transfer.src = s;
        transfer.dst = d;
        transfer.bytes = 1e8 + plan_rng.next_unit() * 5e10;
        transfer.files = 1 + static_cast<std::uint64_t>(
                                 plan_rng.next_unit() * 40.0);
        transfer.dirs = 1 + transfer.files / 8;
        transfer.concurrency = 1u + (s + d) % 8u;
        transfer.parallelism = 4;
        planned.push_back(transfer);
      }
    }
    core::PlannedTransfer unseen;
    unseen.src = 0;
    unseen.dst = 9;
    unseen.bytes = 2.5e9;
    planned.push_back(unseen);

    std::ofstream out(dir + "/golden_predictor_predictions.csv");
    out << "src,dst,bytes,files,dirs,concurrency,parallelism,"
           "rate_mbps,low_mbps,high_mbps\n";
    for (const auto& transfer : planned) {
      const auto interval = predictor.predict_rate_interval(transfer);
      out << transfer.src << "," << transfer.dst << "," << g17(transfer.bytes)
          << "," << transfer.files << "," << transfer.dirs << ","
          << transfer.concurrency << "," << transfer.parallelism << ","
          << g17(interval.expected_mbps) << "," << g17(interval.low_mbps)
          << "," << g17(interval.high_mbps) << "\n";
    }
  }

  std::printf("wrote golden fixtures to %s\n", dir.c_str());
  return 0;
}
