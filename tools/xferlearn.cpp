// xferlearn - command-line front end for the library.
//
//   xferlearn simulate --scenario esnet|production|lmt [--seed N]
//                      [--out log.csv] [--anonymize]
//   xferlearn analyze  --log log.csv [--threshold 0.5]
//   xferlearn evaluate --log log.csv [--max-edges 30] [--min-transfers 300]
//   xferlearn train    --log log.csv --model-out model.txt
//                      [--min-edge-transfers 100]
//   xferlearn predict  (--log log.csv | --model model.txt)
//                      --src ID --dst ID --bytes BYTES
//                      [--files N] [--dirs N] [--concurrency C]
//                      [--parallelism P]
//   xferlearn predict-batch (--log log.csv | --model model.txt)
//                      --transfers planned.csv [--out predictions.csv]
//                      [--kernel auto|scalar|avx2|quantized]
//                      (planned.csv: src,dst,bytes[,files,dirs,
//                       concurrency,parallelism]; header row optional;
//                       served by the flattened batch-inference engine)
//   xferlearn export-dataset --log log.csv --src ID --dst ID --out data.csv
//   xferlearn serve    --model model.txt [--port N] [--bind ADDR]
//                      [--max-batch N] [--queue-cap N] [--threads N]
//                      [--shards N] [--frame-timeout-ms N]
//                      [--drift-window N] [--drift-threshold PCT]
//                      [--drift-min-samples N]
//                      [--journal-dir DIR] [--retrain-interval SECONDS]
//                      [--retrain-min-records N]
//                      [--kernel auto|scalar|avx2|quantized]
//                      (line-delimited JSON over TCP, with an opt-in
//                       length-prefixed binary framing — send the 8 bytes
//                       "XFLBIN1\n" to negotiate; epoll event loop, so
//                       idle connections are ~free; --shards 0 = auto
//                       picks the batcher worker count; SIGHUP or the
//                       {"cmd":"reload"} admin frame hot-swaps the model;
//                       SIGINT/SIGTERM drain gracefully; --journal-dir
//                       closes the drift loop: matched feedback is
//                       journalled there and a background worker refits
//                       the affected edge model on a drift alarm — or
//                       every --retrain-interval seconds — validating the
//                       candidate on held-out records before hot-swapping
//                       it in as a new model version)
//   xferlearn request  --port N [--host ADDR] --src ID --dst ID
//                      --bytes BYTES [--files N] [--dirs N]
//                      [--concurrency C] [--parallelism P]
//                      [--deadline-ms N] | --ping | --stats |
//                      --reload [--path model.txt] |
//                      --retrain-status |
//                      --feedback TRACE --observed-mbps X
//                      (--stats prints a summary plus a Prometheus-style
//                       dump of the server's live metrics registry;
//                       --retrain-status reports the background refit
//                       worker: cycles, accept/reject counts, last gate
//                       decision; --feedback joins an observed rate to the
//                       prediction whose reply carried trace id TRACE)
//   xferlearn explain  --port N [--host ADDR] --src ID --dst ID
//                      --bytes BYTES [--files N] [--dirs N]
//                      [--concurrency C] [--parallelism P]
//                      [--deadline-ms N] [--top-k K] [--binary]
//                      (asks the server for a prediction plus its Saabas
//                       per-feature attribution: each feature's MB/s
//                       contribution along the ensemble's decision paths,
//                       summing with the bias bit-exactly to the raw
//                       score; --top-k keeps only the K strongest
//                       contributions, --binary drives the packed
//                       kExplain frame instead of JSON)
//   xferlearn serve-bench (--model model.txt | --log log.csv)
//                      [--clients 1,4,16,64] [--seconds 2] [--max-batch N]
//                      [--queue-cap N] [--shards N] [--src ID --dst ID]
//                      [--connections N] [--binary] [--pipeline D]
//                      [--json-out BENCH_serve.json]
//                      [--kernel auto|scalar|avx2|quantized]
//                      (reports client round-trip quantiles next to the
//                       server's own serve.request.server_us histogram
//                       quantiles — the same estimator live stats use;
//                       --connections parks N idle sockets on the event
//                       loop for the whole run, --binary drives the
//                       packed frame protocol instead of JSON lines)
//
// Inference options, accepted by every subcommand (after the name):
//   --kernel auto|scalar|avx2|quantized  pin the process-wide batch-
//                              inference kernel dispatch before any model
//                              is built or loaded. Same effect as the
//                              XFL_KERNEL environment variable; the flag
//                              wins when both are set. "auto" (default)
//                              picks the fastest kernel the CPU supports.
//
// Observability options, accepted by every subcommand (after the name):
//   --log-level trace|debug|info|warn|error|off   (default info)
//   --log-json                 JSON-lines log records instead of text
//   --metrics-out <file>       write the metrics registry as JSON at exit
//   --trace-out <file>         enable stage tracing; write Chrome
//                              trace_event JSON (about:tracing / Perfetto)
//   --print-metrics            dump the metrics registry as text at exit
//
// Every subcommand works on the Globus-schema CSV produced by `simulate`
// or exported from a real transfer service.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/csv.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "common/units.hpp"
#include "core/edge_model.hpp"
#include "core/pipeline.hpp"
#include "core/predictor.hpp"
#include "features/dataset.hpp"
#include "logs/anonymize.hpp"
#include "ml/gbt_flat.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "retrain/retrainer.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "sim/scenario.hpp"

namespace {

using namespace xfl;

/// Strict numeric flag parse: the whole token must be a number, so typos
/// like `--transfers 12x` fail the run instead of silently truncating.
/// Throws std::runtime_error, which main() turns into a nonzero exit.
double parse_number(const std::string& flag, const std::string& text) {
  char* end = nullptr;
  const double parsed = std::strtod(text.c_str(), &end);
  if (text.empty() || end != text.c_str() + text.size())
    throw std::runtime_error("bad value for " + flag + ": '" + text + "'");
  return parsed;
}

/// Minimal --flag value parser: returns the value after `name`, if present.
class ArgList {
 public:
  ArgList(int argc, char** argv) {
    for (int i = 0; i < argc; ++i) args_.emplace_back(argv[i]);
  }

  std::optional<std::string> value(const std::string& name) const {
    for (std::size_t i = 0; i + 1 < args_.size(); ++i)
      if (args_[i] == name) return args_[i + 1];
    return std::nullopt;
  }

  bool flag(const std::string& name) const {
    for (const auto& arg : args_)
      if (arg == name) return true;
    return false;
  }

  std::string value_or(const std::string& name, const std::string& fallback) const {
    return value(name).value_or(fallback);
  }

  double number_or(const std::string& name, double fallback) const {
    const auto v = value(name);
    return v ? parse_number(name, *v) : fallback;
  }

 private:
  std::vector<std::string> args_;
};

int usage() {
  std::fprintf(stderr,
               "usage: xferlearn <simulate|analyze|train|evaluate|predict|"
               "predict-batch|export-dataset|serve|request|explain|"
               "serve-bench> [options]\n"
               "observability (any command): --log-level <level> --log-json "
               "--metrics-out <file> --trace-out <file> --print-metrics\n"
               "run `xferlearn <command>` with no options for details in "
               "the header of tools/xferlearn.cpp\n");
  return 2;
}

logs::LogStore load_log(const ArgList& args) {
  const auto path = args.value("--log");
  if (!path) {
    std::fprintf(stderr, "error: --log <file.csv> is required\n");
    std::exit(2);
  }
  std::ifstream in(*path);
  if (!in) {
    std::fprintf(stderr, "error: cannot open %s\n", path->c_str());
    std::exit(1);
  }
  auto log = logs::LogStore::read_csv(in);
  std::printf("loaded %zu transfers from %s\n", log.size(), path->c_str());
  return log;
}

int cmd_simulate(const ArgList& args) {
  const std::string which = args.value_or("--scenario", "esnet");
  const auto seed = static_cast<std::uint64_t>(args.number_or("--seed", 0.0));

  sim::Scenario scenario;
  if (which == "esnet") {
    sim::EsnetConfig config;
    if (seed != 0) config.seed = seed;
    config.transfers = static_cast<std::size_t>(
        args.number_or("--transfers", 2000.0));
    scenario = sim::make_esnet_testbed(config);
  } else if (which == "production") {
    sim::ProductionConfig config;
    if (seed != 0) config.seed = seed;
    scenario = sim::make_production(config);
  } else if (which == "lmt") {
    sim::LmtConfig config;
    if (seed != 0) config.seed = seed;
    scenario = sim::make_nersc_lmt(config);
  } else {
    std::fprintf(stderr, "error: unknown scenario '%s'\n", which.c_str());
    return 2;
  }

  std::printf("simulating %zu transfers (%s)...\n", scenario.workload.size(),
              which.c_str());
  auto result = scenario.run();
  logs::LogStore output = std::move(result.log);
  if (args.flag("--anonymize"))
    output = logs::anonymize(output, seed == 0 ? 0x5eedULL : seed).log;

  const std::string out_path = args.value_or("--out", "transfer_log.csv");
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 1;
  }
  output.write_csv(out);
  std::printf("wrote %zu transfers to %s%s\n", output.size(), out_path.c_str(),
              args.flag("--anonymize") ? " (anonymised)" : "");
  return 0;
}

int cmd_analyze(const ArgList& args) {
  const auto log = load_log(args);
  const double threshold = args.number_or("--threshold", 0.5);
  const auto context = core::analyze_log(log, /*contention_threads=*/0);

  TextTable table;
  table.set_title("edges by usage (top 20):");
  table.set_header({"src", "dst", "transfers", "Rmax (MB/s)",
                    "above T*Rmax", "retention %"});
  const auto edges = context.log.edges_by_usage();
  for (std::size_t e = 0; e < edges.size() && e < 20; ++e) {
    const auto indices = context.log.edge_transfers(edges[e]);
    const double rmax = context.log.edge_max_rate(edges[e]);
    std::size_t qualifying = 0;
    for (const auto i : indices)
      if (context.log[i].rate_Bps() >= threshold * rmax) ++qualifying;
    table.add_row({std::to_string(edges[e].src), std::to_string(edges[e].dst),
                   std::to_string(indices.size()),
                   TextTable::num(to_mbps(rmax), 1),
                   std::to_string(qualifying),
                   TextTable::num(100.0 * static_cast<double>(qualifying) /
                                      static_cast<double>(indices.size()),
                                  1)});
  }
  table.print(stdout);

  TextTable capability_table;
  capability_table.set_title("\nendpoint capability estimates (MB/s):");
  capability_table.set_header({"endpoint", "DRmax", "DWmax", "ROmax", "RImax"});
  for (const auto& [endpoint, capability] : context.capabilities) {
    capability_table.add_row({std::to_string(endpoint),
                              TextTable::num(to_mbps(capability.dr_max_Bps), 1),
                              TextTable::num(to_mbps(capability.dw_max_Bps), 1),
                              TextTable::num(to_mbps(capability.ro_max_Bps), 1),
                              TextTable::num(to_mbps(capability.ri_max_Bps), 1)});
  }
  capability_table.print(stdout);
  return 0;
}

int cmd_evaluate(const ArgList& args) {
  const auto log = load_log(args);
  const auto context = core::analyze_log(log, /*contention_threads=*/0);
  const auto max_edges =
      static_cast<std::size_t>(args.number_or("--max-edges", 30.0));
  const auto min_transfers =
      static_cast<std::size_t>(args.number_or("--min-transfers", 300.0));
  const auto edges =
      core::select_heavy_edges(context, min_transfers, 0.5, max_edges);
  if (edges.empty()) {
    std::fprintf(stderr,
                 "no edges with >= %zu transfers above 0.5*Rmax; lower "
                 "--min-transfers\n",
                 min_transfers);
    return 1;
  }
  ThreadPool pool;
  const auto reports = core::study_edges(context, edges, {}, &pool);
  TextTable table;
  table.set_header({"edge", "samples", "LR MdAPE %", "XGB MdAPE %"});
  for (const auto& report : reports)
    table.add_row({std::to_string(report.edge.src) + "->" +
                       std::to_string(report.edge.dst),
                   std::to_string(report.samples),
                   TextTable::num(report.lr_mdape, 1),
                   TextTable::num(report.xgb_mdape, 1)});
  table.print(stdout);
  return 0;
}

int cmd_train(const ArgList& args) {
  const auto log = load_log(args);
  const auto out_path = args.value("--model-out");
  if (!out_path) {
    std::fprintf(stderr, "error: --model-out <file> is required\n");
    return 2;
  }
  core::TransferPredictor::Options options;
  options.min_edge_transfers = static_cast<std::size_t>(
      args.number_or("--min-edge-transfers", 100.0));
  core::TransferPredictor predictor(options);
  predictor.fit(log);
  // Temp-file + atomic rename, so a serve daemon watching this path never
  // reloads a half-written model.
  predictor.save_file(*out_path);
  std::printf("trained predictor saved to %s\n", out_path->c_str());
  return 0;
}

/// Shared by predict / predict-batch: load a saved predictor from --model,
/// or train one from --log.
core::TransferPredictor acquire_predictor(const ArgList& args) {
  if (const auto model_path = args.value("--model")) {
    auto predictor = core::TransferPredictor::load_file(*model_path);
    std::printf("loaded predictor from %s\n", model_path->c_str());
    return predictor;
  }
  const auto log = load_log(args);
  core::TransferPredictor::Options options;
  options.min_edge_transfers = static_cast<std::size_t>(
      args.number_or("--min-edge-transfers", 100.0));
  core::TransferPredictor predictor(options);
  predictor.fit(log);
  return predictor;
}

int cmd_predict(const ArgList& args) {
  core::PlannedTransfer planned;
  const auto src = args.value("--src");
  const auto dst = args.value("--dst");
  const auto bytes = args.value("--bytes");
  if (!src || !dst || !bytes) {
    std::fprintf(stderr, "error: --src, --dst and --bytes are required\n");
    return 2;
  }
  planned.src =
      static_cast<endpoint::EndpointId>(parse_number("--src", *src));
  planned.dst =
      static_cast<endpoint::EndpointId>(parse_number("--dst", *dst));
  planned.bytes = parse_number("--bytes", *bytes);
  planned.files = static_cast<std::uint64_t>(args.number_or("--files", 1.0));
  planned.dirs = static_cast<std::uint64_t>(args.number_or("--dirs", 1.0));
  planned.concurrency =
      static_cast<std::uint32_t>(args.number_or("--concurrency", 4.0));
  planned.parallelism =
      static_cast<std::uint32_t>(args.number_or("--parallelism", 4.0));

  const core::TransferPredictor predictor = acquire_predictor(args);
  const logs::EdgeKey edge{planned.src, planned.dst};
  const double rate = predictor.predict_rate_mbps(planned);
  std::printf("model: %s\n",
              predictor.has_edge_model(edge) ? "per-edge" : "global fallback");
  std::printf("predicted rate:     %.1f MB/s\n", rate);
  std::printf("predicted duration: %.0f s for %s\n",
              predictor.estimate_duration_s(planned),
              format_bytes(planned.bytes).c_str());
  std::printf("top features: ");
  const auto importances = predictor.explain(edge);
  for (std::size_t i = 0; i < importances.size() && i < 5; ++i)
    std::printf("%s%s (%.2f)", i == 0 ? "" : ", ", importances[i].first.c_str(),
                importances[i].second);
  std::printf("\n");
  return 0;
}

int cmd_predict_batch(const ArgList& args) {
  const auto transfers_path = args.value("--transfers");
  if (!transfers_path) {
    std::fprintf(stderr, "error: --transfers <planned.csv> is required\n");
    return 2;
  }
  const auto rows = read_csv_file(*transfers_path);

  // Accept an optional header row: skip the first row when its bytes column
  // does not parse as a number.
  auto is_number = [](const std::string& field) {
    if (field.empty()) return false;
    char* end = nullptr;
    std::strtod(field.c_str(), &end);
    return end != field.c_str() && *end == '\0';
  };
  std::vector<core::PlannedTransfer> planned;
  planned.reserve(rows.size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    const auto& row = rows[r];
    if (row.size() == 1 && row[0].empty()) continue;  // Blank line.
    if (r == 0 && row.size() >= 3 && !is_number(row[2])) continue;  // Header.
    if (row.size() < 3) {
      std::fprintf(stderr,
                   "error: %s line %zu: need at least src,dst,bytes\n",
                   transfers_path->c_str(), r + 1);
      return 1;
    }
    core::PlannedTransfer transfer;
    transfer.src = static_cast<endpoint::EndpointId>(std::stoul(row[0]));
    transfer.dst = static_cast<endpoint::EndpointId>(std::stoul(row[1]));
    transfer.bytes = std::stod(row[2]);
    transfer.files =
        row.size() > 3 ? static_cast<std::uint64_t>(std::stoull(row[3])) : 1;
    transfer.dirs =
        row.size() > 4 ? static_cast<std::uint64_t>(std::stoull(row[4])) : 1;
    transfer.concurrency =
        row.size() > 5 ? static_cast<std::uint32_t>(std::stoul(row[5])) : 4;
    transfer.parallelism =
        row.size() > 6 ? static_cast<std::uint32_t>(std::stoul(row[6])) : 4;
    planned.push_back(transfer);
  }
  if (planned.empty()) {
    std::fprintf(stderr, "error: no planned transfers in %s\n",
                 transfers_path->c_str());
    return 1;
  }

  const core::TransferPredictor predictor = acquire_predictor(args);
  // One grouped pass through the flattened batch engine; identical answers
  // to calling predict_rate_mbps per row.
  const auto rates = predictor.predict_rates_mbps(planned);

  if (const auto out_path = args.value("--out")) {
    std::ofstream out(*out_path);
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", out_path->c_str());
      return 1;
    }
    CsvWriter writer(out);
    writer.write_row(CsvRow{"src", "dst", "bytes", "rate_mbps", "duration_s"});
    char buffer[64];
    for (std::size_t i = 0; i < planned.size(); ++i) {
      const double duration =
          planned[i].bytes / std::max(rates[i], 0.01) / 1e6;
      CsvRow row;
      row.push_back(std::to_string(planned[i].src));
      row.push_back(std::to_string(planned[i].dst));
      std::snprintf(buffer, sizeof buffer, "%.0f", planned[i].bytes);
      row.push_back(buffer);
      std::snprintf(buffer, sizeof buffer, "%.17g", rates[i]);
      row.push_back(buffer);
      std::snprintf(buffer, sizeof buffer, "%.17g", duration);
      row.push_back(buffer);
      writer.write_row(row);
    }
    std::printf("wrote %zu predictions to %s\n", planned.size(),
                out_path->c_str());
  } else {
    TextTable table;
    table.set_header({"src", "dst", "bytes", "rate MB/s", "duration s"});
    for (std::size_t i = 0; i < planned.size(); ++i)
      table.add_row({std::to_string(planned[i].src),
                     std::to_string(planned[i].dst),
                     format_bytes(planned[i].bytes),
                     TextTable::num(rates[i], 1),
                     TextTable::num(
                         planned[i].bytes / std::max(rates[i], 0.01) / 1e6,
                         0)});
    table.print(stdout);
  }
  return 0;
}

int cmd_export_dataset(const ArgList& args) {
  const auto log = load_log(args);
  const auto src = args.value("--src");
  const auto dst = args.value("--dst");
  if (!src || !dst) {
    std::fprintf(stderr, "error: --src and --dst are required\n");
    return 2;
  }
  const logs::EdgeKey edge{
      static_cast<endpoint::EndpointId>(parse_number("--src", *src)),
      static_cast<endpoint::EndpointId>(parse_number("--dst", *dst))};
  if (log.edge_count(edge) == 0) {
    std::fprintf(stderr, "error: edge %s->%s has no transfers\n", src->c_str(),
                 dst->c_str());
    return 1;
  }
  const auto contention = features::compute_contention(log);
  features::DatasetOptions options;
  options.load_threshold = args.number_or("--threshold", 0.5);
  options.include_nflt = args.flag("--with-nflt");
  const auto dataset = features::build_edge_dataset(log, contention, edge, options);

  const std::string out_path = args.value_or("--out", "dataset.csv");
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 1;
  }
  features::write_dataset_csv(dataset, out);
  std::printf("wrote %zu rows x %zu features to %s\n", dataset.rows(),
              dataset.cols(), out_path.c_str());
  return 0;
}

// Signal flags for the serve daemon: SIGINT/SIGTERM drain and exit,
// SIGHUP hot-reloads the model file.
volatile std::sig_atomic_t g_serve_stop = 0;
volatile std::sig_atomic_t g_serve_hup = 0;

void serve_stop_handler(int) { g_serve_stop = 1; }
void serve_hup_handler(int) { g_serve_hup = 1; }

/// Build the resident predictor for serve/serve-bench from --model (file)
/// or --log (train in-process).
std::shared_ptr<const core::TransferPredictor> acquire_shared_predictor(
    const ArgList& args, std::string& model_path_out) {
  if (const auto model_path = args.value("--model")) {
    model_path_out = *model_path;
    auto predictor = std::make_shared<const core::TransferPredictor>(
        core::TransferPredictor::load_file(*model_path));
    std::printf("loaded predictor from %s\n", model_path->c_str());
    return predictor;
  }
  const auto log = load_log(args);
  core::TransferPredictor::Options options;
  options.min_edge_transfers = static_cast<std::size_t>(
      args.number_or("--min-edge-transfers", 100.0));
  auto predictor = std::make_shared<core::TransferPredictor>(options);
  predictor->fit(log);
  return predictor;
}

serve::PredictionServer::Options server_options(const ArgList& args) {
  serve::PredictionServer::Options options;
  options.port = static_cast<std::uint16_t>(args.number_or("--port", 7070.0));
  options.bind_address = args.value_or("--bind", "127.0.0.1");
  options.max_batch =
      static_cast<std::size_t>(args.number_or("--max-batch", 64.0));
  options.queue_capacity =
      static_cast<std::size_t>(args.number_or("--queue-cap", 1024.0));
  options.predict_threads =
      static_cast<std::size_t>(args.number_or("--threads", 1.0));
  options.shards =
      static_cast<std::size_t>(args.number_or("--shards", 0.0));
  options.partial_frame_timeout_ms = static_cast<std::uint64_t>(
      args.number_or("--frame-timeout-ms", 30000.0));
  options.monitor.drift_window = static_cast<std::size_t>(
      args.number_or("--drift-window", 64.0));
  options.monitor.drift_threshold_pct =
      args.number_or("--drift-threshold", 30.0);
  options.monitor.drift_min_samples = static_cast<std::size_t>(
      args.number_or("--drift-min-samples", 16.0));
  return options;
}

int cmd_serve(const ArgList& args) {
  std::string model_path;
  serve::ModelHost host(acquire_shared_predictor(args, model_path),
                        model_path);
  serve::PredictionServer server(host, server_options(args));

  // --journal-dir closes the drift loop: feedback -> journal -> refit ->
  // validated hot swap. The service installs its hooks before start().
  std::unique_ptr<retrain::RetrainService> retrain_service;
  if (const auto journal_dir = args.value("--journal-dir")) {
    retrain::TrainingJournal::Options journal_options;
    journal_options.directory = *journal_dir;
    retrain::RetrainOptions retrain_options;
    retrain_options.interval_ms = static_cast<std::uint64_t>(
        args.number_or("--retrain-interval", 0.0) * 1000.0);
    retrain_options.min_edge_records = static_cast<std::size_t>(
        args.number_or("--retrain-min-records", 64.0));
    const std::uint64_t interval_s = retrain_options.interval_ms / 1000;
    retrain_service = std::make_unique<retrain::RetrainService>(
        server, std::move(journal_options), std::move(retrain_options));
    if (interval_s == 0)
      std::printf("retrain loop enabled: journal %s, drift-alarm triggered\n",
                  journal_dir->c_str());
    else
      std::printf("retrain loop enabled: journal %s, every %llu s\n",
                  journal_dir->c_str(),
                  static_cast<unsigned long long>(interval_s));
  }

  // Handlers must be live before the startup banner goes out: a parent
  // scripting us through a pipe may signal the instant it sees the port,
  // and the default disposition would kill us without draining.
  std::signal(SIGINT, serve_stop_handler);
  std::signal(SIGTERM, serve_stop_handler);
  std::signal(SIGHUP, serve_hup_handler);
  server.start();
  std::printf("serving predictions on %s:%u (SIGHUP reloads %s)\n",
              args.value_or("--bind", "127.0.0.1").c_str(), server.port(),
              model_path.empty() ? "<admin reload only>" : model_path.c_str());
  // Parents driving us through a pipe (the signal-drain test) need the
  // port line before the first request, not at buffer-flush time.
  std::fflush(stdout);

  while (!g_serve_stop) {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    if (g_serve_hup) {
      g_serve_hup = 0;
      try {
        const std::uint64_t version = host.reload_from_file();
        std::printf("SIGHUP: model reloaded (version %llu)\n",
                    static_cast<unsigned long long>(version));
      } catch (const std::exception& error) {
        std::fprintf(stderr, "SIGHUP reload failed: %s\n", error.what());
      }
    }
  }
  std::printf("draining...\n");
  server.stop();
  std::printf("stopped.\n");
  return 0;
}

/// Prometheus metric name: "serve.batch.latency_us" -> "xfl_serve_batch_latency_us".
std::string prometheus_name(const std::string& name) {
  std::string out = "xfl_";
  for (const char c : name) out.push_back(c == '.' ? '_' : c);
  return out;
}

/// Escape a label value for the Prometheus text exposition format:
/// backslash, double quote, and newline must be backslash-escaped or a
/// real scraper rejects (or silently mis-parses) the whole family.
std::string prometheus_label_value(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

/// HELP text: backslash and newline are the escapable characters there
/// (quotes are legal verbatim). Our help strings embed the dotted
/// registry name, which is caller-controlled, so escape defensively.
std::string prometheus_help_text(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

/// Prometheus-style text exposition of a Registry::to_json() snapshot
/// (the "metrics" field of a stats reply): counters and gauges as-is,
/// histograms as cumulative _bucket/_sum/_count series plus quantile
/// lines extracted by the server's streaming estimator. Each family
/// carries # HELP and # TYPE headers and escaped label values, so the
/// dump is valid scrape input for a real Prometheus server, not just
/// eyeball output.
void print_prometheus(const serve::JsonValue& metrics) {
  const auto header = [](const std::string& prom, const std::string& name,
                         const char* type) {
    std::printf("# HELP %s %s\n# TYPE %s %s\n", prom.c_str(),
                prometheus_help_text("xferlearn registry metric " + name)
                    .c_str(),
                prom.c_str(), type);
  };
  if (const auto* counters = metrics.find("counters");
      counters && counters->is_object()) {
    for (const auto& [name, value] : counters->object) {
      if (!value.is_number()) continue;
      const std::string prom = prometheus_name(name);
      header(prom, name, "counter");
      std::printf("%s %.0f\n", prom.c_str(), value.number);
    }
  }
  if (const auto* gauges = metrics.find("gauges");
      gauges && gauges->is_object()) {
    for (const auto& [name, entry] : gauges->object) {
      const auto* value = entry.find("value");
      if (value == nullptr || !value->is_number()) continue;
      const std::string prom = prometheus_name(name);
      header(prom, name, "gauge");
      std::printf("%s %.17g\n", prom.c_str(), value->number);
      if (const auto* max = entry.find("max"); max && max->is_number())
        std::printf("%s_max %.17g\n", prom.c_str(), max->number);
    }
  }
  if (const auto* histograms = metrics.find("histograms");
      histograms && histograms->is_object()) {
    for (const auto& [name, entry] : histograms->object) {
      const std::string prom = prometheus_name(name);
      header(prom, name, "histogram");
      double cumulative = 0.0;
      if (const auto* buckets = entry.find("buckets");
          buckets && buckets->is_array()) {
        for (const auto& bucket : buckets->array) {
          const auto* le = bucket.find("le");
          const auto* count = bucket.find("count");
          if (le == nullptr || count == nullptr || !count->is_number())
            continue;
          cumulative += count->number;
          std::string le_text = "+Inf";
          if (le->is_number()) {
            char text[64];
            std::snprintf(text, sizeof text, "%.17g", le->number);
            le_text = text;
          }
          std::printf("%s_bucket{le=\"%s\"} %.0f\n", prom.c_str(),
                      prometheus_label_value(le_text).c_str(), cumulative);
        }
      }
      if (const auto* sum = entry.find("sum"); sum && sum->is_number())
        std::printf("%s_sum %.17g\n", prom.c_str(), sum->number);
      if (const auto* count = entry.find("count"); count && count->is_number())
        std::printf("%s_count %.0f\n", prom.c_str(), count->number);
      const std::pair<const char*, const char*> quantiles[] = {
          {"p50", "0.5"}, {"p95", "0.95"}, {"p99", "0.99"}};
      for (const auto& [field, quantile] : quantiles) {
        if (const auto* q = entry.find(field); q && q->is_number())
          std::printf("%s{quantile=\"%s\"} %.17g\n", prom.c_str(),
                      prometheus_label_value(quantile).c_str(), q->number);
      }
    }
  }
}

int cmd_request(const ArgList& args) {
  const auto port_value = args.value("--port");
  if (!port_value) {
    std::fprintf(stderr, "error: --port is required\n");
    return 2;
  }
  serve::PredictionClient client(
      args.value_or("--host", "127.0.0.1"),
      static_cast<std::uint16_t>(parse_number("--port", *port_value)));

  if (args.flag("--ping")) {
    if (!client.ping()) {
      std::fprintf(stderr, "error: ping failed\n");
      return 1;
    }
    std::printf("pong\n");
    return 0;
  }
  if (args.flag("--stats")) {
    const auto stats = client.stats(/*registry=*/true);
    const auto* depth = stats.find("queue_depth");
    const auto* version = stats.find("version");
    const auto* kernel = stats.find("kernel");
    const auto* requests = stats.find("requests");
    const auto* rejected = stats.find("rejected");
    std::printf("queue depth:   %.0f\nmodel version: %.0f\n"
                "kernel:        %s\n"
                "requests:      %.0f\nrejected:      %.0f\n",
                depth ? depth->number : -1.0, version ? version->number : -1.0,
                kernel && kernel->is_string() ? kernel->string.c_str()
                                              : "unknown",
                requests ? requests->number : -1.0,
                rejected ? rejected->number : -1.0);
    if (const auto* latency = stats.find("latency_us")) {
      if (const auto* server = latency->find("server")) {
        const auto* p50 = server->find("p50");
        const auto* p95 = server->find("p95");
        const auto* p99 = server->find("p99");
        std::printf("server latency: p50 %.0f us, p95 %.0f us, p99 %.0f us\n",
                    p50 ? p50->number : 0.0, p95 ? p95->number : 0.0,
                    p99 ? p99->number : 0.0);
      }
    }
    if (const auto* drift = stats.find("drift")) {
      const auto* alarm = drift->find("alarm");
      const auto* feedback = drift->find("feedback");
      const auto* threshold = drift->find("threshold_pct");
      std::printf("drift alarm:   %s (feedback %.0f, threshold %.1f%%)\n",
                  alarm && alarm->is_bool() && alarm->boolean ? "RAISED"
                                                              : "clear",
                  feedback ? feedback->number : 0.0,
                  threshold ? threshold->number : 0.0);
      if (const auto* shift = drift->find("attribution_shift")) {
        const auto* valid = shift->find("valid");
        const auto* ranked = shift->find("ranked");
        if (valid && valid->is_bool() && valid->boolean && ranked &&
            ranked->is_array() && !ranked->array.empty()) {
          const auto& top = ranked->array.front();
          const auto* feature = top.find("feature");
          const auto* delta = top.find("delta_mbps");
          std::printf("drift shift:   %s moved %+.1f MB/s mean "
                      "|contribution| at the last alarm\n",
                      feature && feature->is_string() ? feature->string.c_str()
                                                      : "?",
                      delta ? delta->number : 0.0);
        }
      }
    }
    if (const auto* metrics = stats.find("metrics")) {
      std::printf("-- prometheus --\n");
      print_prometheus(*metrics);
    }
    return 0;
  }
  if (args.flag("--retrain-status")) {
    const auto reply = client.retrain_status();
    const auto* retrain = reply.find("retrain");
    if (retrain == nullptr) {
      std::fprintf(stderr, "error: malformed retrain-status reply\n");
      return 1;
    }
    const auto* enabled = retrain->find("enabled");
    if (enabled == nullptr || !enabled->is_bool() || !enabled->boolean) {
      std::printf("retrain: disabled (serve without --journal-dir)\n");
      return 0;
    }
    const auto number = [retrain](const char* name) {
      const auto* value = retrain->find(name);
      return value != nullptr && value->is_number() ? value->number : 0.0;
    };
    const auto text = [retrain](const char* name) -> std::string {
      const auto* value = retrain->find(name);
      return value != nullptr && value->is_string() ? value->string : "";
    };
    std::printf("retrain: enabled, worker %s\n",
                [retrain] {
                  const auto* running = retrain->find("running");
                  return running != nullptr && running->is_bool() &&
                                 running->boolean
                             ? "running"
                             : "stopped";
                }());
    std::printf("cycles:        %.0f (alarm %.0f, interval %.0f, "
                "manual %.0f)\n",
                number("cycles"), number("triggers_alarm"),
                number("triggers_interval"), number("triggers_manual"));
    std::printf("refits:        %.0f (accepted %.0f, rejected %.0f, "
                "skipped %.0f, errors %.0f)\n",
                number("refits"), number("accepted"), number("rejected"),
                number("skipped"), number("errors"));
    const std::string decision = text("last_decision");
    if (!decision.empty())
      std::printf("last gate:     %s on edge %s (candidate MdAPE %.1f%% vs "
                  "incumbent %.1f%%), model version %.0f\n",
                  decision.c_str(), text("last_edge").c_str(),
                  number("last_candidate_mdape_pct"),
                  number("last_incumbent_mdape_pct"), number("last_version"));
    const std::string error = text("last_error");
    if (!error.empty()) std::printf("last error:    %s\n", error.c_str());
    return 0;
  }
  if (const auto trace = args.value("--feedback")) {
    const auto observed = args.value("--observed-mbps");
    if (!observed) {
      std::fprintf(stderr,
                   "error: --feedback requires --observed-mbps <rate>\n");
      return 2;
    }
    const auto reply =
        client.feedback(*trace, parse_number("--observed-mbps", *observed));
    if (!reply.ok) {
      std::fprintf(stderr, "error: feedback rejected\n");
      return 1;
    }
    if (!reply.matched) {
      std::printf("trace %s not found (evicted or already reported)\n",
                  trace->c_str());
      return 1;
    }
    std::printf("trace %s: predicted %.1f MB/s, observed %s MB/s, "
                "APE %.1f%%\n",
                trace->c_str(), reply.predicted_mbps, observed->c_str(),
                reply.ape_pct);
    std::printf("model version %llu: windowed MdAPE %.1f%% over %llu "
                "samples, drift alarm %s\n",
                static_cast<unsigned long long>(reply.model_version),
                reply.mdape_pct,
                static_cast<unsigned long long>(reply.window),
                reply.alarm ? "RAISED" : "clear");
    return 0;
  }
  if (args.flag("--reload")) {
    const std::uint64_t version = client.reload(args.value_or("--path", ""));
    std::printf("reloaded; model version %llu\n",
                static_cast<unsigned long long>(version));
    return 0;
  }

  const auto src = args.value("--src");
  const auto dst = args.value("--dst");
  const auto bytes = args.value("--bytes");
  if (!src || !dst || !bytes) {
    std::fprintf(stderr,
                 "error: --src, --dst and --bytes are required (or use "
                 "--ping/--stats/--reload/--retrain-status)\n");
    return 2;
  }
  core::PlannedTransfer planned;
  planned.src = static_cast<endpoint::EndpointId>(parse_number("--src", *src));
  planned.dst = static_cast<endpoint::EndpointId>(parse_number("--dst", *dst));
  planned.bytes = parse_number("--bytes", *bytes);
  planned.files = static_cast<std::uint64_t>(args.number_or("--files", 1.0));
  planned.dirs = static_cast<std::uint64_t>(args.number_or("--dirs", 1.0));
  planned.concurrency =
      static_cast<std::uint32_t>(args.number_or("--concurrency", 4.0));
  planned.parallelism =
      static_cast<std::uint32_t>(args.number_or("--parallelism", 4.0));
  const auto deadline_ms =
      static_cast<std::uint64_t>(args.number_or("--deadline-ms", 0.0));

  const auto reply = client.predict(planned, {}, deadline_ms);
  if (!reply.ok) {
    std::fprintf(stderr, "error: %s: %s\n", reply.error.c_str(),
                 reply.message.c_str());
    return 1;
  }
  std::printf("predicted rate: %.1f MB/s (%s model, version %llu)\n",
              reply.rate_mbps, reply.model.c_str(),
              static_cast<unsigned long long>(reply.model_version));
  std::printf("predicted duration: %.0f s for %s\n",
              planned.bytes / mbps(reply.rate_mbps),
              format_bytes(planned.bytes).c_str());
  if (!reply.trace_id.empty())
    std::printf("trace id: %s (server %.3f ms; report the observed rate "
                "with `request --feedback %s --observed-mbps X`)\n",
                reply.trace_id.c_str(), reply.server_ms,
                reply.trace_id.c_str());
  return 0;
}

/// One explained prediction from a running server: rate plus the Saabas
/// per-feature attribution, printed so the sum structure is visible
/// (bias + contributions = raw score, clamped to the serving floor).
int cmd_explain(const ArgList& args) {
  const auto port_value = args.value("--port");
  const auto src = args.value("--src");
  const auto dst = args.value("--dst");
  const auto bytes = args.value("--bytes");
  if (!port_value || !src || !dst || !bytes) {
    std::fprintf(stderr,
                 "error: --port, --src, --dst and --bytes are required\n");
    return 2;
  }
  serve::PredictionClient client(
      args.value_or("--host", "127.0.0.1"),
      static_cast<std::uint16_t>(parse_number("--port", *port_value)));
  if (args.flag("--binary")) client.negotiate_binary();

  core::PlannedTransfer planned;
  planned.src = static_cast<endpoint::EndpointId>(parse_number("--src", *src));
  planned.dst = static_cast<endpoint::EndpointId>(parse_number("--dst", *dst));
  planned.bytes = parse_number("--bytes", *bytes);
  planned.files = static_cast<std::uint64_t>(args.number_or("--files", 1.0));
  planned.dirs = static_cast<std::uint64_t>(args.number_or("--dirs", 1.0));
  planned.concurrency =
      static_cast<std::uint32_t>(args.number_or("--concurrency", 4.0));
  planned.parallelism =
      static_cast<std::uint32_t>(args.number_or("--parallelism", 4.0));
  const auto deadline_ms =
      static_cast<std::uint64_t>(args.number_or("--deadline-ms", 0.0));
  const auto top_k =
      static_cast<std::uint16_t>(args.number_or("--top-k", 0.0));

  const auto reply = client.explain(planned, {}, deadline_ms, top_k);
  if (!reply.ok) {
    std::fprintf(stderr, "error: %s: %s\n", reply.error.c_str(),
                 reply.message.c_str());
    return 1;
  }
  std::printf("predicted rate: %.1f MB/s (%s model, version %llu)\n",
              reply.rate_mbps, reply.model.c_str(),
              static_cast<unsigned long long>(reply.model_version));
  std::printf("raw score:      %.3f MB/s = bias %.3f + contributions\n",
              reply.raw_mbps, reply.bias_mbps);
  if (reply.low_mbps != 0.0 || reply.high_mbps != 0.0)
    std::printf("interval:       [%.1f, %.1f] MB/s\n", reply.low_mbps,
                reply.high_mbps);
  std::printf("contributions (MB/s, strongest first%s):\n",
              top_k > 0 ? ", truncated by --top-k" : "");
  double shown_sum = 0.0;
  for (const auto& [feature, mbps] : reply.contributions) {
    std::printf("  %+12.3f  %s\n", mbps, feature.c_str());
    shown_sum += mbps;
  }
  std::printf("  %+12.3f  (bias)\n", reply.bias_mbps);
  std::printf("  %+12.3f  (sum of shown terms)\n",
              shown_sum + reply.bias_mbps);
  if (!reply.trace_id.empty())
    std::printf("trace id: %s (server %.3f ms)\n", reply.trace_id.c_str(),
                reply.server_ms);
  return 0;
}

/// Loadgen: in-process server on an ephemeral port, C blocking clients per
/// level hammering it for --seconds, sustained req/s + latency quantiles.
int cmd_serve_bench(const ArgList& args) {
  std::string model_path;
  serve::ModelHost host(acquire_shared_predictor(args, model_path),
                        model_path);
  auto options = server_options(args);
  options.port = 0;  // Always ephemeral: the bench must not collide.
  serve::PredictionServer server(host, options);
  server.start();

  const double seconds = args.number_or("--seconds", 2.0);
  const auto src = static_cast<endpoint::EndpointId>(
      args.number_or("--src", 0.0));
  const auto dst = static_cast<endpoint::EndpointId>(
      args.number_or("--dst", 1.0));
  const std::size_t idle_connections =
      static_cast<std::size_t>(args.number_or("--connections", 0.0));
  const bool binary = args.flag("--binary");
  // Pipeline depth: requests kept outstanding per connection. 1 = classic
  // blocking round trips; >1 is how a real hot client drives the batcher
  // (many frames per syscall, full batches per predict call).
  const std::size_t pipeline = static_cast<std::size_t>(
      std::max(1.0, args.number_or("--pipeline", 1.0)));
  std::vector<std::size_t> levels;
  {
    const std::string spec = args.value_or("--clients", "1,4,16,64");
    std::size_t start = 0;
    while (start <= spec.size()) {
      const std::size_t comma = spec.find(',', start);
      const std::string token =
          spec.substr(start, comma == std::string::npos ? comma : comma - start);
      if (!token.empty())
        levels.push_back(
            static_cast<std::size_t>(parse_number("--clients", token)));
      if (comma == std::string::npos) break;
      start = comma + 1;
    }
    if (levels.empty()) {
      std::fprintf(stderr, "error: --clients needs at least one level\n");
      return 2;
    }
  }

  // A deterministic mix of planned transfers (sizes, file counts,
  // concurrency) so batches are not degenerate single-row repeats.
  std::vector<core::PlannedTransfer> mix;
  for (int i = 0; i < 16; ++i) {
    core::PlannedTransfer planned;
    planned.src = src;
    planned.dst = dst;
    planned.bytes = 1e9 * static_cast<double>(1 + (i * 7) % 50);
    planned.files = static_cast<std::uint64_t>(1 + (i * 13) % 40);
    planned.concurrency = static_cast<std::uint32_t>(1 + i % 8);
    planned.parallelism = static_cast<std::uint32_t>(1 + (i * 3) % 8);
    mix.push_back(planned);
  }

  struct LevelResult {
    std::size_t clients = 0;
    std::uint64_t requests = 0;
    double seconds = 0.0;
    double rps = 0.0;
    double p50_us = 0.0, p95_us = 0.0, p99_us = 0.0;
    /// Server-side quantiles from the live serve.request.server_us
    /// histogram — the same estimator the stats admin command exposes.
    double server_p50_us = 0.0, server_p95_us = 0.0, server_p99_us = 0.0;
  };
  std::vector<LevelResult> results;

  // The idle-connection dimension: --connections N parks N extra open
  // sockets on the event loop for the whole run, so the measured levels
  // show what mostly-idle scale costs the hot path (it should be ~free).
  std::vector<std::unique_ptr<serve::PredictionClient>> idle;
  idle.reserve(idle_connections);
  for (std::size_t i = 0; i < idle_connections; ++i)
    idle.push_back(std::make_unique<serve::PredictionClient>(
        "127.0.0.1", server.port()));

  TextTable table;
  table.set_title("serve-bench: sustained load against the micro-batching "
                  "server (loopback; srv = server-side histogram quantiles)");
  table.set_header({"clients", "req/s", "p50 us", "p95 us", "p99 us",
                    "srv p50", "srv p95", "srv p99", "requests"});
  for (const std::size_t clients : levels) {
    // Zero the registry so each level's server-side histogram covers
    // exactly that level's requests.
    obs::Registry::instance().reset();
    std::atomic<bool> stop{false};
    std::vector<std::vector<double>> latencies(clients);
    std::vector<std::thread> threads;
    threads.reserve(clients);
    const auto start = std::chrono::steady_clock::now();
    if (pipeline == 1) {
      // Classic mode: one blocking thread per client, one request in
      // flight each — directly comparable across bench revisions.
      for (std::size_t c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
          serve::PredictionClient client("127.0.0.1", server.port());
          if (binary) client.negotiate_binary();
          std::size_t i = c;  // Stagger the mix across clients.
          while (!stop.load(std::memory_order_relaxed)) {
            const auto t0 = std::chrono::steady_clock::now();
            const auto reply = client.predict(mix[i++ % mix.size()]);
            const auto t1 = std::chrono::steady_clock::now();
            if (reply.ok)
              latencies[c].push_back(
                  std::chrono::duration<double, std::micro>(t1 - t0).count());
          }
        });
      }
    } else {
      // Windowed mode: every connection keeps `pipeline` requests in
      // flight, and a handful of loadgen threads multiplex all the
      // connections (wrk-style) — with one thread per connection the
      // measurement drowns in loadgen scheduling, not server capacity.
      struct WindowedConn {
        explicit WindowedConn(std::uint16_t port)
            : client("127.0.0.1", port) {}
        serve::PredictionClient client;
        std::unordered_map<std::uint64_t,
                           std::chrono::steady_clock::time_point>
            sent_at;
        std::uint64_t next_id = 1;
        std::size_t i = 0;
      };
      const std::size_t loadgen = std::min<std::size_t>(
          clients, std::max(2u, std::thread::hardware_concurrency()));
      for (std::size_t t = 0; t < loadgen; ++t) {
        threads.emplace_back([&, t] {
          // Each thread owns connections c = t, t + loadgen, ...
          std::vector<std::unique_ptr<WindowedConn>> conns;
          for (std::size_t c = t; c < clients; c += loadgen) {
            conns.push_back(std::make_unique<WindowedConn>(server.port()));
            conns.back()->i = c;
            if (binary) conns.back()->client.negotiate_binary();
          }
          // Sends are coalesced: `n` requests leave in one send(2), the
          // same trick the server's reply corking plays in the other
          // direction — on a shared core, loadgen syscalls are server
          // cycles lost.
          std::string out;
          const auto send_burst = [&](WindowedConn& conn, std::size_t n) {
            out.clear();
            const auto now = std::chrono::steady_clock::now();
            for (std::size_t k = 0; k < n; ++k) {
              const std::uint64_t id = conn.next_id++;
              conn.sent_at.emplace(id, now);
              const auto& planned = mix[conn.i++ % mix.size()];
              if (binary) {
                out += serve::binary_predict_request(id, planned);
              } else {
                out += serve::predict_request_line(std::to_string(id), planned);
                out += '\n';
              }
            }
            conn.client.send_raw(out);
          };
          const auto read_one = [&](WindowedConn& conn) {
            std::uint64_t id = 0;
            bool ok = false;
            if (binary) {
              for (;;) {
                const auto [type, payload] = conn.client.read_frame();
                if (type == serve::BinaryType::kJson) continue;
                const auto reply = serve::parse_binary_reply(type, payload);
                id = reply.id;
                ok = reply.ok;
                break;
              }
            } else {
              const auto reply = serve::PredictionClient::parse_reply(
                  conn.client.read_line());
              id = std::stoull(reply.id);
              ok = reply.ok;
            }
            const auto sent = conn.sent_at.find(id);
            if (sent == conn.sent_at.end()) return;
            if (ok)
              latencies[t].push_back(
                  std::chrono::duration<double, std::micro>(
                      std::chrono::steady_clock::now() - sent->second)
                      .count());
            conn.sent_at.erase(sent);
          };
          for (auto& conn : conns) send_burst(*conn, pipeline);
          while (!stop.load(std::memory_order_relaxed))
            for (auto& conn : conns) {
              // Block for one reply, drain whatever else the server's
              // corked flush delivered with it, then refill the window
              // with one write.
              read_one(*conn);
              std::size_t replies = 1;
              while (replies < pipeline && conn->client.response_buffered()) {
                read_one(*conn);
                ++replies;
              }
              send_burst(*conn, replies);
            }
          // Drain every window so all sent requests are accounted for
          // before the sockets close.
          for (auto& conn : conns)
            while (!conn->sent_at.empty()) read_one(*conn);
        });
      }
    }
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
    stop.store(true);
    for (auto& thread : threads) thread.join();
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();

    std::vector<double> all;
    for (const auto& per_client : latencies)
      all.insert(all.end(), per_client.begin(), per_client.end());
    LevelResult result;
    result.clients = clients;
    result.requests = all.size();
    result.seconds = elapsed;
    result.rps = static_cast<double>(all.size()) / elapsed;
    if (!all.empty()) {
      result.p50_us = percentile(all, 50.0);
      result.p95_us = percentile(all, 95.0);
      result.p99_us = percentile(all, 99.0);
    }
    const auto server_snapshot =
        obs::histogram("serve.request.server_us").snapshot();
    result.server_p50_us = server_snapshot.quantile(50.0);
    result.server_p95_us = server_snapshot.quantile(95.0);
    result.server_p99_us = server_snapshot.quantile(99.0);
    results.push_back(result);
    table.add_row({std::to_string(clients), TextTable::num(result.rps, 0),
                   TextTable::num(result.p50_us, 0),
                   TextTable::num(result.p95_us, 0),
                   TextTable::num(result.p99_us, 0),
                   TextTable::num(result.server_p50_us, 0),
                   TextTable::num(result.server_p95_us, 0),
                   TextTable::num(result.server_p99_us, 0),
                   std::to_string(result.requests)});
  }
  idle.clear();
  server.stop();
  table.print(stdout);

  if (const auto out_path = args.value("--json-out")) {
    std::ofstream out(*out_path);
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", out_path->c_str());
      return 1;
    }
    out << "{\n  \"description\": \"xferlearn serve-bench: "
        << (pipeline == 1 ? "blocking request/reply clients"
                          : "multiplexed pipelined clients")
        << " over loopback TCP against the event-loop prediction server"
           " (max_batch=" << options.max_batch
        << ", queue_capacity=" << options.queue_capacity
        << "); latencies are per-request round trips in microseconds; "
           "server_* quantiles come from the in-server "
           "serve.request.server_us histogram (the live stats "
           "estimator)\",\n"
        << "  \"kernel\": \""
        << host.snapshot().predictor->serving_kernel() << "\",\n"
        << "  \"protocol\": \"" << (binary ? "binary" : "json") << "\",\n"
        << "  \"pipeline\": " << pipeline << ",\n"
        << "  \"idle_connections\": " << idle_connections << ",\n"
        << "  \"seconds_per_level\": " << seconds << ",\n  \"levels\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
      const auto& r = results[i];
      char line[384];
      std::snprintf(line, sizeof line,
                    "    {\"clients\": %zu, \"requests\": %llu, "
                    "\"req_per_s\": %.1f, \"p50_us\": %.1f, "
                    "\"p95_us\": %.1f, \"p99_us\": %.1f, "
                    "\"server_p50_us\": %.1f, \"server_p95_us\": %.1f, "
                    "\"server_p99_us\": %.1f}%s\n",
                    r.clients, static_cast<unsigned long long>(r.requests),
                    r.rps, r.p50_us, r.p95_us, r.p99_us, r.server_p50_us,
                    r.server_p95_us, r.server_p99_us,
                    i + 1 < results.size() ? "," : "");
      out << line;
    }
    out << "  ]\n}\n";
    std::printf("wrote %s\n", out_path->c_str());
  }
  return 0;
}

int run_command(const std::string& command, const ArgList& args) {
  if (command == "simulate") return cmd_simulate(args);
  if (command == "analyze") return cmd_analyze(args);
  if (command == "train") return cmd_train(args);
  if (command == "evaluate") return cmd_evaluate(args);
  if (command == "predict") return cmd_predict(args);
  if (command == "predict-batch") return cmd_predict_batch(args);
  if (command == "export-dataset") return cmd_export_dataset(args);
  if (command == "serve") return cmd_serve(args);
  if (command == "request") return cmd_request(args);
  if (command == "explain") return cmd_explain(args);
  if (command == "serve-bench") return cmd_serve_bench(args);
  return usage();
}

/// Apply --kernel: pins the process-wide batch-inference dispatch before
/// any model is compiled, overriding XFL_KERNEL. Returns false (after
/// printing the accepted names) on an unknown kernel.
bool setup_kernel(const ArgList& args) {
  const auto name = args.value("--kernel");
  if (!name) return true;
  const auto kernel = ml::parse_kernel(*name);
  if (!kernel) {
    std::fprintf(stderr,
                 "error: bad --kernel '%s' (want auto|scalar|avx2|"
                 "quantized)\n",
                 name->c_str());
    return false;
  }
  ml::set_active_kernel(*kernel);
  return true;
}

/// Install logging/tracing from the observability flags. Returns false on
/// an unparsable --log-level.
bool setup_observability(const ArgList& args) {
  obs::LogConfig config;
  if (const auto level = args.value("--log-level")) {
    if (!obs::parse_log_level(*level, config.min_level)) {
      std::fprintf(stderr,
                   "error: bad --log-level '%s' (want trace|debug|info|warn|"
                   "error|off)\n",
                   level->c_str());
      return false;
    }
  }
  config.json = args.flag("--log-json");
  obs::configure_logging(config);
  if (args.value("--trace-out")) obs::set_tracing_enabled(true);
  return true;
}

/// End-of-run metrics/trace dump. Runs even when the command failed — a
/// failing run is exactly when the counters are interesting.
int flush_observability(const ArgList& args, int rc) {
  if (const auto path = args.value("--metrics-out")) {
    std::ofstream out(*path);
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", path->c_str());
      if (rc == 0) rc = 1;
    } else {
      obs::Registry::instance().write_json(out);
      out << '\n';
    }
  }
  if (const auto path = args.value("--trace-out")) {
    std::ofstream out(*path);
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", path->c_str());
      if (rc == 0) rc = 1;
    } else {
      obs::write_chrome_trace(out);
    }
  }
  if (args.flag("--print-metrics")) {
    std::printf("-- metrics --\n");
    obs::Registry::instance().write_text(std::cout);
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  const ArgList args(argc - 2, argv + 2);
  if (!setup_observability(args)) return 2;
  if (!setup_kernel(args)) return 2;
  int rc;
  try {
    rc = run_command(command, args);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    XFL_LOG(error) << "command failed" << obs::kv("command", command)
                   << obs::kv("what", error.what());
    rc = 1;
  }
  return flush_observability(args, rc);
}
