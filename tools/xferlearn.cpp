// xferlearn - command-line front end for the library.
//
//   xferlearn simulate --scenario esnet|production|lmt [--seed N]
//                      [--out log.csv] [--anonymize]
//   xferlearn analyze  --log log.csv [--threshold 0.5]
//   xferlearn evaluate --log log.csv [--max-edges 30] [--min-transfers 300]
//   xferlearn train    --log log.csv --model-out model.txt
//                      [--min-edge-transfers 100]
//   xferlearn predict  (--log log.csv | --model model.txt)
//                      --src ID --dst ID --bytes BYTES
//                      [--files N] [--dirs N] [--concurrency C]
//                      [--parallelism P]
//   xferlearn export-dataset --log log.csv --src ID --dst ID --out data.csv
//
// Every subcommand works on the Globus-schema CSV produced by `simulate`
// or exported from a real transfer service.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "common/units.hpp"
#include "core/edge_model.hpp"
#include "core/pipeline.hpp"
#include "core/predictor.hpp"
#include "features/dataset.hpp"
#include "logs/anonymize.hpp"
#include "sim/scenario.hpp"

namespace {

using namespace xfl;

/// Minimal --flag value parser: returns the value after `name`, if present.
class ArgList {
 public:
  ArgList(int argc, char** argv) {
    for (int i = 0; i < argc; ++i) args_.emplace_back(argv[i]);
  }

  std::optional<std::string> value(const std::string& name) const {
    for (std::size_t i = 0; i + 1 < args_.size(); ++i)
      if (args_[i] == name) return args_[i + 1];
    return std::nullopt;
  }

  bool flag(const std::string& name) const {
    for (const auto& arg : args_)
      if (arg == name) return true;
    return false;
  }

  std::string value_or(const std::string& name, const std::string& fallback) const {
    return value(name).value_or(fallback);
  }

  double number_or(const std::string& name, double fallback) const {
    const auto v = value(name);
    return v ? std::stod(*v) : fallback;
  }

 private:
  std::vector<std::string> args_;
};

int usage() {
  std::fprintf(stderr,
               "usage: xferlearn <simulate|analyze|train|evaluate|predict|"
               "export-dataset> [options]\n"
               "run `xferlearn <command>` with no options for details in "
               "the header of tools/xferlearn.cpp\n");
  return 2;
}

logs::LogStore load_log(const ArgList& args) {
  const auto path = args.value("--log");
  if (!path) {
    std::fprintf(stderr, "error: --log <file.csv> is required\n");
    std::exit(2);
  }
  std::ifstream in(*path);
  if (!in) {
    std::fprintf(stderr, "error: cannot open %s\n", path->c_str());
    std::exit(1);
  }
  auto log = logs::LogStore::read_csv(in);
  std::printf("loaded %zu transfers from %s\n", log.size(), path->c_str());
  return log;
}

int cmd_simulate(const ArgList& args) {
  const std::string which = args.value_or("--scenario", "esnet");
  const auto seed = static_cast<std::uint64_t>(args.number_or("--seed", 0.0));

  sim::Scenario scenario;
  if (which == "esnet") {
    sim::EsnetConfig config;
    if (seed != 0) config.seed = seed;
    config.transfers = static_cast<std::size_t>(
        args.number_or("--transfers", 2000.0));
    scenario = sim::make_esnet_testbed(config);
  } else if (which == "production") {
    sim::ProductionConfig config;
    if (seed != 0) config.seed = seed;
    scenario = sim::make_production(config);
  } else if (which == "lmt") {
    sim::LmtConfig config;
    if (seed != 0) config.seed = seed;
    scenario = sim::make_nersc_lmt(config);
  } else {
    std::fprintf(stderr, "error: unknown scenario '%s'\n", which.c_str());
    return 2;
  }

  std::printf("simulating %zu transfers (%s)...\n", scenario.workload.size(),
              which.c_str());
  auto result = scenario.run();
  logs::LogStore output = std::move(result.log);
  if (args.flag("--anonymize"))
    output = logs::anonymize(output, seed == 0 ? 0x5eedULL : seed).log;

  const std::string out_path = args.value_or("--out", "transfer_log.csv");
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 1;
  }
  output.write_csv(out);
  std::printf("wrote %zu transfers to %s%s\n", output.size(), out_path.c_str(),
              args.flag("--anonymize") ? " (anonymised)" : "");
  return 0;
}

int cmd_analyze(const ArgList& args) {
  const auto log = load_log(args);
  const double threshold = args.number_or("--threshold", 0.5);
  const auto context = core::analyze_log(log, /*contention_threads=*/0);

  TextTable table;
  table.set_title("edges by usage (top 20):");
  table.set_header({"src", "dst", "transfers", "Rmax (MB/s)",
                    "above T*Rmax", "retention %"});
  const auto edges = context.log.edges_by_usage();
  for (std::size_t e = 0; e < edges.size() && e < 20; ++e) {
    const auto indices = context.log.edge_transfers(edges[e]);
    const double rmax = context.log.edge_max_rate(edges[e]);
    std::size_t qualifying = 0;
    for (const auto i : indices)
      if (context.log[i].rate_Bps() >= threshold * rmax) ++qualifying;
    table.add_row({std::to_string(edges[e].src), std::to_string(edges[e].dst),
                   std::to_string(indices.size()),
                   TextTable::num(to_mbps(rmax), 1),
                   std::to_string(qualifying),
                   TextTable::num(100.0 * static_cast<double>(qualifying) /
                                      static_cast<double>(indices.size()),
                                  1)});
  }
  table.print(stdout);

  TextTable capability_table;
  capability_table.set_title("\nendpoint capability estimates (MB/s):");
  capability_table.set_header({"endpoint", "DRmax", "DWmax", "ROmax", "RImax"});
  for (const auto& [endpoint, capability] : context.capabilities) {
    capability_table.add_row({std::to_string(endpoint),
                              TextTable::num(to_mbps(capability.dr_max_Bps), 1),
                              TextTable::num(to_mbps(capability.dw_max_Bps), 1),
                              TextTable::num(to_mbps(capability.ro_max_Bps), 1),
                              TextTable::num(to_mbps(capability.ri_max_Bps), 1)});
  }
  capability_table.print(stdout);
  return 0;
}

int cmd_evaluate(const ArgList& args) {
  const auto log = load_log(args);
  const auto context = core::analyze_log(log, /*contention_threads=*/0);
  const auto max_edges =
      static_cast<std::size_t>(args.number_or("--max-edges", 30.0));
  const auto min_transfers =
      static_cast<std::size_t>(args.number_or("--min-transfers", 300.0));
  const auto edges =
      core::select_heavy_edges(context, min_transfers, 0.5, max_edges);
  if (edges.empty()) {
    std::fprintf(stderr,
                 "no edges with >= %zu transfers above 0.5*Rmax; lower "
                 "--min-transfers\n",
                 min_transfers);
    return 1;
  }
  ThreadPool pool;
  const auto reports = core::study_edges(context, edges, {}, &pool);
  TextTable table;
  table.set_header({"edge", "samples", "LR MdAPE %", "XGB MdAPE %"});
  for (const auto& report : reports)
    table.add_row({std::to_string(report.edge.src) + "->" +
                       std::to_string(report.edge.dst),
                   std::to_string(report.samples),
                   TextTable::num(report.lr_mdape, 1),
                   TextTable::num(report.xgb_mdape, 1)});
  table.print(stdout);
  return 0;
}

int cmd_train(const ArgList& args) {
  const auto log = load_log(args);
  const auto out_path = args.value("--model-out");
  if (!out_path) {
    std::fprintf(stderr, "error: --model-out <file> is required\n");
    return 2;
  }
  core::TransferPredictor::Options options;
  options.min_edge_transfers = static_cast<std::size_t>(
      args.number_or("--min-edge-transfers", 100.0));
  core::TransferPredictor predictor(options);
  predictor.fit(log);
  std::ofstream out(*out_path);
  if (!out) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path->c_str());
    return 1;
  }
  predictor.save(out);
  std::printf("trained predictor saved to %s\n", out_path->c_str());
  return 0;
}

int cmd_predict(const ArgList& args) {
  core::PlannedTransfer planned;
  const auto src = args.value("--src");
  const auto dst = args.value("--dst");
  const auto bytes = args.value("--bytes");
  if (!src || !dst || !bytes) {
    std::fprintf(stderr, "error: --src, --dst and --bytes are required\n");
    return 2;
  }
  planned.src = static_cast<endpoint::EndpointId>(std::stoul(*src));
  planned.dst = static_cast<endpoint::EndpointId>(std::stoul(*dst));
  planned.bytes = std::stod(*bytes);
  planned.files = static_cast<std::uint64_t>(args.number_or("--files", 1.0));
  planned.dirs = static_cast<std::uint64_t>(args.number_or("--dirs", 1.0));
  planned.concurrency =
      static_cast<std::uint32_t>(args.number_or("--concurrency", 4.0));
  planned.parallelism =
      static_cast<std::uint32_t>(args.number_or("--parallelism", 4.0));

  core::TransferPredictor predictor;
  if (const auto model_path = args.value("--model")) {
    std::ifstream in(*model_path);
    if (!in) {
      std::fprintf(stderr, "error: cannot open %s\n", model_path->c_str());
      return 1;
    }
    predictor = core::TransferPredictor::load(in);
    std::printf("loaded predictor from %s\n", model_path->c_str());
  } else {
    const auto log = load_log(args);
    core::TransferPredictor::Options options;
    options.min_edge_transfers = static_cast<std::size_t>(
        args.number_or("--min-edge-transfers", 100.0));
    predictor = core::TransferPredictor(options);
    predictor.fit(log);
  }

  const logs::EdgeKey edge{planned.src, planned.dst};
  const double rate = predictor.predict_rate_mbps(planned);
  std::printf("model: %s\n",
              predictor.has_edge_model(edge) ? "per-edge" : "global fallback");
  std::printf("predicted rate:     %.1f MB/s\n", rate);
  std::printf("predicted duration: %.0f s for %s\n",
              predictor.estimate_duration_s(planned),
              format_bytes(planned.bytes).c_str());
  std::printf("top features: ");
  const auto importances = predictor.explain(edge);
  for (std::size_t i = 0; i < importances.size() && i < 5; ++i)
    std::printf("%s%s (%.2f)", i == 0 ? "" : ", ", importances[i].first.c_str(),
                importances[i].second);
  std::printf("\n");
  return 0;
}

int cmd_export_dataset(const ArgList& args) {
  const auto log = load_log(args);
  const auto src = args.value("--src");
  const auto dst = args.value("--dst");
  if (!src || !dst) {
    std::fprintf(stderr, "error: --src and --dst are required\n");
    return 2;
  }
  const logs::EdgeKey edge{
      static_cast<endpoint::EndpointId>(std::stoul(*src)),
      static_cast<endpoint::EndpointId>(std::stoul(*dst))};
  if (log.edge_count(edge) == 0) {
    std::fprintf(stderr, "error: edge %s->%s has no transfers\n", src->c_str(),
                 dst->c_str());
    return 1;
  }
  const auto contention = features::compute_contention(log);
  features::DatasetOptions options;
  options.load_threshold = args.number_or("--threshold", 0.5);
  options.include_nflt = args.flag("--with-nflt");
  const auto dataset = features::build_edge_dataset(log, contention, edge, options);

  const std::string out_path = args.value_or("--out", "dataset.csv");
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 1;
  }
  features::write_dataset_csv(dataset, out);
  std::printf("wrote %zu rows x %zu features to %s\n", dataset.rows(),
              dataset.cols(), out_path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  const ArgList args(argc - 2, argv + 2);
  try {
    if (command == "simulate") return cmd_simulate(args);
    if (command == "analyze") return cmd_analyze(args);
    if (command == "train") return cmd_train(args);
    if (command == "evaluate") return cmd_evaluate(args);
    if (command == "predict") return cmd_predict(args);
    if (command == "export-dataset") return cmd_export_dataset(args);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
  return usage();
}
