// Monitored operations: the §5.5/§8 story end to end.
//
// A site runs its transfers while monitoring (a) endpoint storage/CPU load
// LMT-style and (b) WAN path load SNMP-style. This example shows how an
// operator uses those series together with the library:
//   1. run a monitored scenario,
//   2. inspect what the monitors saw (utilisation summaries),
//   3. snapshot the live load at some instant and ask the predictor what a
//      new transfer would achieve right now — with an uncertainty band.
#include <cstdio>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "core/predictor.hpp"
#include "features/snapshot.hpp"
#include "sim/scenario.hpp"

int main() {
  using namespace xfl;

  // 1. A monitored Lustre-to-Lustre scenario (the paper's §5.5.2 setup).
  sim::LmtConfig config;
  config.test_transfers = 300;
  auto scenario = sim::make_nersc_lmt(config);
  // Also watch the LAN path between the two filesystems, SNMP-style.
  const auto src_site = scenario.endpoints[scenario.monitored_endpoints[0]].site;
  const auto dst_site = scenario.endpoints[scenario.monitored_endpoints[1]].site;
  scenario.monitored_wan_paths.push_back({src_site, dst_site});
  std::printf("simulating %zu transfers with LMT + SNMP monitoring...\n",
              scenario.workload.size());
  const auto result = scenario.run();
  std::printf("done: %zu transfers, %s moved, peak %u concurrent per endpoint\n",
              result.log.size(), format_bytes(result.stats.total_bytes).c_str(),
              result.stats.peak_active);

  // 2. What did the monitors see?
  TextTable monitor_table;
  monitor_table.set_title("\nmonitor summaries:");
  monitor_table.set_header(
      {"series", "samples", "mean", "p95", "unit"});
  for (const auto endpoint_id : scenario.monitored_endpoints) {
    const auto& samples = result.samples.at(endpoint_id);
    std::vector<double> write_load, cpu_load;
    for (const auto& sample : samples) {
      write_load.push_back(to_mbps(sample.disk_write_Bps));
      cpu_load.push_back(sample.cpu_load);
    }
    const auto& name = scenario.endpoints[endpoint_id].name;
    monitor_table.add_row({name + " OST write", std::to_string(samples.size()),
                           TextTable::num(mean(write_load), 1),
                           TextTable::num(percentile(write_load, 95.0), 1),
                           "MB/s"});
    monitor_table.add_row({name + " OSS cpu", std::to_string(samples.size()),
                           TextTable::num(mean(cpu_load), 3),
                           TextTable::num(percentile(cpu_load, 95.0), 3),
                           "frac"});
  }
  {
    const auto& wan = result.wan_samples.at({src_site, dst_site});
    std::vector<double> load;
    for (const auto& sample : wan) load.push_back(to_mbps(sample.load_Bps));
    monitor_table.add_row({"LAN path load", std::to_string(wan.size()),
                           TextTable::num(mean(load), 1),
                           TextTable::num(percentile(load, 95.0), 1), "MB/s"});
  }
  monitor_table.print(stdout);

  // 3. Live question: "if I submit 16 GB now, how long will it take?"
  core::TransferPredictor::Options options;
  options.min_edge_transfers = 150;
  core::TransferPredictor predictor(options);
  predictor.fit(result.log);

  const logs::EdgeKey edge{scenario.monitored_endpoints[0],
                           scenario.monitored_endpoints[1]};
  // Ask at three instants across the experiment.
  const double span = result.stats.makespan_s;
  std::printf("\nlive predictions for a 16 GB transfer on the test edge:\n");
  for (const double at : {0.1 * span, 0.5 * span, 0.9 * span}) {
    const auto load = features::snapshot_load(result.log, edge, at);
    core::PlannedTransfer planned;
    planned.src = edge.src;
    planned.dst = edge.dst;
    planned.bytes = 16.0 * kGB;
    planned.files = 64;
    planned.concurrency = 4;
    planned.parallelism = 2;
    const auto interval = predictor.predict_rate_interval(planned, load);
    std::printf(
        "  t=%7.0fs  active competitors: %zu  ->  %.0f MB/s "
        "[%.0f .. %.0f]  (ETA %.0f s, worst case %.0f s)\n",
        at, features::active_transfers_at(result.log, edge.src, at),
        interval.expected_mbps, interval.low_mbps, interval.high_mbps,
        planned.bytes / mbps(interval.expected_mbps),
        planned.bytes / mbps(interval.low_mbps));
  }
  std::printf(
      "\nSchedulers plan against the lower band; monitoring pages operators "
      "when observed load leaves the band the prediction assumed.\n");
  return 0;
}
