// Bottleneck explorer: explain *why* an edge performs the way it does.
//
// Combines the paper's two lenses: the §3 analytical bound (which
// subsystem caps the edge, via historical DR/DW estimates and a
// memory-to-memory probe) and the §5 data-driven view (which features the
// per-edge model leans on). Also answers the practical what-if: would
// changing C and P help?
#include <cstdio>

#include "common/table.hpp"
#include "common/units.hpp"
#include "core/analytical.hpp"
#include "core/pipeline.hpp"
#include "core/predictor.hpp"
#include "sim/probe.hpp"
#include "sim/scenario.hpp"

int main() {
  using namespace xfl;

  std::printf("simulating history...\n");
  sim::ProductionConfig config;
  config.duration_s = 5.0 * 86400.0;
  config.session_arrivals_per_s = 0.012;
  const auto scenario = sim::make_production(config);
  const auto context = core::analyze_log(scenario.run().log);

  const auto edges = core::select_heavy_edges(context, 200, 0.5, 5);
  if (edges.empty()) {
    std::printf("no heavy edges in history\n");
    return 1;
  }

  core::TransferPredictor::Options predictor_options;
  predictor_options.min_edge_transfers = 150;
  core::TransferPredictor predictor(predictor_options);
  predictor.fit(context.log);

  sim::SimConfig probe_config = scenario.sim_config;
  probe_config.enable_faults = false;

  for (const auto& edge : edges) {
    const auto& src = scenario.endpoints[edge.src];
    const auto& dst = scenario.endpoints[edge.dst];
    std::printf("\n=== %s -> %s ===\n", src.name.c_str(), dst.name.c_str());

    // Analytical lens (§3).
    core::BoundEstimate estimate;
    estimate.dr_max_Bps = context.capabilities.at(edge.src).dr_max_Bps;
    estimate.dw_max_Bps = context.capabilities.at(edge.dst).dw_max_Bps;
    sim::ProbeConfig probe;
    probe.repetitions = 3;
    estimate.mm_max_Bps = sim::measure_max_rate_Bps(
        scenario.sites, scenario.endpoints, probe_config, edge.src, edge.dst,
        sim::ProbeKind::kMemToMem, probe);
    const double observed = context.log.edge_max_rate(edge);
    const auto validation = core::validate_bound(observed, estimate);
    std::printf(
        "  Eq. 1 bound: min(DR %.0f, MM %.0f, DW %.0f) = %.0f MB/s; "
        "observed max %.0f MB/s (%.0f%% of bound)\n",
        to_mbps(estimate.dr_max_Bps), to_mbps(estimate.mm_max_Bps),
        to_mbps(estimate.dw_max_Bps), to_mbps(estimate.r_max_Bps()),
        to_mbps(observed), 100.0 * validation.ratio);
    std::printf("  limiting subsystem: %s%s\n",
                core::to_string(validation.bottleneck),
                validation.consistent
                    ? ""
                    : (validation.exceeds ? " (bound estimate too low!)"
                                          : " (edge runs below bound - "
                                            "competing load suspected)"));

    // Data-driven lens (§5).
    std::printf("  top model features: ");
    const auto importances = predictor.explain(edge);
    for (std::size_t i = 0; i < importances.size() && i < 4; ++i)
      std::printf("%s%s (%.2f)", i == 0 ? "" : ", ",
                  importances[i].first.c_str(), importances[i].second);
    std::printf("\n");

    // What-if: tunable sweep under a typical load.
    core::PlannedTransfer planned;
    planned.src = edge.src;
    planned.dst = edge.dst;
    planned.bytes = 50.0 * kGB;
    planned.files = 200;
    planned.dirs = 4;
    std::printf("  predicted MB/s for 50 GB / 200 files by (C, P):\n");
    for (const std::uint32_t c : {1u, 4u, 16u}) {
      std::printf("   ");
      for (const std::uint32_t p : {1u, 4u, 8u}) {
        planned.concurrency = c;
        planned.parallelism = p;
        std::printf("  C=%-2u P=%u: %7.1f", c, p,
                    predictor.predict_rate_mbps(planned));
      }
      std::printf("\n");
    }
  }
  return 0;
}
