// Log replay: the file-based workflow a real deployment would use.
//
//   1. Export a transfer log to CSV (here: simulated; in production, your
//      transfer service's accounting records in the same schema).
//   2. Reload it, recompute the engineered features, and print the
//      competing-load profile of the busiest edge.
//   3. Train a predictor from the file and answer a query.
//
// Usage: log_replay [path.csv]   (default: ./transfer_log.csv)
#include <cstdio>
#include <fstream>

#include "common/table.hpp"
#include "common/units.hpp"
#include "core/pipeline.hpp"
#include "core/predictor.hpp"
#include "features/contention.hpp"
#include "sim/scenario.hpp"

int main(int argc, char** argv) {
  using namespace xfl;
  const std::string path = argc > 1 ? argv[1] : "transfer_log.csv";

  // 1. Produce and export a log.
  {
    sim::EsnetConfig config;
    config.transfers = 2000;
    config.duration_s = 3.0 * 86400.0;
    const auto result = sim::make_esnet_testbed(config).run();
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return 1;
    }
    result.log.write_csv(out);
    std::printf("exported %zu transfers to %s\n", result.log.size(),
                path.c_str());
  }

  // 2. Reload and analyse - from here on, everything works exactly the
  //    same for a real exported log.
  std::ifstream in(path);
  const auto log = logs::LogStore::read_csv(in);
  std::printf("reloaded %zu transfers\n", log.size());
  const auto context = core::analyze_log(log);

  const auto edges = context.log.edges_by_usage();
  const auto& busiest = edges.front();
  std::printf("\nbusiest edge: %u -> %u (%zu transfers)\n", busiest.src,
              busiest.dst, context.log.edge_count(busiest));

  // Competing-load profile of that edge.
  double mean_load = 0.0;
  std::size_t loaded = 0;
  const auto indices = context.log.edge_transfers(busiest);
  for (const auto i : indices) {
    const double load = features::relative_external_load(
        context.log[i], context.contention[i]);
    mean_load += load;
    if (load > 0.25) ++loaded;
  }
  mean_load /= static_cast<double>(indices.size());
  std::printf("mean relative external load: %.2f; transfers above 0.25: %zu\n",
              mean_load, loaded);

  // 3. Train from the file and query.
  core::TransferPredictor::Options options;
  options.min_edge_transfers = 60;
  core::TransferPredictor predictor(options);
  predictor.fit(context.log);

  core::PlannedTransfer planned;
  planned.src = busiest.src;
  planned.dst = busiest.dst;
  planned.bytes = 25.0 * kGB;
  planned.files = 50;
  planned.concurrency = 4;
  planned.parallelism = 4;
  std::printf("\npredicted rate for 25 GB on the busiest edge: %.1f MB/s\n",
              predictor.predict_rate_mbps(planned));
  return 0;
}
