// Workflow scheduler: the paper's motivating application ("Our predictions
// can be used for distributed workflow scheduling and optimization").
//
// A dataset is replicated at several source endpoints; a workflow needs it
// at one destination. The scheduler queries the trained predictor for the
// expected rate from each replica under the currently observed competing
// load and picks the fastest source, then validates the choices against
// the simulator's ground truth.
#include <cstdio>
#include <vector>

#include "common/table.hpp"
#include "common/units.hpp"
#include "core/pipeline.hpp"
#include "core/predictor.hpp"
#include "sim/scenario.hpp"

int main() {
  using namespace xfl;

  // 1. History: a production-like log to learn from.
  std::printf("simulating training history...\n");
  sim::ProductionConfig history_config;
  history_config.duration_s = 5.0 * 86400.0;
  history_config.session_arrivals_per_s = 0.012;
  const auto scenario = sim::make_production(history_config);
  const auto history = scenario.run();

  core::TransferPredictor::Options options;
  options.min_edge_transfers = 150;
  core::TransferPredictor predictor(options);
  predictor.fit(history.log);
  std::printf("predictor trained on %zu transfers\n\n", history.log.size());

  // 2. The scheduling question: pull 200 GB to ALCF from one of three
  //    replicas. The NERSC replica's endpoint currently serves heavy
  //    outgoing load; the others are quiet.
  endpoint::EndpointId alcf = 0, nersc = 0, ornl = 0, tacc = 0;
  scenario.endpoints.find("ALCF-dtn", alcf);
  scenario.endpoints.find("NERSC-dtn", nersc);
  scenario.endpoints.find("ORNL-dtn", ornl);
  scenario.endpoints.find("TACC-dtn", tacc);

  struct Replica {
    const char* name;
    endpoint::EndpointId endpoint;
    features::ContentionFeatures load;  // What the scheduler observes now.
  };
  std::vector<Replica> replicas = {{"NERSC-dtn", nersc, {}},
                                   {"ORNL-dtn", ornl, {}},
                                   {"TACC-dtn", tacc, {}}};
  replicas[0].load.k_sout = mbps(700.0);  // NERSC busy on the source side.
  replicas[0].load.g_src = 24.0;
  replicas[0].load.s_sout = 96.0;

  core::PlannedTransfer planned;
  planned.dst = alcf;
  planned.bytes = 200.0 * kGB;
  planned.files = 100;
  planned.dirs = 4;
  planned.concurrency = 8;
  planned.parallelism = 4;

  TextTable table;
  table.set_title("Replica selection for 200 GB -> ALCF-dtn:");
  table.set_header({"replica", "predicted MB/s", "predicted ETA (s)"});
  const Replica* best = nullptr;
  double best_rate = 0.0;
  for (const auto& replica : replicas) {
    planned.src = replica.endpoint;
    const double rate = predictor.predict_rate_mbps(planned, replica.load);
    table.add_row({replica.name, TextTable::num(rate, 1),
                   TextTable::num(planned.bytes / mbps(rate), 0)});
    if (rate > best_rate) {
      best_rate = rate;
      best = &replica;
    }
  }
  table.print(stdout);
  std::printf("\nscheduler picks: %s\n", best->name);

  // 3. Ground truth: run the chosen and the busiest alternatives in the
  //    simulator with equivalent competing load and compare.
  std::printf("\nvalidating against the simulator:\n");
  for (const auto& replica : replicas) {
    sim::Simulator validator(scenario.sites, scenario.endpoints,
                             scenario.sim_config);
    // Reproduce the observed source load as a competing transfer.
    if (replica.load.k_sout > 0.0) {
      sim::TransferRequest competitor;
      competitor.id = 99;
      competitor.src = replica.endpoint;
      competitor.dst = tacc == replica.endpoint ? ornl : tacc;
      competitor.submit_s = 0.0;
      competitor.bytes = 2.0e12;  // Long-lived background transfer.
      competitor.files = 1000;
      competitor.params.concurrency = 24;
      competitor.params.parallelism = 4;
      validator.submit(competitor);
    }
    sim::TransferRequest request;
    request.id = 1;
    request.src = replica.endpoint;
    request.dst = alcf;
    request.submit_s = 10.0;
    request.bytes = planned.bytes;
    request.files = planned.files;
    request.dirs = planned.dirs;
    request.params.concurrency = planned.concurrency;
    request.params.parallelism = planned.parallelism;
    validator.submit(request);
    const auto result = validator.run();
    for (const auto& record : result.log.records()) {
      if (record.id != 1) continue;
      std::printf("  from %-10s actual %7.1f MB/s (%.0f s)\n", replica.name,
                  to_mbps(record.rate_Bps()), record.duration_s());
    }
  }
  std::printf(
      "\nThe replica ranked fastest by the model should also finish first "
      "in the ground-truth simulation.\n");
  return 0;
}
