// Quickstart: simulate a small Globus-like workload, engineer features,
// train a predictor, and query it — the library's core loop in ~80 lines.
//
// Build & run:   cmake -B build -G Ninja && cmake --build build
//                ./build/examples/quickstart
#include <cstdio>

#include "common/table.hpp"
#include "common/units.hpp"
#include "core/pipeline.hpp"
#include "core/predictor.hpp"
#include "features/contention.hpp"
#include "sim/scenario.hpp"

int main() {
  using namespace xfl;

  // 1. Simulate the ESnet-like testbed with a competing workload. In real
  //    deployments this log would come from the transfer service instead.
  std::printf("Simulating testbed workload...\n");
  sim::EsnetConfig config;
  config.transfers = 1500;
  config.duration_s = 2.0 * 86400.0;
  const sim::Scenario scenario = sim::make_esnet_testbed(config);
  const sim::SimResult result = scenario.run();
  std::printf("  %zu transfers completed\n", result.log.size());

  // 2. Engineer features (overlap-weighted competing load etc.).
  const core::AnalysisContext context = core::analyze_log(result.log);

  // 3. Train the predictor: per-edge gradient-boosting models plus the
  //    global fallback model with endpoint-capability features.
  core::TransferPredictor::Options options;
  options.min_edge_transfers = 60;
  core::TransferPredictor predictor(options);
  predictor.fit(context.log);

  // 4. Ask it questions.
  core::PlannedTransfer planned;
  planned.src = 0;  // ANL-dtn
  planned.dst = 1;  // BNL-dtn
  planned.bytes = 50.0 * kGB;
  planned.files = 25;
  planned.dirs = 1;
  planned.concurrency = 4;
  planned.parallelism = 4;

  const double idle_rate = predictor.predict_rate_mbps(planned);
  features::ContentionFeatures busy;
  busy.k_sout = mbps(600.0);  // 600 MB/s of competing outgoing traffic.
  busy.g_src = 12.0;
  busy.s_sout = 48.0;
  const double busy_rate = predictor.predict_rate_mbps(planned, busy);

  std::printf("\nPredicted rate for 50 GB ANL->BNL (C=4, P=4):\n");
  std::printf("  idle endpoints : %8.1f MB/s (~%.0f s)\n", idle_rate,
              planned.bytes / mbps(idle_rate));
  std::printf("  busy source    : %8.1f MB/s (~%.0f s)\n", busy_rate,
              planned.bytes / mbps(busy_rate));

  // 5. Explain what drives this edge.
  TextTable table;
  table.set_title("\nTop feature importances (ANL->BNL model):");
  table.set_header({"feature", "importance"});
  const auto importances = predictor.explain({planned.src, planned.dst});
  for (std::size_t i = 0; i < importances.size() && i < 6; ++i)
    table.add_row({importances[i].first,
                   TextTable::num(importances[i].second, 3)});
  std::printf("%s", table.to_string().c_str());
  return 0;
}
