file(REMOVE_RECURSE
  "CMakeFiles/test_admission_wan.dir/test_admission_wan.cpp.o"
  "CMakeFiles/test_admission_wan.dir/test_admission_wan.cpp.o.d"
  "test_admission_wan"
  "test_admission_wan.pdb"
  "test_admission_wan[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_admission_wan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
