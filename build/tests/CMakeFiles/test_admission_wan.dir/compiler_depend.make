# Empty compiler generated dependencies file for test_admission_wan.
# This may be replaced when dependencies are built.
