file(REMOVE_RECURSE
  "CMakeFiles/test_anonymize_export.dir/test_anonymize_export.cpp.o"
  "CMakeFiles/test_anonymize_export.dir/test_anonymize_export.cpp.o.d"
  "test_anonymize_export"
  "test_anonymize_export.pdb"
  "test_anonymize_export[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_anonymize_export.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
