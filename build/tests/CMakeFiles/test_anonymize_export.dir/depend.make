# Empty dependencies file for test_anonymize_export.
# This may be replaced when dependencies are built.
