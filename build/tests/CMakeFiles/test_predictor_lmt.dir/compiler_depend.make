# Empty compiler generated dependencies file for test_predictor_lmt.
# This may be replaced when dependencies are built.
