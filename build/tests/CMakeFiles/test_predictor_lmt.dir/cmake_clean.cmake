file(REMOVE_RECURSE
  "CMakeFiles/test_predictor_lmt.dir/test_predictor_lmt.cpp.o"
  "CMakeFiles/test_predictor_lmt.dir/test_predictor_lmt.cpp.o.d"
  "test_predictor_lmt"
  "test_predictor_lmt.pdb"
  "test_predictor_lmt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_predictor_lmt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
