file(REMOVE_RECURSE
  "CMakeFiles/test_mic_correlation.dir/test_mic_correlation.cpp.o"
  "CMakeFiles/test_mic_correlation.dir/test_mic_correlation.cpp.o.d"
  "test_mic_correlation"
  "test_mic_correlation.pdb"
  "test_mic_correlation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mic_correlation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
