file(REMOVE_RECURSE
  "CMakeFiles/test_snapshot_interval.dir/test_snapshot_interval.cpp.o"
  "CMakeFiles/test_snapshot_interval.dir/test_snapshot_interval.cpp.o.d"
  "test_snapshot_interval"
  "test_snapshot_interval.pdb"
  "test_snapshot_interval[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_snapshot_interval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
