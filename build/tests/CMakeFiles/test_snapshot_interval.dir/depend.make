# Empty dependencies file for test_snapshot_interval.
# This may be replaced when dependencies are built.
