file(REMOVE_RECURSE
  "CMakeFiles/test_matrix_linreg.dir/test_matrix_linreg.cpp.o"
  "CMakeFiles/test_matrix_linreg.dir/test_matrix_linreg.cpp.o.d"
  "test_matrix_linreg"
  "test_matrix_linreg.pdb"
  "test_matrix_linreg[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_matrix_linreg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
