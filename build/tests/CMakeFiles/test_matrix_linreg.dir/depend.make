# Empty dependencies file for test_matrix_linreg.
# This may be replaced when dependencies are built.
