file(REMOVE_RECURSE
  "CMakeFiles/test_probe_scenario.dir/test_probe_scenario.cpp.o"
  "CMakeFiles/test_probe_scenario.dir/test_probe_scenario.cpp.o.d"
  "test_probe_scenario"
  "test_probe_scenario.pdb"
  "test_probe_scenario[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_probe_scenario.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
