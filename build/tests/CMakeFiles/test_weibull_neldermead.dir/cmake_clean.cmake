file(REMOVE_RECURSE
  "CMakeFiles/test_weibull_neldermead.dir/test_weibull_neldermead.cpp.o"
  "CMakeFiles/test_weibull_neldermead.dir/test_weibull_neldermead.cpp.o.d"
  "test_weibull_neldermead"
  "test_weibull_neldermead.pdb"
  "test_weibull_neldermead[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_weibull_neldermead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
