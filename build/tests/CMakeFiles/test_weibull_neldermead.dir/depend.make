# Empty dependencies file for test_weibull_neldermead.
# This may be replaced when dependencies are built.
