
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_dataset.cpp" "tests/CMakeFiles/test_dataset.dir/test_dataset.cpp.o" "gcc" "tests/CMakeFiles/test_dataset.dir/test_dataset.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/xfl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/features/CMakeFiles/xfl_features.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/xfl_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/xfl_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/logs/CMakeFiles/xfl_logs.dir/DependInfo.cmake"
  "/root/repo/build/src/endpoint/CMakeFiles/xfl_endpoint.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/xfl_net.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/xfl_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/xfl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
