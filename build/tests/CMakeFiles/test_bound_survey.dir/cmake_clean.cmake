file(REMOVE_RECURSE
  "CMakeFiles/test_bound_survey.dir/test_bound_survey.cpp.o"
  "CMakeFiles/test_bound_survey.dir/test_bound_survey.cpp.o.d"
  "test_bound_survey"
  "test_bound_survey.pdb"
  "test_bound_survey[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bound_survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
