# Empty dependencies file for test_bound_survey.
# This may be replaced when dependencies are built.
