# Empty dependencies file for test_site_path.
# This may be replaced when dependencies are built.
