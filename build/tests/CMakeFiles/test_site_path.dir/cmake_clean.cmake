file(REMOVE_RECURSE
  "CMakeFiles/test_site_path.dir/test_site_path.cpp.o"
  "CMakeFiles/test_site_path.dir/test_site_path.cpp.o.d"
  "test_site_path"
  "test_site_path.pdb"
  "test_site_path[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_site_path.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
