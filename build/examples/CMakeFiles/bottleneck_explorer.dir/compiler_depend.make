# Empty compiler generated dependencies file for bottleneck_explorer.
# This may be replaced when dependencies are built.
