file(REMOVE_RECURSE
  "CMakeFiles/bottleneck_explorer.dir/bottleneck_explorer.cpp.o"
  "CMakeFiles/bottleneck_explorer.dir/bottleneck_explorer.cpp.o.d"
  "bottleneck_explorer"
  "bottleneck_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bottleneck_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
