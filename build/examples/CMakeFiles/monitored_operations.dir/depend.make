# Empty dependencies file for monitored_operations.
# This may be replaced when dependencies are built.
