file(REMOVE_RECURSE
  "CMakeFiles/monitored_operations.dir/monitored_operations.cpp.o"
  "CMakeFiles/monitored_operations.dir/monitored_operations.cpp.o.d"
  "monitored_operations"
  "monitored_operations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monitored_operations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
