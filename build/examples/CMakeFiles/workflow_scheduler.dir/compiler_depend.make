# Empty compiler generated dependencies file for workflow_scheduler.
# This may be replaced when dependencies are built.
