file(REMOVE_RECURSE
  "CMakeFiles/workflow_scheduler.dir/workflow_scheduler.cpp.o"
  "CMakeFiles/workflow_scheduler.dir/workflow_scheduler.cpp.o.d"
  "workflow_scheduler"
  "workflow_scheduler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workflow_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
