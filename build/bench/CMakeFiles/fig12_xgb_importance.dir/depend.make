# Empty dependencies file for fig12_xgb_importance.
# This may be replaced when dependencies are built.
