file(REMOVE_RECURSE
  "CMakeFiles/fig12_xgb_importance.dir/fig12_xgb_importance.cpp.o"
  "CMakeFiles/fig12_xgb_importance.dir/fig12_xgb_importance.cpp.o.d"
  "fig12_xgb_importance"
  "fig12_xgb_importance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_xgb_importance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
