file(REMOVE_RECURSE
  "CMakeFiles/sec552_lmt_features.dir/sec552_lmt_features.cpp.o"
  "CMakeFiles/sec552_lmt_features.dir/sec552_lmt_features.cpp.o.d"
  "sec552_lmt_features"
  "sec552_lmt_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec552_lmt_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
