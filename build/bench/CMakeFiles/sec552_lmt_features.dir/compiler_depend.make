# Empty compiler generated dependencies file for sec552_lmt_features.
# This may be replaced when dependencies are built.
