file(REMOVE_RECURSE
  "CMakeFiles/sec32_bound_validation.dir/sec32_bound_validation.cpp.o"
  "CMakeFiles/sec32_bound_validation.dir/sec32_bound_validation.cpp.o.d"
  "sec32_bound_validation"
  "sec32_bound_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec32_bound_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
