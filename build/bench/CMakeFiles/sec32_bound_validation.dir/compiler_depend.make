# Empty compiler generated dependencies file for sec32_bound_validation.
# This may be replaced when dependencies are built.
