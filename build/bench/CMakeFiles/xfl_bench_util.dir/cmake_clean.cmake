file(REMOVE_RECURSE
  "../lib/libxfl_bench_util.a"
  "../lib/libxfl_bench_util.pdb"
  "CMakeFiles/xfl_bench_util.dir/bench_util.cpp.o"
  "CMakeFiles/xfl_bench_util.dir/bench_util.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xfl_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
