# Empty dependencies file for xfl_bench_util.
# This may be replaced when dependencies are built.
