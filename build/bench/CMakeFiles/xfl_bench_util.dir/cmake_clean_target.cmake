file(REMOVE_RECURSE
  "../lib/libxfl_bench_util.a"
)
