file(REMOVE_RECURSE
  "CMakeFiles/fig13_threshold_study.dir/fig13_threshold_study.cpp.o"
  "CMakeFiles/fig13_threshold_study.dir/fig13_threshold_study.cpp.o.d"
  "fig13_threshold_study"
  "fig13_threshold_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_threshold_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
