# Empty dependencies file for fig10_error_distributions.
# This may be replaced when dependencies are built.
