file(REMOVE_RECURSE
  "CMakeFiles/fig10_error_distributions.dir/fig10_error_distributions.cpp.o"
  "CMakeFiles/fig10_error_distributions.dir/fig10_error_distributions.cpp.o.d"
  "fig10_error_distributions"
  "fig10_error_distributions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_error_distributions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
