file(REMOVE_RECURSE
  "CMakeFiles/fig04_concurrency_weibull.dir/fig04_concurrency_weibull.cpp.o"
  "CMakeFiles/fig04_concurrency_weibull.dir/fig04_concurrency_weibull.cpp.o.d"
  "fig04_concurrency_weibull"
  "fig04_concurrency_weibull.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_concurrency_weibull.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
