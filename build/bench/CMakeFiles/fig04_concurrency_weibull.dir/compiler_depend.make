# Empty compiler generated dependencies file for fig04_concurrency_weibull.
# This may be replaced when dependencies are built.
