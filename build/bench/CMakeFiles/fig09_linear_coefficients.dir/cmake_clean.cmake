file(REMOVE_RECURSE
  "CMakeFiles/fig09_linear_coefficients.dir/fig09_linear_coefficients.cpp.o"
  "CMakeFiles/fig09_linear_coefficients.dir/fig09_linear_coefficients.cpp.o.d"
  "fig09_linear_coefficients"
  "fig09_linear_coefficients.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_linear_coefficients.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
