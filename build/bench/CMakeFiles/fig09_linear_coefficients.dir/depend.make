# Empty dependencies file for fig09_linear_coefficients.
# This may be replaced when dependencies are built.
