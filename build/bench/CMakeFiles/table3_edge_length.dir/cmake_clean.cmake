file(REMOVE_RECURSE
  "CMakeFiles/table3_edge_length.dir/table3_edge_length.cpp.o"
  "CMakeFiles/table3_edge_length.dir/table3_edge_length.cpp.o.d"
  "table3_edge_length"
  "table3_edge_length.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_edge_length.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
