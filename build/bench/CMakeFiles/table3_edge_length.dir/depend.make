# Empty dependencies file for table3_edge_length.
# This may be replaced when dependencies are built.
