# Empty compiler generated dependencies file for fig03_external_load_esnet.
# This may be replaced when dependencies are built.
