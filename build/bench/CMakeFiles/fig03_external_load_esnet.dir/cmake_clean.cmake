file(REMOVE_RECURSE
  "CMakeFiles/fig03_external_load_esnet.dir/fig03_external_load_esnet.cpp.o"
  "CMakeFiles/fig03_external_load_esnet.dir/fig03_external_load_esnet.cpp.o.d"
  "fig03_external_load_esnet"
  "fig03_external_load_esnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_external_load_esnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
