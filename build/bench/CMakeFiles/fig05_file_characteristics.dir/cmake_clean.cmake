file(REMOVE_RECURSE
  "CMakeFiles/fig05_file_characteristics.dir/fig05_file_characteristics.cpp.o"
  "CMakeFiles/fig05_file_characteristics.dir/fig05_file_characteristics.cpp.o.d"
  "fig05_file_characteristics"
  "fig05_file_characteristics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_file_characteristics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
