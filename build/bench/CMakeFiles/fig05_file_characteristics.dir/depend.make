# Empty dependencies file for fig05_file_characteristics.
# This may be replaced when dependencies are built.
