# Empty dependencies file for ablation_background.
# This may be replaced when dependencies are built.
