file(REMOVE_RECURSE
  "CMakeFiles/ablation_background.dir/ablation_background.cpp.o"
  "CMakeFiles/ablation_background.dir/ablation_background.cpp.o.d"
  "ablation_background"
  "ablation_background.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_background.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
