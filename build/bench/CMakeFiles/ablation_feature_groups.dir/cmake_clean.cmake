file(REMOVE_RECURSE
  "CMakeFiles/ablation_feature_groups.dir/ablation_feature_groups.cpp.o"
  "CMakeFiles/ablation_feature_groups.dir/ablation_feature_groups.cpp.o.d"
  "ablation_feature_groups"
  "ablation_feature_groups.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_feature_groups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
