# Empty dependencies file for ablation_feature_groups.
# This may be replaced when dependencies are built.
