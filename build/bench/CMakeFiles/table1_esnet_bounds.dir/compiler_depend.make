# Empty compiler generated dependencies file for table1_esnet_bounds.
# This may be replaced when dependencies are built.
