file(REMOVE_RECURSE
  "CMakeFiles/table1_esnet_bounds.dir/table1_esnet_bounds.cpp.o"
  "CMakeFiles/table1_esnet_bounds.dir/table1_esnet_bounds.cpp.o.d"
  "table1_esnet_bounds"
  "table1_esnet_bounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_esnet_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
