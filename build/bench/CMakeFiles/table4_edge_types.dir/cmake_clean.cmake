file(REMOVE_RECURSE
  "CMakeFiles/table4_edge_types.dir/table4_edge_types.cpp.o"
  "CMakeFiles/table4_edge_types.dir/table4_edge_types.cpp.o.d"
  "table4_edge_types"
  "table4_edge_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_edge_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
