# Empty compiler generated dependencies file for table4_edge_types.
# This may be replaced when dependencies are built.
