# Empty dependencies file for table5_cc_mic.
# This may be replaced when dependencies are built.
