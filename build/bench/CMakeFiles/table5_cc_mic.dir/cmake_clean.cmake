file(REMOVE_RECURSE
  "CMakeFiles/table5_cc_mic.dir/table5_cc_mic.cpp.o"
  "CMakeFiles/table5_cc_mic.dir/table5_cc_mic.cpp.o.d"
  "table5_cc_mic"
  "table5_cc_mic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_cc_mic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
