# Empty compiler generated dependencies file for fig08_external_load_production.
# This may be replaced when dependencies are built.
