file(REMOVE_RECURSE
  "CMakeFiles/fig08_external_load_production.dir/fig08_external_load_production.cpp.o"
  "CMakeFiles/fig08_external_load_production.dir/fig08_external_load_production.cpp.o.d"
  "fig08_external_load_production"
  "fig08_external_load_production.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_external_load_production.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
