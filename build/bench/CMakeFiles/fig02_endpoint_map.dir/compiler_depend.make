# Empty compiler generated dependencies file for fig02_endpoint_map.
# This may be replaced when dependencies are built.
