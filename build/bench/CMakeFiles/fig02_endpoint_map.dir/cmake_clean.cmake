file(REMOVE_RECURSE
  "CMakeFiles/fig02_endpoint_map.dir/fig02_endpoint_map.cpp.o"
  "CMakeFiles/fig02_endpoint_map.dir/fig02_endpoint_map.cpp.o.d"
  "fig02_endpoint_map"
  "fig02_endpoint_map.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_endpoint_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
