# Empty compiler generated dependencies file for fig06_size_distance.
# This may be replaced when dependencies are built.
