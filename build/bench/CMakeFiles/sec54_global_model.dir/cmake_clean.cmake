file(REMOVE_RECURSE
  "CMakeFiles/sec54_global_model.dir/sec54_global_model.cpp.o"
  "CMakeFiles/sec54_global_model.dir/sec54_global_model.cpp.o.d"
  "sec54_global_model"
  "sec54_global_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec54_global_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
