# Empty dependencies file for sec54_global_model.
# This may be replaced when dependencies are built.
