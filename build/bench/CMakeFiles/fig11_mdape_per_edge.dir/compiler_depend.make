# Empty compiler generated dependencies file for fig11_mdape_per_edge.
# This may be replaced when dependencies are built.
