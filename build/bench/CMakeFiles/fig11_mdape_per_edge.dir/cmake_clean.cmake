file(REMOVE_RECURSE
  "CMakeFiles/fig11_mdape_per_edge.dir/fig11_mdape_per_edge.cpp.o"
  "CMakeFiles/fig11_mdape_per_edge.dir/fig11_mdape_per_edge.cpp.o.d"
  "fig11_mdape_per_edge"
  "fig11_mdape_per_edge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_mdape_per_edge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
