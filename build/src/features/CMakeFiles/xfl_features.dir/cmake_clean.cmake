file(REMOVE_RECURSE
  "CMakeFiles/xfl_features.dir/contention.cpp.o"
  "CMakeFiles/xfl_features.dir/contention.cpp.o.d"
  "CMakeFiles/xfl_features.dir/dataset.cpp.o"
  "CMakeFiles/xfl_features.dir/dataset.cpp.o.d"
  "CMakeFiles/xfl_features.dir/endpoint_stats.cpp.o"
  "CMakeFiles/xfl_features.dir/endpoint_stats.cpp.o.d"
  "CMakeFiles/xfl_features.dir/snapshot.cpp.o"
  "CMakeFiles/xfl_features.dir/snapshot.cpp.o.d"
  "libxfl_features.a"
  "libxfl_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xfl_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
