
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/features/contention.cpp" "src/features/CMakeFiles/xfl_features.dir/contention.cpp.o" "gcc" "src/features/CMakeFiles/xfl_features.dir/contention.cpp.o.d"
  "/root/repo/src/features/dataset.cpp" "src/features/CMakeFiles/xfl_features.dir/dataset.cpp.o" "gcc" "src/features/CMakeFiles/xfl_features.dir/dataset.cpp.o.d"
  "/root/repo/src/features/endpoint_stats.cpp" "src/features/CMakeFiles/xfl_features.dir/endpoint_stats.cpp.o" "gcc" "src/features/CMakeFiles/xfl_features.dir/endpoint_stats.cpp.o.d"
  "/root/repo/src/features/snapshot.cpp" "src/features/CMakeFiles/xfl_features.dir/snapshot.cpp.o" "gcc" "src/features/CMakeFiles/xfl_features.dir/snapshot.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/xfl_common.dir/DependInfo.cmake"
  "/root/repo/build/src/logs/CMakeFiles/xfl_logs.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/xfl_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/endpoint/CMakeFiles/xfl_endpoint.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/xfl_net.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/xfl_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
