# Empty dependencies file for xfl_features.
# This may be replaced when dependencies are built.
