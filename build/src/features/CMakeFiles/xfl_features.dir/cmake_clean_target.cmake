file(REMOVE_RECURSE
  "libxfl_features.a"
)
