file(REMOVE_RECURSE
  "libxfl_common.a"
)
