file(REMOVE_RECURSE
  "CMakeFiles/xfl_common.dir/csv.cpp.o"
  "CMakeFiles/xfl_common.dir/csv.cpp.o.d"
  "CMakeFiles/xfl_common.dir/geo.cpp.o"
  "CMakeFiles/xfl_common.dir/geo.cpp.o.d"
  "CMakeFiles/xfl_common.dir/rng.cpp.o"
  "CMakeFiles/xfl_common.dir/rng.cpp.o.d"
  "CMakeFiles/xfl_common.dir/stats.cpp.o"
  "CMakeFiles/xfl_common.dir/stats.cpp.o.d"
  "CMakeFiles/xfl_common.dir/table.cpp.o"
  "CMakeFiles/xfl_common.dir/table.cpp.o.d"
  "CMakeFiles/xfl_common.dir/thread_pool.cpp.o"
  "CMakeFiles/xfl_common.dir/thread_pool.cpp.o.d"
  "CMakeFiles/xfl_common.dir/units.cpp.o"
  "CMakeFiles/xfl_common.dir/units.cpp.o.d"
  "libxfl_common.a"
  "libxfl_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xfl_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
