# Empty compiler generated dependencies file for xfl_common.
# This may be replaced when dependencies are built.
