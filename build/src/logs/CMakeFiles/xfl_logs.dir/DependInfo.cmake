
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/logs/anonymize.cpp" "src/logs/CMakeFiles/xfl_logs.dir/anonymize.cpp.o" "gcc" "src/logs/CMakeFiles/xfl_logs.dir/anonymize.cpp.o.d"
  "/root/repo/src/logs/log_store.cpp" "src/logs/CMakeFiles/xfl_logs.dir/log_store.cpp.o" "gcc" "src/logs/CMakeFiles/xfl_logs.dir/log_store.cpp.o.d"
  "/root/repo/src/logs/record.cpp" "src/logs/CMakeFiles/xfl_logs.dir/record.cpp.o" "gcc" "src/logs/CMakeFiles/xfl_logs.dir/record.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/xfl_common.dir/DependInfo.cmake"
  "/root/repo/build/src/endpoint/CMakeFiles/xfl_endpoint.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/xfl_net.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/xfl_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
