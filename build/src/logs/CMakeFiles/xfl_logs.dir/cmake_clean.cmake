file(REMOVE_RECURSE
  "CMakeFiles/xfl_logs.dir/anonymize.cpp.o"
  "CMakeFiles/xfl_logs.dir/anonymize.cpp.o.d"
  "CMakeFiles/xfl_logs.dir/log_store.cpp.o"
  "CMakeFiles/xfl_logs.dir/log_store.cpp.o.d"
  "CMakeFiles/xfl_logs.dir/record.cpp.o"
  "CMakeFiles/xfl_logs.dir/record.cpp.o.d"
  "libxfl_logs.a"
  "libxfl_logs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xfl_logs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
