# Empty compiler generated dependencies file for xfl_logs.
# This may be replaced when dependencies are built.
