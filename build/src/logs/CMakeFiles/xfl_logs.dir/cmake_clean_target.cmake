file(REMOVE_RECURSE
  "libxfl_logs.a"
)
