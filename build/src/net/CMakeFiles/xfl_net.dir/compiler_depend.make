# Empty compiler generated dependencies file for xfl_net.
# This may be replaced when dependencies are built.
