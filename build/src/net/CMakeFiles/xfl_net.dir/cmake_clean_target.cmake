file(REMOVE_RECURSE
  "libxfl_net.a"
)
