file(REMOVE_RECURSE
  "CMakeFiles/xfl_net.dir/path.cpp.o"
  "CMakeFiles/xfl_net.dir/path.cpp.o.d"
  "CMakeFiles/xfl_net.dir/site.cpp.o"
  "CMakeFiles/xfl_net.dir/site.cpp.o.d"
  "CMakeFiles/xfl_net.dir/tcp_model.cpp.o"
  "CMakeFiles/xfl_net.dir/tcp_model.cpp.o.d"
  "libxfl_net.a"
  "libxfl_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xfl_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
