# Empty dependencies file for xfl_sim.
# This may be replaced when dependencies are built.
