file(REMOVE_RECURSE
  "CMakeFiles/xfl_sim.dir/probe.cpp.o"
  "CMakeFiles/xfl_sim.dir/probe.cpp.o.d"
  "CMakeFiles/xfl_sim.dir/resources.cpp.o"
  "CMakeFiles/xfl_sim.dir/resources.cpp.o.d"
  "CMakeFiles/xfl_sim.dir/scenario.cpp.o"
  "CMakeFiles/xfl_sim.dir/scenario.cpp.o.d"
  "CMakeFiles/xfl_sim.dir/simulator.cpp.o"
  "CMakeFiles/xfl_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/xfl_sim.dir/workload.cpp.o"
  "CMakeFiles/xfl_sim.dir/workload.cpp.o.d"
  "libxfl_sim.a"
  "libxfl_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xfl_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
