
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/probe.cpp" "src/sim/CMakeFiles/xfl_sim.dir/probe.cpp.o" "gcc" "src/sim/CMakeFiles/xfl_sim.dir/probe.cpp.o.d"
  "/root/repo/src/sim/resources.cpp" "src/sim/CMakeFiles/xfl_sim.dir/resources.cpp.o" "gcc" "src/sim/CMakeFiles/xfl_sim.dir/resources.cpp.o.d"
  "/root/repo/src/sim/scenario.cpp" "src/sim/CMakeFiles/xfl_sim.dir/scenario.cpp.o" "gcc" "src/sim/CMakeFiles/xfl_sim.dir/scenario.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/sim/CMakeFiles/xfl_sim.dir/simulator.cpp.o" "gcc" "src/sim/CMakeFiles/xfl_sim.dir/simulator.cpp.o.d"
  "/root/repo/src/sim/workload.cpp" "src/sim/CMakeFiles/xfl_sim.dir/workload.cpp.o" "gcc" "src/sim/CMakeFiles/xfl_sim.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/xfl_common.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/xfl_net.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/xfl_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/endpoint/CMakeFiles/xfl_endpoint.dir/DependInfo.cmake"
  "/root/repo/build/src/logs/CMakeFiles/xfl_logs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
