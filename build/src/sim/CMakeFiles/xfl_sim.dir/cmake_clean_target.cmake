file(REMOVE_RECURSE
  "libxfl_sim.a"
)
