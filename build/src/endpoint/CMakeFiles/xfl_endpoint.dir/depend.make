# Empty dependencies file for xfl_endpoint.
# This may be replaced when dependencies are built.
