file(REMOVE_RECURSE
  "libxfl_endpoint.a"
)
