
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/endpoint/endpoint.cpp" "src/endpoint/CMakeFiles/xfl_endpoint.dir/endpoint.cpp.o" "gcc" "src/endpoint/CMakeFiles/xfl_endpoint.dir/endpoint.cpp.o.d"
  "/root/repo/src/endpoint/gridftp.cpp" "src/endpoint/CMakeFiles/xfl_endpoint.dir/gridftp.cpp.o" "gcc" "src/endpoint/CMakeFiles/xfl_endpoint.dir/gridftp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/xfl_common.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/xfl_net.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/xfl_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
