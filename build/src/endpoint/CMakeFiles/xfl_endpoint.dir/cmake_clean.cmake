file(REMOVE_RECURSE
  "CMakeFiles/xfl_endpoint.dir/endpoint.cpp.o"
  "CMakeFiles/xfl_endpoint.dir/endpoint.cpp.o.d"
  "CMakeFiles/xfl_endpoint.dir/gridftp.cpp.o"
  "CMakeFiles/xfl_endpoint.dir/gridftp.cpp.o.d"
  "libxfl_endpoint.a"
  "libxfl_endpoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xfl_endpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
