# Empty dependencies file for xfl_ml.
# This may be replaced when dependencies are built.
