file(REMOVE_RECURSE
  "libxfl_ml.a"
)
