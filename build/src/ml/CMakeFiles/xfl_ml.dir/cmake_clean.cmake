file(REMOVE_RECURSE
  "CMakeFiles/xfl_ml.dir/correlation.cpp.o"
  "CMakeFiles/xfl_ml.dir/correlation.cpp.o.d"
  "CMakeFiles/xfl_ml.dir/gbt.cpp.o"
  "CMakeFiles/xfl_ml.dir/gbt.cpp.o.d"
  "CMakeFiles/xfl_ml.dir/linreg.cpp.o"
  "CMakeFiles/xfl_ml.dir/linreg.cpp.o.d"
  "CMakeFiles/xfl_ml.dir/matrix.cpp.o"
  "CMakeFiles/xfl_ml.dir/matrix.cpp.o.d"
  "CMakeFiles/xfl_ml.dir/metrics.cpp.o"
  "CMakeFiles/xfl_ml.dir/metrics.cpp.o.d"
  "CMakeFiles/xfl_ml.dir/mic.cpp.o"
  "CMakeFiles/xfl_ml.dir/mic.cpp.o.d"
  "CMakeFiles/xfl_ml.dir/neldermead.cpp.o"
  "CMakeFiles/xfl_ml.dir/neldermead.cpp.o.d"
  "CMakeFiles/xfl_ml.dir/scaler.cpp.o"
  "CMakeFiles/xfl_ml.dir/scaler.cpp.o.d"
  "CMakeFiles/xfl_ml.dir/weibull.cpp.o"
  "CMakeFiles/xfl_ml.dir/weibull.cpp.o.d"
  "libxfl_ml.a"
  "libxfl_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xfl_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
