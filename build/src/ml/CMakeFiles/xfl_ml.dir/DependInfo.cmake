
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/correlation.cpp" "src/ml/CMakeFiles/xfl_ml.dir/correlation.cpp.o" "gcc" "src/ml/CMakeFiles/xfl_ml.dir/correlation.cpp.o.d"
  "/root/repo/src/ml/gbt.cpp" "src/ml/CMakeFiles/xfl_ml.dir/gbt.cpp.o" "gcc" "src/ml/CMakeFiles/xfl_ml.dir/gbt.cpp.o.d"
  "/root/repo/src/ml/linreg.cpp" "src/ml/CMakeFiles/xfl_ml.dir/linreg.cpp.o" "gcc" "src/ml/CMakeFiles/xfl_ml.dir/linreg.cpp.o.d"
  "/root/repo/src/ml/matrix.cpp" "src/ml/CMakeFiles/xfl_ml.dir/matrix.cpp.o" "gcc" "src/ml/CMakeFiles/xfl_ml.dir/matrix.cpp.o.d"
  "/root/repo/src/ml/metrics.cpp" "src/ml/CMakeFiles/xfl_ml.dir/metrics.cpp.o" "gcc" "src/ml/CMakeFiles/xfl_ml.dir/metrics.cpp.o.d"
  "/root/repo/src/ml/mic.cpp" "src/ml/CMakeFiles/xfl_ml.dir/mic.cpp.o" "gcc" "src/ml/CMakeFiles/xfl_ml.dir/mic.cpp.o.d"
  "/root/repo/src/ml/neldermead.cpp" "src/ml/CMakeFiles/xfl_ml.dir/neldermead.cpp.o" "gcc" "src/ml/CMakeFiles/xfl_ml.dir/neldermead.cpp.o.d"
  "/root/repo/src/ml/scaler.cpp" "src/ml/CMakeFiles/xfl_ml.dir/scaler.cpp.o" "gcc" "src/ml/CMakeFiles/xfl_ml.dir/scaler.cpp.o.d"
  "/root/repo/src/ml/weibull.cpp" "src/ml/CMakeFiles/xfl_ml.dir/weibull.cpp.o" "gcc" "src/ml/CMakeFiles/xfl_ml.dir/weibull.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/xfl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
