file(REMOVE_RECURSE
  "CMakeFiles/xfl_core.dir/analytical.cpp.o"
  "CMakeFiles/xfl_core.dir/analytical.cpp.o.d"
  "CMakeFiles/xfl_core.dir/bound_survey.cpp.o"
  "CMakeFiles/xfl_core.dir/bound_survey.cpp.o.d"
  "CMakeFiles/xfl_core.dir/edge_model.cpp.o"
  "CMakeFiles/xfl_core.dir/edge_model.cpp.o.d"
  "CMakeFiles/xfl_core.dir/global_model.cpp.o"
  "CMakeFiles/xfl_core.dir/global_model.cpp.o.d"
  "CMakeFiles/xfl_core.dir/lmt_model.cpp.o"
  "CMakeFiles/xfl_core.dir/lmt_model.cpp.o.d"
  "CMakeFiles/xfl_core.dir/pipeline.cpp.o"
  "CMakeFiles/xfl_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/xfl_core.dir/predictor.cpp.o"
  "CMakeFiles/xfl_core.dir/predictor.cpp.o.d"
  "CMakeFiles/xfl_core.dir/threshold_study.cpp.o"
  "CMakeFiles/xfl_core.dir/threshold_study.cpp.o.d"
  "libxfl_core.a"
  "libxfl_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xfl_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
