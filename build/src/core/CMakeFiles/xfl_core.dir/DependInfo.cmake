
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/analytical.cpp" "src/core/CMakeFiles/xfl_core.dir/analytical.cpp.o" "gcc" "src/core/CMakeFiles/xfl_core.dir/analytical.cpp.o.d"
  "/root/repo/src/core/bound_survey.cpp" "src/core/CMakeFiles/xfl_core.dir/bound_survey.cpp.o" "gcc" "src/core/CMakeFiles/xfl_core.dir/bound_survey.cpp.o.d"
  "/root/repo/src/core/edge_model.cpp" "src/core/CMakeFiles/xfl_core.dir/edge_model.cpp.o" "gcc" "src/core/CMakeFiles/xfl_core.dir/edge_model.cpp.o.d"
  "/root/repo/src/core/global_model.cpp" "src/core/CMakeFiles/xfl_core.dir/global_model.cpp.o" "gcc" "src/core/CMakeFiles/xfl_core.dir/global_model.cpp.o.d"
  "/root/repo/src/core/lmt_model.cpp" "src/core/CMakeFiles/xfl_core.dir/lmt_model.cpp.o" "gcc" "src/core/CMakeFiles/xfl_core.dir/lmt_model.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/core/CMakeFiles/xfl_core.dir/pipeline.cpp.o" "gcc" "src/core/CMakeFiles/xfl_core.dir/pipeline.cpp.o.d"
  "/root/repo/src/core/predictor.cpp" "src/core/CMakeFiles/xfl_core.dir/predictor.cpp.o" "gcc" "src/core/CMakeFiles/xfl_core.dir/predictor.cpp.o.d"
  "/root/repo/src/core/threshold_study.cpp" "src/core/CMakeFiles/xfl_core.dir/threshold_study.cpp.o" "gcc" "src/core/CMakeFiles/xfl_core.dir/threshold_study.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/xfl_common.dir/DependInfo.cmake"
  "/root/repo/build/src/logs/CMakeFiles/xfl_logs.dir/DependInfo.cmake"
  "/root/repo/build/src/features/CMakeFiles/xfl_features.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/xfl_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/xfl_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/endpoint/CMakeFiles/xfl_endpoint.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/xfl_net.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/xfl_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
