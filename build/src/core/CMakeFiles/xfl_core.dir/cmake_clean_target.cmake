file(REMOVE_RECURSE
  "libxfl_core.a"
)
