# Empty compiler generated dependencies file for xfl_core.
# This may be replaced when dependencies are built.
