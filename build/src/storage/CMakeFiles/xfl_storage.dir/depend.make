# Empty dependencies file for xfl_storage.
# This may be replaced when dependencies are built.
