file(REMOVE_RECURSE
  "CMakeFiles/xfl_storage.dir/disk.cpp.o"
  "CMakeFiles/xfl_storage.dir/disk.cpp.o.d"
  "CMakeFiles/xfl_storage.dir/lustre.cpp.o"
  "CMakeFiles/xfl_storage.dir/lustre.cpp.o.d"
  "libxfl_storage.a"
  "libxfl_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xfl_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
