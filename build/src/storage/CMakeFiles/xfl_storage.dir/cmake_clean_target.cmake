file(REMOVE_RECURSE
  "libxfl_storage.a"
)
