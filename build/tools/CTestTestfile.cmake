# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_simulate "/root/repo/build/tools/xferlearn" "simulate" "--scenario" "esnet" "--transfers" "300" "--out" "/root/repo/build/tools/cli_log.csv" "--anonymize")
set_tests_properties(cli_simulate PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_analyze "/root/repo/build/tools/xferlearn" "analyze" "--log" "/root/repo/build/tools/cli_log.csv")
set_tests_properties(cli_analyze PROPERTIES  DEPENDS "cli_simulate" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_evaluate "/root/repo/build/tools/xferlearn" "evaluate" "--log" "/root/repo/build/tools/cli_log.csv" "--min-transfers" "10" "--max-edges" "3")
set_tests_properties(cli_evaluate PROPERTIES  DEPENDS "cli_simulate" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_predict "/root/repo/build/tools/xferlearn" "predict" "--log" "/root/repo/build/tools/cli_log.csv" "--src" "0" "--dst" "1" "--bytes" "5e10" "--files" "20")
set_tests_properties(cli_predict PROPERTIES  DEPENDS "cli_simulate" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_export_dataset "/root/repo/build/tools/xferlearn" "export-dataset" "--log" "/root/repo/build/tools/cli_log.csv" "--src" "0" "--dst" "1" "--out" "/root/repo/build/tools/cli_dataset.csv")
set_tests_properties(cli_export_dataset PROPERTIES  DEPENDS "cli_simulate" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;16;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_usage_error "/root/repo/build/tools/xferlearn")
set_tests_properties(cli_usage_error PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;20;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_train "/root/repo/build/tools/xferlearn" "train" "--log" "/root/repo/build/tools/cli_log.csv" "--model-out" "/root/repo/build/tools/cli_model.txt" "--min-edge-transfers" "20")
set_tests_properties(cli_train PROPERTIES  DEPENDS "cli_simulate" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;25;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_predict_from_model "/root/repo/build/tools/xferlearn" "predict" "--model" "/root/repo/build/tools/cli_model.txt" "--src" "0" "--dst" "1" "--bytes" "5e10" "--files" "20")
set_tests_properties(cli_predict_from_model PROPERTIES  DEPENDS "cli_train" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;29;add_test;/root/repo/tools/CMakeLists.txt;0;")
