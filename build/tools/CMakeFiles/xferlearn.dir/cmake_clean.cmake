file(REMOVE_RECURSE
  "CMakeFiles/xferlearn.dir/xferlearn.cpp.o"
  "CMakeFiles/xferlearn.dir/xferlearn.cpp.o.d"
  "xferlearn"
  "xferlearn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xferlearn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
