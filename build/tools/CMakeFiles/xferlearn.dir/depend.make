# Empty dependencies file for xferlearn.
# This may be replaced when dependencies are built.
