// In-memory transfer log with per-edge and per-endpoint indexing, CSV
// round-trip, filtering, and anonymisation. This is the data structure the
// whole feature-engineering pipeline consumes; it plays the role of the
// paper's Globus log extract.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "logs/record.hpp"

namespace xfl::logs {

/// Append-only collection of transfer records with derived indexes.
class LogStore {
 public:
  LogStore() = default;

  /// Append a record. Requires record.valid(). Ids need not be unique or
  /// ordered, but times should be on one clock.
  void append(TransferRecord record);

  std::size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }
  const TransferRecord& operator[](std::size_t i) const { return records_[i]; }
  const std::vector<TransferRecord>& records() const { return records_; }

  /// All distinct directed edges, most-used first.
  std::vector<EdgeKey> edges_by_usage() const;

  /// Number of transfers on one edge.
  std::size_t edge_count(const EdgeKey& edge) const;

  /// Indices (into records()) of transfers on one edge, start-time ordered.
  std::vector<std::size_t> edge_transfers(const EdgeKey& edge) const;

  /// Indices of transfers that touch one endpoint (as source or
  /// destination), start-time ordered. Used by the contention sweep.
  std::vector<std::size_t> endpoint_transfers(endpoint::EndpointId id) const;

  /// Maximum observed rate on one edge (the per-edge Rmax(E) of §4.3.2).
  /// Requires the edge to have at least one transfer.
  double edge_max_rate(const EdgeKey& edge) const;

  /// Maximum rate observed with `id` as source (the DRmax estimate of
  /// §3.2) or destination (DWmax). Returns 0 if the endpoint is unused.
  double max_rate_as_source(endpoint::EndpointId id) const;
  double max_rate_as_destination(endpoint::EndpointId id) const;

  /// New store with only the records matching `keep`.
  LogStore filter(const std::function<bool(const TransferRecord&)>& keep) const;

  /// CSV round-trip. The header names the Globus-schema columns; endpoint
  /// ids are written as integers (anonymised form, matching the paper's
  /// published anonymised dataset).
  void write_csv(std::ostream& out) const;
  static LogStore read_csv(std::istream& in);

 private:
  std::vector<TransferRecord> records_;
  std::map<EdgeKey, std::vector<std::size_t>> by_edge_;
  std::map<endpoint::EndpointId, std::vector<std::size_t>> by_endpoint_;
};

}  // namespace xfl::logs
