// Log anonymisation. The paper's published dataset is anonymised "to
// protect the privacy of endpoints and users": endpoint identities are
// replaced with opaque ids and absolute timestamps are shifted. This
// module reproduces that release step so simulated (or real) logs can be
// shared without leaking site identities, while preserving everything the
// models consume: durations, overlaps, sizes, tunables, and the edge
// structure (the same endpoint always maps to the same opaque id).
#pragma once

#include <cstdint>
#include <map>

#include "logs/log_store.hpp"

namespace xfl::logs {

/// Result of anonymising a log: the scrubbed store plus the (secret)
/// mapping from original to opaque endpoint ids, kept so the data owner
/// can de-anonymise on request.
struct AnonymizedLog {
  LogStore log;
  std::map<endpoint::EndpointId, endpoint::EndpointId> endpoint_mapping;
  double time_shift_s = 0.0;  ///< Subtracted from every timestamp.
};

/// Anonymise a log:
///   * endpoint ids are remapped to dense opaque ids in an order keyed by
///     `salt` (the same endpoint maps consistently; different salts give
///     unrelated mappings),
///   * all timestamps are shifted so the earliest start becomes 0,
///   * transfer ids are renumbered sequentially in start order.
/// Rates, durations, overlap structure, sizes, file counts, tunables,
/// fault counts, and endpoint types are preserved exactly.
AnonymizedLog anonymize(const LogStore& log, std::uint64_t salt);

}  // namespace xfl::logs
