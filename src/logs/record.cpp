#include "logs/record.hpp"

// Header-only logic today; this translation unit anchors the library and is
// the place for future out-of-line record utilities.
