// Globus-schema transfer log record. §4 of the paper: "Globus log data
// provide, for each transfer, start time (Ts), completion time (Te), total
// bytes transferred, number of files (Nf), number of directories (Nd),
// values for Globus tunable parameters, source endpoint, and destination
// endpoint", plus the number of faults (Nflt).
#pragma once

#include <cstdint>
#include <string>

#include "common/contracts.hpp"
#include "endpoint/endpoint.hpp"

namespace xfl::logs {

/// Directed endpoint pair key. The paper calls these "edges".
struct EdgeKey {
  endpoint::EndpointId src = 0;
  endpoint::EndpointId dst = 0;

  friend bool operator==(const EdgeKey&, const EdgeKey&) = default;
  friend auto operator<=>(const EdgeKey&, const EdgeKey&) = default;
};

/// One completed transfer, as Globus would log it.
struct TransferRecord {
  std::uint64_t id = 0;
  endpoint::EndpointId src = 0;
  endpoint::EndpointId dst = 0;
  double start_s = 0.0;         ///< Ts
  double end_s = 0.0;           ///< Te
  double bytes = 0.0;           ///< Nb
  std::uint64_t files = 1;      ///< Nf
  std::uint64_t dirs = 1;       ///< Nd
  std::uint32_t concurrency = 1;  ///< C
  std::uint32_t parallelism = 1;  ///< P
  std::uint32_t faults = 0;     ///< Nflt
  endpoint::EndpointType src_type = endpoint::EndpointType::kServer;
  endpoint::EndpointType dst_type = endpoint::EndpointType::kServer;

  /// Wall-clock duration (Te - Ts).
  double duration_s() const { return end_s - start_s; }

  /// Average transfer rate R = Nb / (Te - Ts) in bytes/second. Requires a
  /// strictly positive duration.
  double rate_Bps() const {
    XFL_EXPECTS(end_s > start_s);
    return bytes / (end_s - start_s);
  }

  EdgeKey edge() const { return {src, dst}; }

  /// Effective GridFTP process pairs, min(C, Nf) (see gridftp.hpp).
  std::uint32_t effective_processes() const {
    return static_cast<std::uint32_t>(
        std::min<std::uint64_t>(concurrency, files));
  }

  /// Effective parallel TCP stream count, min(C, Nf) * P.
  std::uint32_t effective_streams() const {
    return effective_processes() * parallelism;
  }

  /// Basic sanity: positive duration, non-negative bytes, >= 1 file/dir.
  bool valid() const {
    return end_s > start_s && bytes >= 0.0 && files >= 1 && dirs >= 1 &&
           concurrency >= 1 && parallelism >= 1;
  }
};

}  // namespace xfl::logs
