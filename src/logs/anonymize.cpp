#include "logs/anonymize.hpp"

#include <algorithm>
#include <limits>
#include <set>
#include <vector>

#include "common/rng.hpp"

namespace xfl::logs {

AnonymizedLog anonymize(const LogStore& log, std::uint64_t salt) {
  AnonymizedLog result;
  if (log.empty()) return result;

  // Collect the distinct endpoints and shuffle their opaque ids with a
  // salt-keyed permutation.
  std::set<endpoint::EndpointId> distinct;
  double earliest = std::numeric_limits<double>::infinity();
  for (const auto& record : log.records()) {
    distinct.insert(record.src);
    distinct.insert(record.dst);
    earliest = std::min(earliest, record.start_s);
  }
  std::vector<endpoint::EndpointId> originals(distinct.begin(), distinct.end());
  Rng rng(salt);
  const auto permutation = rng.permutation(originals.size());
  for (std::size_t i = 0; i < originals.size(); ++i)
    result.endpoint_mapping[originals[i]] =
        static_cast<endpoint::EndpointId>(permutation[i]);
  result.time_shift_s = earliest;

  // Renumber transfers in start order with scrubbed endpoints and times.
  std::vector<std::size_t> order(log.size());
  for (std::size_t i = 0; i < log.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&log](std::size_t a, std::size_t b) {
    if (log[a].start_s != log[b].start_s) return log[a].start_s < log[b].start_s;
    return log[a].id < log[b].id;
  });
  std::uint64_t next_id = 1;
  for (const std::size_t i : order) {
    TransferRecord record = log[i];
    record.id = next_id++;
    record.src = result.endpoint_mapping.at(record.src);
    record.dst = result.endpoint_mapping.at(record.dst);
    record.start_s -= result.time_shift_s;
    record.end_s -= result.time_shift_s;
    result.log.append(record);
  }
  return result;
}

}  // namespace xfl::logs
