#include "logs/log_store.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "common/csv.hpp"
#include "obs/log.hpp"

namespace xfl::logs {

void LogStore::append(TransferRecord record) {
  XFL_EXPECTS(record.valid());
  const std::size_t index = records_.size();
  by_edge_[record.edge()].push_back(index);
  by_endpoint_[record.src].push_back(index);
  if (record.dst != record.src) by_endpoint_[record.dst].push_back(index);
  records_.push_back(std::move(record));
}

std::vector<EdgeKey> LogStore::edges_by_usage() const {
  std::vector<EdgeKey> edges;
  edges.reserve(by_edge_.size());
  for (const auto& [edge, indices] : by_edge_) edges.push_back(edge);
  std::stable_sort(edges.begin(), edges.end(),
                   [this](const EdgeKey& a, const EdgeKey& b) {
                     return by_edge_.at(a).size() > by_edge_.at(b).size();
                   });
  return edges;
}

std::size_t LogStore::edge_count(const EdgeKey& edge) const {
  auto it = by_edge_.find(edge);
  return it == by_edge_.end() ? 0 : it->second.size();
}

namespace {
std::vector<std::size_t> sorted_by_start(
    const std::vector<TransferRecord>& records, std::vector<std::size_t> idx) {
  std::sort(idx.begin(), idx.end(), [&records](std::size_t a, std::size_t b) {
    if (records[a].start_s != records[b].start_s)
      return records[a].start_s < records[b].start_s;
    return a < b;
  });
  return idx;
}
}  // namespace

std::vector<std::size_t> LogStore::edge_transfers(const EdgeKey& edge) const {
  auto it = by_edge_.find(edge);
  if (it == by_edge_.end()) return {};
  return sorted_by_start(records_, it->second);
}

std::vector<std::size_t> LogStore::endpoint_transfers(
    endpoint::EndpointId id) const {
  auto it = by_endpoint_.find(id);
  if (it == by_endpoint_.end()) return {};
  return sorted_by_start(records_, it->second);
}

double LogStore::edge_max_rate(const EdgeKey& edge) const {
  auto it = by_edge_.find(edge);
  XFL_EXPECTS(it != by_edge_.end() && !it->second.empty());
  double best = 0.0;
  for (std::size_t i : it->second) best = std::max(best, records_[i].rate_Bps());
  return best;
}

double LogStore::max_rate_as_source(endpoint::EndpointId id) const {
  auto it = by_endpoint_.find(id);
  if (it == by_endpoint_.end()) return 0.0;
  double best = 0.0;
  for (std::size_t i : it->second)
    if (records_[i].src == id) best = std::max(best, records_[i].rate_Bps());
  return best;
}

double LogStore::max_rate_as_destination(endpoint::EndpointId id) const {
  auto it = by_endpoint_.find(id);
  if (it == by_endpoint_.end()) return 0.0;
  double best = 0.0;
  for (std::size_t i : it->second)
    if (records_[i].dst == id) best = std::max(best, records_[i].rate_Bps());
  return best;
}

LogStore LogStore::filter(
    const std::function<bool(const TransferRecord&)>& keep) const {
  LogStore out;
  for (const auto& record : records_)
    if (keep(record)) out.append(record);
  return out;
}

namespace {
constexpr const char* kCsvHeader[] = {
    "id",          "src",   "dst",   "start_s", "end_s",
    "bytes",       "files", "dirs",  "C",       "P",
    "faults",      "src_type",       "dst_type"};
constexpr std::size_t kCsvColumns = std::size(kCsvHeader);
}  // namespace

void LogStore::write_csv(std::ostream& out) const {
  CsvWriter writer(out);
  CsvRow header(kCsvHeader, kCsvHeader + kCsvColumns);
  writer.write_row(header);
  char buf[64];
  for (const auto& r : records_) {
    CsvRow row;
    row.reserve(kCsvColumns);
    auto push_u = [&row, &buf](std::uint64_t v) {
      std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
      row.emplace_back(buf);
    };
    auto push_d = [&row, &buf](double v) {
      std::snprintf(buf, sizeof buf, "%.17g", v);
      row.emplace_back(buf);
    };
    push_u(r.id);
    push_u(r.src);
    push_u(r.dst);
    push_d(r.start_s);
    push_d(r.end_s);
    push_d(r.bytes);
    push_u(r.files);
    push_u(r.dirs);
    push_u(r.concurrency);
    push_u(r.parallelism);
    push_u(r.faults);
    row.emplace_back(to_string(r.src_type));
    row.emplace_back(to_string(r.dst_type));
    writer.write_row(row);
  }
}

LogStore LogStore::read_csv(std::istream& in) {
  const auto rows = xfl::read_csv(in);
  if (rows.empty()) {
    XFL_LOG(debug) << "log csv empty";
    return {};
  }
  LogStore store;
  for (std::size_t i = 1; i < rows.size(); ++i) {
    const auto& row = rows[i];
    if (row.size() != kCsvColumns)
      throw std::runtime_error("LogStore::read_csv: bad column count in row " +
                               std::to_string(i));
    TransferRecord r;
    r.id = std::stoull(row[0]);
    r.src = static_cast<endpoint::EndpointId>(std::stoul(row[1]));
    r.dst = static_cast<endpoint::EndpointId>(std::stoul(row[2]));
    r.start_s = std::stod(row[3]);
    r.end_s = std::stod(row[4]);
    r.bytes = std::stod(row[5]);
    r.files = std::stoull(row[6]);
    r.dirs = std::stoull(row[7]);
    r.concurrency = static_cast<std::uint32_t>(std::stoul(row[8]));
    r.parallelism = static_cast<std::uint32_t>(std::stoul(row[9]));
    r.faults = static_cast<std::uint32_t>(std::stoul(row[10]));
    r.src_type = row[11] == "GCP" ? endpoint::EndpointType::kPersonal
                                  : endpoint::EndpointType::kServer;
    r.dst_type = row[12] == "GCP" ? endpoint::EndpointType::kPersonal
                                  : endpoint::EndpointType::kServer;
    store.append(std::move(r));
  }
  XFL_LOG(debug) << "log csv loaded" << obs::kv("records", store.size())
                 << obs::kv("edges", store.edges_by_usage().size());
  return store;
}

}  // namespace xfl::logs
