// Durable training journal for the serve path's closed loop. Every
// matched prediction/feedback join becomes one JournalRecord — trace id,
// the planned transfer, the competing-load features, predicted and
// observed rate, serving model version, wall-clock timestamp — appended
// to an on-disk segment so the retrain worker can refit per-edge models
// from live ground truth long after the in-memory monitor window has
// rolled over (and across process restarts).
//
// Format: line-oriented text, one record per line:
//
//   xflj1 <23 space-separated fields> <fnv1a-64 checksum, hex>
//
// The checksum covers everything before it, so a torn tail write (crash
// mid-append), a flipped byte, or interleaved garbage is detected per
// line and skipped by the tolerant loader — a journal is evidence, never
// a single point of failure. Durability is segmented: the active segment
// is an O_APPEND fd fsync'd every `fsync_every` records and always at
// rotation; rotation caps segments at `max_segment_bytes` and retention
// unlinks the oldest beyond `max_segments`, bounding disk usage.
//
// append() locks one mutex (called from the server's poll thread at
// feedback rate — orders of magnitude below contention that would need
// sharding); load() is lock-free over immutable closed segments plus
// whatever prefix of the active segment has been written.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/predictor.hpp"
#include "features/contention.hpp"

namespace xfl::retrain {

/// One joined prediction/feedback observation, as persisted.
struct JournalRecord {
  std::uint64_t trace_id = 0;
  std::uint64_t timestamp_ms = 0;  ///< Wall clock; 0 = stamped at append.
  std::uint64_t model_version = 0;
  core::PlannedTransfer transfer;
  features::ContentionFeatures load;
  double predicted_mbps = 0.0;
  double observed_mbps = 0.0;
};

/// Encode one record as one journal line (no trailing newline). Doubles
/// travel as %.17g so a loaded record predicts bit-identically.
std::string encode_record(const JournalRecord& record);

/// Decode one line. Any malformation — wrong magic, wrong field count,
/// unparseable number, checksum mismatch — yields nullopt, never throws.
std::optional<JournalRecord> decode_record(std::string_view line);

/// Append-only, crash-tolerant, bounded-retention record log.
class TrainingJournal {
 public:
  struct Options {
    std::string directory;  ///< Created (with parents) if absent.
    /// Rotate the active segment once it exceeds this many bytes.
    std::size_t max_segment_bytes = 1 << 20;
    /// Segments kept on disk, the active one included; older segments
    /// are unlinked at rotation (bounded retention).
    std::size_t max_segments = 8;
    /// fsync the active segment every N appends (0 = only at rotation).
    std::size_t fsync_every = 64;
  };

  struct LoadResult {
    std::vector<JournalRecord> records;  ///< Oldest first.
    std::size_t segments_read = 0;
    std::size_t lines_skipped = 0;  ///< Torn/garbage lines survived.
  };

  /// Opens (resuming) or creates the journal directory. Throws
  /// std::runtime_error when the directory cannot be created or the
  /// active segment cannot be opened.
  explicit TrainingJournal(Options options);
  ~TrainingJournal();

  TrainingJournal(const TrainingJournal&) = delete;
  TrainingJournal& operator=(const TrainingJournal&) = delete;

  /// Durably append one record (stamping timestamp_ms when 0). Throws on
  /// write failure — a journal that silently drops ground truth would
  /// poison every later refit.
  void append(const JournalRecord& record);

  /// fsync the active segment now (the retrain worker calls this before
  /// loading, so records journalled a moment ago are refit candidates).
  void flush();

  std::uint64_t appended() const;
  std::size_t segment_count() const;
  const Options& options() const { return options_; }

  /// Read every surviving record, oldest first. Tolerant by contract:
  /// unreadable segments and undecodable lines are counted and skipped,
  /// never fatal. `max_records` > 0 keeps only the newest that many.
  static LoadResult load(const std::string& directory,
                         std::size_t max_records = 0);

 private:
  void open_active_locked();   ///< Caller holds mutex_.
  void rotate_locked();        ///< Caller holds mutex_.
  void sync_active_locked();   ///< Caller holds mutex_.

  Options options_;
  mutable std::mutex mutex_;
  int fd_ = -1;
  std::uint64_t active_seq_ = 0;
  std::size_t active_bytes_ = 0;
  std::uint64_t appended_ = 0;
  std::size_t since_sync_ = 0;
  std::vector<std::uint64_t> segments_;  ///< Ascending seq, active last.
};

}  // namespace xfl::retrain
