// Background refit loop closing the serve path's drift loop: the drift
// monitor raises an alarm, the RetrainWorker wakes, refits the affected
// per-edge GBT from recent-weighted journal records off the hot path,
// scores the candidate against the incumbent on a held-out slice of the
// newest observations, and — only when the candidate's windowed MdAPE
// actually improves — publishes it through the ModelHost's atomic
// versioned swap. A candidate that does not beat the incumbent is
// rejected and the old version keeps serving; the gate means a refit can
// never make the serving model worse on the evidence available.
//
// Triggers, in priority order once the worker thread wakes:
//   - alarm:    ServeMonitor drift alarm rising edge (on_alarm()).
//   - manual:   trigger() (tests, future admin command).
//   - interval: every `interval_ms` of wall clock (0 = disabled).
//
// RetrainService is the one-stop wiring used by `xferlearn serve`: it
// owns the journal + worker and installs the three server hooks
// (feedback -> journal append, monitor alarm -> worker nudge,
// retrain-status -> worker status_json). Construct it after the server,
// destroy it after PredictionServer::stop() — the hooks it installed
// must not outlive it while traffic still flows.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

#include "ml/gbt.hpp"
#include "retrain/journal.hpp"
#include "serve/model_host.hpp"
#include "serve/server.hpp"

namespace xfl::retrain {

struct RetrainOptions {
  /// Scheduled refit period in milliseconds; 0 = alarm/manual only.
  std::uint64_t interval_ms = 0;
  /// Worker wakeup granularity (condition-variable wait slice).
  std::uint64_t poll_ms = 200;
  /// The drift alarm is edge-triggered and may rise before the journal
  /// holds min_edge_records (drift_min_samples joins come first). A
  /// data-starved alarm cycle — one that could not refit anything —
  /// re-arms itself and retries this many ms later, until a cycle makes
  /// a real gate decision (accept or reject). 0 disables the retry.
  std::uint64_t alarm_retry_ms = 5000;
  /// Newest journal records considered per cycle (bounds refit cost).
  std::size_t max_records = 8192;
  /// Minimum journal records on an edge before it is refit at all.
  std::size_t min_edge_records = 64;
  /// Newest fraction of an edge's records held out for the validation
  /// gate (never trained on), floored at `min_holdout` records.
  double holdout_fraction = 0.25;
  std::size_t min_holdout = 8;
  /// The candidate must beat the incumbent's holdout MdAPE by at least
  /// this many percentage points or the swap is rejected.
  double min_improvement_pct = 1.0;
  /// Recency weighting: the newest training record weighs `max_weight`,
  /// decaying by half every `weight_half_life` records of age (quantised
  /// to integers >= 1, preserving the GBT's integer-hessian invariant).
  std::uint32_t max_weight = 8;
  double weight_half_life = 256.0;
  /// Training config for candidate edge models.
  ml::GbtConfig gbt;
};

/// Cumulative worker state, exported via status_json() and the
/// retrain-status admin command. All counters are since construction.
struct RetrainStatus {
  bool running = false;
  std::uint64_t cycles = 0;
  std::uint64_t triggers_alarm = 0;
  std::uint64_t triggers_interval = 0;
  std::uint64_t triggers_manual = 0;
  std::uint64_t refits = 0;     ///< Candidate models trained.
  std::uint64_t accepted = 0;   ///< Candidates published via swap().
  std::uint64_t rejected = 0;   ///< Candidates failing the gate.
  std::uint64_t skipped = 0;    ///< Edges with too little data.
  std::uint64_t errors = 0;     ///< Cycles aborted by an exception.
  std::uint64_t last_version = 0;  ///< Version of the last accepted swap.
  double last_candidate_mdape_pct = 0.0;
  double last_incumbent_mdape_pct = 0.0;
  std::string last_decision;  ///< "accepted"/"rejected"/"skipped"/"".
  std::string last_edge;      ///< "src->dst" of the last gated edge.
  std::string last_error;
};

/// Why a refit cycle ran; recorded in status and the cycle log line.
enum class RetrainTrigger { kAlarm, kInterval, kManual };

class RetrainWorker {
 public:
  /// `host` and `journal` must outlive the worker.
  RetrainWorker(serve::ModelHost& host, TrainingJournal& journal,
                RetrainOptions options);
  ~RetrainWorker();

  RetrainWorker(const RetrainWorker&) = delete;
  RetrainWorker& operator=(const RetrainWorker&) = delete;

  /// Start the background thread. Idempotent.
  void start();
  /// Stop and join the background thread. Idempotent; the destructor
  /// calls it too.
  void stop();

  /// Request one refit cycle (manual trigger). Non-blocking.
  void trigger();
  /// The monitor alarm hook target: nudges the worker on a rising edge.
  /// Non-blocking and cheap — safe from the feedback path.
  void on_alarm();

  RetrainStatus status() const;
  /// status() as one JSON object ({"enabled":true,...}), the payload of
  /// the retrain-status admin command.
  std::string status_json() const;

  /// Run one synchronous refit cycle on the caller's thread (the worker
  /// thread calls this; tests call it directly for determinism). Returns
  /// the number of accepted swaps. Never throws: a failed cycle counts
  /// in status().errors and leaves the serving model untouched.
  std::size_t run_cycle(RetrainTrigger trigger);

  const RetrainOptions& options() const { return options_; }

 private:
  void worker_loop();

  serve::ModelHost& host_;
  TrainingJournal& journal_;
  RetrainOptions options_;

  mutable std::mutex mutex_;  ///< Guards status_ + wakeup flags.
  std::condition_variable cv_;
  bool stop_requested_ = false;
  bool alarm_pending_ = false;
  bool manual_pending_ = false;
  RetrainStatus status_;
  std::thread thread_;
  bool started_ = false;
};

/// Owns the journal + worker for one PredictionServer and installs the
/// hooks that connect them (see file header). Install order contract:
/// construct after the server (before start()), call server.stop()
/// before destroying the service.
class RetrainService {
 public:
  RetrainService(serve::PredictionServer& server,
                 TrainingJournal::Options journal_options,
                 RetrainOptions retrain_options);
  ~RetrainService();

  RetrainService(const RetrainService&) = delete;
  RetrainService& operator=(const RetrainService&) = delete;

  TrainingJournal& journal() { return journal_; }
  RetrainWorker& worker() { return worker_; }

 private:
  TrainingJournal journal_;
  RetrainWorker worker_;
};

}  // namespace xfl::retrain
