#include "retrain/journal.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <stdexcept>
#include <utility>

#include "common/contracts.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"

namespace xfl::retrain {
namespace {

// One metrics resolution per process; appends then write lock-free.
struct JournalMetrics {
  obs::Counter& appended = obs::counter("retrain.journal.appended");
  obs::Counter& rotations = obs::counter("retrain.journal.rotations");
  obs::Gauge& segments = obs::gauge("retrain.journal.segments");
  obs::Gauge& bytes = obs::gauge("retrain.journal.bytes");
};

JournalMetrics& journal_metrics() {
  static JournalMetrics metrics;
  return metrics;
}

constexpr std::string_view kMagic = "xflj1";
constexpr std::string_view kSegmentSuffix = ".xflj";
constexpr std::string_view kSegmentPrefix = "segment-";
/// Magic + 22 data fields + checksum.
constexpr std::size_t kTokens = 24;

std::uint64_t fnv1a64(std::string_view bytes) {
  std::uint64_t hash = 1469598103934665603ull;
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

std::string segment_name(std::uint64_t seq) {
  char name[32];
  std::snprintf(name, sizeof name, "segment-%08" PRIu64 ".xflj", seq);
  return name;
}

/// Parse "segment-NNNNNNNN.xflj" back to its sequence number.
std::optional<std::uint64_t> parse_segment_name(std::string_view name) {
  if (!name.starts_with(kSegmentPrefix) || !name.ends_with(kSegmentSuffix))
    return std::nullopt;
  const std::string_view digits = name.substr(
      kSegmentPrefix.size(),
      name.size() - kSegmentPrefix.size() - kSegmentSuffix.size());
  if (digits.empty() || digits.size() > 20) return std::nullopt;
  std::uint64_t seq = 0;
  for (const char c : digits) {
    if (c < '0' || c > '9') return std::nullopt;
    seq = seq * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return seq;
}

void append_u64(std::string& out, std::uint64_t v) {
  out.push_back(' ');
  out += std::to_string(v);
}

void append_double(std::string& out, double v) {
  char buffer[40];
  std::snprintf(buffer, sizeof buffer, " %.17g", v);
  out += buffer;
}

/// Whitespace-split `text` into at most `kTokens` + 1 tokens (the extra
/// slot catches trailing junk). Returns the token count.
std::size_t tokenize(std::string_view text,
                     std::array<std::string_view, kTokens + 1>& tokens) {
  std::size_t count = 0;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && text[i] == ' ') ++i;
    if (i >= text.size()) break;
    const std::size_t start = i;
    while (i < text.size() && text[i] != ' ') ++i;
    if (count > kTokens) return count;  // Already too many; bail.
    tokens[count++] = text.substr(start, i - start);
  }
  return count;
}

bool parse_u64(std::string_view token, std::uint64_t& out) {
  if (token.empty() || token.size() > 20) return false;
  std::uint64_t value = 0;
  for (const char c : token) {
    if (c < '0' || c > '9') return false;
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (value > (std::numeric_limits<std::uint64_t>::max() - digit) / 10)
      return false;
    value = value * 10 + digit;
  }
  out = value;
  return true;
}

bool parse_u32(std::string_view token, std::uint32_t& out) {
  std::uint64_t wide = 0;
  if (!parse_u64(token, wide) ||
      wide > std::numeric_limits<std::uint32_t>::max())
    return false;
  out = static_cast<std::uint32_t>(wide);
  return true;
}

bool parse_double(std::string_view token, double& out) {
  if (token.empty() || token.size() >= 40) return false;
  char buffer[40];
  std::memcpy(buffer, token.data(), token.size());
  buffer[token.size()] = '\0';
  char* end = nullptr;
  const double value = std::strtod(buffer, &end);
  if (end != buffer + token.size() || !std::isfinite(value)) return false;
  out = value;
  return true;
}

bool parse_hex64(std::string_view token, std::uint64_t& out) {
  if (token.empty() || token.size() > 16) return false;
  std::uint64_t value = 0;
  for (const char c : token) {
    std::uint64_t digit = 0;
    if (c >= '0' && c <= '9')
      digit = static_cast<std::uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f')
      digit = static_cast<std::uint64_t>(c - 'a' + 10);
    else
      return false;
    value = (value << 4) | digit;
  }
  out = value;
  return true;
}

std::uint64_t now_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

}  // namespace

std::string encode_record(const JournalRecord& record) {
  std::string line{kMagic};
  append_u64(line, record.trace_id);
  append_u64(line, record.timestamp_ms);
  append_u64(line, record.model_version);
  append_u64(line, record.transfer.src);
  append_u64(line, record.transfer.dst);
  append_double(line, record.transfer.bytes);
  append_u64(line, record.transfer.files);
  append_u64(line, record.transfer.dirs);
  append_u64(line, record.transfer.concurrency);
  append_u64(line, record.transfer.parallelism);
  append_double(line, record.load.k_sout);
  append_double(line, record.load.k_sin);
  append_double(line, record.load.k_dout);
  append_double(line, record.load.k_din);
  append_double(line, record.load.g_src);
  append_double(line, record.load.g_dst);
  append_double(line, record.load.s_sout);
  append_double(line, record.load.s_sin);
  append_double(line, record.load.s_dout);
  append_double(line, record.load.s_din);
  append_double(line, record.predicted_mbps);
  append_double(line, record.observed_mbps);
  char checksum[24];
  std::snprintf(checksum, sizeof checksum, " %016" PRIx64, fnv1a64(line));
  line += checksum;
  return line;
}

std::optional<JournalRecord> decode_record(std::string_view line) {
  while (!line.empty() && (line.back() == '\n' || line.back() == '\r'))
    line.remove_suffix(1);
  std::array<std::string_view, kTokens + 1> tokens;
  if (tokenize(line, tokens) != kTokens) return std::nullopt;
  if (tokens[0] != kMagic) return std::nullopt;

  // The checksum covers the line through the last data token — exactly
  // what encode_record hashed before appending " <hex>".
  std::uint64_t stored = 0;
  if (!parse_hex64(tokens[kTokens - 1], stored)) return std::nullopt;
  const char* hashed_end = tokens[kTokens - 2].data() + tokens[kTokens - 2].size();
  const std::string_view hashed(line.data(),
                                static_cast<std::size_t>(hashed_end - line.data()));
  if (fnv1a64(hashed) != stored) return std::nullopt;

  JournalRecord record;
  std::uint64_t conc = 0;
  std::uint64_t par = 0;
  if (!parse_u64(tokens[1], record.trace_id) ||
      !parse_u64(tokens[2], record.timestamp_ms) ||
      !parse_u64(tokens[3], record.model_version) ||
      !parse_u32(tokens[4], record.transfer.src) ||
      !parse_u32(tokens[5], record.transfer.dst) ||
      !parse_double(tokens[6], record.transfer.bytes) ||
      !parse_u64(tokens[7], record.transfer.files) ||
      !parse_u64(tokens[8], record.transfer.dirs) ||
      !parse_u64(tokens[9], conc) || !parse_u64(tokens[10], par) ||
      !parse_double(tokens[11], record.load.k_sout) ||
      !parse_double(tokens[12], record.load.k_sin) ||
      !parse_double(tokens[13], record.load.k_dout) ||
      !parse_double(tokens[14], record.load.k_din) ||
      !parse_double(tokens[15], record.load.g_src) ||
      !parse_double(tokens[16], record.load.g_dst) ||
      !parse_double(tokens[17], record.load.s_sout) ||
      !parse_double(tokens[18], record.load.s_sin) ||
      !parse_double(tokens[19], record.load.s_dout) ||
      !parse_double(tokens[20], record.load.s_din) ||
      !parse_double(tokens[21], record.predicted_mbps) ||
      !parse_double(tokens[22], record.observed_mbps))
    return std::nullopt;
  if (conc > std::numeric_limits<std::uint32_t>::max() ||
      par > std::numeric_limits<std::uint32_t>::max())
    return std::nullopt;
  record.transfer.concurrency = static_cast<std::uint32_t>(conc);
  record.transfer.parallelism = static_cast<std::uint32_t>(par);
  return record;
}

TrainingJournal::TrainingJournal(Options options)
    : options_(std::move(options)) {
  XFL_EXPECTS(!options_.directory.empty());
  XFL_EXPECTS(options_.max_segment_bytes > 0);
  XFL_EXPECTS(options_.max_segments >= 1);
  std::error_code ec;
  std::filesystem::create_directories(options_.directory, ec);
  if (ec)
    throw std::runtime_error("TrainingJournal: cannot create '" +
                             options_.directory + "': " + ec.message());

  // Resume: adopt existing segments in sequence order and append to the
  // newest (a restart continues the journal, it does not reset it).
  for (const auto& entry :
       std::filesystem::directory_iterator(options_.directory, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    if (const auto seq = parse_segment_name(entry.path().filename().string()))
      segments_.push_back(*seq);
  }
  std::sort(segments_.begin(), segments_.end());
  if (segments_.empty()) {
    segments_.push_back(1);
  } else {
    const std::uintmax_t size = std::filesystem::file_size(
        std::filesystem::path(options_.directory) /
            segment_name(segments_.back()),
        ec);
    active_bytes_ = ec ? 0 : static_cast<std::size_t>(size);
  }
  active_seq_ = segments_.back();
  std::lock_guard lock(mutex_);
  open_active_locked();
  journal_metrics().segments.set(static_cast<double>(segments_.size()));
}

TrainingJournal::~TrainingJournal() {
  std::lock_guard lock(mutex_);
  if (fd_ >= 0) {
    ::fsync(fd_);
    ::close(fd_);
    fd_ = -1;
  }
}

void TrainingJournal::open_active_locked() {
  const std::string path = (std::filesystem::path(options_.directory) /
                            segment_name(active_seq_))
                               .string();
  fd_ = ::open(path.c_str(), O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC, 0644);
  if (fd_ < 0)
    throw std::runtime_error("TrainingJournal: cannot open '" + path +
                             "': " + std::strerror(errno));
}

void TrainingJournal::sync_active_locked() {
  if (fd_ >= 0) ::fsync(fd_);
  since_sync_ = 0;
}

void TrainingJournal::rotate_locked() {
  sync_active_locked();
  ::close(fd_);
  fd_ = -1;
  ++active_seq_;
  segments_.push_back(active_seq_);
  active_bytes_ = 0;
  open_active_locked();
  journal_metrics().rotations.add(1);

  // Bounded retention: drop the oldest segments beyond the cap. An
  // unlink failure only delays reclamation, so it is logged, not fatal.
  while (segments_.size() > options_.max_segments) {
    const std::string victim = (std::filesystem::path(options_.directory) /
                                segment_name(segments_.front()))
                                   .string();
    if (::unlink(victim.c_str()) != 0 && errno != ENOENT)
      XFL_LOG(warn) << "training journal retention unlink failed"
                    << obs::kv("path", victim)
                    << obs::kv("errno", std::strerror(errno));
    segments_.erase(segments_.begin());
  }
  journal_metrics().segments.set(static_cast<double>(segments_.size()));
  XFL_LOG(debug) << "training journal rotated"
                 << obs::kv("segment", active_seq_)
                 << obs::kv("segments", segments_.size());
}

void TrainingJournal::append(const JournalRecord& record) {
  std::string line;
  if (record.timestamp_ms == 0) {
    JournalRecord stamped = record;
    stamped.timestamp_ms = now_ms();
    line = encode_record(stamped);
  } else {
    line = encode_record(record);
  }
  line.push_back('\n');

  std::lock_guard lock(mutex_);
  XFL_EXPECTS(fd_ >= 0);
  std::size_t written = 0;
  while (written < line.size()) {
    const ssize_t n =
        ::write(fd_, line.data() + written, line.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("TrainingJournal: write: ") +
                               std::strerror(errno));
    }
    written += static_cast<std::size_t>(n);
  }
  active_bytes_ += line.size();
  ++appended_;
  ++since_sync_;
  journal_metrics().appended.add(1);
  journal_metrics().bytes.set(static_cast<double>(active_bytes_));
  if (options_.fsync_every > 0 && since_sync_ >= options_.fsync_every)
    sync_active_locked();
  if (active_bytes_ >= options_.max_segment_bytes) rotate_locked();
}

void TrainingJournal::flush() {
  std::lock_guard lock(mutex_);
  sync_active_locked();
}

std::uint64_t TrainingJournal::appended() const {
  std::lock_guard lock(mutex_);
  return appended_;
}

std::size_t TrainingJournal::segment_count() const {
  std::lock_guard lock(mutex_);
  return segments_.size();
}

TrainingJournal::LoadResult TrainingJournal::load(const std::string& directory,
                                                  std::size_t max_records) {
  LoadResult result;
  std::error_code ec;
  std::vector<std::uint64_t> sequence;
  for (const auto& entry : std::filesystem::directory_iterator(directory, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    if (const auto seq = parse_segment_name(entry.path().filename().string()))
      sequence.push_back(*seq);
  }
  std::sort(sequence.begin(), sequence.end());

  for (const std::uint64_t seq : sequence) {
    const std::string path =
        (std::filesystem::path(directory) / segment_name(seq)).string();
    std::ifstream in(path);
    if (!in) {
      // Unreadable segment: evidence lost, refit continues on the rest.
      XFL_LOG(warn) << "training journal segment unreadable"
                    << obs::kv("path", path);
      continue;
    }
    ++result.segments_read;
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      if (auto record = decode_record(line))
        result.records.push_back(*record);
      else
        ++result.lines_skipped;
    }
  }

  if (max_records > 0 && result.records.size() > max_records)
    result.records.erase(result.records.begin(),
                         result.records.end() -
                             static_cast<std::ptrdiff_t>(max_records));
  return result;
}

}  // namespace xfl::retrain
