#include "retrain/retrainer.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <exception>
#include <map>
#include <span>
#include <utility>
#include <vector>

#include "common/contracts.hpp"
#include "common/stats.hpp"
#include "logs/record.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/json.hpp"

namespace xfl::retrain {
namespace {

struct RetrainMetrics {
  obs::Counter& cycles = obs::counter("retrain.cycles");
  obs::Counter& refits = obs::counter("retrain.refits");
  obs::Counter& accepted = obs::counter("retrain.accepted");
  obs::Counter& rejected = obs::counter("retrain.rejected");
  obs::Counter& skipped = obs::counter("retrain.skipped");
  obs::Counter& errors = obs::counter("retrain.errors");
  obs::Gauge& last_version = obs::gauge("retrain.last_version");
  obs::Gauge& candidate_mdape = obs::gauge("retrain.candidate_mdape_pct");
  obs::Gauge& incumbent_mdape = obs::gauge("retrain.incumbent_mdape_pct");
};

RetrainMetrics& retrain_metrics() {
  static RetrainMetrics metrics;
  return metrics;
}

const char* trigger_name(RetrainTrigger trigger) {
  switch (trigger) {
    case RetrainTrigger::kAlarm:
      return "alarm";
    case RetrainTrigger::kInterval:
      return "interval";
    case RetrainTrigger::kManual:
      return "manual";
  }
  return "unknown";
}

std::string edge_name(const logs::EdgeKey& edge) {
  return std::to_string(edge.src) + "->" + std::to_string(edge.dst);
}

/// Windowed MdAPE (the paper's accuracy metric) of `predictor` over a
/// holdout slice: median of |observed - predicted| / observed * 100.
double holdout_mdape_pct(const core::TransferPredictor& predictor,
                         std::span<const core::EdgeSample> holdout) {
  std::vector<double> apes;
  apes.reserve(holdout.size());
  for (const core::EdgeSample& sample : holdout) {
    const double predicted =
        predictor.predict_rate_mbps(sample.transfer, sample.load);
    apes.push_back(std::abs(sample.observed_mbps - predicted) /
                   sample.observed_mbps * 100.0);
  }
  return median(apes);
}

}  // namespace

RetrainWorker::RetrainWorker(serve::ModelHost& host, TrainingJournal& journal,
                             RetrainOptions options)
    : host_(host), journal_(journal), options_(std::move(options)) {
  XFL_EXPECTS(options_.poll_ms > 0);
  XFL_EXPECTS(options_.holdout_fraction > 0.0 &&
              options_.holdout_fraction < 1.0);
  XFL_EXPECTS(options_.min_holdout >= 1);
  XFL_EXPECTS(options_.max_weight >= 1);
  XFL_EXPECTS(options_.weight_half_life > 0.0);
  XFL_EXPECTS(options_.gbt.valid());
}

RetrainWorker::~RetrainWorker() { stop(); }

void RetrainWorker::start() {
  std::lock_guard lock(mutex_);
  if (started_) return;
  started_ = true;
  stop_requested_ = false;
  status_.running = true;
  thread_ = std::thread([this] { worker_loop(); });
}

void RetrainWorker::stop() {
  {
    std::lock_guard lock(mutex_);
    if (!started_) return;
    stop_requested_ = true;
  }
  cv_.notify_all();
  thread_.join();
  std::lock_guard lock(mutex_);
  started_ = false;
  status_.running = false;
}

void RetrainWorker::trigger() {
  {
    std::lock_guard lock(mutex_);
    manual_pending_ = true;
  }
  cv_.notify_all();
}

void RetrainWorker::on_alarm() {
  {
    std::lock_guard lock(mutex_);
    alarm_pending_ = true;
  }
  cv_.notify_all();
}

void RetrainWorker::worker_loop() {
  using clock = std::chrono::steady_clock;
  auto last_interval = clock::now();
  // Armed when an alarm cycle was data-starved (nothing refit): the
  // alarm is edge-triggered and will not re-fire while latched, so the
  // worker itself retries until a cycle reaches a real gate decision.
  bool retry_armed = false;
  auto retry_at = clock::now();

  // Runs one cycle and re-arms (or disarms) the starvation retry: a
  // cycle that trained at least one candidate or failed outright made
  // real progress; one that only skipped is still waiting for records.
  const auto cycle = [this, &retry_armed, &retry_at](RetrainTrigger trigger) {
    const RetrainStatus before = status();
    run_cycle(trigger);
    const RetrainStatus after = status();
    const bool starved =
        after.refits == before.refits && after.errors == before.errors;
    retry_armed = starved && options_.alarm_retry_ms > 0 &&
                  trigger == RetrainTrigger::kAlarm;
    if (retry_armed)
      retry_at = clock::now() + std::chrono::milliseconds(options_.alarm_retry_ms);
  };

  for (;;) {
    bool alarm = false;
    bool manual = false;
    {
      std::unique_lock lock(mutex_);
      cv_.wait_for(lock, std::chrono::milliseconds(options_.poll_ms), [this] {
        return stop_requested_ || alarm_pending_ || manual_pending_;
      });
      if (stop_requested_) return;
      alarm = std::exchange(alarm_pending_, false);
      manual = std::exchange(manual_pending_, false);
    }
    // Highest-priority pending trigger wins the cycle attribution; the
    // cycle itself refits everything due regardless of why it ran.
    if (alarm) {
      cycle(RetrainTrigger::kAlarm);
      last_interval = clock::now();
    } else if (manual) {
      cycle(RetrainTrigger::kManual);
      last_interval = clock::now();
    } else if (retry_armed && clock::now() >= retry_at) {
      cycle(RetrainTrigger::kAlarm);
      last_interval = clock::now();
    } else if (options_.interval_ms > 0) {
      const auto now = clock::now();
      if (now - last_interval >=
          std::chrono::milliseconds(options_.interval_ms)) {
        cycle(RetrainTrigger::kInterval);
        last_interval = clock::now();
      }
    }
  }
}

std::size_t RetrainWorker::run_cycle(RetrainTrigger trigger) {
  XFL_SPAN("retrain.cycle");
  retrain_metrics().cycles.add(1);
  {
    std::lock_guard lock(mutex_);
    ++status_.cycles;
    switch (trigger) {
      case RetrainTrigger::kAlarm:
        ++status_.triggers_alarm;
        break;
      case RetrainTrigger::kInterval:
        ++status_.triggers_interval;
        break;
      case RetrainTrigger::kManual:
        ++status_.triggers_manual;
        break;
    }
  }

  std::size_t swaps = 0;
  try {
    // Make the freshest feedback visible to the loader, then read back a
    // bounded window of the newest records.
    journal_.flush();
    TrainingJournal::LoadResult loaded;
    {
      XFL_SPAN("retrain.load");
      loaded = TrainingJournal::load(journal_.options().directory,
                                     options_.max_records);
    }

    // Group by edge, dropping records a refit could not train on.
    std::map<logs::EdgeKey, std::vector<core::EdgeSample>> by_edge;
    for (const JournalRecord& record : loaded.records) {
      if (!std::isfinite(record.observed_mbps) || record.observed_mbps <= 0.0)
        continue;
      by_edge[{record.transfer.src, record.transfer.dst}].push_back(
          {record.transfer, record.load, record.observed_mbps});
    }

    const serve::ModelHost::Snapshot incumbent = host_.snapshot();
    XFL_LOG(debug) << "retrain cycle starting"
                   << obs::kv("trigger", trigger_name(trigger))
                   << obs::kv("records", loaded.records.size())
                   << obs::kv("skipped_lines", loaded.lines_skipped)
                   << obs::kv("edges", by_edge.size())
                   << obs::kv("incumbent_version", incumbent.version);

    for (const auto& [edge, samples] : by_edge) {
      if (samples.size() < options_.min_edge_records) {
        retrain_metrics().skipped.add(1);
        std::lock_guard lock(mutex_);
        ++status_.skipped;
        continue;
      }

      // Newest slice is the holdout: the gate judges the candidate on
      // observations neither model trained on, weighted toward "now".
      const std::size_t n = samples.size();
      std::size_t holdout_n = std::max<std::size_t>(
          options_.min_holdout,
          static_cast<std::size_t>(
              std::llround(static_cast<double>(n) * options_.holdout_fraction)));
      if (holdout_n + 2 > n) {
        retrain_metrics().skipped.add(1);
        std::lock_guard lock(mutex_);
        ++status_.skipped;
        continue;
      }
      const std::size_t train_n = n - holdout_n;
      const std::span<const core::EdgeSample> train(samples.data(), train_n);
      const std::span<const core::EdgeSample> holdout(samples.data() + train_n,
                                                      holdout_n);

      // Quantised recency decay: newest training record weighs
      // max_weight, halving every weight_half_life records of age —
      // integer multiplicities keep the GBT's histogram math exact.
      std::vector<std::uint32_t> weights(train_n);
      for (std::size_t i = 0; i < train_n; ++i) {
        const double age = static_cast<double>(train_n - 1 - i);
        const double decayed =
            static_cast<double>(options_.max_weight) *
            std::pow(0.5, age / options_.weight_half_life);
        weights[i] = static_cast<std::uint32_t>(
            std::max<long long>(1, std::llround(decayed)));
      }

      double incumbent_mdape = 0.0;
      double candidate_mdape = 0.0;
      core::TransferPredictor candidate;
      {
        XFL_SPAN("retrain.fit");
        candidate = incumbent.predictor->clone();
        candidate.refit_edge(edge, train, weights, options_.gbt);
      }
      retrain_metrics().refits.add(1);
      {
        XFL_SPAN("retrain.validate");
        incumbent_mdape = holdout_mdape_pct(*incumbent.predictor, holdout);
        candidate_mdape = holdout_mdape_pct(candidate, holdout);
      }
      retrain_metrics().incumbent_mdape.set(incumbent_mdape);
      retrain_metrics().candidate_mdape.set(candidate_mdape);

      const bool accept =
          candidate_mdape + options_.min_improvement_pct <= incumbent_mdape;
      if (accept) {
        const std::uint64_t version = host_.swap(
            std::make_shared<core::TransferPredictor>(std::move(candidate)));
        ++swaps;
        retrain_metrics().accepted.add(1);
        retrain_metrics().last_version.set(static_cast<double>(version));
        XFL_LOG(info) << "retrain candidate accepted"
                      << obs::kv("event", "retrain.accepted")
                      << obs::kv("edge", edge_name(edge))
                      << obs::kv("trigger", trigger_name(trigger))
                      << obs::kv("train", train_n)
                      << obs::kv("holdout", holdout_n)
                      << obs::kv("incumbent_mdape_pct", incumbent_mdape)
                      << obs::kv("candidate_mdape_pct", candidate_mdape)
                      << obs::kv("version", version);
        std::lock_guard lock(mutex_);
        ++status_.refits;
        ++status_.accepted;
        status_.last_version = version;
        status_.last_candidate_mdape_pct = candidate_mdape;
        status_.last_incumbent_mdape_pct = incumbent_mdape;
        status_.last_decision = "accepted";
        status_.last_edge = edge_name(edge);
      } else {
        retrain_metrics().rejected.add(1);
        XFL_LOG(info) << "retrain candidate rejected by validation gate"
                      << obs::kv("event", "retrain.rejected")
                      << obs::kv("edge", edge_name(edge))
                      << obs::kv("trigger", trigger_name(trigger))
                      << obs::kv("train", train_n)
                      << obs::kv("holdout", holdout_n)
                      << obs::kv("incumbent_mdape_pct", incumbent_mdape)
                      << obs::kv("candidate_mdape_pct", candidate_mdape)
                      << obs::kv("min_improvement_pct",
                                 options_.min_improvement_pct);
        std::lock_guard lock(mutex_);
        ++status_.refits;
        ++status_.rejected;
        status_.last_candidate_mdape_pct = candidate_mdape;
        status_.last_incumbent_mdape_pct = incumbent_mdape;
        status_.last_decision = "rejected";
        status_.last_edge = edge_name(edge);
      }
    }
  } catch (const std::exception& e) {
    retrain_metrics().errors.add(1);
    XFL_LOG(error) << "retrain cycle failed"
                   << obs::kv("event", "retrain.error")
                   << obs::kv("trigger", trigger_name(trigger))
                   << obs::kv("what", e.what());
    std::lock_guard lock(mutex_);
    ++status_.errors;
    status_.last_error = e.what();
  }
  return swaps;
}

RetrainStatus RetrainWorker::status() const {
  std::lock_guard lock(mutex_);
  return status_;
}

std::string RetrainWorker::status_json() const {
  const RetrainStatus s = status();
  std::string out = "{\"enabled\":true";
  const auto field = [&out](const char* name, std::uint64_t v) {
    out += ",\"";
    out += name;
    out += "\":";
    out += std::to_string(v);
  };
  out += ",\"running\":";
  out += s.running ? "true" : "false";
  field("cycles", s.cycles);
  field("triggers_alarm", s.triggers_alarm);
  field("triggers_interval", s.triggers_interval);
  field("triggers_manual", s.triggers_manual);
  field("refits", s.refits);
  field("accepted", s.accepted);
  field("rejected", s.rejected);
  field("skipped", s.skipped);
  field("errors", s.errors);
  field("last_version", s.last_version);
  out += ",\"last_candidate_mdape_pct\":";
  out += serve::json_number(s.last_candidate_mdape_pct);
  out += ",\"last_incumbent_mdape_pct\":";
  out += serve::json_number(s.last_incumbent_mdape_pct);
  out += ",\"last_decision\":";
  serve::append_json_string(out, s.last_decision);
  out += ",\"last_edge\":";
  serve::append_json_string(out, s.last_edge);
  out += ",\"last_error\":";
  serve::append_json_string(out, s.last_error);
  out += "}";
  return out;
}

RetrainService::RetrainService(serve::PredictionServer& server,
                               TrainingJournal::Options journal_options,
                               RetrainOptions retrain_options)
    : journal_(std::move(journal_options)),
      worker_(server.host(), journal_, std::move(retrain_options)) {
  server.set_feedback_hook(
      [this](const serve::ServeMonitor::FeedbackResult& result,
             std::uint64_t trace_id, double observed_mbps) {
        JournalRecord record;
        record.trace_id = trace_id;
        record.model_version = result.model_version;
        record.transfer = result.transfer;
        record.load = result.load;
        record.predicted_mbps = result.predicted_mbps;
        record.observed_mbps = observed_mbps;
        try {
          journal_.append(record);
        } catch (const std::exception& e) {
          // The serve path must survive a full disk; drop the record and
          // say so — the monitor still has it in memory.
          XFL_LOG(error) << "training journal append failed"
                         << obs::kv("what", e.what());
        }
      });
  server.monitor().set_alarm_hook(
      [this](std::uint64_t /*model_version*/, double /*mdape_pct*/,
             bool raised) {
        if (raised) worker_.on_alarm();
      });
  server.set_retrain_status_provider([this] { return worker_.status_json(); });
  worker_.start();
  XFL_LOG(info) << "retrain service started"
                << obs::kv("journal_dir", journal_.options().directory)
                << obs::kv("interval_ms", worker_.options().interval_ms)
                << obs::kv("min_edge_records",
                           worker_.options().min_edge_records);
}

RetrainService::~RetrainService() { worker_.stop(); }

}  // namespace xfl::retrain
