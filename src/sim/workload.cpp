#include "sim/workload.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/contracts.hpp"

namespace xfl::sim {

namespace {

const EdgeProfile& pick_edge(const std::vector<EdgeProfile>& edges,
                             double total_weight, Rng& rng) {
  double target = rng.uniform() * total_weight;
  for (const auto& edge : edges) {
    target -= edge.weight;
    if (target <= 0.0) return edge;
  }
  return edges.back();
}

TransferRequest make_request(const EdgeProfile& edge,
                             const WorkloadConfig& config, double submit_s,
                             std::uint64_t id, Rng& rng) {
  TransferRequest req;
  req.id = id;
  req.src = edge.src;
  req.dst = edge.dst;
  req.submit_s = submit_s;

  if (rng.bernoulli(config.tiny_transfer_prob)) {
    // Connectivity test: a single file of 1 B .. 1 MB.
    req.bytes = std::max(config.min_bytes,
                         std::pow(10.0, rng.uniform(0.0, 6.0)));
    req.files = 1;
    req.dirs = 1;
    req.params.concurrency = edge.default_concurrency;
    req.params.parallelism = edge.default_parallelism;
    return req;
  }
  req.bytes = std::clamp(rng.lognormal(edge.log_mean_bytes, edge.log_sigma_bytes),
                         config.min_bytes, config.max_bytes);
  // Mean file size: independent lognormal, but kept consistent with the
  // transfer size. The floor caps the file count at max_files_per_transfer
  // (and at 100 KB files) - without it, the joint tail of the two
  // distributions produces million-file transfers whose per-file overhead
  // makes them effectively unfinishable, which no real user submits at
  // scale (the log study averages ~1.5k files per transfer).
  const double floor_file =
      std::max(std::min(1.0e5, req.bytes),
               req.bytes / static_cast<double>(config.max_files_per_transfer));
  const double mean_file =
      std::clamp(rng.lognormal(edge.log_mean_file, edge.log_sigma_file),
                 floor_file, req.bytes);
  req.files = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::llround(req.bytes / mean_file)));
  const double files_per_dir = rng.uniform(20.0, 200.0);
  req.dirs = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             static_cast<double>(req.files) / files_per_dir));

  req.params.concurrency = edge.default_concurrency;
  req.params.parallelism = edge.default_parallelism;
  if (rng.bernoulli(edge.tunable_deviation_prob)) {
    static constexpr std::uint32_t kChoicesC[] = {1, 2, 4, 8, 16};
    static constexpr std::uint32_t kChoicesP[] = {1, 2, 4, 8};
    req.params.concurrency = kChoicesC[rng.uniform_int(0, 4)];
    req.params.parallelism = kChoicesP[rng.uniform_int(0, 3)];
  }
  req.params.integrity_check = !rng.bernoulli(0.05);  // Default on (§2).
  return req;
}

}  // namespace

std::size_t temper_offered_load(std::vector<EdgeProfile>& profiles,
                                const endpoint::EndpointCatalog& endpoints,
                                const WorkloadConfig& config,
                                double max_utilisation) {
  XFL_EXPECTS(max_utilisation > 0.0 && max_utilisation <= 1.0);
  double total_weight = 0.0;
  for (const auto& profile : profiles) total_weight += profile.weight;
  if (total_weight <= 0.0) return 0;
  const double total_transfers = config.arrivals_per_s * config.duration_s *
                                 config.session_mean_transfers;

  std::set<std::size_t> tempered;
  // Proportional scale-down, iterated because one edge can touch two
  // saturated endpoints; converges geometrically.
  for (int iteration = 0; iteration < 6; ++iteration) {
    std::vector<double> offered_out(endpoints.size(), 0.0);
    std::vector<double> offered_in(endpoints.size(), 0.0);
    std::vector<double> mean_rate(profiles.size(), 0.0);
    for (std::size_t p = 0; p < profiles.size(); ++p) {
      const auto& profile = profiles[p];
      // Mean of the (clamped) lognormal; the clamp only tightens, so this
      // is a conservative (over-)estimate.
      const double mean_bytes =
          std::exp(profile.log_mean_bytes +
                   0.5 * profile.log_sigma_bytes * profile.log_sigma_bytes);
      mean_rate[p] = profile.weight / total_weight * total_transfers *
                     mean_bytes / config.duration_s;
      offered_out[profile.src] += mean_rate[p];
      offered_in[profile.dst] += mean_rate[p];
    }
    bool any_scaled = false;
    for (std::size_t p = 0; p < profiles.size(); ++p) {
      auto& profile = profiles[p];
      const auto& src = endpoints[profile.src];
      const auto& dst = endpoints[profile.dst];
      const double out_budget =
          max_utilisation * std::min(src.disk.read_Bps, src.nic_out_Bps);
      const double in_budget =
          max_utilisation * std::min(dst.disk.write_Bps, dst.nic_in_Bps);
      double factor = 1.0;
      if (offered_out[profile.src] > out_budget)
        factor = std::min(factor, out_budget / offered_out[profile.src]);
      if (offered_in[profile.dst] > in_budget)
        factor = std::min(factor, in_budget / offered_in[profile.dst]);
      if (factor < 0.999) {
        profile.log_mean_bytes += std::log(factor);
        tempered.insert(p);
        any_scaled = true;
      }
    }
    if (!any_scaled) break;
  }
  return tempered.size();
}

std::vector<TransferRequest> generate_workload(
    const std::vector<EdgeProfile>& edges, const WorkloadConfig& config,
    Rng& rng) {
  XFL_EXPECTS(!edges.empty());
  XFL_EXPECTS(config.duration_s > 0.0 && config.arrivals_per_s > 0.0);
  double total_weight = 0.0;
  for (const auto& edge : edges) {
    XFL_EXPECTS(edge.weight >= 0.0);
    total_weight += edge.weight;
  }
  XFL_EXPECTS(total_weight > 0.0);

  std::vector<TransferRequest> requests;
  std::uint64_t next_id = config.first_id;
  double session_start = 0.0;
  while (true) {
    session_start += rng.exponential(config.arrivals_per_s);
    if (session_start >= config.duration_s) break;
    // Sessions usually stay on one edge: a user moving one dataset.
    const EdgeProfile& edge = pick_edge(edges, total_weight, rng);
    const auto session_size = static_cast<std::uint64_t>(
        1 + rng.poisson(std::max(0.0, config.session_mean_transfers - 1.0)));
    double submit = session_start;
    for (std::uint64_t t = 0; t < session_size; ++t) {
      requests.push_back(make_request(edge, config, submit, next_id++, rng));
      submit += rng.exponential(1.0 / config.session_gap_s);
    }
  }
  std::sort(requests.begin(), requests.end(),
            [](const TransferRequest& a, const TransferRequest& b) {
              if (a.submit_s != b.submit_s) return a.submit_s < b.submit_s;
              return a.id < b.id;
            });
  return requests;
}

}  // namespace xfl::sim
