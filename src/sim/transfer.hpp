// Transfer request submitted to the simulator: what a Globus user asks for.
#pragma once

#include <cstdint>

#include "endpoint/endpoint.hpp"
#include "endpoint/gridftp.hpp"

namespace xfl::sim {

/// One requested disk-to-disk (or probe) transfer.
struct TransferRequest {
  std::uint64_t id = 0;
  endpoint::EndpointId src = 0;
  endpoint::EndpointId dst = 0;
  double submit_s = 0.0;      ///< Arrival time in simulation seconds.
  double bytes = 0.0;         ///< Total payload.
  std::uint64_t files = 1;
  std::uint64_t dirs = 1;
  endpoint::GridFtpParams params;
  /// Probe switches (§3.1 experiments): /dev/zero as source skips the
  /// source disk; /dev/null as destination skips the destination disk;
  /// both false gives a memory-to-memory (iperf-like) probe.
  bool use_src_disk = true;
  bool use_dst_disk = true;

  bool valid() const {
    return bytes >= 0.0 && files >= 1 && dirs >= 1 && params.valid() &&
           src != dst;
  }
};

}  // namespace xfl::sim
