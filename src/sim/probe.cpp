#include "sim/probe.hpp"

#include <algorithm>

#include "common/contracts.hpp"

namespace xfl::sim {

double measure_max_rate_Bps(const net::SiteCatalog& sites,
                            const endpoint::EndpointCatalog& endpoints,
                            const SimConfig& sim_config,
                            endpoint::EndpointId src, endpoint::EndpointId dst,
                            ProbeKind kind, const ProbeConfig& probe) {
  XFL_EXPECTS(probe.repetitions >= 1);
  XFL_EXPECTS(probe.bytes > 0.0);
  Simulator simulator(sites, endpoints, sim_config);
  // Repetitions run strictly back to back: space submissions by a gap no
  // transfer can outlast (1 MB/s worst case plus generous slack).
  const double gap_s = probe.bytes / 1.0e6 + 3600.0;
  for (int rep = 0; rep < probe.repetitions; ++rep) {
    TransferRequest req;
    req.id = static_cast<std::uint64_t>(rep) + 1;
    req.src = src;
    req.dst = dst;
    req.submit_s = static_cast<double>(rep) * gap_s;
    req.bytes = probe.bytes;
    req.files = probe.files;
    req.dirs = 1;
    req.params = probe.params;
    req.use_src_disk =
        kind == ProbeKind::kDiskToDisk || kind == ProbeKind::kDiskToNull;
    req.use_dst_disk =
        kind == ProbeKind::kDiskToDisk || kind == ProbeKind::kZeroToDisk;
    simulator.submit(req);
  }
  const SimResult result = simulator.run();
  double best = 0.0;
  for (const auto& record : result.log.records())
    best = std::max(best, record.rate_Bps());
  return best;
}

SubsystemMaxima measure_subsystem_maxima(
    const net::SiteCatalog& sites, const endpoint::EndpointCatalog& endpoints,
    const SimConfig& sim_config, endpoint::EndpointId src,
    endpoint::EndpointId dst, const ProbeConfig& probe) {
  SubsystemMaxima maxima;
  maxima.r_max = measure_max_rate_Bps(sites, endpoints, sim_config, src, dst,
                                      ProbeKind::kDiskToDisk, probe);
  maxima.dw_max = measure_max_rate_Bps(sites, endpoints, sim_config, src, dst,
                                       ProbeKind::kZeroToDisk, probe);
  maxima.dr_max = measure_max_rate_Bps(sites, endpoints, sim_config, src, dst,
                                       ProbeKind::kDiskToNull, probe);
  maxima.mm_max = measure_max_rate_Bps(sites, endpoints, sim_config, src, dst,
                                       ProbeKind::kMemToMem, probe);
  return maxima;
}

}  // namespace xfl::sim
