// Non-Globus background load. The paper's central "unknown" (§4.3.2) is
// competing activity that Globus logs cannot see: other transfer tools,
// local analysis jobs hammering the filesystem, and unrelated WAN traffic.
// We model each such activity as an on/off Markov process that, while on,
// injects a constant-demand flow onto one simulated component. The
// simulator knows these flows (it must, to allocate rates), but the
// *transfer log* never records them — exactly the information asymmetry
// the paper studies. Only the LMT monitor scenario (§5.5.2) observes them.
#pragma once

#include <cstdint>

#include "endpoint/endpoint.hpp"
#include "net/site.hpp"

namespace xfl::sim {

/// Which component of the system a background process loads.
enum class Component : std::uint8_t {
  kDiskRead,   ///< Endpoint storage, read side (e.g. local analysis jobs).
  kDiskWrite,  ///< Endpoint storage, write side.
  kNicIn,      ///< Endpoint NIC, incoming (e.g. non-Globus downloads).
  kNicOut,     ///< Endpoint NIC, outgoing.
  kWan,        ///< A directed wide-area path (cross traffic).
};

/// Static description of one background-load process.
struct BackgroundSpec {
  Component component = Component::kDiskRead;
  /// Target endpoint for the four endpoint components (ignored for kWan).
  endpoint::EndpointId endpoint = 0;
  /// Target directed site pair for kWan (ignored otherwise).
  net::SiteId wan_src = 0;
  net::SiteId wan_dst = 0;
  /// Demand while on, drawn uniformly from [demand_lo, demand_hi] at each
  /// on-transition.
  double demand_lo_Bps = 5.0e7;
  double demand_hi_Bps = 2.0e8;
  /// Mean sojourn times of the on/off Markov chain.
  double mean_on_s = 600.0;
  double mean_off_s = 1800.0;
  /// Share weight of the background flow on its resource (a non-Globus
  /// transfer tool typically opens several streams).
  double weight = 4.0;

  bool valid() const {
    return demand_lo_Bps >= 0.0 && demand_hi_Bps >= demand_lo_Bps &&
           mean_on_s > 0.0 && mean_off_s > 0.0 && weight > 0.0;
  }
};

}  // namespace xfl::sim
