// Fluid discrete-event simulator of wide-area disk-to-disk transfers.
//
// This is the data substrate standing in for the paper's (closed) Globus
// production logs. Transfers, probes, and background processes are fluid
// flows over shared rate resources (disk read/write, NIC in/out, CPU, WAN
// paths). Rates are piecewise constant: on every event (arrival, data-phase
// start, completion, fault, resume, background toggle) the weighted max-min
// solver in resources.hpp recomputes all rates. See DESIGN.md §5 for the
// modeling decisions.
//
// Lifecycle of a transfer:
//   submit ──(startup: control channel, per-pair setup, directory
//             creation; occupies GridFTP slots but moves no bytes)──▶
//   running ──(fluid data movement; Poisson faults stall it and refetch
//              part of a file)──▶ complete (one TransferRecord logged)
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <queue>
#include <vector>

#include "common/rng.hpp"
#include "endpoint/endpoint.hpp"
#include "endpoint/gridftp.hpp"
#include "logs/log_store.hpp"
#include "net/path.hpp"
#include "net/site.hpp"
#include "net/tcp_model.hpp"
#include "sim/background.hpp"
#include "sim/resources.hpp"
#include "sim/transfer.hpp"

namespace xfl::sim {

/// Global simulator knobs.
struct SimConfig {
  net::TcpConfig tcp;
  endpoint::FaultPolicy fault_policy;
  bool enable_faults = true;
  /// GridFTP process count at which endpoint CPU efficiency is halved.
  /// Production DTNs tolerate large process counts; the quadratic decay
  /// beyond the knee produces Fig. 4's throughput fall-off without letting
  /// transient concurrency collapse the endpoint entirely.
  double cpu_knee = 128.0;
  /// Passes of the cap/efficiency fixed-point iteration (DESIGN.md §5.2).
  int allocation_passes = 2;
  /// RNG seed for faults and background processes.
  std::uint64_t seed = 1;
  /// Admission control: at most this many transfers may be active
  /// (startup/running/stalled) at any endpoint; excess arrivals queue
  /// FIFO inside the service, and the queue wait counts toward the logged
  /// duration - exactly how the Globus service limits concurrent
  /// transfers per endpoint. Also the simulator's stability guarantee:
  /// concurrency (and hence per-event cost) stays bounded even if a
  /// workload momentarily overloads an endpoint.
  std::uint32_t max_active_per_endpoint = 24;
};

/// One instantaneous utilisation sample for a monitored endpoint. Feeds
/// both the Fig. 4 concurrency analysis and the §5.5.2 LMT features
/// (disk_read/disk_write stand in for OST load, cpu_load for OSS CPU).
struct EndpointSample {
  double time_s = 0.0;
  double gridftp_instances = 0.0;  ///< Active process pairs at the endpoint.
  double in_Bps = 0.0;             ///< Aggregate incoming transfer rate.
  double out_Bps = 0.0;            ///< Aggregate outgoing transfer rate.
  double disk_read_Bps = 0.0;      ///< Total read load incl. background.
  double disk_write_Bps = 0.0;     ///< Total write load incl. background.
  double cpu_load = 0.0;           ///< CPU utilisation in [0, 1].
};

/// One SNMP-style sample of a wide-area path's carried traffic (Globus and
/// cross-traffic alike) — the router-counter data §8 names as future work.
struct WanSample {
  double time_s = 0.0;
  double load_Bps = 0.0;
};

/// Aggregate statistics of one simulation run.
struct SimStats {
  std::uint64_t events = 0;            ///< Main-loop iterations processed.
  std::uint32_t peak_active = 0;       ///< Max concurrent transfers at any endpoint.
  std::size_t peak_queue = 0;          ///< Max admission-queue length.
  double makespan_s = 0.0;             ///< Completion time of the last transfer.
  double total_bytes = 0.0;            ///< Payload moved.
  std::uint64_t total_faults = 0;      ///< Faults across all transfers.
};

/// Simulation output: the Globus-style log plus optional monitor series.
struct SimResult {
  logs::LogStore log;
  std::map<endpoint::EndpointId, std::vector<EndpointSample>> samples;
  std::map<std::pair<net::SiteId, net::SiteId>, std::vector<WanSample>>
      wan_samples;
  SimStats stats;
};

/// The simulator. Construct, optionally customise paths / background /
/// sampling, submit all transfer requests, then run() once.
class Simulator {
 public:
  Simulator(const net::SiteCatalog& sites,
            const endpoint::EndpointCatalog& endpoints, SimConfig config);

  /// Override the WAN path for a directed site pair (defaults come from
  /// net::derive_path geometry).
  void set_wan_path(net::SiteId src_site, net::SiteId dst_site,
                    const net::WanPath& path);

  /// Register a background-load process (see background.hpp).
  void add_background(const BackgroundSpec& spec);

  /// Record utilisation samples for `id` every `interval_s` seconds.
  void enable_sampling(endpoint::EndpointId id, double interval_s);

  /// Record SNMP-style load samples for the directed WAN path between two
  /// sites every `interval_s` seconds (§8's router-counter extension).
  void enable_wan_sampling(net::SiteId src_site, net::SiteId dst_site,
                           double interval_s);

  /// Queue a transfer. All submissions must happen before run().
  void submit(const TransferRequest& request);

  /// Run to completion of all submitted transfers. Can only be called once.
  SimResult run();

 private:
  enum class TransferState : std::uint8_t {
    kPending,  ///< Submitted but not yet arrived.
    kStartup,  ///< Control-channel + directory setup; occupies instances.
    kRunning,  ///< Fluid data movement.
    kStalled,  ///< Fault backoff.
    kDone,
  };

  struct ActiveTransfer {
    TransferRequest req;
    TransferState state = TransferState::kPending;
    double remaining_bytes = 0.0;
    double rate_Bps = 0.0;
    std::uint32_t faults = 0;
    std::uint32_t procs = 1;
    std::uint32_t streams = 1;
    double tcp_cap_Bps = 0.0;
    double mean_file_bytes = 1.0;
    double per_file_overhead_s = 0.0;
    double cpu_factor = 1.0;
    double utilisation = 0.0;
    std::uint64_t epoch = 0;  ///< Invalidates stale fault/resume events.
    std::vector<ResourceUsage> usage;
  };

  enum class EventType : std::uint8_t {
    kArrival,
    kStartData,
    kFaultCandidate,
    kResume,
    kBackgroundToggle,
    kSample,
    kWanSample,
  };

  struct Event {
    double time = 0.0;
    std::uint64_t seq = 0;  ///< FIFO tie-break for equal times.
    EventType type = EventType::kArrival;
    std::size_t index = 0;    ///< Transfer / background / monitor index.
    std::uint64_t epoch = 0;  ///< Matched against the transfer's epoch.

    bool operator>(const Event& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  struct BackgroundState {
    BackgroundSpec spec;
    bool on = false;
    double demand_Bps = 0.0;
    ResourceId resource = 0;
  };

  struct MonitorState {
    endpoint::EndpointId endpoint = 0;
    double interval_s = 0.0;
  };

  struct WanMonitorState {
    net::SiteId src_site = 0;
    net::SiteId dst_site = 0;
    ResourceId resource = 0;
    double interval_s = 0.0;
  };

  struct EndpointResources {
    ResourceId disk_read, disk_write, nic_in, nic_out, cpu;
  };

  void push_event(double time, EventType type, std::size_t index,
                  std::uint64_t epoch = 0);
  bool admissible(const TransferRequest& request) const;
  void admit(std::size_t index, double now);
  void drain_admission_queue(double now);
  ResourceId wan_resource(net::SiteId src_site, net::SiteId dst_site);
  const net::WanPath& wan_path(net::SiteId src_site, net::SiteId dst_site);
  void build_usage(ActiveTransfer& transfer);
  void reallocate(double now);
  void advance_progress(double from, double to);
  std::optional<std::pair<double, std::size_t>> next_completion(double now) const;
  void handle_event(const Event& event, double now);
  void complete_transfer(std::size_t index, double now);
  void record_sample(const MonitorState& monitor, double now);
  void schedule_fault_candidate(std::size_t index, double now);

  const net::SiteCatalog& sites_;
  const endpoint::EndpointCatalog& endpoints_;
  SimConfig config_;
  Rng rng_;

  ResourcePool pool_;
  std::vector<EndpointResources> endpoint_resources_;
  std::map<std::pair<net::SiteId, net::SiteId>, ResourceId> wan_resources_;
  std::map<std::pair<net::SiteId, net::SiteId>, net::WanPath> wan_paths_;

  std::vector<ActiveTransfer> transfers_;
  std::vector<BackgroundState> backgrounds_;
  std::vector<MonitorState> monitors_;
  std::vector<WanMonitorState> wan_monitors_;

  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> queue_;
  std::uint64_t next_seq_ = 0;
  std::size_t completed_ = 0;
  bool ran_ = false;

  // Flow bookkeeping refreshed by reallocate(): indices of transfers in the
  // running state, parallel to the FlowSpec list handed to the solver.
  std::vector<std::size_t> running_;
  std::vector<double> resource_load_;  ///< Consumption per resource.

  // Incremental state so that reallocate() never scans the full (possibly
  // enormous) submitted-transfer list: transfers that have arrived but not
  // completed, and live GridFTP process-pair counts per endpoint.
  std::vector<std::size_t> live_;
  std::vector<std::size_t> live_pos_;  ///< transfer index -> slot in live_.
  std::vector<double> instances_;      ///< Per endpoint.
  std::vector<std::uint32_t> active_transfers_;  ///< Per endpoint.
  std::deque<std::size_t> admission_queue_;      ///< FIFO of waiting arrivals.

  SimResult result_;
};

}  // namespace xfl::sim
