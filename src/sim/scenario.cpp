#include "sim/scenario.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "net/path.hpp"
#include "storage/disk.hpp"

namespace xfl::sim {

SimResult Scenario::run() const {
  Simulator simulator(sites, endpoints, sim_config);
  for (const auto& override : lan_paths)
    simulator.set_wan_path(override.src, override.dst, override.path);
  for (const auto& bg : backgrounds) simulator.add_background(bg);
  if (sample_interval_s > 0.0)
    for (auto id : monitored_endpoints)
      simulator.enable_sampling(id, sample_interval_s);
  for (const auto& [src_site, dst_site] : monitored_wan_paths)
    simulator.enable_wan_sampling(src_site, dst_site, wan_sample_interval_s);
  for (const auto& req : workload) simulator.submit(req);
  return simulator.run();
}

// ---------------------------------------------------------------------------
// ESnet testbed (§3.1)
// ---------------------------------------------------------------------------

Scenario make_esnet_testbed(const EsnetConfig& config) {
  Scenario scenario;
  scenario.sim_config.seed = config.seed;

  // The testbed comprises "identical hardware deployed at three DOE labs
  // ... and at CERN", each a powerful DTN with high-speed storage and a
  // 10 Gb/s link.
  for (const char* name : net::kEsnetSites) {
    net::SiteId site_id = 0;
    net::SiteCatalog known = net::SiteCatalog::with_known_facilities();
    known.find(name, site_id);
    scenario.sites.add(known[site_id]);
  }
  for (std::uint32_t s = 0; s < 4; ++s) {
    auto spec = endpoint::make_dtn(std::string(net::kEsnetSites[s]) + "-dtn", s);
    scenario.endpoints.add(spec);
  }

  if (config.transfers == 0) return scenario;

  // Workload across all 12 directed edges so that transfers compete at
  // shared endpoints, sweeping the relative-external-load axis of Fig. 3.
  Rng rng(config.seed);
  std::vector<EdgeProfile> profiles;
  for (endpoint::EndpointId src = 0; src < 4; ++src) {
    for (endpoint::EndpointId dst = 0; dst < 4; ++dst) {
      if (src == dst) continue;
      EdgeProfile profile;
      profile.src = src;
      profile.dst = dst;
      profile.weight = 1.0;
      profile.log_mean_bytes = std::log(5.0e10);  // ~50 GB median
      profile.log_sigma_bytes = 1.0;
      profile.log_mean_file = std::log(2.0e9);    // ~2 GB files
      profile.log_sigma_file = 0.8;
      profile.default_concurrency = 4;
      profile.default_parallelism = 4;
      profiles.push_back(profile);
      scenario.heavy_edges.push_back({src, dst});
    }
  }
  WorkloadConfig workload;
  workload.duration_s = config.duration_s;
  // Sessions of ~2 transfers; calibrate the arrival rate to the requested
  // transfer count.
  workload.session_mean_transfers = 2.0;
  workload.arrivals_per_s = static_cast<double>(config.transfers) /
                            workload.session_mean_transfers /
                            config.duration_s;
  workload.session_gap_s = 30.0;
  scenario.workload = generate_workload(profiles, workload, rng);
  return scenario;
}

// ---------------------------------------------------------------------------
// Production (§4-§5)
// ---------------------------------------------------------------------------

namespace {

/// Endpoint roles in the production scenario.
struct ProductionSite {
  const char* name;
  double nic_gbps;
};

/// Synthetic non-facility sites (campus deployments). Coordinates spread
/// over North America and Europe so that edge lengths span the Table 3
/// percentiles and Fig. 6 shows an intra- vs intercontinental split.
struct SyntheticSite {
  const char* name;
  double lat, lon;
};

constexpr SyntheticSite kSyntheticSites[] = {
    {"UMich", 42.28, -83.74},   {"UWisc", 43.07, -89.40},
    {"GaTech", 33.78, -84.40},  {"UWash", 47.65, -122.31},
    {"Utah", 40.77, -111.89},   {"Princeton", 40.34, -74.66},
    {"Rice", 29.72, -95.40},    {"UFl", 29.64, -82.35},
    {"Toronto", 43.66, -79.40}, {"Vancouver", 49.26, -123.25},
    {"DESY", 53.58, 9.88},      {"RAL", 51.57, -1.32},
    {"CNAF", 44.49, 11.34},     {"IN2P3", 45.78, 4.87},
    {"SURFsara", 52.36, 4.95},  {"PSNC", 52.41, 16.92},
    {"KIT", 49.01, 8.40},       {"Edinburgh", 55.92, -3.17},
};

/// The 30 heavy directed edges, expressed as endpoint-name pairs. The mix
/// follows Table 4's 30-edge split: roughly half GCS=>GCS, ~30% GCS=>GCP,
/// ~20% GCP=>GCS. GCP endpoints are created at synthetic sites below.
struct HeavyEdgeSpec {
  const char* src;
  const char* dst;
  double size_scale;  ///< Multiplies the median transfer size (edge texture).
  double file_scale;  ///< Multiplies the median file size.
  std::uint32_t default_c;
  std::uint32_t default_p;
};

constexpr HeavyEdgeSpec kHeavyEdges[] = {
    // 15 GCS => GCS (50%). No endpoint appears on more than three edges:
    // hot-spotting every heavy edge onto one or two DTNs would make the
    // typical transfer run against several concurrent competitors, pushing
    // the bulk of the rate distribution far below the edge maximum (real
    // logs keep ~46% of transfers above half the maximum).
    {"JLAB-dtn", "NERSC-dtn", 1.0, 0.5, 4, 4},
    {"NERSC-dtn", "JLAB-dtn", 0.8, 0.6, 4, 4},
    {"TACC-dtn", "ALCF-dtn", 1.5, 1.0, 8, 4},
    {"ALCF-dtn", "NERSC-edison", 1.2, 1.2, 8, 2},
    {"SDSC-dtn", "TACC-dtn", 0.7, 0.8, 4, 4},
    {"ORNL-dtn", "ALCF-dtn", 1.6, 1.1, 4, 4},
    {"NERSC-dtn", "ORNL-dtn", 1.4, 1.0, 4, 4},
    {"BNL-dtn", "FNAL-dtn", 1.1, 0.4, 16, 1},
    {"FNAL-dtn", "BNL-dtn", 1.0, 0.4, 16, 1},
    {"CERN-dtn", "FNAL-dtn", 1.8, 0.9, 8, 8},
    {"CERN-dtn", "BNL-dtn", 1.7, 0.9, 8, 8},
    {"NCSA-dtn", "SDSC-dtn", 0.9, 0.7, 4, 4},
    {"UCAR-dtn", "NCSA-dtn", 0.6, 0.3, 4, 2},
    {"ANL-dtn", "LBL-dtn", 1.0, 0.8, 4, 4},
    {"PNNL-dtn", "Colorado-dtn", 0.8, 0.6, 4, 2},
    // 9 GCS => GCP (30%)
    {"LBL-dtn", "UMich-gcp", 0.3, 0.4, 2, 2},
    {"NCSA-dtn", "UWisc-gcp", 0.3, 0.5, 2, 2},
    {"ORNL-dtn", "GaTech-gcp", 0.4, 0.4, 2, 2},
    {"NERSC-edison", "UWash-gcp", 0.2, 0.3, 1, 2},
    {"TACC-dtn", "Rice-gcp", 0.3, 0.6, 2, 2},
    {"SDSC-dtn", "Utah-gcp", 0.2, 0.4, 2, 2},
    {"JLAB-dtn", "Princeton-gcp", 0.25, 0.3, 2, 2},
    {"CERN-dtn", "DESY-gcp", 0.35, 0.5, 2, 4},
    {"Colorado-dtn", "Toronto-gcp", 0.3, 0.4, 2, 2},
    // 6 GCP => GCS (20%)
    {"UMich-gcp", "ANL-dtn", 0.2, 0.3, 1, 2},
    {"UWisc-gcp", "PNNL-dtn", 0.2, 0.3, 1, 2},
    {"GaTech-gcp", "UCAR-dtn", 0.15, 0.25, 1, 2},
    {"Utah-gcp", "LBL-dtn", 0.2, 0.3, 1, 2},
    {"RAL-gcp", "ANL-dtn", 0.25, 0.3, 2, 2},
    {"Princeton-gcp", "Colorado-dtn", 0.2, 0.3, 1, 2},
};

}  // namespace

Scenario make_production(const ProductionConfig& config) {
  Scenario scenario;
  scenario.sim_config.seed = config.seed;
  Rng rng(config.seed);

  // --- Sites ---------------------------------------------------------------
  scenario.sites = net::SiteCatalog::with_known_facilities();
  for (const auto& synthetic : kSyntheticSites)
    scenario.sites.add({synthetic.name, {synthetic.lat, synthetic.lon}});

  auto site_of = [&scenario](const std::string& name) {
    net::SiteId id = 0;
    const bool found = scenario.sites.find(name, id);
    XFL_ENSURES(found);
    return id;
  };

  // --- Endpoints -----------------------------------------------------------
  // Facility DTNs (GCS class, 10 Gb/s).
  constexpr ProductionSite kFacilityDtns[] = {
      {"NERSC", 10.0}, {"ALCF", 10.0}, {"TACC", 10.0}, {"SDSC", 10.0},
      {"JLAB", 10.0},  {"UCAR", 10.0}, {"Colorado", 10.0}, {"ORNL", 10.0},
      {"BNL", 10.0},   {"FNAL", 10.0}, {"NCSA", 10.0}, {"CERN", 10.0},
      {"ANL", 10.0},   {"LBL", 10.0},  {"PNNL", 10.0},
  };
  for (const auto& facility : kFacilityDtns) {
    auto spec = endpoint::make_dtn(std::string(facility.name) + "-dtn",
                                   site_of(facility.name), facility.nic_gbps);
    // Give facilities slightly distinct hardware so endpoints differ (the
    // global model's ROmax/RImax features must carry signal).
    const double storage_scale = rng.uniform(0.7, 1.1);
    spec.disk.read_Bps *= storage_scale;
    spec.disk.write_Bps *= storage_scale;
    scenario.endpoints.add(spec);
  }
  // A second NERSC endpoint sharing the site (the paper distinguishes
  // NERSC-DTN from NERSC-Edison in Fig. 8).
  {
    auto spec = endpoint::make_dtn("NERSC-edison", site_of("NERSC"), 10.0);
    spec.disk = storage::midrange_server();
    scenario.endpoints.add(spec);
  }
  // Campus GCS servers at synthetic sites (midrange).
  for (const auto& synthetic : kSyntheticSites) {
    auto spec = endpoint::make_dtn(std::string(synthetic.name) + "-gcs",
                                   site_of(synthetic.name),
                                   rng.bernoulli(0.5) ? 10.0 : 1.0);
    spec.disk = storage::midrange_server();
    const double storage_scale = rng.uniform(0.6, 1.2);
    spec.disk.read_Bps *= storage_scale;
    spec.disk.write_Bps *= storage_scale;
    scenario.endpoints.add(spec);
  }
  // Personal (GCP) endpoints at synthetic sites.
  for (const auto& synthetic : kSyntheticSites) {
    auto spec = endpoint::make_personal(std::string(synthetic.name) + "-gcp",
                                        site_of(synthetic.name), 1.0);
    scenario.endpoints.add(spec);
  }

  auto endpoint_of = [&scenario](const std::string& name) {
    endpoint::EndpointId id = 0;
    const bool found = scenario.endpoints.find(name, id);
    XFL_ENSURES(found);
    return id;
  };

  // --- Heavy edges ---------------------------------------------------------
  std::vector<EdgeProfile> profiles;
  const std::size_t heavy_count = std::size(kHeavyEdges);
  // Rank weights ~ 1/r^0.3: skewed but flat enough that the 30th edge still
  // collects >600 transfers (it must survive the 0.5*Rmax filter with >=300).
  double heavy_weight_sum = 0.0;
  for (std::size_t r = 1; r <= heavy_count; ++r)
    heavy_weight_sum += std::pow(static_cast<double>(r), -0.3);
  for (std::size_t r = 0; r < heavy_count; ++r) {
    const auto& spec = kHeavyEdges[r];
    EdgeProfile profile;
    profile.src = endpoint_of(spec.src);
    profile.dst = endpoint_of(spec.dst);
    profile.weight = config.heavy_share *
                     std::pow(static_cast<double>(r + 1), -0.3) /
                     heavy_weight_sum;
    // Median ~12 GB x the edge's size_scale, heavy-tailed. The tempering
    // pass below may scale these down further to keep offered load inside
    // endpoint capacity.
    profile.log_mean_bytes = std::log(1.2e10 * spec.size_scale);
    profile.log_sigma_bytes = 1.4;
    profile.log_mean_file = std::log(2.5e8 * spec.file_scale);
    profile.log_sigma_file = 1.6;
    profile.default_concurrency = spec.default_c;
    profile.default_parallelism = spec.default_p;
    profiles.push_back(profile);
    scenario.heavy_edges.push_back({profile.src, profile.dst});
  }

  // --- Tail edges ----------------------------------------------------------
  // Random low-usage edges over the whole endpoint population (no GCP=>GCP:
  // Globus did not support those before 2016). They share endpoints with
  // heavy edges, providing competing load and ROmax/RImax coverage.
  const std::size_t endpoint_count = scenario.endpoints.size();
  const std::size_t first_tail = profiles.size();
  std::size_t added = 0;
  while (added < config.tail_edges) {
    const auto src = static_cast<endpoint::EndpointId>(
        rng.uniform_int(0, static_cast<std::int64_t>(endpoint_count) - 1));
    const auto dst = static_cast<endpoint::EndpointId>(
        rng.uniform_int(0, static_cast<std::int64_t>(endpoint_count) - 1));
    if (src == dst) continue;
    if (scenario.endpoints[src].type == endpoint::EndpointType::kPersonal &&
        scenario.endpoints[dst].type == endpoint::EndpointType::kPersonal)
      continue;
    // Collaboration is mostly regional: intercontinental edges exist but
    // are a small minority (Table 3's 90th-percentile edge length is only
    // ~3,000 km; Fig. 6 shows a thin intercontinental band).
    const double src_lon =
        scenario.sites[scenario.endpoints[src].site].location.lon_deg;
    const double dst_lon =
        scenario.sites[scenario.endpoints[dst].site].location.lon_deg;
    const bool intercontinental = (src_lon < -30.0) != (dst_lon < -30.0);
    if (intercontinental && !rng.bernoulli(0.1)) continue;
    EdgeProfile profile;
    profile.src = src;
    profile.dst = dst;
    profile.weight = rng.pareto(1.0, 1.3);  // Normalised to the tail share below.
    profile.log_mean_bytes = std::log(rng.lognormal(std::log(4.0e9), 1.2));
    profile.log_sigma_bytes = 1.6;
    profile.log_mean_file = std::log(rng.lognormal(std::log(1.5e8), 1.0));
    profile.log_sigma_file = 1.4;
    profile.default_concurrency = rng.bernoulli(0.5) ? 2 : 4;
    profile.default_parallelism = rng.bernoulli(0.5) ? 2 : 4;
    profiles.push_back(profile);
    ++added;
  }
  // Normalise the tail so the heavy/tail traffic split is exact rather
  // than hostage to one lucky Pareto draw.
  double tail_weight_sum = 0.0;
  for (std::size_t p = first_tail; p < profiles.size(); ++p)
    tail_weight_sum += profiles[p].weight;
  if (tail_weight_sum > 0.0)
    for (std::size_t p = first_tail; p < profiles.size(); ++p)
      profiles[p].weight *= (1.0 - config.heavy_share) / tail_weight_sum;

  // --- Background (non-Globus) load -----------------------------------------
  if (config.enable_background) {
    for (const auto& facility : kFacilityDtns) {
      const auto id = endpoint_of(std::string(facility.name) + "-dtn");
      const auto& spec = scenario.endpoints[id];
      // Mostly-on, moderately variable non-Globus load: real DTNs never
      // sit at hardware idle, so even the best observed Globus transfer
      // runs against some competition (keeps Rmax(E) ~2x the typical rate
      // rather than ~5x, matching the log study's 46.5% retention at
      // 0.5*Rmax).
      BackgroundSpec bg;
      bg.endpoint = id;
      bg.mean_on_s = 3000.0;
      bg.mean_off_s = 800.0;
      bg.component = Component::kDiskRead;
      bg.demand_lo_Bps = 0.15 * spec.disk.read_Bps;
      bg.demand_hi_Bps = 0.45 * spec.disk.read_Bps;
      scenario.backgrounds.push_back(bg);
      bg.component = Component::kDiskWrite;
      bg.demand_lo_Bps = 0.15 * spec.disk.write_Bps;
      bg.demand_hi_Bps = 0.45 * spec.disk.write_Bps;
      scenario.backgrounds.push_back(bg);
      bg.component = Component::kNicIn;
      bg.demand_lo_Bps = 0.10 * spec.nic_in_Bps;
      bg.demand_hi_Bps = 0.30 * spec.nic_in_Bps;
      scenario.backgrounds.push_back(bg);
      bg.component = Component::kNicOut;
      bg.demand_lo_Bps = 0.10 * spec.nic_out_Bps;
      bg.demand_hi_Bps = 0.30 * spec.nic_out_Bps;
      scenario.backgrounds.push_back(bg);
    }
  }

  // Chronic WAN cross-traffic on a subset of paths (every 4th heavy edge's
  // site pair). These are the paper's "32 edges well below the Eq. 1
  // bound": a perfSONAR-style probe of the idle path measures the full
  // capacity, but production transfers always compete with persistent
  // non-Globus traffic the logs cannot see.
  if (config.enable_background) {
    // CERN->FNAL is the clean demonstration: both of its endpoints have
    // other fast heavy edges (CERN->BNL, BNL->FNAL), so their historical
    // DR/DW estimates stay high while this path's transfers run slow -
    // the probe-vs-history mismatch that puts an edge "below" Eq. 1.
    for (const std::size_t r : {std::size_t{0}, std::size_t{4},
                                std::size_t{9}, std::size_t{14}}) {
      endpoint::EndpointId src_ep = endpoint_of(kHeavyEdges[r].src);
      endpoint::EndpointId dst_ep = endpoint_of(kHeavyEdges[r].dst);
      BackgroundSpec bg;
      bg.component = Component::kWan;
      bg.wan_src = scenario.endpoints[src_ep].site;
      bg.wan_dst = scenario.endpoints[dst_ep].site;
      bg.demand_lo_Bps = 0.50 * 1.175e9;
      bg.demand_hi_Bps = 0.75 * 1.175e9;
      bg.mean_on_s = 50000.0;
      bg.mean_off_s = 300.0;
      // An aggregate of many unrelated flows: it holds its bandwidth share
      // against a single transfer's handful of TCP streams.
      bg.weight = 256.0;
      scenario.backgrounds.push_back(bg);
    }
  }

  // --- Workload --------------------------------------------------------------
  WorkloadConfig workload;
  workload.duration_s = config.duration_s;
  workload.arrivals_per_s = config.session_arrivals_per_s;
  workload.session_mean_transfers = config.session_mean_transfers;
  workload.session_gap_s = 300.0;  // Session members mostly run one at a time.
  // Keep every endpoint's offered load inside its service capacity (see
  // temper_offered_load): open-loop overload has no steady state.
  temper_offered_load(profiles, scenario.endpoints, workload);
  scenario.workload = generate_workload(profiles, workload, rng);
  return scenario;
}

// ---------------------------------------------------------------------------
// NERSC LMT (§5.5.2)
// ---------------------------------------------------------------------------

Scenario make_nersc_lmt(const LmtConfig& config) {
  Scenario scenario;
  scenario.sim_config.seed = config.seed;
  // The paper's controlled experiment is nearly deterministic given load
  // (95th-percentile error 1.26% once load is observed, and every logged
  // Nflt was uniform): faults are disabled for this intra-site scenario.
  scenario.sim_config.enable_faults = false;
  // The service-level concurrency cap never binds in the paper's setup.
  scenario.sim_config.max_active_per_endpoint = 64;
  Rng rng(config.seed);

  const auto nersc = scenario.sites.add({"NERSC", {37.876, -122.253}});

  // Two Lustre-backed endpoints: one OST pair on the DTN filesystem, one on
  // the Edison-shared filesystem. OST-class storage: a single OST delivers
  // a few hundred MB/s, far below the LAN between them.
  auto make_lustre_endpoint = [&](const char* name) {
    endpoint::EndpointSpec spec;
    spec.name = name;
    spec.site = nersc;
    spec.type = endpoint::EndpointType::kServer;
    spec.nic_in_Bps = gbit(10.0);
    spec.nic_out_Bps = gbit(10.0);
    spec.cpu_Bps = gbit(12.0);
    spec.disk.read_Bps = 6.0e8;
    spec.disk.write_Bps = 5.0e8;
    spec.disk.per_file_overhead_s = 0.02;
    spec.disk.per_dir_overhead_s = 0.1;
    return spec;
  };
  const auto src = scenario.endpoints.add(make_lustre_endpoint("lustre-dtn-ost"));
  const auto dst =
      scenario.endpoints.add(make_lustre_endpoint("lustre-edison-ost"));
  // Sibling OSTs on the same two filesystems: Lustre stripes the competing
  // load across many OSTs, so the monitored test pair is only partially
  // contended (if the test OSTs were always saturated, their measured load
  // would equal capacity and carry no information about the split).
  const auto src2 =
      scenario.endpoints.add(make_lustre_endpoint("lustre-dtn-ost2"));
  const auto dst2 =
      scenario.endpoints.add(make_lustre_endpoint("lustre-edison-ost2"));
  scenario.heavy_edges.push_back({src, dst});
  scenario.monitored_endpoints = {src, dst};
  scenario.sample_interval_s = config.sample_interval_s;

  // Controlled test transfers: uniform characteristics (paper: "Nb, Nf and
  // Ndir are the same across all transfers").
  double submit = 60.0;
  for (std::size_t t = 0; t < config.test_transfers; ++t) {
    TransferRequest req;
    req.id = kLmtTestFirstId + t;
    req.src = src;
    req.dst = dst;
    req.submit_s = submit;
    req.bytes = 2.4e10;  // ~2-6 min at contended OST rates: long enough
    req.files = 96;      // that window-mean load determines the rate.
    req.dirs = 1;
    req.params.concurrency = 4;
    req.params.parallelism = 2;
    scenario.workload.push_back(req);
    submit += rng.exponential(1.0 / config.test_interarrival_s);
  }

  // Competing Globus load: the paper keeps "10 additional simultaneous
  // Globus load transfers running at all times" - a closed-loop, constant
  // population, not a Poisson stream. Emulate it with fixed slots, each
  // submitting back-to-back transfers sized to its expected fair share,
  // so the competitor count stays near the target throughout.
  const double span_end =
      scenario.workload.back().submit_s + 600.0;
  const auto slots =
      static_cast<std::size_t>(std::lround(config.target_load_transfers));
  std::uint64_t load_id = kLmtLoadFirstId;
  for (std::size_t slot = 0; slot < slots; ++slot) {
    const double slot_duration = 600.0;
    double load_submit = rng.uniform(0.0, slot_duration);  // Stagger starts.
    // Each slot is pinned to one OST of each filesystem for the whole
    // experiment (Lustre stripe assignment is static): the load on the
    // monitored pair changes slowly, so window-mean LMT features describe
    // the conditions a transfer actually experienced.
    const bool forward = slot % 2 == 0;
    const auto from = rng.bernoulli(0.5) ? src : src2;
    const auto to = rng.bernoulli(0.5) ? dst : dst2;
    while (load_submit < span_end) {
      TransferRequest req;
      req.id = load_id++;
      req.src = forward ? from : to;
      req.dst = forward ? to : from;
      req.submit_s = load_submit;
      // Sized for ~600 s at the expected contended per-transfer share.
      req.bytes = 4.0e10 * rng.uniform(0.85, 1.15);
      req.files = static_cast<std::uint64_t>(rng.uniform_int(16, 64));
      req.dirs = 1;
      req.params.concurrency = 4;
      req.params.parallelism = 2;
      scenario.workload.push_back(req);
      load_submit += slot_duration * rng.uniform(0.95, 1.1);
    }
  }
  std::sort(scenario.workload.begin(), scenario.workload.end(),
            [](const TransferRequest& a, const TransferRequest& b) {
              if (a.submit_s != b.submit_s) return a.submit_s < b.submit_s;
              return a.id < b.id;
            });

  // The unknown the baseline model cannot see: non-Globus storage load on
  // both OSTs (batch jobs reading/writing the shared filesystem).
  for (auto id : {src, dst, src2, dst2}) {
    const auto& spec = scenario.endpoints[id];
    for (auto component : {Component::kDiskRead, Component::kDiskWrite}) {
      BackgroundSpec bg;
      bg.endpoint = id;
      bg.component = component;
      const double cap = component == Component::kDiskRead
                             ? spec.disk.read_Bps
                             : spec.disk.write_Bps;
      bg.demand_lo_Bps = 0.10 * cap;
      bg.demand_hi_Bps = 0.40 * cap;
      bg.mean_on_s = 300.0;
      bg.mean_off_s = 500.0;
      scenario.backgrounds.push_back(bg);
    }
  }

  // Intra-site LAN path: fat and clean.
  net::WanPath lan;
  lan.rtt_s = 0.0005;
  lan.capacity_Bps = 5.0e9;
  lan.loss_rate = 1.0e-8;
  // Store via a simulator-side override when run() builds the simulator:
  // the scenario keeps it in `lan_paths`.
  scenario.lan_paths.push_back({nersc, nersc, lan});
  return scenario;
}

}  // namespace xfl::sim
