// Synthetic Globus-like workload generation.
//
// The generator reproduces the statistical texture of the log study:
//   * a few heavily used edges carry most transfers (Zipf edge popularity);
//   * transfer sizes and file sizes are log-normal, spanning bytes to
//     hundreds of terabytes (Fig. 6 spans 1 B .. ~1 PB);
//   * arrivals are bursty: users submit sessions of several transfers;
//   * tunable parameters C and P are near-constant per edge (the paper
//     eliminates them for low variance in Fig. 9) with rare deviations.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "endpoint/endpoint.hpp"
#include "sim/transfer.hpp"

namespace xfl::sim {

/// Workload description of one directed edge.
struct EdgeProfile {
  endpoint::EndpointId src = 0;
  endpoint::EndpointId dst = 0;
  double weight = 1.0;           ///< Relative share of all transfers.
  double log_mean_bytes = 24.0;  ///< ln-scale mean of total size (~27 GB).
  double log_sigma_bytes = 2.0;
  double log_mean_file = 20.0;   ///< ln-scale mean of mean file size (~0.5 GB).
  double log_sigma_file = 1.8;
  std::uint32_t default_concurrency = 4;   ///< Site-default C.
  std::uint32_t default_parallelism = 4;   ///< Site-default P.
  /// Probability a transfer deviates from the edge defaults (low, so that
  /// C/P have low variance per edge as in the paper, which eliminates both
  /// on every edge).
  double tunable_deviation_prob = 0.01;
};

/// Global workload knobs.
struct WorkloadConfig {
  double duration_s = 10.0 * 86400.0;  ///< Submission window.
  double arrivals_per_s = 0.05;        ///< Session arrival rate (Poisson).
  double session_mean_transfers = 3.0; ///< Mean transfers per session.
  double session_gap_s = 90.0;         ///< Mean gap between session members.
  std::uint64_t first_id = 1;          ///< Id of the first generated transfer.
  double min_bytes = 1.0;
  double max_bytes = 2.0e14;           ///< 200 TB ceiling.
  /// Cap on files per transfer (see make_request: keeps the joint
  /// size/file-size tail physically sensible).
  std::uint64_t max_files_per_transfer = 50000;
  /// Probability that a transfer is a tiny single-file "test ping"
  /// (1 B .. 1 MB). Production logs contain them (Fig. 6's size axis
  /// starts at one byte).
  double tiny_transfer_prob = 0.01;
};

/// Generate a time-ordered transfer request stream over the given edges.
/// Requires at least one profile with positive weight. Deterministic in rng.
std::vector<TransferRequest> generate_workload(
    const std::vector<EdgeProfile>& edges, const WorkloadConfig& config,
    Rng& rng);

/// Stability guard: scale down per-edge transfer sizes until no endpoint's
/// *offered* byte-rate (expected bytes submitted per second, in or out)
/// exceeds `max_utilisation` of the slower of its disk and NIC on that
/// side. An open-loop arrival process whose offered load exceeds service
/// capacity has no steady state - queues and simulation cost diverge -
/// and real user populations adapt to their infrastructure the same way.
/// Modifies `profiles` in place; returns the number of profiles tempered.
std::size_t temper_offered_load(std::vector<EdgeProfile>& profiles,
                                const endpoint::EndpointCatalog& endpoints,
                                const WorkloadConfig& config,
                                double max_utilisation = 0.45);

}  // namespace xfl::sim
