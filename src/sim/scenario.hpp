// Preset experiment scenarios. Each scenario bundles a site catalogue,
// endpoint catalogue, simulator configuration, pre-generated workload,
// background-load processes, and metadata the bench harnesses need (the
// designated heavy edges, monitored endpoints, test-transfer id ranges).
//
// Three presets mirror the paper's three experimental settings:
//   * esnet_testbed   — §3.1 / Table 1 / Fig. 3: four identical DTNs.
//   * production      — §4-§5: a Globus-like mix of facilities, servers,
//                       and personal endpoints with 30 heavy edges.
//   * nersc_lmt       — §5.5.2: two Lustre-backed endpoints at one site
//                       with full storage-load monitoring.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "endpoint/endpoint.hpp"
#include "logs/record.hpp"
#include "net/site.hpp"
#include "sim/background.hpp"
#include "sim/simulator.hpp"
#include "sim/transfer.hpp"
#include "sim/workload.hpp"

namespace xfl::sim {

/// A fully specified, runnable experiment.
struct Scenario {
  net::SiteCatalog sites;
  endpoint::EndpointCatalog endpoints;
  SimConfig sim_config;
  std::vector<TransferRequest> workload;
  std::vector<BackgroundSpec> backgrounds;
  /// The designated heavily used edges (the paper's "30 edges").
  std::vector<logs::EdgeKey> heavy_edges;
  /// Endpoints to sample and the sampling interval (0 entries = none).
  std::vector<endpoint::EndpointId> monitored_endpoints;
  double sample_interval_s = 0.0;
  /// Directed WAN site pairs to sample SNMP-style (§8 extension).
  std::vector<std::pair<net::SiteId, net::SiteId>> monitored_wan_paths;
  double wan_sample_interval_s = 60.0;
  /// Explicit WAN/LAN path overrides applied before running.
  struct PathOverride {
    net::SiteId src = 0;
    net::SiteId dst = 0;
    net::WanPath path;
  };
  std::vector<PathOverride> lan_paths;

  /// Construct the simulator, submit the workload and backgrounds, enable
  /// sampling, and run to completion.
  SimResult run() const;
};

/// Knobs for the ESnet testbed scenario (§3.1, Fig. 3).
struct EsnetConfig {
  std::uint64_t seed = 20170626;
  /// Transfers generated across the testbed edges to populate the
  /// rate-vs-external-load scatter (Fig. 3). 0 disables the workload
  /// (Table 1 probes want an idle system).
  std::size_t transfers = 4000;
  double duration_s = 6.0 * 86400.0;
};

/// Build the four-DTN ESnet testbed.
Scenario make_esnet_testbed(const EsnetConfig& config = {});

/// Knobs for the production-log scenario (§4-§5).
struct ProductionConfig {
  std::uint64_t seed = 20170630;
  double duration_s = 18.0 * 86400.0;
  double session_arrivals_per_s = 0.019;  ///< ~30k sessions / ~59k transfers.
  double session_mean_transfers = 2.0;
  /// Share of traffic on the 30 heavy edges vs the long tail.
  double heavy_share = 0.82;
  bool enable_background = true;
  /// Extra low-usage edges beyond the heavy 30 (for Table 3/4 statistics
  /// and ROmax/RImax estimation).
  std::size_t tail_edges = 220;
};

/// Build the Globus-production-like scenario with 30 heavy edges.
Scenario make_production(const ProductionConfig& config = {});

/// Knobs for the NERSC/Lustre LMT scenario (§5.5.2).
struct LmtConfig {
  std::uint64_t seed = 20170701;
  std::size_t test_transfers = 666;   ///< Paper: 666 controlled transfers.
  double test_interarrival_s = 240.0;
  double target_load_transfers = 10.0;  ///< Paper: 10 concurrent load transfers.
  double sample_interval_s = 5.0;       ///< LMT samples every 5 s.
};

/// First id of the §5.5.2 controlled test transfers; load transfers get ids
/// starting at kLmtLoadFirstId.
inline constexpr std::uint64_t kLmtTestFirstId = 1;
inline constexpr std::uint64_t kLmtLoadFirstId = 1'000'000;

/// Build the monitored Lustre-to-Lustre scenario.
Scenario make_nersc_lmt(const LmtConfig& config = {});

}  // namespace xfl::sim
