// Probe services: the controlled measurements of §3 of the paper.
//
// Table 1 derives four quantities per directed testbed edge by running
// transfers that bypass one or both disks:
//   * DRmax — disk to /dev/null (source disk + network, no dest disk),
//   * DWmax — /dev/zero to disk (network + dest disk, no source disk),
//   * MMmax — /dev/zero to /dev/null (memory-to-memory; also what a
//              perfSONAR/iperf3 probe measures in §3.2),
//   * Rmax  — ordinary disk-to-disk transfer.
// Each experiment is repeated and the maximum is kept, mirroring the paper
// ("at least five repetitions ... selected the maximum observed values").
#pragma once

#include <cstdint>

#include "endpoint/endpoint.hpp"
#include "endpoint/gridftp.hpp"
#include "net/site.hpp"
#include "sim/simulator.hpp"

namespace xfl::sim {

/// Which subsystem combination a probe exercises.
enum class ProbeKind : std::uint8_t {
  kDiskToDisk,  ///< Rmax: full end-to-end path.
  kZeroToDisk,  ///< DWmax: source disk bypassed.
  kDiskToNull,  ///< DRmax: destination disk bypassed.
  kMemToMem,    ///< MMmax: both disks bypassed (perfSONAR stand-in).
};

/// Probe parameters.
struct ProbeConfig {
  double bytes = 1.0e11;  ///< 100 GB per repetition (dwarfs startup cost).
  std::uint64_t files = 8;
  int repetitions = 5;
  endpoint::GridFtpParams params{
      .concurrency = 4, .parallelism = 4, .integrity_check = false};
};

/// Run `repetitions` back-to-back probe transfers of the given kind on an
/// otherwise idle system and return the maximum observed rate (bytes/s).
double measure_max_rate_Bps(const net::SiteCatalog& sites,
                            const endpoint::EndpointCatalog& endpoints,
                            const SimConfig& sim_config,
                            endpoint::EndpointId src, endpoint::EndpointId dst,
                            ProbeKind kind, const ProbeConfig& probe = {});

/// All four Table 1 quantities for one directed edge, in bytes/second.
struct SubsystemMaxima {
  double r_max = 0.0;   ///< Disk-to-disk.
  double dw_max = 0.0;  ///< Destination disk write.
  double dr_max = 0.0;  ///< Source disk read.
  double mm_max = 0.0;  ///< Memory-to-memory.
};

/// Measure all four maxima (4 * repetitions transfers).
SubsystemMaxima measure_subsystem_maxima(
    const net::SiteCatalog& sites, const endpoint::EndpointCatalog& endpoints,
    const SimConfig& sim_config, endpoint::EndpointId src,
    endpoint::EndpointId dst, const ProbeConfig& probe = {});

}  // namespace xfl::sim
