#include "sim/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/contracts.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "storage/disk.hpp"

namespace xfl::sim {

namespace {
constexpr double kMinCapBps = 1.0;       // No live flow may be starved to 0.
constexpr double kMinDurationS = 1.0e-3; // Log floor for instant transfers.

/// Run-level observability: totals are added once per run(), never inside
/// the event loop; the loop itself pays only the periodic progress check.
struct SimMetrics {
  obs::Counter& runs = obs::counter("sim.runs");
  obs::Counter& events = obs::counter("sim.events");
  obs::Counter& transfers = obs::counter("sim.transfers");
  obs::Histogram& run_us = obs::histogram("sim.run_us");
};

SimMetrics& sim_metrics() {
  static SimMetrics metrics;
  return metrics;
}
}  // namespace

Simulator::Simulator(const net::SiteCatalog& sites,
                     const endpoint::EndpointCatalog& endpoints,
                     SimConfig config)
    : sites_(sites), endpoints_(endpoints), config_(config), rng_(config.seed) {
  endpoint_resources_.reserve(endpoints_.size());
  for (std::size_t i = 0; i < endpoints_.size(); ++i) {
    const auto& spec = endpoints_[static_cast<endpoint::EndpointId>(i)];
    EndpointResources res;
    res.disk_read = pool_.add(spec.name + ".disk_read", spec.disk.read_Bps);
    res.disk_write = pool_.add(spec.name + ".disk_write", spec.disk.write_Bps);
    res.nic_in = pool_.add(spec.name + ".nic_in", spec.nic_in_Bps);
    res.nic_out = pool_.add(spec.name + ".nic_out", spec.nic_out_Bps);
    res.cpu = pool_.add(spec.name + ".cpu", spec.cpu_Bps);
    endpoint_resources_.push_back(res);
  }
  instances_.assign(endpoints_.size(), 0.0);
  active_transfers_.assign(endpoints_.size(), 0);
}

void Simulator::set_wan_path(net::SiteId src_site, net::SiteId dst_site,
                             const net::WanPath& path) {
  XFL_EXPECTS(!ran_);
  const auto key = std::make_pair(src_site, dst_site);
  wan_paths_[key] = path;
  auto it = wan_resources_.find(key);
  if (it != wan_resources_.end())
    pool_.set_capacity(it->second, path.capacity_Bps);
}

const net::WanPath& Simulator::wan_path(net::SiteId src_site,
                                        net::SiteId dst_site) {
  const auto key = std::make_pair(src_site, dst_site);
  auto it = wan_paths_.find(key);
  if (it == wan_paths_.end())
    it = wan_paths_.emplace(key, net::derive_path(sites_, src_site, dst_site))
             .first;
  return it->second;
}

ResourceId Simulator::wan_resource(net::SiteId src_site, net::SiteId dst_site) {
  const auto key = std::make_pair(src_site, dst_site);
  auto it = wan_resources_.find(key);
  if (it == wan_resources_.end()) {
    const auto& path = wan_path(src_site, dst_site);
    const std::string name = "wan." + sites_[src_site].name + "->" +
                             sites_[dst_site].name;
    it = wan_resources_.emplace(key, pool_.add(name, path.capacity_Bps)).first;
  }
  return it->second;
}

void Simulator::add_background(const BackgroundSpec& spec) {
  XFL_EXPECTS(!ran_);
  XFL_EXPECTS(spec.valid());
  BackgroundState state;
  state.spec = spec;
  switch (spec.component) {
    case Component::kDiskRead:
      state.resource = endpoint_resources_.at(spec.endpoint).disk_read;
      break;
    case Component::kDiskWrite:
      state.resource = endpoint_resources_.at(spec.endpoint).disk_write;
      break;
    case Component::kNicIn:
      state.resource = endpoint_resources_.at(spec.endpoint).nic_in;
      break;
    case Component::kNicOut:
      state.resource = endpoint_resources_.at(spec.endpoint).nic_out;
      break;
    case Component::kWan:
      state.resource = wan_resource(spec.wan_src, spec.wan_dst);
      break;
  }
  backgrounds_.push_back(state);
}

void Simulator::enable_sampling(endpoint::EndpointId id, double interval_s) {
  XFL_EXPECTS(!ran_);
  XFL_EXPECTS(id < endpoints_.size());
  XFL_EXPECTS(interval_s > 0.0);
  monitors_.push_back({id, interval_s});
}

void Simulator::enable_wan_sampling(net::SiteId src_site,
                                    net::SiteId dst_site, double interval_s) {
  XFL_EXPECTS(!ran_);
  XFL_EXPECTS(interval_s > 0.0);
  WanMonitorState monitor;
  monitor.src_site = src_site;
  monitor.dst_site = dst_site;
  monitor.resource = wan_resource(src_site, dst_site);
  monitor.interval_s = interval_s;
  wan_monitors_.push_back(monitor);
}

void Simulator::submit(const TransferRequest& request) {
  XFL_EXPECTS(!ran_);
  XFL_EXPECTS(request.valid());
  XFL_EXPECTS(request.src < endpoints_.size());
  XFL_EXPECTS(request.dst < endpoints_.size());
  ActiveTransfer transfer;
  transfer.req = request;
  transfer.remaining_bytes = request.bytes;
  transfers_.push_back(std::move(transfer));
  live_pos_.push_back(static_cast<std::size_t>(-1));
}

void Simulator::push_event(double time, EventType type, std::size_t index,
                           std::uint64_t epoch) {
  queue_.push(Event{time, next_seq_++, type, index, epoch});
}

void Simulator::build_usage(ActiveTransfer& transfer) {
  const auto& req = transfer.req;
  const auto& src = endpoints_[req.src];
  const auto& dst = endpoints_[req.dst];
  transfer.procs = endpoint::effective_concurrency(req.params, req.files);
  transfer.streams = endpoint::total_streams(req.params, req.files);
  transfer.cpu_factor = endpoint::cpu_work_factor(req.params);
  transfer.mean_file_bytes =
      std::max(1.0, req.bytes / static_cast<double>(req.files));

  const auto& path = wan_path(src.site, dst.site);
  transfer.tcp_cap_Bps = std::max(
      kMinCapBps, net::parallel_stream_ceiling_Bps(
                      config_.tcp, transfer.streams, path.rtt_s, path.loss_rate));
  transfer.per_file_overhead_s =
      std::max(endpoint::per_file_overhead_s(req.params, src.disk, path.rtt_s),
               endpoint::per_file_overhead_s(req.params, dst.disk, path.rtt_s));

  const double procs = transfer.procs;
  const double streams = transfer.streams;
  const auto& sres = endpoint_resources_[req.src];
  const auto& dres = endpoint_resources_[req.dst];
  transfer.usage.clear();
  if (req.use_src_disk)
    transfer.usage.push_back({sres.disk_read, procs, 1.0});
  transfer.usage.push_back({sres.cpu, procs, transfer.cpu_factor});
  transfer.usage.push_back({sres.nic_out, streams, 1.0});
  transfer.usage.push_back(
      {wan_resource(src.site, dst.site), streams, 1.0});
  transfer.usage.push_back({dres.nic_in, streams, 1.0});
  transfer.usage.push_back({dres.cpu, procs, transfer.cpu_factor});
  if (req.use_dst_disk)
    transfer.usage.push_back({dres.disk_write, procs, 1.0});
}

void Simulator::reallocate(double /*now*/) {
  // 1. Refresh CPU capacities: efficiency decays with the number of GridFTP
  //    process pairs alive at the endpoint (startup, running, or stalled).
  //    Instance counts are maintained incrementally on arrival/completion.
  for (std::size_t e = 0; e < endpoints_.size(); ++e) {
    const auto& spec = endpoints_[static_cast<endpoint::EndpointId>(e)];
    const double eff =
        endpoint::cpu_efficiency(instances_[e], config_.cpu_knee);
    pool_.set_capacity(endpoint_resources_[e].cpu, spec.cpu_Bps * eff);
  }

  // 2. Collect flows: running transfers first, then active backgrounds.
  running_.clear();
  std::vector<FlowSpec> flows;
  for (const std::size_t i : live_) {
    if (transfers_[i].state != TransferState::kRunning) continue;
    running_.push_back(i);
    flows.push_back({transfers_[i].usage, transfers_[i].tcp_cap_Bps});
  }
  const std::size_t transfer_flows = flows.size();
  for (const auto& bg : backgrounds_) {
    if (!bg.on || bg.demand_Bps <= 0.0) continue;
    FlowSpec flow;
    flow.usage.push_back({bg.resource, bg.spec.weight, 1.0});
    flow.cap_Bps = bg.demand_Bps;
    flows.push_back(std::move(flow));
  }

  std::vector<double> rates = maxmin_allocate(pool_, flows);

  // 3. Fixed-point pass for per-file overhead efficiency (DESIGN.md §5.2):
  //    cap each transfer at the throughput its pass-1 burst rate sustains
  //    once per-file dead time is accounted for, then re-solve so that the
  //    released capacity benefits other flows.
  if (config_.allocation_passes >= 2 && transfer_flows > 0) {
    for (std::size_t f = 0; f < transfer_flows; ++f) {
      const auto& transfer = transfers_[running_[f]];
      const double per_pair =
          rates[f] / static_cast<double>(transfer.procs);
      const double effective =
          static_cast<double>(transfer.procs) *
          storage::file_overhead_efficiency_Bps(per_pair,
                                                transfer.mean_file_bytes,
                                                transfer.per_file_overhead_s);
      flows[f].cap_Bps =
          std::max(kMinCapBps, std::min(transfer.tcp_cap_Bps, effective));
    }
    rates = maxmin_allocate(pool_, flows);
  }

  // 4. Record per-resource consumption and per-transfer rate/utilisation.
  resource_load_.assign(pool_.size(), 0.0);
  for (std::size_t f = 0; f < flows.size(); ++f)
    for (const auto& use : flows[f].usage)
      resource_load_[use.resource] += rates[f] * use.consumption_factor;

  for (std::size_t f = 0; f < transfer_flows; ++f) {
    auto& transfer = transfers_[running_[f]];
    transfer.rate_Bps = rates[f];
    // Utilisation drives the fault model and must measure *external*
    // contention: the load others place on the transfer's resources. A lone
    // transfer saturating its own bottleneck is not a stressed system, so
    // its own consumption is subtracted before normalising.
    double util = 0.0;
    for (const auto& use : transfer.usage) {
      const double cap = pool_.capacity(use.resource);
      if (cap <= 0.0) continue;
      const double own = rates[f] * use.consumption_factor;
      const double external = std::max(0.0, resource_load_[use.resource] - own);
      util = std::max(util, external / cap);
    }
    transfer.utilisation = std::min(util, 1.0);
  }
}

void Simulator::advance_progress(double from, double to) {
  XFL_EXPECTS(to >= from);
  const double dt = to - from;
  if (dt == 0.0) return;
  for (std::size_t i : running_) {
    auto& transfer = transfers_[i];
    transfer.remaining_bytes =
        std::max(0.0, transfer.remaining_bytes - transfer.rate_Bps * dt);
  }
}

std::optional<std::pair<double, std::size_t>> Simulator::next_completion(
    double now) const {
  std::optional<std::pair<double, std::size_t>> best;
  for (std::size_t i : running_) {
    const auto& transfer = transfers_[i];
    double when;
    if (transfer.remaining_bytes <= 0.0) {
      when = now;
    } else if (transfer.rate_Bps > 0.0) {
      when = now + transfer.remaining_bytes / transfer.rate_Bps;
    } else {
      continue;  // Starved flow; it will move after the next reallocation.
    }
    if (!best || when < best->first) best = {when, i};
  }
  return best;
}

void Simulator::complete_transfer(std::size_t index, double now) {
  auto& transfer = transfers_[index];
  XFL_EXPECTS(transfer.state == TransferState::kRunning);
  transfer.state = TransferState::kDone;
  ++transfer.epoch;
  ++completed_;
  instances_[transfer.req.src] -= transfer.procs;
  instances_[transfer.req.dst] -= transfer.procs;
  // Swap-remove from the live list.
  const std::size_t slot = live_pos_[index];
  const std::size_t last = live_.back();
  live_[slot] = last;
  live_pos_[last] = slot;
  live_.pop_back();
  live_pos_[index] = static_cast<std::size_t>(-1);
  --active_transfers_[transfer.req.src];
  --active_transfers_[transfer.req.dst];

  const auto& req = transfer.req;
  logs::TransferRecord record;
  record.id = req.id;
  record.src = req.src;
  record.dst = req.dst;
  record.start_s = req.submit_s;
  record.end_s = std::max(now, req.submit_s + kMinDurationS);
  record.bytes = req.bytes;
  record.files = req.files;
  record.dirs = req.dirs;
  record.concurrency = req.params.concurrency;
  record.parallelism = req.params.parallelism;
  record.faults = transfer.faults;
  record.src_type = endpoints_[req.src].type;
  record.dst_type = endpoints_[req.dst].type;
  result_.stats.makespan_s = std::max(result_.stats.makespan_s, record.end_s);
  result_.stats.total_bytes += record.bytes;
  result_.stats.total_faults += record.faults;
  result_.log.append(record);
}

void Simulator::schedule_fault_candidate(std::size_t index, double now) {
  if (!config_.enable_faults) return;
  const auto& policy = config_.fault_policy;
  const double lambda_max = policy.base_rate_per_s + policy.load_rate_per_s;
  if (lambda_max <= 0.0) return;
  const double dt = rng_.exponential(lambda_max);
  push_event(now + dt, EventType::kFaultCandidate, index,
             transfers_[index].epoch);
}

void Simulator::record_sample(const MonitorState& monitor, double now) {
  const auto id = monitor.endpoint;
  const auto& res = endpoint_resources_[id];
  const auto& spec = endpoints_[id];
  EndpointSample sample;
  sample.time_s = now;
  for (const std::size_t t : live_) {
    const auto& transfer = transfers_[t];
    if (transfer.req.src != id && transfer.req.dst != id) continue;
    sample.gridftp_instances += transfer.procs;
    if (transfer.state == TransferState::kRunning) {
      if (transfer.req.dst == id) sample.in_Bps += transfer.rate_Bps;
      if (transfer.req.src == id) sample.out_Bps += transfer.rate_Bps;
    }
  }
  if (!resource_load_.empty()) {
    sample.disk_read_Bps = resource_load_[res.disk_read];
    sample.disk_write_Bps = resource_load_[res.disk_write];
    sample.cpu_load =
        spec.cpu_Bps > 0.0
            ? std::min(1.0, resource_load_[res.cpu] / spec.cpu_Bps)
            : 0.0;
  }
  result_.samples[id].push_back(sample);
}

bool Simulator::admissible(const TransferRequest& request) const {
  return active_transfers_[request.src] < config_.max_active_per_endpoint &&
         active_transfers_[request.dst] < config_.max_active_per_endpoint;
}

void Simulator::admit(std::size_t index, double now) {
  auto& transfer = transfers_[index];
  XFL_EXPECTS(transfer.state == TransferState::kPending);
  transfer.state = TransferState::kStartup;
  build_usage(transfer);
  live_pos_[index] = live_.size();
  live_.push_back(index);
  instances_[transfer.req.src] += transfer.procs;
  instances_[transfer.req.dst] += transfer.procs;
  ++active_transfers_[transfer.req.src];
  ++active_transfers_[transfer.req.dst];
  result_.stats.peak_active =
      std::max({result_.stats.peak_active, active_transfers_[transfer.req.src],
                active_transfers_[transfer.req.dst]});

  const auto& src = endpoints_[transfer.req.src];
  const auto& dst = endpoints_[transfer.req.dst];
  const auto& path = wan_path(src.site, dst.site);
  const double dir_cost =
      static_cast<double>(transfer.req.dirs) *
      std::max(src.disk.per_dir_overhead_s, dst.disk.per_dir_overhead_s);
  const double setup =
      endpoint::startup_cost_s(transfer.req.params, path.rtt_s) + dir_cost;
  push_event(now + setup, EventType::kStartData, index, transfer.epoch);
}

void Simulator::drain_admission_queue(double now) {
  // FIFO with head-of-line blocking per endpoint pair: scan the queue once
  // and admit every transfer whose endpoints have room. (A strict global
  // FIFO would let one saturated endpoint block unrelated pairs.)
  bool admitted = false;
  for (auto it = admission_queue_.begin(); it != admission_queue_.end();) {
    if (admissible(transfers_[*it].req)) {
      admit(*it, now);
      it = admission_queue_.erase(it);
      admitted = true;
    } else {
      ++it;
    }
  }
  if (admitted) reallocate(now);
}

void Simulator::handle_event(const Event& event, double now) {
  switch (event.type) {
    case EventType::kArrival: {
      auto& transfer = transfers_[event.index];
      XFL_EXPECTS(transfer.state == TransferState::kPending);
      if (admissible(transfer.req)) {
        admit(event.index, now);
        reallocate(now);  // New instances shift CPU efficiency.
      } else {
        admission_queue_.push_back(event.index);
        result_.stats.peak_queue =
            std::max(result_.stats.peak_queue, admission_queue_.size());
      }
      break;
    }
    case EventType::kStartData: {
      auto& transfer = transfers_[event.index];
      if (transfer.epoch != event.epoch ||
          transfer.state != TransferState::kStartup)
        break;
      transfer.state = TransferState::kRunning;
      reallocate(now);
      schedule_fault_candidate(event.index, now);
      break;
    }
    case EventType::kFaultCandidate: {
      auto& transfer = transfers_[event.index];
      if (transfer.epoch != event.epoch ||
          transfer.state != TransferState::kRunning)
        break;
      const auto& policy = config_.fault_policy;
      const double lambda_max =
          policy.base_rate_per_s + policy.load_rate_per_s;
      const double lambda =
          endpoint::fault_intensity_per_s(policy, transfer.utilisation);
      if (rng_.uniform() < lambda / lambda_max) {
        // Fault: stall the transfer and lose part of the in-flight file.
        ++transfer.faults;
        const double done = transfer.req.bytes - transfer.remaining_bytes;
        const double refetch =
            std::min(done, policy.refetch_fraction * transfer.mean_file_bytes *
                               rng_.uniform());
        transfer.remaining_bytes += refetch;
        transfer.state = TransferState::kStalled;
        ++transfer.epoch;
        push_event(now + policy.retry_delay_s, EventType::kResume, event.index,
                   transfer.epoch);
        reallocate(now);
      } else {
        schedule_fault_candidate(event.index, now);
      }
      break;
    }
    case EventType::kResume: {
      auto& transfer = transfers_[event.index];
      if (transfer.epoch != event.epoch ||
          transfer.state != TransferState::kStalled)
        break;
      transfer.state = TransferState::kRunning;
      reallocate(now);
      schedule_fault_candidate(event.index, now);
      break;
    }
    case EventType::kBackgroundToggle: {
      auto& bg = backgrounds_[event.index];
      bg.on = !bg.on;
      double next_mean;
      if (bg.on) {
        bg.demand_Bps =
            rng_.uniform(bg.spec.demand_lo_Bps, bg.spec.demand_hi_Bps);
        next_mean = bg.spec.mean_on_s;
      } else {
        bg.demand_Bps = 0.0;
        next_mean = bg.spec.mean_off_s;
      }
      push_event(now + rng_.exponential(1.0 / next_mean),
                 EventType::kBackgroundToggle, event.index);
      reallocate(now);
      break;
    }
    case EventType::kSample: {
      const auto& monitor = monitors_[event.index];
      record_sample(monitor, now);
      push_event(now + monitor.interval_s, EventType::kSample, event.index);
      break;
    }
    case EventType::kWanSample: {
      const auto& monitor = wan_monitors_[event.index];
      WanSample sample;
      sample.time_s = now;
      sample.load_Bps = resource_load_.empty()
                            ? 0.0
                            : resource_load_[monitor.resource];
      result_.wan_samples[{monitor.src_site, monitor.dst_site}].push_back(
          sample);
      push_event(now + monitor.interval_s, EventType::kWanSample, event.index);
      break;
    }
  }
}

SimResult Simulator::run() {
  XFL_EXPECTS(!ran_);
  ran_ = true;
  XFL_SPAN("sim.run");
  const std::uint64_t start_us = obs::monotonic_us();
  std::uint64_t iterations = 0;

  for (std::size_t i = 0; i < transfers_.size(); ++i)
    push_event(transfers_[i].req.submit_s, EventType::kArrival, i);

  for (std::size_t b = 0; b < backgrounds_.size(); ++b) {
    auto& bg = backgrounds_[b];
    // Start in the stationary distribution of the on/off chain.
    const double p_on =
        bg.spec.mean_on_s / (bg.spec.mean_on_s + bg.spec.mean_off_s);
    bg.on = rng_.bernoulli(p_on);
    if (bg.on)
      bg.demand_Bps = rng_.uniform(bg.spec.demand_lo_Bps, bg.spec.demand_hi_Bps);
    const double mean = bg.on ? bg.spec.mean_on_s : bg.spec.mean_off_s;
    push_event(rng_.exponential(1.0 / mean), EventType::kBackgroundToggle, b);
  }

  for (std::size_t m = 0; m < monitors_.size(); ++m)
    push_event(monitors_[m].interval_s, EventType::kSample, m);
  for (std::size_t m = 0; m < wan_monitors_.size(); ++m)
    push_event(wan_monitors_[m].interval_s, EventType::kWanSample, m);

  double now = 0.0;
  reallocate(now);

  while (completed_ < transfers_.size()) {
    ++result_.stats.events;
    // Periodic progress for long simulations; XFL_LOG is one relaxed load
    // when debug logging is off, and the modulus gates the formatting.
    if (++iterations % 100000 == 0)
      XFL_LOG(debug) << "sim progress"
                     << obs::kv("events_k", iterations / 1000)
                     << obs::kv("t_s", now)
                     << obs::kv("done", completed_)
                     << obs::kv("total", transfers_.size())
                     << obs::kv("live", live_.size())
                     << obs::kv("running", running_.size())
                     << obs::kv("queue", queue_.size());
    const auto completion = next_completion(now);
    const bool queue_has_event = !queue_.empty();
    XFL_ENSURES(completion.has_value() || queue_has_event);

    if (completion &&
        (!queue_has_event || completion->first <= queue_.top().time)) {
      advance_progress(now, completion->first);
      now = completion->first;
      complete_transfer(completion->second, now);
      drain_admission_queue(now);
      reallocate(now);
    } else {
      const Event event = queue_.top();
      queue_.pop();
      // Sampling and background chatter can outlive the workload; simply
      // drop such events once everything has completed (loop guard above).
      advance_progress(now, event.time);
      now = event.time;
      handle_event(event, now);
    }
  }

  const std::uint64_t elapsed_us = obs::monotonic_us() - start_us;
  auto& metrics = sim_metrics();
  metrics.runs.add(1);
  metrics.events.add(result_.stats.events);
  metrics.transfers.add(transfers_.size());
  metrics.run_us.record(static_cast<double>(elapsed_us));
  XFL_LOG(debug) << "sim run complete"
                 << obs::kv("transfers", transfers_.size())
                 << obs::kv("events", result_.stats.events)
                 << obs::kv("sim_time_s", now)
                 << obs::kv("elapsed_us", elapsed_us);
  return std::move(result_);
}

}  // namespace xfl::sim
