// Weighted max-min fair rate allocation over shared resources.
//
// The fluid simulator models every shared component — disk read/write, NIC
// in/out, CPU, and WAN links — as a rate resource with a capacity in
// bytes/second. Each active flow (a Globus transfer, a probe, or a
// background-load process) crosses a set of resources with a per-resource
// *weight* (its GridFTP process count on disk/CPU resources, its TCP stream
// count on network resources) and has an optional per-flow rate cap (its
// TCP ceiling or its demand). Between simulator events, rates are the
// weighted max-min fair allocation computed here.
//
// Algorithm (progressive filling, one flow frozen per round):
//   repeat until all flows frozen:
//     rho_r  = remaining_cap_r / (sum of weights of unfrozen flows on r)
//     xhat_f = min(cap_f, min over r used by f of rho_r * w_{f,r})
//     freeze the flow with the smallest xhat at that rate; subtract its
//     consumption from every resource it crosses.
// Because xhat_f <= rho_r * w_{f,r} <= remaining_cap_r for every r the flow
// uses, each freeze is feasible, and with uniform weights the fixpoint is
// classic max-min fairness. This is the same family of solver used by
// flow-level network simulators such as SimGrid.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace xfl::sim {

using ResourceId = std::uint32_t;

/// A set of named rate resources with mutable capacities.
class ResourcePool {
 public:
  /// Add a resource; capacity in bytes/second (> 0, or 0 for a disabled
  /// resource which then allocates nothing).
  ResourceId add(std::string name, double capacity_Bps);

  std::size_t size() const { return capacity_.size(); }
  double capacity(ResourceId id) const;
  const std::string& name(ResourceId id) const;

  /// Update a capacity (CPU efficiency and background modulation need this).
  void set_capacity(ResourceId id, double capacity_Bps);

 private:
  std::vector<double> capacity_;
  std::vector<std::string> names_;
};

/// One (resource, weight) usage entry of a flow.
///
/// `weight` sets the flow's share priority on the resource (streams on
/// network resources, processes on disk/CPU). `consumption_factor` converts
/// flow rate into resource consumption: 1.0 for byte-carrying resources;
/// >1.0 on CPU when integrity checking or encryption makes each transferred
/// byte cost more than one byte of processing.
struct ResourceUsage {
  ResourceId resource = 0;
  double weight = 1.0;
  double consumption_factor = 1.0;
};

/// A flow to be allocated: the resources it crosses and its own ceiling.
struct FlowSpec {
  std::vector<ResourceUsage> usage;
  double cap_Bps = 1.0e15;  ///< Per-flow ceiling (TCP model / demand).
};

/// Compute the weighted max-min fair allocation. Returns one rate per flow,
/// in input order. Flows with empty usage get their cap. Guarantees:
///   * per-resource feasibility: sum of allocated rates on r <= capacity(r)
///     (up to floating-point round-off),
///   * every flow rate <= its cap,
///   * no flow gets 0 unless its cap is 0 or a crossed resource has
///     capacity 0.
std::vector<double> maxmin_allocate(const ResourcePool& pool,
                                    const std::vector<FlowSpec>& flows);

}  // namespace xfl::sim
