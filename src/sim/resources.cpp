#include "sim/resources.hpp"

#include <algorithm>
#include <limits>

#include "common/contracts.hpp"

namespace xfl::sim {

ResourceId ResourcePool::add(std::string name, double capacity_Bps) {
  XFL_EXPECTS(capacity_Bps >= 0.0);
  capacity_.push_back(capacity_Bps);
  names_.push_back(std::move(name));
  return static_cast<ResourceId>(capacity_.size() - 1);
}

double ResourcePool::capacity(ResourceId id) const {
  XFL_EXPECTS(id < capacity_.size());
  return capacity_[id];
}

const std::string& ResourcePool::name(ResourceId id) const {
  XFL_EXPECTS(id < names_.size());
  return names_[id];
}

void ResourcePool::set_capacity(ResourceId id, double capacity_Bps) {
  XFL_EXPECTS(id < capacity_.size());
  XFL_EXPECTS(capacity_Bps >= 0.0);
  capacity_[id] = capacity_Bps;
}

std::vector<double> maxmin_allocate(const ResourcePool& pool,
                                    const std::vector<FlowSpec>& flows) {
  const std::size_t flow_count = flows.size();
  std::vector<double> rates(flow_count, 0.0);
  if (flow_count == 0) return rates;

  constexpr double kInf = std::numeric_limits<double>::infinity();

  std::vector<double> remaining_cap(pool.size());
  for (std::size_t r = 0; r < pool.size(); ++r)
    remaining_cap[r] = pool.capacity(static_cast<ResourceId>(r));

  std::vector<double> remaining_weight(pool.size(), 0.0);
  for (const auto& flow : flows)
    for (const auto& use : flow.usage) {
      XFL_EXPECTS(use.resource < pool.size());
      XFL_EXPECTS(use.weight > 0.0);
      XFL_EXPECTS(use.consumption_factor > 0.0);
      remaining_weight[use.resource] += use.weight;
    }

  std::vector<bool> frozen(flow_count, false);
  for (std::size_t round = 0; round < flow_count; ++round) {
    // Current per-resource fill level per unit weight.
    // (Recomputed each round: O(F * avg usage); F stays in the hundreds.)
    double best_rate = kInf;
    std::size_t best_flow = flow_count;
    for (std::size_t f = 0; f < flow_count; ++f) {
      if (frozen[f]) continue;
      double candidate = flows[f].cap_Bps;
      for (const auto& use : flows[f].usage) {
        const double weight_sum = remaining_weight[use.resource];
        // Fair share in *work* units is rho * w; dividing by the
        // consumption factor converts it back to flow-rate units.
        const double share =
            weight_sum > 0.0
                ? remaining_cap[use.resource] / weight_sum * use.weight /
                      use.consumption_factor
                : 0.0;
        candidate = std::min(candidate, share);
      }
      if (candidate < best_rate) {
        best_rate = candidate;
        best_flow = f;
      }
    }
    XFL_ENSURES(best_flow < flow_count);
    frozen[best_flow] = true;
    const double rate = std::max(best_rate, 0.0);
    rates[best_flow] = rate;
    for (const auto& use : flows[best_flow].usage) {
      remaining_cap[use.resource] =
          std::max(0.0, remaining_cap[use.resource] - rate * use.consumption_factor);
      remaining_weight[use.resource] -= use.weight;
      if (remaining_weight[use.resource] < 0.0)
        remaining_weight[use.resource] = 0.0;
    }
  }
  return rates;
}

}  // namespace xfl::sim
