#include "endpoint/endpoint.hpp"

#include <cmath>

#include "common/contracts.hpp"
#include "common/units.hpp"

namespace xfl::endpoint {

const char* to_string(EndpointType type) {
  return type == EndpointType::kServer ? "GCS" : "GCP";
}

EndpointId EndpointCatalog::add(EndpointSpec spec) {
  XFL_EXPECTS(spec.valid());
  endpoints_.push_back(std::move(spec));
  return static_cast<EndpointId>(endpoints_.size() - 1);
}

const EndpointSpec& EndpointCatalog::operator[](EndpointId id) const {
  XFL_EXPECTS(id < endpoints_.size());
  return endpoints_[id];
}

bool EndpointCatalog::find(const std::string& name, EndpointId& out) const {
  for (std::size_t i = 0; i < endpoints_.size(); ++i) {
    if (endpoints_[i].name == name) {
      out = static_cast<EndpointId>(i);
      return true;
    }
  }
  return false;
}

double cpu_efficiency(double active_processes, double knee) {
  XFL_EXPECTS(active_processes >= 0.0);
  XFL_EXPECTS(knee > 0.0);
  // Quadratic penalty beyond the knee: eta = 1 / (1 + (n/knee)^2). At the
  // knee the endpoint still delivers 50% of peak per-capacity; far beyond
  // it aggregate throughput declines, producing Fig. 4's falling tail.
  const double x = active_processes / knee;
  return 1.0 / (1.0 + x * x);
}

EndpointSpec make_dtn(std::string name, net::SiteId site, double nic_gbps) {
  EndpointSpec spec;
  spec.name = std::move(name);
  spec.site = site;
  spec.type = EndpointType::kServer;
  spec.nic_in_Bps = gbit(nic_gbps);
  spec.nic_out_Bps = gbit(nic_gbps);
  spec.cpu_Bps = gbit(2.0 * nic_gbps);  // CPU rarely the first bottleneck.
  spec.disk = storage::dtn_parallel_fs();
  return spec;
}

EndpointSpec make_personal(std::string name, net::SiteId site, double nic_gbps) {
  EndpointSpec spec;
  spec.name = std::move(name);
  spec.site = site;
  spec.type = EndpointType::kPersonal;
  spec.nic_in_Bps = gbit(nic_gbps);
  spec.nic_out_Bps = gbit(nic_gbps);
  spec.cpu_Bps = gbit(1.5 * nic_gbps);
  spec.disk = storage::personal_machine();
  return spec;
}

}  // namespace xfl::endpoint
