// Endpoint (data transfer node) model. An endpoint lives at a site, has a
// NIC, CPU capacity, and a storage system, and is either a Globus Connect
// Server (GCS: institutional DTN) or Globus Connect Personal (GCP: laptop/
// workstation) deployment — the two endpoint types of Table 4.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/site.hpp"
#include "storage/disk.hpp"

namespace xfl::endpoint {

using EndpointId = std::uint32_t;

/// Endpoint deployment type (Table 4).
enum class EndpointType : std::uint8_t {
  kServer,    ///< Globus Connect Server (GCS)
  kPersonal,  ///< Globus Connect Personal (GCP)
};

/// Short string form: "GCS" / "GCP".
const char* to_string(EndpointType type);

/// Static description of one endpoint.
struct EndpointSpec {
  std::string name;
  net::SiteId site = 0;
  EndpointType type = EndpointType::kServer;
  double nic_in_Bps = 1.25e9;   ///< 10 Gb/s default.
  double nic_out_Bps = 1.25e9;
  /// CPU throughput budget for GridFTP data processing (checksumming,
  /// TLS, copies), expressed as bytes/s the endpoint can push when all
  /// cores work on transfers.
  double cpu_Bps = 2.5e9;
  storage::DiskSpec disk;

  bool valid() const {
    return !name.empty() && nic_in_Bps > 0.0 && nic_out_Bps > 0.0 &&
           cpu_Bps > 0.0 && disk.valid();
  }
};

/// Catalogue of endpoints with name lookup.
class EndpointCatalog {
 public:
  EndpointId add(EndpointSpec spec);
  const EndpointSpec& operator[](EndpointId id) const;
  std::size_t size() const { return endpoints_.size(); }
  bool find(const std::string& name, EndpointId& out) const;

 private:
  std::vector<EndpointSpec> endpoints_;
};

/// CPU efficiency as a function of the number of concurrently active
/// GridFTP processes at the endpoint. Throughput rises with more processes
/// until scheduling/context-switch overhead erodes it — the rise-then-fall
/// shape the paper fits with a Weibull curve (Fig. 4). Returns a factor in
/// (0, 1] that scales `cpu_Bps`.
/// Precondition: active_processes >= 0.
double cpu_efficiency(double active_processes, double knee = 128.0);

/// Convenience endpoint builders matching deployment classes.
EndpointSpec make_dtn(std::string name, net::SiteId site,
                      double nic_gbps = 10.0);
EndpointSpec make_personal(std::string name, net::SiteId site,
                           double nic_gbps = 1.0);

}  // namespace xfl::endpoint
