#include "endpoint/gridftp.hpp"

#include <algorithm>

#include "common/contracts.hpp"

namespace xfl::endpoint {

std::uint32_t effective_concurrency(const GridFtpParams& params,
                                    std::uint64_t files) {
  XFL_EXPECTS(params.valid());
  XFL_EXPECTS(files >= 1);
  return static_cast<std::uint32_t>(
      std::min<std::uint64_t>(params.concurrency, files));
}

std::uint32_t total_streams(const GridFtpParams& params, std::uint64_t files) {
  return effective_concurrency(params, files) * params.parallelism;
}

double cpu_work_factor(const GridFtpParams& params) {
  double factor = 1.0;
  if (params.integrity_check) factor += 0.4;
  if (params.encrypt) factor += 0.8;
  return factor;
}

double startup_cost_s(const GridFtpParams& params, double rtt_s) {
  XFL_EXPECTS(params.valid());
  XFL_EXPECTS(rtt_s > 0.0);
  // Control channel: a few round trips; data channels: one setup round trip
  // per process pair, established concurrently but rate-limited by the
  // control channel, plus a constant service-side scheduling cost.
  return 0.8 + 4.0 * rtt_s + 0.25 * static_cast<double>(params.concurrency) * rtt_s;
}

double per_file_overhead_s(const GridFtpParams& params,
                           const storage::DiskSpec& disk, double rtt_s) {
  XFL_EXPECTS(params.valid());
  XFL_EXPECTS(rtt_s > 0.0);
  double overhead = disk.per_file_overhead_s + 0.5 * rtt_s;
  if (params.integrity_check) overhead += disk.per_file_overhead_s + rtt_s;
  return overhead;
}

double fault_intensity_per_s(const FaultPolicy& policy, double utilisation) {
  XFL_EXPECTS(utilisation >= 0.0 && utilisation <= 1.0001);
  const double u = std::min(utilisation, 1.0);
  // Faults become much more likely near saturation; cubic keeps the idle
  // regime nearly fault-free.
  return policy.base_rate_per_s + policy.load_rate_per_s * u * u * u;
}

}  // namespace xfl::endpoint
