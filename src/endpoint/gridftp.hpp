// GridFTP session semantics (§2, §4.1 of the paper).
//
// A Globus transfer with concurrency C starts C GridFTP process pairs; each
// pair moves one file at a time over P parallel TCP streams. A transfer of
// Nf files can use at most min(C, Nf) pairs, so the effective process count
// and total stream count are min(C, Nf) and min(C, Nf) * P — exactly the
// quantities the paper's G and S contention features aggregate.
#pragma once

#include <cstdint>

#include "storage/disk.hpp"

namespace xfl::endpoint {

/// User-tunable GridFTP parameters of one transfer.
struct GridFtpParams {
  std::uint32_t concurrency = 4;   ///< C: process pairs.
  std::uint32_t parallelism = 4;   ///< P: TCP streams per pair.
  bool integrity_check = true;     ///< Per-file checksum (Globus default on).
  bool encrypt = false;            ///< Data channel encryption (default off).

  bool valid() const { return concurrency >= 1 && parallelism >= 1; }
};

/// Effective number of GridFTP process pairs: min(C, Nf) (a transfer with
/// fewer files than C cannot use all pairs — the paper applies the same
/// min() in its G feature).
/// Preconditions: params.valid(), files >= 1.
std::uint32_t effective_concurrency(const GridFtpParams& params, std::uint64_t files);

/// Total parallel TCP streams: effective_concurrency * P.
std::uint32_t total_streams(const GridFtpParams& params, std::uint64_t files);

/// CPU work multiplier: every transferred byte costs one unit of CPU work;
/// integrity checking reads and hashes the data again (~0.4 extra), and
/// encryption costs more (~0.8 extra).
double cpu_work_factor(const GridFtpParams& params);

/// Fixed startup cost of a transfer before bytes flow: control-channel
/// setup plus per-pair connection establishment.
/// Precondition: params.valid().
double startup_cost_s(const GridFtpParams& params, double rtt_s);

/// Per-file dead time experienced by one process pair between files:
/// storage open/close cost plus (if enabled) the checksum round trip.
double per_file_overhead_s(const GridFtpParams& params,
                           const storage::DiskSpec& disk, double rtt_s);

/// Fault/retry behaviour of the Globus service: how long a fault stalls a
/// transfer and what fraction of an in-flight file is retransmitted.
struct FaultPolicy {
  double retry_delay_s = 15.0;      ///< Backoff before the faulted pair resumes.
  double refetch_fraction = 0.5;    ///< Mean fraction of one file re-sent.
  /// Base fault rate per transfer-second when the endpoints are idle.
  double base_rate_per_s = 2.0e-5;
  /// Additional fault rate per transfer-second at full endpoint load:
  /// faults correlate with load (§5.3 discusses the load–fault link).
  double load_rate_per_s = 2.0e-3;
};

/// Instantaneous fault intensity for a transfer given the utilisation (in
/// [0, 1]) of its most loaded endpoint resource.
/// Preconditions: utilisation in [0, 1.0001] (small numeric slack).
double fault_intensity_per_s(const FaultPolicy& policy, double utilisation);

}  // namespace xfl::endpoint
