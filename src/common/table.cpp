#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace xfl {

std::string TextTable::num(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return buf;
}

void TextTable::print(std::ostream& out) const {
  std::vector<std::size_t> widths;
  auto absorb = [&widths](const std::vector<std::string>& row) {
    if (row.size() > widths.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i)
      widths[i] = std::max(widths[i], row[i].size());
  };
  absorb(header_);
  for (const auto& row : rows_) absorb(row);

  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i != 0) out << "  ";
      out << row[i];
      if (i + 1 < row.size())
        out << std::string(widths[i] - row[i].size(), ' ');
    }
    out << '\n';
  };

  if (!title_.empty()) out << title_ << '\n';
  if (!header_.empty()) {
    print_row(header_);
    std::size_t total = 0;
    for (std::size_t i = 0; i < widths.size(); ++i)
      total += widths[i] + (i == 0 ? 0 : 2);
    out << std::string(total, '-') << '\n';
  }
  for (const auto& row : rows_) print_row(row);
}

void TextTable::print(std::FILE* out) const {
  const std::string text = to_string();
  std::fwrite(text.data(), 1, text.size(), out);
}

std::string TextTable::to_string() const {
  std::ostringstream out;
  print(out);
  return out.str();
}

}  // namespace xfl
