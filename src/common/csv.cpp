#include "common/csv.hpp"

#include <cstdio>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "obs/log.hpp"

namespace xfl {

std::vector<CsvRow> read_csv(std::istream& in) {
  std::vector<CsvRow> rows;
  CsvRow row;
  std::string field;
  bool in_quotes = false;
  bool row_has_content = false;
  char c;
  while (in.get(c)) {
    if (in_quotes) {
      if (c == '"') {
        if (in.peek() == '"') {
          in.get(c);
          field.push_back('"');
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(c);
      }
      continue;
    }
    switch (c) {
      case '"':
        in_quotes = true;
        row_has_content = true;
        break;
      case ',':
        row.push_back(std::move(field));
        field.clear();
        row_has_content = true;
        break;
      case '\r':
        break;  // tolerate CRLF
      case '\n':
        if (row_has_content || !field.empty()) {
          row.push_back(std::move(field));
          field.clear();
          rows.push_back(std::move(row));
          row.clear();
        }
        row_has_content = false;
        break;
      default:
        field.push_back(c);
        row_has_content = true;
        break;
    }
  }
  if (in_quotes) throw std::runtime_error("read_csv: unterminated quoted field");
  if (row_has_content || !field.empty()) {
    row.push_back(std::move(field));
    rows.push_back(std::move(row));
  }
  return rows;
}

std::vector<CsvRow> read_csv_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("read_csv_file: cannot open " + path);
  auto rows = read_csv(in);
  XFL_LOG(debug) << "csv file read" << obs::kv("path", path)
                 << obs::kv("rows", rows.size());
  return rows;
}

std::string csv_escape(const std::string& field) {
  const bool needs_quotes = field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += "\"";
  return out;
}

void CsvWriter::write_row(const CsvRow& row) {
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (i != 0) *out_ << ',';
    *out_ << csv_escape(row[i]);
  }
  *out_ << '\n';
}

void CsvWriter::write_row(const std::vector<double>& row) {
  CsvRow text;
  text.reserve(row.size());
  char buf[40];
  for (double v : row) {
    std::snprintf(buf, sizeof buf, "%.17g", v);
    text.emplace_back(buf);
  }
  write_row(text);
}

}  // namespace xfl
