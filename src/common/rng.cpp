#include "common/rng.hpp"

#include <cmath>

#include "common/contracts.hpp"

namespace xfl {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  XFL_EXPECTS(lo <= hi);
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  XFL_EXPECTS(lo <= hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = (~0ULL) - (~0ULL) % span;
  std::uint64_t draw;
  do {
    draw = next_u64();
  } while (draw >= limit);
  return lo + static_cast<std::int64_t>(draw % span);
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * factor;
  has_cached_normal_ = true;
  return u * factor;
}

double Rng::normal(double mean, double sigma) {
  XFL_EXPECTS(sigma >= 0.0);
  return mean + sigma * normal();
}

double Rng::lognormal(double mu, double sigma) { return std::exp(normal(mu, sigma)); }

double Rng::exponential(double lambda) {
  XFL_EXPECTS(lambda > 0.0);
  // 1 - uniform() is in (0, 1], so the log is finite.
  return -std::log(1.0 - uniform()) / lambda;
}

std::int64_t Rng::poisson(double mean) {
  XFL_EXPECTS(mean >= 0.0);
  if (mean == 0.0) return 0;
  if (mean > 64.0) {
    // Normal approximation with continuity correction; adequate for the
    // large-mean draws used in workload sizing.
    const double draw = normal(mean, std::sqrt(mean));
    return draw < 0.0 ? 0 : static_cast<std::int64_t>(draw + 0.5);
  }
  const double limit = std::exp(-mean);
  std::int64_t count = 0;
  double product = uniform();
  while (product > limit) {
    ++count;
    product *= uniform();
  }
  return count;
}

double Rng::pareto(double xm, double alpha) {
  XFL_EXPECTS(xm > 0.0 && alpha > 0.0);
  return xm / std::pow(1.0 - uniform(), 1.0 / alpha);
}

double Rng::weibull(double k, double lambda) {
  XFL_EXPECTS(k > 0.0 && lambda > 0.0);
  return lambda * std::pow(-std::log(1.0 - uniform()), 1.0 / k);
}

std::int64_t Rng::zipf(std::int64_t n, double s) {
  XFL_EXPECTS(n >= 1 && s >= 0.0);
  // Inverse-CDF on the (cached-free) harmonic weights via rejection-less
  // linear scan is O(n); for the catalogue sizes used here (n <= ~2000)
  // this is fine and exactly reproducible.
  double total = 0.0;
  for (std::int64_t rank = 1; rank <= n; ++rank) total += std::pow(rank, -s);
  double target = uniform() * total;
  for (std::int64_t rank = 1; rank <= n; ++rank) {
    target -= std::pow(rank, -s);
    if (target <= 0.0) return rank;
  }
  return n;
}

bool Rng::bernoulli(double p) {
  XFL_EXPECTS(p >= 0.0 && p <= 1.0);
  return uniform() < p;
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;
  for (std::size_t i = n; i > 1; --i) {
    const auto j = static_cast<std::size_t>(
        uniform_int(0, static_cast<std::int64_t>(i) - 1));
    std::swap(perm[i - 1], perm[j]);
  }
  return perm;
}

Rng Rng::fork() { return Rng(next_u64()); }

}  // namespace xfl
