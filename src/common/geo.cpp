#include "common/geo.hpp"

#include <cmath>

#include "common/contracts.hpp"

namespace xfl {

namespace {
constexpr double kEarthRadiusKm = 6371.0;
constexpr double kDegToRad = 3.14159265358979323846 / 180.0;
// Speed of light in fibre ~ 2e5 km/s; 1.5x path stretch over great circle.
constexpr double kFibreKmPerSecond = 2.0e5;
constexpr double kPathStretch = 1.5;
}  // namespace

double great_circle_km(const GeoPoint& a, const GeoPoint& b) {
  XFL_EXPECTS(a.lat_deg >= -90.0 && a.lat_deg <= 90.0);
  XFL_EXPECTS(b.lat_deg >= -90.0 && b.lat_deg <= 90.0);
  XFL_EXPECTS(a.lon_deg >= -180.0 && a.lon_deg <= 180.0);
  XFL_EXPECTS(b.lon_deg >= -180.0 && b.lon_deg <= 180.0);
  const double lat1 = a.lat_deg * kDegToRad;
  const double lat2 = b.lat_deg * kDegToRad;
  const double dlat = (b.lat_deg - a.lat_deg) * kDegToRad;
  const double dlon = (b.lon_deg - a.lon_deg) * kDegToRad;
  const double s1 = std::sin(dlat / 2.0);
  const double s2 = std::sin(dlon / 2.0);
  const double h = s1 * s1 + std::cos(lat1) * std::cos(lat2) * s2 * s2;
  return 2.0 * kEarthRadiusKm * std::asin(std::min(1.0, std::sqrt(h)));
}

double rtt_lower_bound_s(double distance_km) {
  XFL_EXPECTS(distance_km >= 0.0);
  // Round trip = 2x one-way propagation. A small floor models LAN/stack
  // latency so that co-located endpoints do not get a zero RTT.
  const double one_way = distance_km * kPathStretch / kFibreKmPerSecond;
  return std::max(2.0 * one_way, 2.0e-4);
}

}  // namespace xfl
