// Great-circle geometry. The paper uses the great-circle distance between
// source and destination as (a) a lower bound proxy for round-trip time
// (Fig. 6, Table 3) and (b) the "edge length" statistic.
#pragma once

namespace xfl {

/// A point on the Earth in decimal degrees.
struct GeoPoint {
  double lat_deg = 0.0;
  double lon_deg = 0.0;
};

/// Great-circle (haversine) distance in kilometres.
/// Preconditions: latitudes in [-90, 90], longitudes in [-180, 180].
double great_circle_km(const GeoPoint& a, const GeoPoint& b);

/// Rough RTT lower bound implied by a great-circle path: light travels in
/// fibre at ~2/3 c, and real paths are longer than great circles; we apply
/// the conventional 1.5x path-stretch factor used in WAN modeling.
double rtt_lower_bound_s(double distance_km);

}  // namespace xfl
