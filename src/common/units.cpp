#include "common/units.hpp"

#include <array>
#include <cmath>
#include <cstdio>

namespace xfl {

namespace {
std::string format_scaled(double value, const char* unit_suffix) {
  static constexpr std::array<const char*, 6> prefixes = {"", "K", "M", "G", "T", "P"};
  double magnitude = std::fabs(value);
  std::size_t idx = 0;
  while (magnitude >= 1000.0 && idx + 1 < prefixes.size()) {
    magnitude /= 1000.0;
    value /= 1000.0;
    ++idx;
  }
  char buf[64];
  if (idx == 0) {
    std::snprintf(buf, sizeof buf, "%.0f %s%s", value, prefixes[idx], unit_suffix);
  } else {
    std::snprintf(buf, sizeof buf, "%.2f %s%s", value, prefixes[idx], unit_suffix);
  }
  return buf;
}
}  // namespace

std::string format_bytes(double bytes) { return format_scaled(bytes, "B"); }

std::string format_rate(double bytes_per_second) {
  return format_scaled(bytes_per_second, "B/s");
}

}  // namespace xfl
