#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"

namespace xfl {

double mean(std::span<const double> values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double variance(std::span<const double> values) {
  if (values.size() < 2) return 0.0;
  const double m = mean(values);
  double sum_sq = 0.0;
  for (double v : values) sum_sq += (v - m) * (v - m);
  return sum_sq / static_cast<double>(values.size());
}

double stddev(std::span<const double> values) { return std::sqrt(variance(values)); }

namespace {
double percentile_sorted(std::span<const double> sorted, double p) {
  XFL_EXPECTS(!sorted.empty());
  XFL_EXPECTS(p >= 0.0 && p <= 100.0);
  if (sorted.size() == 1) return sorted[0];
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}
}  // namespace

double percentile(std::span<const double> values, double p) {
  XFL_EXPECTS(!values.empty());
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  return percentile_sorted(sorted, p);
}

double median(std::span<const double> values) { return percentile(values, 50.0); }

std::vector<double> percentiles(std::span<const double> values,
                                std::span<const double> ps) {
  XFL_EXPECTS(!values.empty());
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  std::vector<double> out;
  out.reserve(ps.size());
  for (double p : ps) out.push_back(percentile_sorted(sorted, p));
  return out;
}

double min_value(std::span<const double> values) {
  XFL_EXPECTS(!values.empty());
  return *std::min_element(values.begin(), values.end());
}

double max_value(std::span<const double> values) {
  XFL_EXPECTS(!values.empty());
  return *std::max_element(values.begin(), values.end());
}

double pearson(std::span<const double> x, std::span<const double> y) {
  XFL_EXPECTS(x.size() == y.size());
  if (x.size() < 2) return 0.0;
  const double mx = mean(x);
  const double my = mean(y);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

DistributionSummary summarize(std::span<const double> values) {
  XFL_EXPECTS(!values.empty());
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  DistributionSummary s;
  s.p5 = percentile_sorted(sorted, 5.0);
  s.p25 = percentile_sorted(sorted, 25.0);
  s.p50 = percentile_sorted(sorted, 50.0);
  s.p75 = percentile_sorted(sorted, 75.0);
  s.p95 = percentile_sorted(sorted, 95.0);
  s.mean = mean(values);
  s.count = values.size();
  return s;
}

void RunningStats::add(double value) {
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

}  // namespace xfl
