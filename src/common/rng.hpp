// Deterministic pseudo-random number generation for workload synthesis.
//
// Everything in this library that is stochastic (workload generation,
// background load, fault injection, train/test splits, model subsampling)
// draws from xfl::Rng so that every experiment is exactly reproducible from
// a single 64-bit seed. The engine is xoshiro256++ (Blackman & Vigna), which
// is fast, has 2^256-1 period, and passes BigCrush; we implement it directly
// rather than using std::mt19937 so that streams are stable across standard
// library versions.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace xfl {

/// Deterministic random number generator with the distributions needed by
/// the workload generator and the ML substrate.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit words of state via splitmix64, as recommended by
  /// the xoshiro authors; any seed (including 0) yields a valid state.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Raw 64-bit draw (xoshiro256++).
  std::uint64_t next_u64();

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return next_u64(); }

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Marsaglia polar method.
  double normal();

  /// Normal with the given mean and standard deviation (sigma >= 0).
  double normal(double mean, double sigma);

  /// Log-normal: exp(N(mu, sigma)). Used for file sizes and transfer sizes,
  /// which span many decades in the Globus logs (1 B .. ~1 PB).
  double lognormal(double mu, double sigma);

  /// Exponential with the given rate (lambda > 0). Used for Poisson arrivals.
  double exponential(double lambda);

  /// Poisson-distributed count with the given mean (mean >= 0). Knuth's
  /// method for small means, normal approximation above 64.
  std::int64_t poisson(double mean);

  /// Pareto (heavy tail) with scale xm > 0 and shape alpha > 0.
  double pareto(double xm, double alpha);

  /// Weibull draw with shape k > 0 and scale lambda > 0.
  double weibull(double k, double lambda);

  /// Zipf-distributed rank in [1, n] with exponent s >= 0. Used for edge
  /// popularity: a few edges carry most transfers, mirroring the log study
  /// (36,599 of 46K edges had a single transfer; 182 had >= 1000).
  std::int64_t zipf(std::int64_t n, double s);

  /// Bernoulli draw with success probability p in [0, 1].
  bool bernoulli(double p);

  /// Fisher-Yates shuffle of indices [0, n); returns the permutation.
  std::vector<std::size_t> permutation(std::size_t n);

  /// Derive an independent child generator (for per-component streams).
  Rng fork();

 private:
  std::array<std::uint64_t, 4> state_{};
  // Cached second variate from the polar method.
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace xfl
