// Lightweight contract macros in the spirit of the C++ Core Guidelines'
// Expects()/Ensures(). Violations throw xfl::ContractViolation so tests can
// assert on them; they are never compiled out, because every caller of this
// library is either a test, a bench harness, or an analysis pipeline where
// correctness dominates raw speed.
#pragma once

#include <stdexcept>
#include <string>

namespace xfl {

/// Thrown when a precondition or postcondition is violated.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line) {
  throw ContractViolation(std::string(kind) + " failed: " + expr + " at " +
                          file + ":" + std::to_string(line));
}
}  // namespace detail

}  // namespace xfl

#define XFL_EXPECTS(cond)                                                  \
  do {                                                                     \
    if (!(cond))                                                           \
      ::xfl::detail::contract_fail("precondition", #cond, __FILE__, __LINE__); \
  } while (false)

#define XFL_ENSURES(cond)                                                  \
  do {                                                                     \
    if (!(cond))                                                           \
      ::xfl::detail::contract_fail("postcondition", #cond, __FILE__, __LINE__); \
  } while (false)
