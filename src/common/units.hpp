// Byte- and rate-unit helpers. The paper mixes MB/s (disk-to-disk rates) and
// Gb/s (NIC/testbed capacities); all internal quantities in this library are
// SI: bytes, seconds, bytes/second. These helpers exist only at the I/O
// boundary (formatting tables, declaring scenario capacities).
#pragma once

#include <cstdint>
#include <string>

namespace xfl {

inline constexpr double kKB = 1e3;
inline constexpr double kMB = 1e6;
inline constexpr double kGB = 1e9;
inline constexpr double kTB = 1e12;
inline constexpr double kPB = 1e15;

/// Convert a rate expressed in megabytes/second to bytes/second.
constexpr double mbps(double megabytes_per_second) { return megabytes_per_second * kMB; }

/// Convert a rate expressed in network gigabits/second to bytes/second.
constexpr double gbit(double gigabits_per_second) { return gigabits_per_second * 1e9 / 8.0; }

/// Convert bytes/second to network gigabits/second (Table 1 is in Gb/s).
constexpr double to_gbit(double bytes_per_second) { return bytes_per_second * 8.0 / 1e9; }

/// Convert bytes/second to megabytes/second (most figures are in MB/s).
constexpr double to_mbps(double bytes_per_second) { return bytes_per_second / kMB; }

/// Human-readable byte count, e.g. "2.05 TB" or "513 B".
std::string format_bytes(double bytes);

/// Human-readable rate, e.g. "118.3 MB/s".
std::string format_rate(double bytes_per_second);

}  // namespace xfl
