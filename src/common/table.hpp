// Aligned plain-text table rendering. Every bench harness prints its
// table/figure series through this so that outputs are uniform and easy to
// diff against the paper.
#pragma once

#include <cstdio>
#include <iosfwd>
#include <string>
#include <vector>

namespace xfl {

/// A simple column-aligned text table with an optional title and header.
class TextTable {
 public:
  /// Optional table title, printed above the header.
  void set_title(std::string title) { title_ = std::move(title); }

  /// Set the header row (defines column count for alignment purposes).
  void set_header(std::vector<std::string> header) { header_ = std::move(header); }

  /// Append a data row; rows wider than the header extend the table.
  void add_row(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  /// Convenience: format a double with the given precision.
  static std::string num(double value, int precision = 2);

  /// Render to a stream with column alignment and a rule under the header.
  void print(std::ostream& out) const;

  /// Render to a C stdio stream (bench harnesses mix printf and tables).
  void print(std::FILE* out) const;

  /// Render to a string.
  std::string to_string() const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace xfl
