// Minimal CSV reader/writer for transfer logs and derived datasets. Handles
// quoting per RFC 4180 (quoted fields, embedded commas/quotes/newlines).
// The paper's published dataset is CSV; we mirror that at our I/O boundary
// so users can export simulated logs and re-import them.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace xfl {

/// One parsed CSV row.
using CsvRow = std::vector<std::string>;

/// Parse a full CSV document from a stream. Rows may have differing widths;
/// callers validate shape. Throws std::runtime_error on malformed quoting.
std::vector<CsvRow> read_csv(std::istream& in);

/// Parse a CSV file from disk. Throws std::runtime_error if unreadable.
std::vector<CsvRow> read_csv_file(const std::string& path);

/// Escape a single field per RFC 4180 (quote only when necessary).
std::string csv_escape(const std::string& field);

/// Streaming CSV writer.
class CsvWriter {
 public:
  /// Writes to the given stream, which must outlive the writer.
  explicit CsvWriter(std::ostream& out) : out_(&out) {}

  /// Write one row (escapes each field).
  void write_row(const CsvRow& row);

  /// Convenience: write a row of doubles with full round-trip precision.
  void write_row(const std::vector<double>& row);

 private:
  std::ostream* out_;
};

}  // namespace xfl
