#include "common/thread_pool.hpp"

#include <atomic>
#include <exception>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace xfl {

namespace {
/// Pool-wide observability: executed-task count, instantaneous/max queue
/// depth, and queue-wait latency. Resolved once; writes are lock-free.
struct PoolMetrics {
  obs::Counter& tasks = obs::counter("threadpool.tasks");
  obs::Gauge& queue_depth = obs::gauge("threadpool.queue_depth");
  obs::Histogram& wait_us = obs::histogram("threadpool.task_wait_us");
};

PoolMetrics& pool_metrics() {
  static PoolMetrics metrics;
  return metrics;
}
}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  auto& metrics = pool_metrics();
  for (;;) {
    Task task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (stopping_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
      metrics.queue_depth.set(static_cast<double>(tasks_.size()));
    }
    metrics.tasks.add(1);
    metrics.wait_us.record(
        static_cast<double>(obs::monotonic_us() - task.enqueue_us));
    task.fn();
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  std::condition_variable done_cv;
  std::mutex done_mutex;

  const std::size_t shards = std::min(count, workers_.size());
  auto shard_body = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= count) break;
      try {
        body(i);
      } catch (...) {
        std::lock_guard lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    }
    {
      // Notify while holding the lock: the waiter owns done_cv on its
      // stack, and may only destroy it after re-acquiring done_mutex, so
      // signalling under the lock keeps the cv alive for this call.
      std::lock_guard lock(done_mutex);
      done.fetch_add(1);
      done_cv.notify_one();
    }
  };

  {
    const std::uint64_t enqueue_us = obs::monotonic_us();
    std::lock_guard lock(mutex_);
    for (std::size_t s = 0; s < shards; ++s)
      tasks_.push({shard_body, enqueue_us});
    pool_metrics().queue_depth.set(static_cast<double>(tasks_.size()));
  }
  cv_.notify_all();

  std::unique_lock lock(done_mutex);
  done_cv.wait(lock, [&] { return done.load() == shards; });
  if (first_error) std::rethrow_exception(first_error);
}

void ThreadPool::parallel_for_blocks(
    std::size_t count, const std::function<void(std::size_t, std::size_t)>& body,
    std::size_t min_block) {
  if (count == 0) return;
  if (min_block == 0) min_block = 1;
  const std::size_t max_blocks = (count + min_block - 1) / min_block;
  const std::size_t blocks = std::min(std::max<std::size_t>(1, workers_.size()),
                                      max_blocks);
  const std::size_t block_size = (count + blocks - 1) / blocks;
  parallel_for(blocks, [&](std::size_t b) {
    const std::size_t begin = b * block_size;
    const std::size_t end = std::min(count, begin + block_size);
    if (begin < end) body(begin, end);
  });
}

}  // namespace xfl
