// A small fixed-size thread pool with a blocking parallel_for. Used to train
// per-edge models concurrently (the paper fits 30 independent models) and to
// run independent simulation replicas. Deterministic results are preserved
// because each parallel_for index owns its outputs and its own RNG stream.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace xfl {

/// Fixed-size worker pool. Tasks are std::function<void()>; exceptions
/// thrown by tasks propagate out of parallel_for (first one wins).
class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means std::thread::hardware_concurrency()
  /// (minimum 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size(); }

  /// Run body(i) for i in [0, count), distributing indices across workers,
  /// and block until all complete. Rethrows the first task exception.
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& body);

  /// Run body(begin, end) over contiguous blocks that partition [0, count),
  /// and block until all complete. Blocks are at least `min_block` indices
  /// (except possibly the last) so fine-grained loops are not drowned in
  /// scheduling overhead; at most thread_count() blocks are created.
  /// Deterministic output requires only that each index owns its outputs —
  /// the block boundaries themselves never affect per-index results.
  /// Rethrows the first task exception.
  void parallel_for_blocks(std::size_t count,
                           const std::function<void(std::size_t, std::size_t)>& body,
                           std::size_t min_block = 1);

 private:
  /// A queued task plus its enqueue timestamp, so the pool can report
  /// queue-wait latency (threadpool.task_wait_us) per executed task.
  struct Task {
    std::function<void()> fn;
    std::uint64_t enqueue_us = 0;
  };

  void worker_loop();

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::queue<Task> tasks_;
  bool stopping_ = false;
};

}  // namespace xfl
