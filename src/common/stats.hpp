// Descriptive statistics used throughout the feature-engineering and
// evaluation code: means, variances, percentiles (the paper reports 25th/
// 50th/90th edge-length percentiles, MdAPE = 50th percentile of absolute
// percentage error, and 95th-percentile errors in the LMT study).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace xfl {

/// Arithmetic mean. Returns 0 for an empty span.
double mean(std::span<const double> values);

/// Population variance (divide by n). Returns 0 for fewer than 2 values.
double variance(std::span<const double> values);

/// Population standard deviation.
double stddev(std::span<const double> values);

/// Linear-interpolated percentile, p in [0, 100]. The input need not be
/// sorted (a sorted copy is made). Requires a non-empty input.
double percentile(std::span<const double> values, double p);

/// Median (50th percentile). Requires a non-empty input.
double median(std::span<const double> values);

/// Several percentiles of the same sample computed with one sort.
std::vector<double> percentiles(std::span<const double> values,
                                std::span<const double> ps);

/// Minimum / maximum. Require non-empty input.
double min_value(std::span<const double> values);
double max_value(std::span<const double> values);

/// Pearson product-moment correlation of two equal-length samples.
/// Returns 0 if either sample has zero variance.
double pearson(std::span<const double> x, std::span<const double> y);

/// Five-number-plus summary used to serialise "violin" rows (Fig. 10):
/// p5, p25, p50, p75, p95 of a sample.
struct DistributionSummary {
  double p5 = 0.0;
  double p25 = 0.0;
  double p50 = 0.0;
  double p75 = 0.0;
  double p95 = 0.0;
  double mean = 0.0;
  std::size_t count = 0;
};

/// Summarise a sample. Requires a non-empty input.
DistributionSummary summarize(std::span<const double> values);

/// Online mean/variance accumulator (Welford). Used where streaming over
/// simulation samples avoids materialising large vectors.
class RunningStats {
 public:
  void add(double value);
  std::size_t count() const { return count_; }
  double mean() const { return mean_; }
  /// Population variance; 0 with fewer than 2 samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace xfl
