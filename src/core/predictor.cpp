#include "core/predictor.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string_view>

#include "common/contracts.hpp"
#include "common/stats.hpp"
#include "common/thread_pool.hpp"
#include "common/units.hpp"
#include "features/dataset.hpp"
#include "ml/gbt_flat.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace xfl::core {

namespace {
/// Predictor-level observability: which model class serves each request
/// (dedicated edge model vs. global fallback) and whether the residual
/// interval came from real calibration data or the 1.0 defaults.
struct PredictorMetrics {
  obs::Counter& fits = obs::counter("predictor.fit.count");
  obs::Counter& edge_models = obs::counter("predictor.fit.edge_models");
  obs::Counter& calibrated = obs::counter("predictor.fit.calibrated");
  obs::Counter& uncalibrated = obs::counter("predictor.fit.uncalibrated");
  obs::Counter& edge_hits = obs::counter("predictor.predict.edge_hits");
  obs::Counter& global_fallbacks =
      obs::counter("predictor.predict.global_fallbacks");
  /// Batch predict wall time, fine log buckets: its quantiles feed the
  /// serve-path "predict" stage in the stats exposition.
  obs::Histogram& batch_latency = obs::histogram(
      "predictor.predict.batch_us", obs::quantile_latency_bounds_us());
  // Explain-path accounting, per group: which model class produced each
  // explanation and whether its interval came from real calibration data.
  obs::Counter& explain_rows = obs::counter("predictor.explain.rows");
  obs::Counter& explain_edge_hits =
      obs::counter("predictor.explain.edge_hits");
  obs::Counter& explain_global_fallbacks =
      obs::counter("predictor.explain.global_fallbacks");
  obs::Counter& explain_calibrated =
      obs::counter("predictor.explain.calibrated");
  obs::Counter& explain_uncalibrated =
      obs::counter("predictor.explain.uncalibrated");
  obs::Histogram& explain_latency = obs::histogram(
      "predictor.explain.batch_us", obs::quantile_latency_bounds_us());
};

PredictorMetrics& predictor_metrics() {
  static PredictorMetrics metrics;
  return metrics;
}

/// Bucket bounds for the per-feature |contribution| histograms (MB/s
/// magnitudes, log-spaced 0.001..10000).
std::span<const double> attribution_bounds() {
  static const std::vector<double> bounds =
      obs::log_bucket_bounds(1.0e-3, 1.0e4, 1.6);
  return bounds;
}
}  // namespace

TransferPredictor::TransferPredictor() : TransferPredictor(Options{}) {}

TransferPredictor::TransferPredictor(Options options)
    : options_(std::move(options)) {
  XFL_EXPECTS(options_.gbt.valid());
}

/// Fill a model's empirical residual-ratio quantiles from training data.
void TransferPredictor::calibrate_interval(Model& model, const ml::Matrix& x,
                                           const std::vector<double>& y) {
  // One pass through the flattened batch engine instead of a per-row walk
  // (serial: calibration runs inside fit(), which may already fan out).
  std::vector<double> predicted(x.rows());
  model.boosted->predict_batch(x, predicted);
  std::vector<double> ratios;
  ratios.reserve(y.size());
  for (std::size_t r = 0; r < x.rows(); ++r)
    ratios.push_back(y[r] / std::max(0.01, predicted[r]));
  if (ratios.size() >= 10) {
    model.ratio_p10 = percentile(ratios, 10.0);
    model.ratio_p90 = percentile(ratios, 90.0);
    predictor_metrics().calibrated.add(1);
  } else {
    predictor_metrics().uncalibrated.add(1);
  }
}

void TransferPredictor::fit(const logs::LogStore& log) {
  XFL_EXPECTS(!log.empty());
  XFL_SPAN("predictor.fit");
  edge_models_.clear();

  AnalysisContext context = analyze_log(log);
  capabilities_ = context.capabilities;

  features::DatasetOptions dataset_options;
  dataset_options.include_nflt = false;
  dataset_options.load_threshold = options_.load_threshold;

  // Per-edge models.
  std::vector<logs::EdgeKey> trainable;
  for (const auto& edge : context.log.edges_by_usage()) {
    if (context.log.edge_count(edge) < options_.min_edge_transfers) break;
    trainable.push_back(edge);
  }
  for (const auto& edge : trainable) {
    const auto dataset = features::build_edge_dataset(
        context.log, context.contention, edge, dataset_options);
    if (dataset.rows() < options_.min_edge_transfers) continue;
    Model model;
    model.feature_names = dataset.feature_names;
    const auto x = model.scaler.fit_transform(dataset.x);
    ml::GbtConfig gbt_config = options_.gbt;
    gbt_config.seed = options_.seed;
    model.boosted = std::make_unique<ml::GradientBoostedTrees>(gbt_config);
    model.boosted->fit(x, dataset.y);
    calibrate_interval(model, x, dataset.y);
    edge_models_.emplace(edge, std::move(model));
  }

  // Global fallback model over every edge in the log.
  const auto all_edges = context.log.edges_by_usage();
  const auto global_dataset = features::build_global_dataset(
      context.log, context.contention, all_edges, context.capabilities,
      dataset_options);
  global_model_.feature_names = global_dataset.feature_names;
  const auto x = global_model_.scaler.fit_transform(global_dataset.x);
  ml::GbtConfig gbt_config = options_.gbt;
  gbt_config.seed = options_.seed + 1;
  global_model_.boosted =
      std::make_unique<ml::GradientBoostedTrees>(gbt_config);
  global_model_.boosted->fit(x, global_dataset.y);
  calibrate_interval(global_model_, x, global_dataset.y);

  fitted_ = true;
  auto& metrics = predictor_metrics();
  metrics.fits.add(1);
  metrics.edge_models.add(edge_models_.size());
  XFL_LOG(info) << "predictor fit complete"
                << obs::kv("records", log.size())
                << obs::kv("edge_models", edge_models_.size())
                << obs::kv("global_rows", global_dataset.rows())
                << obs::kv("kernel", serving_kernel());
}

TransferPredictor TransferPredictor::clone() const {
  XFL_EXPECTS(fitted_);
  // The models hold move-only members (unique_ptr ensembles), so the
  // tested persistence round trip is the copy path; load() recompiles the
  // flat inference engines, so the clone serves immediately.
  std::stringstream buffer;
  buffer.precision(17);
  save(buffer);
  return load(buffer);
}

void TransferPredictor::refit_edge(const logs::EdgeKey& edge,
                                   std::span<const EdgeSample> samples,
                                   std::span<const std::uint32_t> weights,
                                   const ml::GbtConfig& gbt) {
  XFL_EXPECTS(fitted_);
  XFL_EXPECTS(samples.size() >= 2);
  XFL_EXPECTS(weights.empty() || weights.size() == samples.size());
  XFL_EXPECTS(gbt.valid());
  XFL_SPAN("predictor.refit_edge");

  Model model;
  // Per-edge feature layout: kFeatureNames minus Nflt (prediction
  // features only), the order feature_vector() emits.
  for (const char* name : features::kFeatureNames)
    if (std::string_view(name) != "Nflt") model.feature_names.emplace_back(name);

  ml::Matrix raw(samples.size(), model.feature_names.size());
  std::vector<double> y;
  y.reserve(samples.size());
  for (std::size_t r = 0; r < samples.size(); ++r) {
    const EdgeSample& sample = samples[r];
    XFL_EXPECTS(std::isfinite(sample.observed_mbps) &&
                sample.observed_mbps > 0.0);
    const auto row =
        feature_vector(sample.transfer, sample.load, /*with_capabilities=*/false);
    XFL_EXPECTS(row.size() == model.feature_names.size());
    for (std::size_t c = 0; c < row.size(); ++c) raw.at(r, c) = row[c];
    y.push_back(sample.observed_mbps);
  }

  const auto x = model.scaler.fit_transform(raw);
  model.boosted = std::make_unique<ml::GradientBoostedTrees>(gbt);
  model.boosted->fit(x, y, weights);
  calibrate_interval(model, x, y);
  edge_models_[edge] = std::move(model);

  XFL_LOG(info) << "predictor edge refit"
                << obs::kv("src", edge.src) << obs::kv("dst", edge.dst)
                << obs::kv("rows", samples.size())
                << obs::kv("weighted", weights.empty() ? 0 : 1)
                << obs::kv("trees", gbt.trees);
}

const char* TransferPredictor::serving_kernel() const {
  XFL_EXPECTS(fitted_);
  return ml::kernel_name(global_model_.boosted->flat().effective_kernel());
}

bool TransferPredictor::has_edge_model(const logs::EdgeKey& edge) const {
  return edge_models_.contains(edge);
}

std::vector<double> TransferPredictor::feature_vector(
    const PlannedTransfer& transfer,
    const features::ContentionFeatures& load, bool with_capabilities) const {
  // Mirrors features::kFeatureNames order with Nflt removed (prediction
  // features only; Fig. 9 order): Ksout Kdin C P Ssout Ssin Sdout Sdin
  // Ksin Kdout Nd Nb Gsrc Gdst Nf [ROmax_src RImax_dst].
  std::vector<double> row = {
      to_mbps(load.k_sout),
      to_mbps(load.k_din),
      static_cast<double>(transfer.concurrency),
      static_cast<double>(transfer.parallelism),
      load.s_sout,
      load.s_sin,
      load.s_dout,
      load.s_din,
      to_mbps(load.k_sin),
      to_mbps(load.k_dout),
      static_cast<double>(transfer.dirs),
      transfer.bytes,
      load.g_src,
      load.g_dst,
      static_cast<double>(transfer.files),
  };
  if (with_capabilities) {
    const auto* src_capability = capability(transfer.src);
    const auto* dst_capability = capability(transfer.dst);
    row.push_back(src_capability ? to_mbps(src_capability->ro_max_Bps) : 0.0);
    row.push_back(dst_capability ? to_mbps(dst_capability->ri_max_Bps) : 0.0);
  }
  return row;
}

const TransferPredictor::Model& TransferPredictor::model_for(
    const logs::EdgeKey& edge) const {
  const auto it = edge_models_.find(edge);
  return it != edge_models_.end() ? it->second : global_model_;
}

double TransferPredictor::predict_rate_mbps(
    const PlannedTransfer& transfer,
    const features::ContentionFeatures& expected_load) const {
  XFL_EXPECTS(fitted_);
  XFL_EXPECTS(transfer.bytes >= 0.0 && transfer.files >= 1);
  XFL_SPAN("predictor.predict");
  const logs::EdgeKey edge{transfer.src, transfer.dst};
  const bool dedicated = has_edge_model(edge);
  auto& metrics = predictor_metrics();
  (dedicated ? metrics.edge_hits : metrics.global_fallbacks).add(1);
  const Model& model = model_for(edge);
  auto row = feature_vector(transfer, expected_load, !dedicated);

  // Standardise with the model's training statistics.
  XFL_EXPECTS(row.size() == model.scaler.means().size());
  for (std::size_t c = 0; c < row.size(); ++c)
    row[c] = (row[c] - model.scaler.means()[c]) / model.scaler.sigmas()[c];
  const double rate = model.boosted->predict(row);
  return std::max(rate, 0.01);  // A rate prediction is never non-positive.
}

std::vector<double> TransferPredictor::predict_rates_mbps(
    std::span<const PlannedTransfer> transfers,
    std::span<const features::ContentionFeatures> expected_loads,
    ThreadPool* pool) const {
  XFL_EXPECTS(fitted_);
  XFL_EXPECTS(expected_loads.empty() ||
              expected_loads.size() == transfers.size());
  XFL_SPAN("predictor.predict_batch");
  const std::uint64_t start_us = obs::monotonic_us();
  std::vector<double> rates(transfers.size());
  if (transfers.empty()) return rates;
  static const features::ContentionFeatures kIdle{};

  // Group rows by serving model, then run each group through the model's
  // flattened batch engine in one shot. Grouping only batches rows that
  // share a model — every row is standardised with its own model's
  // moments and walked independently, so the answers are bit-identical to
  // per-transfer predict_rate_mbps calls.
  std::map<const Model*, std::vector<std::size_t>> groups;
  for (std::size_t i = 0; i < transfers.size(); ++i) {
    XFL_EXPECTS(transfers[i].bytes >= 0.0 && transfers[i].files >= 1);
    groups[&model_for({transfers[i].src, transfers[i].dst})].push_back(i);
  }
  for (const auto& [model, indices] : groups) {
    const bool dedicated = model != &global_model_;
    auto& metrics = predictor_metrics();
    (dedicated ? metrics.edge_hits : metrics.global_fallbacks)
        .add(indices.size());
    const auto& means = model->scaler.means();
    const auto& sigmas = model->scaler.sigmas();
    ml::Matrix x(indices.size(), means.size());
    for (std::size_t k = 0; k < indices.size(); ++k) {
      const std::size_t i = indices[k];
      const auto row = feature_vector(
          transfers[i], expected_loads.empty() ? kIdle : expected_loads[i],
          !dedicated);
      XFL_EXPECTS(row.size() == means.size());
      for (std::size_t c = 0; c < row.size(); ++c)
        x.at(k, c) = (row[c] - means[c]) / sigmas[c];
    }
    std::vector<double> predicted(indices.size());
    model->boosted->predict_batch(x, predicted, pool);
    for (std::size_t k = 0; k < indices.size(); ++k)
      rates[indices[k]] = std::max(predicted[k], 0.01);
  }
  predictor_metrics().batch_latency.record(
      static_cast<double>(obs::monotonic_us() - start_us));
  return rates;
}

std::vector<RateExplanation> TransferPredictor::explain_rates_mbps(
    std::span<const PlannedTransfer> transfers,
    std::span<const features::ContentionFeatures> expected_loads,
    ThreadPool* pool) const {
  XFL_EXPECTS(fitted_);
  XFL_EXPECTS(expected_loads.empty() ||
              expected_loads.size() == transfers.size());
  XFL_SPAN("predictor.explain_batch");
  const std::uint64_t start_us = obs::monotonic_us();
  std::vector<RateExplanation> out(transfers.size());
  if (transfers.empty()) return out;
  static const features::ContentionFeatures kIdle{};

  // Same per-model grouping and standardisation as predict_rates_mbps, so
  // the explained rate for a transfer is bit-identical to the rate the
  // predict path serves for it in any batch composition.
  std::map<const Model*, std::vector<std::size_t>> groups;
  for (std::size_t i = 0; i < transfers.size(); ++i) {
    XFL_EXPECTS(transfers[i].bytes >= 0.0 && transfers[i].files >= 1);
    groups[&model_for({transfers[i].src, transfers[i].dst})].push_back(i);
  }
  auto& metrics = predictor_metrics();
  for (const auto& [model, indices] : groups) {
    const bool dedicated = model != &global_model_;
    (dedicated ? metrics.explain_edge_hits : metrics.explain_global_fallbacks)
        .add(indices.size());
    const bool calibrated =
        model->ratio_p10 != 1.0 || model->ratio_p90 != 1.0;
    (calibrated ? metrics.explain_calibrated : metrics.explain_uncalibrated)
        .add(indices.size());
    const auto& means = model->scaler.means();
    const auto& sigmas = model->scaler.sigmas();
    const std::size_t cols = means.size();
    ml::Matrix x(indices.size(), cols);
    for (std::size_t k = 0; k < indices.size(); ++k) {
      const std::size_t i = indices[k];
      const auto row = feature_vector(
          transfers[i], expected_loads.empty() ? kIdle : expected_loads[i],
          !dedicated);
      XFL_EXPECTS(row.size() == cols);
      for (std::size_t c = 0; c < cols; ++c)
        x.at(k, c) = (row[c] - means[c]) / sigmas[c];
    }
    std::vector<double> predicted(indices.size());
    std::vector<double> bias(indices.size());
    std::vector<double> contributions(indices.size() * cols);
    model->boosted->explain_batch(x, predicted, bias, contributions, pool);
    for (std::size_t k = 0; k < indices.size(); ++k) {
      RateExplanation& explanation = out[indices[k]];
      explanation.raw_mbps = predicted[k];
      explanation.bias_mbps = bias[k];
      // Identical clamp and band arithmetic as the predict path.
      explanation.rate_mbps = std::max(predicted[k], 0.01);
      explanation.low_mbps =
          std::max(0.01, explanation.rate_mbps * model->ratio_p10);
      explanation.high_mbps = std::max(
          explanation.low_mbps, explanation.rate_mbps * model->ratio_p90);
      explanation.edge_model = dedicated;
      explanation.feature_names = model->feature_names;
      explanation.contributions.assign(
          contributions.begin() + static_cast<std::ptrdiff_t>(k * cols),
          contributions.begin() + static_cast<std::ptrdiff_t>((k + 1) * cols));
    }
    // Rolling per-feature attribution magnitudes: one registry lookup per
    // feature per group (explain traffic is low-rate by design), then
    // lock-free records.
    for (std::size_t c = 0; c < cols && c < model->feature_names.size();
         ++c) {
      auto& histogram = obs::histogram(
          "predictor.attribution." + model->feature_names[c],
          attribution_bounds());
      for (std::size_t k = 0; k < indices.size(); ++k)
        histogram.record(std::abs(contributions[k * cols + c]));
    }
  }
  metrics.explain_rows.add(transfers.size());
  metrics.explain_latency.record(
      static_cast<double>(obs::monotonic_us() - start_us));
  return out;
}

RateInterval TransferPredictor::predict_rate_interval(
    const PlannedTransfer& transfer,
    const features::ContentionFeatures& expected_load) const {
  const double expected = predict_rate_mbps(transfer, expected_load);
  const Model& model = model_for({transfer.src, transfer.dst});
  RateInterval interval;
  interval.expected_mbps = expected;
  interval.low_mbps = std::max(0.01, expected * model.ratio_p10);
  interval.high_mbps = std::max(interval.low_mbps, expected * model.ratio_p90);
  return interval;
}

double TransferPredictor::estimate_duration_s(
    const PlannedTransfer& transfer,
    const features::ContentionFeatures& expected_load) const {
  const double rate_mbps = predict_rate_mbps(transfer, expected_load);
  return transfer.bytes / mbps(rate_mbps);
}

std::vector<std::pair<std::string, double>> TransferPredictor::explain(
    const logs::EdgeKey& edge) const {
  XFL_EXPECTS(fitted_);
  const Model& model = model_for(edge);
  const auto importance = model.boosted->feature_importance();
  std::vector<std::pair<std::string, double>> pairs;
  pairs.reserve(importance.size());
  for (std::size_t c = 0; c < importance.size(); ++c)
    pairs.emplace_back(model.feature_names[c], importance[c]);
  std::sort(pairs.begin(), pairs.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  return pairs;
}

namespace {
constexpr const char* kPredictorMagic = "xfl-predictor-v1";

void save_model(std::ostream& out, const char* label,
                const TransferPredictor::PersistedModel& model) {
  out << label << '\n';
  out << model.feature_names.size();
  for (const auto& name : model.feature_names) out << ' ' << name;
  out << '\n';
  out << model.means.size();
  for (const double m : model.means) out << ' ' << m;
  for (const double s : model.sigmas) out << ' ' << s;
  out << '\n';
  out << model.ratio_p10 << ' ' << model.ratio_p90 << '\n';
}

/// Sanity cap shared by every count field: a corrupted count must throw,
/// not drive a multi-gigabyte resize.
constexpr std::size_t kMaxPredictorEntries = 1u << 20;

TransferPredictor::PersistedModel load_model(std::istream& in,
                                             const std::string& label) {
  auto fail = [&label](const std::string& what) -> void {
    throw std::runtime_error("TransferPredictor::load (" + label +
                             "): " + what);
  };
  std::string seen;
  in >> seen;
  if (seen != label) fail("expected label, saw '" + seen + "'");
  TransferPredictor::PersistedModel model;
  std::size_t name_count = 0;
  in >> name_count;
  if (!in || name_count == 0 || name_count > kMaxPredictorEntries)
    fail("implausible feature-name count");
  model.feature_names.resize(name_count);
  for (auto& name : model.feature_names) in >> name;
  std::size_t moment_count = 0;
  in >> moment_count;
  if (!in) fail("truncated feature-name block");
  // Exactly one (mean, sigma) pair per feature; a mismatch means fields
  // were dropped or swapped upstream.
  if (moment_count != name_count)
    fail("scaler moment count does not match feature count");
  model.means.resize(moment_count);
  model.sigmas.resize(moment_count);
  for (auto& m : model.means) in >> m;
  for (auto& s : model.sigmas) in >> s;
  in >> model.ratio_p10 >> model.ratio_p90;
  if (!in) fail("truncated scaler block");
  for (const double s : model.sigmas)
    if (!(s > 0.0)) fail("non-positive scaler sigma");
  return model;
}
}  // namespace

void TransferPredictor::save(std::ostream& out) const {
  XFL_EXPECTS(fitted_);
  out.precision(17);
  out << kPredictorMagic << '\n';
  out << options_.min_edge_transfers << ' ' << options_.load_threshold << '\n';

  out << capabilities_.size() << '\n';
  for (const auto& [endpoint, capability] : capabilities_)
    out << endpoint << ' ' << capability.dr_max_Bps << ' '
        << capability.dw_max_Bps << ' ' << capability.ro_max_Bps << ' '
        << capability.ri_max_Bps << '\n';

  out << edge_models_.size() << '\n';
  for (const auto& [edge, model] : edge_models_) {
    out << edge.src << ' ' << edge.dst << '\n';
    PersistedModel persisted{model.feature_names, model.scaler.means(),
                             model.scaler.sigmas(), model.ratio_p10,
                             model.ratio_p90};
    save_model(out, "edge-model", persisted);
    model.boosted->save(out);
  }
  PersistedModel persisted{global_model_.feature_names,
                           global_model_.scaler.means(),
                           global_model_.scaler.sigmas(),
                           global_model_.ratio_p10, global_model_.ratio_p90};
  save_model(out, "global-model", persisted);
  global_model_.boosted->save(out);
}

TransferPredictor TransferPredictor::load(std::istream& in) {
  std::string magic;
  in >> magic;
  if (magic != kPredictorMagic)
    throw std::runtime_error("TransferPredictor::load: bad magic '" + magic +
                             "'");
  TransferPredictor predictor;
  in >> predictor.options_.min_edge_transfers >>
      predictor.options_.load_threshold;

  std::size_t capability_count = 0;
  in >> capability_count;
  if (!in || capability_count > kMaxPredictorEntries)
    throw std::runtime_error(
        "TransferPredictor::load: implausible capability count");
  for (std::size_t i = 0; i < capability_count; ++i) {
    endpoint::EndpointId endpoint = 0;
    features::EndpointCapability capability;
    in >> endpoint >> capability.dr_max_Bps >> capability.dw_max_Bps >>
        capability.ro_max_Bps >> capability.ri_max_Bps;
    predictor.capabilities_[endpoint] = capability;
  }

  std::size_t edge_count = 0;
  in >> edge_count;
  if (!in || edge_count > kMaxPredictorEntries)
    throw std::runtime_error(
        "TransferPredictor::load: implausible edge-model count");
  for (std::size_t i = 0; i < edge_count; ++i) {
    logs::EdgeKey edge;
    in >> edge.src >> edge.dst;
    const auto persisted = load_model(in, "edge-model");
    Model model;
    model.feature_names = persisted.feature_names;
    model.scaler =
        ml::StandardScaler::from_moments(persisted.means, persisted.sigmas);
    model.ratio_p10 = persisted.ratio_p10;
    model.ratio_p90 = persisted.ratio_p90;
    model.boosted = std::make_unique<ml::GradientBoostedTrees>(
        ml::GradientBoostedTrees::load(in));
    predictor.edge_models_.emplace(edge, std::move(model));
  }
  const auto persisted = load_model(in, "global-model");
  predictor.global_model_.feature_names = persisted.feature_names;
  predictor.global_model_.scaler =
      ml::StandardScaler::from_moments(persisted.means, persisted.sigmas);
  predictor.global_model_.ratio_p10 = persisted.ratio_p10;
  predictor.global_model_.ratio_p90 = persisted.ratio_p90;
  predictor.global_model_.boosted = std::make_unique<ml::GradientBoostedTrees>(
      ml::GradientBoostedTrees::load(in));
  if (!in)
    throw std::runtime_error("TransferPredictor::load: truncated model");
  predictor.fitted_ = true;
  return predictor;
}

namespace {
/// fsync the file at `path`; returns false on open or sync failure.
bool sync_file(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}
}  // namespace

void TransferPredictor::save_file(const std::string& path) const {
  XFL_EXPECTS(fitted_);
  // Write-to-temp + fsync + atomic rename + parent-directory fsync:
  // readers see the old complete file or the new complete file, a failed
  // save leaves any existing model untouched, and a crash after return
  // cannot surface a zero-length temp promoted over a good model (the
  // rename must not be reordered ahead of the data reaching disk). The
  // pid suffix keeps concurrent writers from clobbering each other's
  // temp files.
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out)
      throw std::runtime_error("TransferPredictor::save_file: cannot write " +
                               tmp);
    save(out);
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      throw std::runtime_error(
          "TransferPredictor::save_file: write failed for " + tmp);
    }
  }
  if (!sync_file(tmp)) {
    std::remove(tmp.c_str());
    throw std::runtime_error("TransferPredictor::save_file: cannot fsync " +
                             tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("TransferPredictor::save_file: cannot rename " +
                             tmp + " to " + path);
  }
  // Durability of the rename itself: sync the directory entry. "." covers
  // bare filenames saved into the working directory.
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash + 1);
  if (!sync_file(dir))
    throw std::runtime_error(
        "TransferPredictor::save_file: cannot fsync directory " + dir);
}

TransferPredictor TransferPredictor::load_file(const std::string& path) {
  std::ifstream in(path);
  if (!in)
    throw std::runtime_error("TransferPredictor::load_file: cannot open " +
                             path);
  return load(in);
}

const features::EndpointCapability* TransferPredictor::capability(
    endpoint::EndpointId endpoint) const {
  const auto it = capabilities_.find(endpoint);
  return it == capabilities_.end() ? nullptr : &it->second;
}

}  // namespace xfl::core
