// The §3.2 validation funnel as a reusable API: for each sufficiently used
// edge, estimate the Eq. 1 bound from history (DRmax/DWmax) plus a
// perfSONAR-style memory-to-memory probe (MMmax), compare it with the best
// observed rate, and classify the edge as consistent / below / exceeding,
// with the binding subsystem for the consistent ones.
#pragma once

#include <cstddef>
#include <vector>

#include "core/analytical.hpp"
#include "core/pipeline.hpp"
#include "sim/simulator.hpp"

namespace xfl::core {

/// One surveyed edge.
struct EdgeBoundReport {
  logs::EdgeKey edge;
  BoundEstimate estimate;       ///< DR (history), MM (probe), DW (history).
  double observed_max_Bps = 0.0;
  BoundValidation validation;
};

/// Survey knobs.
struct BoundSurveyConfig {
  std::size_t min_transfers = 40;  ///< Edges with fewer are skipped.
  std::size_t max_edges = 100;
  int probe_repetitions = 3;       ///< Memory-to-memory probe runs per edge.
};

/// Run the funnel: probes run on an idle copy of the infrastructure (as
/// perfSONAR tests do), capability estimates come from `context`.
std::vector<EdgeBoundReport> survey_bounds(
    const AnalysisContext& context, const net::SiteCatalog& sites,
    const endpoint::EndpointCatalog& endpoints,
    const sim::SimConfig& sim_config, const BoundSurveyConfig& config = {});

/// Aggregate counts over a survey (the paper's funnel numbers).
struct BoundSurveySummary {
  std::size_t consistent = 0;
  std::size_t below = 0;
  std::size_t exceeds = 0;
  std::size_t read_limited = 0;     ///< Consistent edges bound by disk read.
  std::size_t network_limited = 0;  ///< ... by the network.
  std::size_t write_limited = 0;    ///< ... by disk write.
};

BoundSurveySummary summarize_survey(const std::vector<EdgeBoundReport>& reports);

}  // namespace xfl::core
