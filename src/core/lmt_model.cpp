#include "core/lmt_model.hpp"

#include <algorithm>
#include <span>

#include "common/contracts.hpp"
#include "features/contention.hpp"
#include "features/dataset.hpp"
#include "ml/metrics.hpp"
#include "ml/scaler.hpp"

namespace xfl::core {

namespace {

/// Mean of one EndpointSample field over samples falling in [t0, t1].
template <typename Extract>
double window_mean(const std::vector<sim::EndpointSample>& samples, double t0,
                   double t1, Extract&& extract) {
  auto first = std::lower_bound(
      samples.begin(), samples.end(), t0,
      [](const sim::EndpointSample& s, double t) { return s.time_s < t; });
  double sum = 0.0;
  std::size_t count = 0;
  for (auto it = first; it != samples.end() && it->time_s <= t1; ++it) {
    sum += extract(*it);
    ++count;
  }
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

/// Train an XGB model on a 70/30 split and return (mdape, p95 APE).
std::pair<double, double> evaluate(const features::Dataset& dataset,
                                   const LmtStudyConfig& config) {
  const auto split =
      features::split_dataset(dataset, config.train_fraction, config.seed);
  ml::StandardScaler scaler;
  const auto x_train = scaler.fit_transform(split.train.x);
  const auto x_test = scaler.transform(split.test.x);
  ml::GbtConfig gbt_config = config.gbt;
  gbt_config.seed = config.seed + 1;
  ml::GradientBoostedTrees boosted(gbt_config);
  boosted.fit(x_train, split.train.y);
  const auto predictions = boosted.predict(x_test);
  return {ml::mdape(split.test.y, predictions),
          ml::percentile_ape(split.test.y, predictions, 95.0)};
}

}  // namespace

LmtStudyReport run_lmt_study(const sim::SimResult& result,
                             endpoint::EndpointId src,
                             endpoint::EndpointId dst,
                             const LmtStudyConfig& config) {
  const auto src_samples = result.samples.find(src);
  const auto dst_samples = result.samples.find(dst);
  XFL_EXPECTS(src_samples != result.samples.end());
  XFL_EXPECTS(dst_samples != result.samples.end());

  // Contention features over the *whole* log (test + load transfers); the
  // dataset then keeps only the controlled test transfers.
  const auto contention = features::compute_contention(result.log);
  features::DatasetOptions options;
  options.include_nflt = false;
  options.load_threshold = 0.0;  // Controlled experiment: keep everything.

  // Build a filtered index of test transfers.
  std::vector<std::size_t> test_rows;
  for (std::size_t i = 0; i < result.log.size(); ++i) {
    const auto id = result.log[i].id;
    if (id >= config.test_first_id && id <= config.test_last_id)
      test_rows.push_back(i);
  }
  XFL_EXPECTS(test_rows.size() >= 50);

  // Baseline dataset: the 15 predictive features for test transfers only.
  const auto full = features::build_edge_dataset(
      result.log, contention, logs::EdgeKey{src, dst}, options);
  std::vector<std::size_t> keep_rows;
  for (std::size_t r = 0; r < full.rows(); ++r) {
    const auto id = result.log[full.record_indices[r]].id;
    if (id >= config.test_first_id && id <= config.test_last_id)
      keep_rows.push_back(r);
  }
  features::Dataset baseline;
  baseline.feature_names = full.feature_names;
  baseline.x = full.x.select_rows(keep_rows);
  for (const std::size_t r : keep_rows) {
    baseline.y.push_back(full.y[r]);
    baseline.record_indices.push_back(full.record_indices[r]);
  }

  // Augmented dataset: + src OSS CPU, dst OSS CPU, src OST read, dst OST
  // write (window means of the monitor series).
  features::Dataset augmented = baseline;
  augmented.feature_names.emplace_back("OSS_cpu_src");
  augmented.feature_names.emplace_back("OSS_cpu_dst");
  augmented.feature_names.emplace_back("OST_read_src");
  augmented.feature_names.emplace_back("OST_write_dst");
  ml::Matrix x(augmented.rows(), baseline.cols() + 4);
  for (std::size_t r = 0; r < augmented.rows(); ++r) {
    const auto& record = result.log[augmented.record_indices[r]];
    const double t0 = record.start_s;
    const double t1 = record.end_s;
    for (std::size_t c = 0; c < baseline.cols(); ++c)
      x.at(r, c) = baseline.x.at(r, c);
    x.at(r, baseline.cols() + 0) =
        window_mean(src_samples->second, t0, t1,
                    [](const sim::EndpointSample& s) { return s.cpu_load; });
    x.at(r, baseline.cols() + 1) =
        window_mean(dst_samples->second, t0, t1,
                    [](const sim::EndpointSample& s) { return s.cpu_load; });
    x.at(r, baseline.cols() + 2) = window_mean(
        src_samples->second, t0, t1,
        [](const sim::EndpointSample& s) { return s.disk_read_Bps; });
    x.at(r, baseline.cols() + 3) = window_mean(
        dst_samples->second, t0, t1,
        [](const sim::EndpointSample& s) { return s.disk_write_Bps; });
  }
  augmented.x = std::move(x);

  LmtStudyReport report;
  report.test_transfers = baseline.rows();
  std::tie(report.baseline_mdape, report.baseline_p95) =
      evaluate(baseline, config);
  std::tie(report.augmented_mdape, report.augmented_p95) =
      evaluate(augmented, config);
  return report;
}

}  // namespace xfl::core
