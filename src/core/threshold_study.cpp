#include "core/threshold_study.hpp"

#include <algorithm>

#include "common/contracts.hpp"

namespace xfl::core {

std::vector<ThresholdSeries> run_threshold_study(
    const AnalysisContext& context, const ThresholdStudyConfig& config,
    ThreadPool* pool) {
  XFL_EXPECTS(!config.thresholds.empty());
  const double max_threshold =
      *std::max_element(config.thresholds.begin(), config.thresholds.end());
  const auto edges = select_heavy_edges(context, config.min_transfers_at_max,
                                        max_threshold, config.max_edges);

  std::vector<ThresholdSeries> series(edges.size());
  auto body = [&](std::size_t i) {
    ThresholdSeries& entry = series[i];
    entry.edge = edges[i];
    for (const double threshold : config.thresholds) {
      EdgeModelConfig edge_config = config.edge_config;
      edge_config.load_threshold = threshold;
      const auto report = study_edge(context, edges[i], edge_config);
      entry.samples.push_back(report.samples);
      entry.lr_mdape.push_back(report.lr_mdape);
      entry.xgb_mdape.push_back(report.xgb_mdape);
    }
  };
  if (pool != nullptr) {
    pool->parallel_for(edges.size(), body);
  } else {
    for (std::size_t i = 0; i < edges.size(); ++i) body(i);
  }
  return series;
}

}  // namespace xfl::core
