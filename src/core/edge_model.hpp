// Per-edge regression study (§5.1-§5.3): for one heavily used edge, fit
//   * explanation models (linear + gradient boosting) on all 16 features
//     including Nflt, yielding the Fig. 9 coefficient map and the Fig. 12
//     importance map with low-variance features eliminated, and
//   * prediction models on the 15 predictive features (Nflt excluded) with
//     a 70/30 random split, yielding the Fig. 10 error distributions and
//     the Fig. 11 MdAPE comparison.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "common/thread_pool.hpp"
#include "core/pipeline.hpp"
#include "ml/gbt.hpp"

namespace xfl::core {

/// Study configuration.
struct EdgeModelConfig {
  double load_threshold = 0.5;      ///< T of §4.3.2.
  double train_fraction = 0.7;      ///< 70/30 split.
  double mode_threshold = 0.97;     ///< Low-variance elimination sensitivity.
  ml::GbtConfig gbt;                ///< Nonlinear model hyperparameters.
  std::uint64_t seed = 42;          ///< Split seed (edge index is mixed in).
};

/// Everything the figures need for one edge.
struct EdgeModelReport {
  logs::EdgeKey edge;
  std::size_t samples = 0;  ///< Transfers above the load threshold.

  /// Explanation block: all 16 features (Fig. 9/12 column order).
  std::vector<std::string> feature_names;
  std::vector<bool> eliminated;            ///< Low-variance crosses.
  std::vector<double> lr_coefficients;     ///< |beta| / max|beta| per edge.
  std::vector<double> xgb_importance;      ///< Gain / max gain per edge.

  /// Prediction block (Nflt excluded).
  double lr_mdape = 0.0;
  double xgb_mdape = 0.0;
  double lr_r2 = 0.0;
  xfl::DistributionSummary lr_ape;   ///< Fig. 10 left violin.
  xfl::DistributionSummary xgb_ape;  ///< Fig. 10 right violin.
};

/// Run the full study for one edge. Requires the edge to have at least
/// 20 transfers above the threshold (enough for a meaningful split).
EdgeModelReport study_edge(const AnalysisContext& context,
                           const logs::EdgeKey& edge,
                           const EdgeModelConfig& config = {});

/// Study several edges, optionally in parallel. Reports are returned in the
/// input edge order.
std::vector<EdgeModelReport> study_edges(const AnalysisContext& context,
                                         const std::vector<logs::EdgeKey>& edges,
                                         const EdgeModelConfig& config = {},
                                         ThreadPool* pool = nullptr);

}  // namespace xfl::core
