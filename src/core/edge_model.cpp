#include "core/edge_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"
#include "features/dataset.hpp"
#include "ml/linreg.hpp"
#include "ml/metrics.hpp"
#include "ml/scaler.hpp"

namespace xfl::core {

namespace {

/// Fit the explanation models on the full (thresholded) dataset with Nflt
/// included and write the Fig. 9 / Fig. 12 blocks of the report.
void run_explanation(const AnalysisContext& context, const logs::EdgeKey& edge,
                     const EdgeModelConfig& config, EdgeModelReport& report) {
  features::DatasetOptions options;
  options.include_nflt = true;
  options.load_threshold = config.load_threshold;
  const auto dataset =
      features::build_edge_dataset(context.log, context.contention, edge, options);

  report.feature_names = dataset.feature_names;
  const auto keep = features::variance_mask(dataset.x, config.mode_threshold,
                                            config.gbt.threads);
  report.eliminated.resize(keep.size());
  for (std::size_t c = 0; c < keep.size(); ++c)
    report.eliminated[c] = !keep[c];

  const auto reduced = dataset.select_features(keep);
  if (reduced.cols() == 0 || reduced.rows() < reduced.cols() + 2) {
    report.lr_coefficients.assign(keep.size(), 0.0);
    report.xgb_importance.assign(keep.size(), 0.0);
    return;
  }

  ml::StandardScaler scaler;
  const auto x_std = scaler.fit_transform(reduced.x);

  ml::LinearRegression linear;
  linear.fit(x_std, reduced.y);

  ml::GbtConfig gbt_config = config.gbt;
  gbt_config.seed = config.seed;
  ml::GradientBoostedTrees boosted(gbt_config);
  boosted.fit(x_std, reduced.y);
  const auto importance = boosted.feature_importance();

  // Scatter the reduced-model numbers back to the full 16-column layout,
  // scaling linear coefficients so the per-edge maximum is 1 (Fig. 9:
  // "we scaled the coefficients by dividing each coefficient into the
  // maximum value of its edge").
  report.lr_coefficients.assign(keep.size(), 0.0);
  report.xgb_importance.assign(keep.size(), 0.0);
  double max_coefficient = 0.0;
  for (const double beta : linear.coefficients())
    max_coefficient = std::max(max_coefficient, std::fabs(beta));
  std::size_t reduced_column = 0;
  for (std::size_t c = 0; c < keep.size(); ++c) {
    if (!keep[c]) continue;
    const double beta = linear.coefficients()[reduced_column];
    report.lr_coefficients[c] =
        max_coefficient > 0.0 ? std::fabs(beta) / max_coefficient : 0.0;
    report.xgb_importance[c] = importance[reduced_column];
    ++reduced_column;
  }
}

/// Fit the prediction models (Nflt excluded) on a 70/30 split and write the
/// error block of the report.
void run_prediction(const AnalysisContext& context, const logs::EdgeKey& edge,
                    const EdgeModelConfig& config, EdgeModelReport& report) {
  features::DatasetOptions options;
  options.include_nflt = false;
  options.load_threshold = config.load_threshold;
  const auto dataset =
      features::build_edge_dataset(context.log, context.contention, edge, options);
  report.samples = dataset.rows();
  XFL_EXPECTS(dataset.rows() >= 20);

  const auto keep = features::variance_mask(dataset.x, config.mode_threshold,
                                            config.gbt.threads);
  auto reduced = dataset.select_features(keep);
  if (reduced.cols() == 0) reduced = dataset;  // Degenerate: keep everything.

  // Mix the edge into the split seed so edges do not share split patterns.
  const std::uint64_t split_seed =
      config.seed ^ (static_cast<std::uint64_t>(edge.src) << 32) ^ edge.dst;
  const auto split =
      features::split_dataset(reduced, config.train_fraction, split_seed);

  ml::StandardScaler scaler;
  const auto x_train = scaler.fit_transform(split.train.x);
  const auto x_test = scaler.transform(split.test.x);

  ml::LinearRegression linear;
  linear.fit(x_train, split.train.y);
  const auto lr_predictions = linear.predict(x_test);
  report.lr_mdape = ml::mdape(split.test.y, lr_predictions);
  report.lr_ape = ml::ape_summary(split.test.y, lr_predictions);
  report.lr_r2 = linear.r_squared(x_test, split.test.y);

  ml::GbtConfig gbt_config = config.gbt;
  gbt_config.seed = config.seed + 1;
  ml::GradientBoostedTrees boosted(gbt_config);
  boosted.fit(x_train, split.train.y);
  // Flattened batch engine, serial: study_edges may already fan the study
  // out per edge, and the answers are identical either way.
  std::vector<double> xgb_predictions(x_test.rows());
  boosted.predict_batch(x_test, xgb_predictions);
  report.xgb_mdape = ml::mdape(split.test.y, xgb_predictions);
  report.xgb_ape = ml::ape_summary(split.test.y, xgb_predictions);
}

}  // namespace

EdgeModelReport study_edge(const AnalysisContext& context,
                           const logs::EdgeKey& edge,
                           const EdgeModelConfig& config) {
  EdgeModelReport report;
  report.edge = edge;
  run_explanation(context, edge, config, report);
  run_prediction(context, edge, config, report);
  return report;
}

std::vector<EdgeModelReport> study_edges(const AnalysisContext& context,
                                         const std::vector<logs::EdgeKey>& edges,
                                         const EdgeModelConfig& config,
                                         ThreadPool* pool) {
  std::vector<EdgeModelReport> reports(edges.size());
  // When fanning out across edges, force each per-edge GBT fit serial:
  // the cores are already busy with one edge per worker, and nested pools
  // would oversubscribe. Results are unaffected — GBT output is
  // bit-identical across thread counts.
  EdgeModelConfig edge_config = config;
  if (pool != nullptr && pool->thread_count() > 1)
    edge_config.gbt.threads = 1;
  auto body = [&](std::size_t i) {
    reports[i] = study_edge(context, edges[i], edge_config);
  };
  if (pool != nullptr) {
    pool->parallel_for(edges.size(), body);
  } else {
    for (std::size_t i = 0; i < edges.size(); ++i) body(i);
  }
  return reports;
}

}  // namespace xfl::core
