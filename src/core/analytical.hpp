// The simple analytical model of §3: the end-to-end rate of a transfer
// cannot exceed the slowest of the three engaged subsystems,
//   Rmax <= min(DRmax, MMmax, DWmax)            (Eq. 1)
// and the binding term names the bottleneck. §3.2 checks production edges
// against this bound using historical DR/DW estimates and perfSONAR MMmax
// measurements, calling an edge consistent when its observed maximum lies
// in [0.8, 1.2] x the predicted Rmax.
#pragma once

#include <string>

namespace xfl::core {

/// Which subsystem binds Eq. 1.
enum class Bottleneck { kDiskRead, kNetwork, kDiskWrite };

/// Short label: "disk read" / "network" / "disk write".
const char* to_string(Bottleneck bottleneck);

/// The three subsystem maxima of Eq. 1, in bytes/second.
struct BoundEstimate {
  double dr_max_Bps = 0.0;  ///< Source disk read ceiling.
  double mm_max_Bps = 0.0;  ///< Memory-to-memory (network) ceiling.
  double dw_max_Bps = 0.0;  ///< Destination disk write ceiling.

  /// Eq. 1 right-hand side.
  double r_max_Bps() const;

  /// The subsystem achieving the minimum.
  Bottleneck bottleneck() const;
};

/// Result of checking an edge against Eq. 1 (§3.2's funnel).
struct BoundValidation {
  double ratio = 0.0;      ///< observed_max / predicted Rmax.
  bool consistent = false; ///< ratio in [0.8, 1.2].
  bool exceeds = false;    ///< ratio > 1.2 (bad MMmax estimate, §3.2).
  Bottleneck bottleneck = Bottleneck::kNetwork;
};

/// Compare an observed maximum rate against a bound estimate. Requires
/// estimate.r_max_Bps() > 0.
BoundValidation validate_bound(double observed_max_Bps,
                               const BoundEstimate& estimate);

}  // namespace xfl::core
