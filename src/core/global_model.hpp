// Single model for all edges (§5.4 / Eq. 5): pool the thresholded
// transfers of every heavy edge, append the endpoint-capability features
// ROmax(src) and RImax(dst), and fit one linear and one nonlinear model.
// The paper reports MdAPE 19% (linear) and 4.9% (XGB) for this setting
// (7.8% in the abstract's summary).
#pragma once

#include <cstdint>
#include <vector>

#include "core/pipeline.hpp"
#include "ml/gbt.hpp"

namespace xfl::core {

struct GlobalModelConfig {
  double load_threshold = 0.5;
  double train_fraction = 0.7;
  double mode_threshold = 0.97;
  ml::GbtConfig gbt;
  std::uint64_t seed = 97;
  /// Drop the ROmax/RImax capability features (ablation: how much do the
  /// endpoint features matter for the pooled model?).
  bool without_capability_features = false;
  /// Optional per-edge RTT map: when set, the pooled model gains the RTT
  /// feature §5.4 proposes as future work. Not owned; must outlive the
  /// study call.
  const std::map<logs::EdgeKey, double>* edge_rtt_s = nullptr;
};

struct GlobalModelReport {
  std::size_t samples = 0;       ///< Pooled transfers above threshold.
  std::size_t edges = 0;
  double lr_mdape = 0.0;
  double xgb_mdape = 0.0;
  double lr_r2 = 0.0;
  std::vector<std::string> feature_names;
  std::vector<double> xgb_importance;  ///< Gain / max gain.
};

/// Fit and evaluate the pooled model over the given edges.
GlobalModelReport study_global_model(const AnalysisContext& context,
                                     const std::vector<logs::EdgeKey>& edges,
                                     const GlobalModelConfig& config = {});

}  // namespace xfl::core
