#include "core/analytical.hpp"

#include <algorithm>

#include "common/contracts.hpp"

namespace xfl::core {

const char* to_string(Bottleneck bottleneck) {
  switch (bottleneck) {
    case Bottleneck::kDiskRead:
      return "disk read";
    case Bottleneck::kNetwork:
      return "network";
    case Bottleneck::kDiskWrite:
      return "disk write";
  }
  return "?";
}

double BoundEstimate::r_max_Bps() const {
  return std::min({dr_max_Bps, mm_max_Bps, dw_max_Bps});
}

Bottleneck BoundEstimate::bottleneck() const {
  const double bound = r_max_Bps();
  if (bound == dr_max_Bps && dr_max_Bps <= mm_max_Bps &&
      dr_max_Bps <= dw_max_Bps)
    return Bottleneck::kDiskRead;
  if (bound == dw_max_Bps && dw_max_Bps <= mm_max_Bps)
    return Bottleneck::kDiskWrite;
  return Bottleneck::kNetwork;
}

BoundValidation validate_bound(double observed_max_Bps,
                               const BoundEstimate& estimate) {
  XFL_EXPECTS(estimate.r_max_Bps() > 0.0);
  XFL_EXPECTS(observed_max_Bps >= 0.0);
  BoundValidation validation;
  validation.ratio = observed_max_Bps / estimate.r_max_Bps();
  validation.consistent = validation.ratio >= 0.8 && validation.ratio <= 1.2;
  validation.exceeds = validation.ratio > 1.2;
  validation.bottleneck = estimate.bottleneck();
  return validation;
}

}  // namespace xfl::core
