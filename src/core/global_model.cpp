#include "core/global_model.hpp"

#include "common/contracts.hpp"
#include "features/dataset.hpp"
#include "ml/linreg.hpp"
#include "ml/metrics.hpp"
#include "ml/scaler.hpp"

namespace xfl::core {

GlobalModelReport study_global_model(const AnalysisContext& context,
                                     const std::vector<logs::EdgeKey>& edges,
                                     const GlobalModelConfig& config) {
  XFL_EXPECTS(!edges.empty());
  features::DatasetOptions options;
  options.include_nflt = false;
  options.load_threshold = config.load_threshold;
  options.edge_rtt_s = config.edge_rtt_s;
  auto dataset = features::build_global_dataset(
      context.log, context.contention, edges, context.capabilities, options);

  if (config.without_capability_features) {
    std::vector<bool> keep(dataset.cols(), true);
    keep[dataset.cols() - 1] = false;  // RImax_dst
    keep[dataset.cols() - 2] = false;  // ROmax_src
    dataset = dataset.select_features(keep);
  }

  GlobalModelReport report;
  report.samples = dataset.rows();
  report.edges = edges.size();
  XFL_EXPECTS(dataset.rows() >= 50);

  const auto keep = features::variance_mask(dataset.x, config.mode_threshold,
                                            config.gbt.threads);
  auto reduced = dataset.select_features(keep);
  if (reduced.cols() == 0) reduced = dataset;
  report.feature_names = reduced.feature_names;

  const auto split =
      features::split_dataset(reduced, config.train_fraction, config.seed);
  ml::StandardScaler scaler;
  const auto x_train = scaler.fit_transform(split.train.x);
  const auto x_test = scaler.transform(split.test.x);

  ml::LinearRegression linear;
  linear.fit(x_train, split.train.y);
  const auto lr_predictions = linear.predict(x_test);
  report.lr_mdape = ml::mdape(split.test.y, lr_predictions);
  report.lr_r2 = linear.r_squared(x_test, split.test.y);

  ml::GbtConfig gbt_config = config.gbt;
  gbt_config.seed = config.seed + 1;
  ml::GradientBoostedTrees boosted(gbt_config);
  boosted.fit(x_train, split.train.y);
  // Serve the held-out evaluation through the flattened batch engine.
  std::vector<double> xgb_predictions(x_test.rows());
  boosted.predict_batch(x_test, xgb_predictions);
  report.xgb_mdape = ml::mdape(split.test.y, xgb_predictions);
  report.xgb_importance = boosted.feature_importance();
  return report;
}

}  // namespace xfl::core
