// Load-threshold sensitivity study (§5.5.1 / Fig. 13): retrain per-edge
// models on datasets restricted to rate >= T * Rmax for T in
// {0.5, 0.6, 0.7, 0.8}. Higher thresholds exclude transfers that likely
// suffered unknown competing load, so prediction error should decline.
// (The paper's figure caption says "linear model" while the text says
// gradient boosting; we report both.)
#pragma once

#include <cstdint>
#include <vector>

#include "core/edge_model.hpp"
#include "core/pipeline.hpp"

namespace xfl::core {

struct ThresholdStudyConfig {
  std::vector<double> thresholds = {0.5, 0.6, 0.7, 0.8};
  /// Edges must keep at least this many transfers at the *highest*
  /// threshold (paper: 8 edges with > 300 transfers at 0.8 Rmax).
  std::size_t min_transfers_at_max = 300;
  std::size_t max_edges = 8;
  EdgeModelConfig edge_config;
};

/// One edge's error at each threshold.
struct ThresholdSeries {
  logs::EdgeKey edge;
  std::vector<std::size_t> samples;   ///< Per threshold.
  std::vector<double> lr_mdape;       ///< Per threshold.
  std::vector<double> xgb_mdape;      ///< Per threshold.
};

/// Select qualifying edges and run the sweep.
std::vector<ThresholdSeries> run_threshold_study(
    const AnalysisContext& context, const ThresholdStudyConfig& config = {},
    ThreadPool* pool = nullptr);

}  // namespace xfl::core
