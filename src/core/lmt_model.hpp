// The monitored-storage study of §5.5.2: controlled transfers between two
// Lustre-backed endpoints while an LMT-style monitor samples true storage
// load every five seconds. A baseline model sees only the 15 log-derived
// features; the augmented model additionally sees four storage-load
// features — CPU load on the source and destination OSS and disk read /
// write load on the source / destination OST, averaged over each transfer's
// window. The paper reports the 95th-percentile error dropping from 9.29%
// to 1.26%.
#pragma once

#include <cstdint>

#include "endpoint/endpoint.hpp"
#include "ml/gbt.hpp"
#include "sim/scenario.hpp"
#include "sim/simulator.hpp"

namespace xfl::core {

struct LmtStudyConfig {
  double train_fraction = 0.7;
  ml::GbtConfig gbt;
  std::uint64_t seed = 555;
  /// Id range identifying the controlled test transfers within the log.
  std::uint64_t test_first_id = sim::kLmtTestFirstId;
  std::uint64_t test_last_id = sim::kLmtLoadFirstId - 1;
};

struct LmtStudyReport {
  std::size_t test_transfers = 0;
  double baseline_p95 = 0.0;    ///< 95th-percentile APE, 15 features.
  double augmented_p95 = 0.0;   ///< 95th-percentile APE, +4 LMT features.
  double baseline_mdape = 0.0;
  double augmented_mdape = 0.0;
};

/// Run the study on the result of a monitored scenario (make_nersc_lmt).
/// `src`/`dst` name the monitored endpoints whose samples provide the LMT
/// features. Requires samples for both endpoints and >= 50 test transfers.
LmtStudyReport run_lmt_study(const sim::SimResult& result,
                             endpoint::EndpointId src,
                             endpoint::EndpointId dst,
                             const LmtStudyConfig& config = {});

}  // namespace xfl::core
