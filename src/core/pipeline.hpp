// Shared analysis context: log -> contention features -> endpoint
// capabilities, plus the heavy-edge selection rule of §5.1 ("edges that
// have at least 300 transfers with rate greater than 0.5 Rmax").
#pragma once

#include <cstddef>
#include <map>
#include <vector>

#include "features/contention.hpp"
#include "features/endpoint_stats.hpp"
#include "logs/log_store.hpp"

namespace xfl::core {

/// Everything derived once from a log and reused by every study.
struct AnalysisContext {
  logs::LogStore log;
  std::vector<features::ContentionFeatures> contention;
  std::map<endpoint::EndpointId, features::EndpointCapability> capabilities;
};

/// Run the contention sweep and capability estimation over a log.
/// `contention_threads` follows compute_contention's convention
/// (0 = hardware concurrency, 1 = serial); the result is identical
/// regardless of the value.
AnalysisContext analyze_log(logs::LogStore log, int contention_threads = 1);

/// Edges with at least `min_transfers` transfers whose rate exceeds
/// `load_threshold * Rmax(edge)`, ordered by qualifying-transfer count
/// (descending), truncated to `max_edges` (0 = no limit).
std::vector<logs::EdgeKey> select_heavy_edges(const AnalysisContext& context,
                                              std::size_t min_transfers = 300,
                                              double load_threshold = 0.5,
                                              std::size_t max_edges = 30);

}  // namespace xfl::core
