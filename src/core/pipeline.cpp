#include "core/pipeline.hpp"

#include <algorithm>

#include "obs/log.hpp"
#include "obs/trace.hpp"

namespace xfl::core {

AnalysisContext analyze_log(logs::LogStore log, int contention_threads) {
  XFL_SPAN("core.analyze_log");
  AnalysisContext context;
  context.log = std::move(log);
  XFL_LOG(debug) << "analyzing log" << obs::kv("records", context.log.size())
                 << obs::kv("threads", contention_threads);
  context.contention =
      features::compute_contention(context.log, contention_threads);
  context.capabilities =
      features::estimate_capabilities(context.log, context.contention);
  return context;
}

std::vector<logs::EdgeKey> select_heavy_edges(const AnalysisContext& context,
                                              std::size_t min_transfers,
                                              double load_threshold,
                                              std::size_t max_edges) {
  struct Candidate {
    logs::EdgeKey edge;
    std::size_t qualifying = 0;
  };
  std::vector<Candidate> candidates;
  for (const auto& edge : context.log.edges_by_usage()) {
    const auto indices = context.log.edge_transfers(edge);
    if (indices.size() < min_transfers) continue;  // Cannot qualify.
    const double min_rate = load_threshold > 0.0
                                ? load_threshold * context.log.edge_max_rate(edge)
                                : 0.0;
    std::size_t qualifying = 0;
    for (const std::size_t i : indices)
      if (context.log[i].rate_Bps() >= min_rate) ++qualifying;
    if (qualifying >= min_transfers)
      candidates.push_back({edge, qualifying});
  }
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const Candidate& a, const Candidate& b) {
                     return a.qualifying > b.qualifying;
                   });
  if (max_edges > 0 && candidates.size() > max_edges)
    candidates.resize(max_edges);
  std::vector<logs::EdgeKey> edges;
  edges.reserve(candidates.size());
  for (const auto& candidate : candidates) edges.push_back(candidate.edge);
  return edges;
}

}  // namespace xfl::core
