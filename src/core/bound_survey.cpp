#include "core/bound_survey.hpp"

#include "common/contracts.hpp"
#include "sim/probe.hpp"

namespace xfl::core {

std::vector<EdgeBoundReport> survey_bounds(
    const AnalysisContext& context, const net::SiteCatalog& sites,
    const endpoint::EndpointCatalog& endpoints,
    const sim::SimConfig& sim_config, const BoundSurveyConfig& config) {
  XFL_EXPECTS(config.probe_repetitions >= 1);
  sim::SimConfig probe_config = sim_config;
  probe_config.enable_faults = false;  // Probes measure the clean path.

  const auto edges =
      select_heavy_edges(context, config.min_transfers, 0.0, config.max_edges);
  std::vector<EdgeBoundReport> reports;
  reports.reserve(edges.size());
  for (const auto& edge : edges) {
    EdgeBoundReport report;
    report.edge = edge;
    report.estimate.dr_max_Bps = context.capabilities.at(edge.src).dr_max_Bps;
    report.estimate.dw_max_Bps = context.capabilities.at(edge.dst).dw_max_Bps;
    sim::ProbeConfig probe;
    probe.repetitions = config.probe_repetitions;
    report.estimate.mm_max_Bps = sim::measure_max_rate_Bps(
        sites, endpoints, probe_config, edge.src, edge.dst,
        sim::ProbeKind::kMemToMem, probe);
    report.observed_max_Bps = context.log.edge_max_rate(edge);
    report.validation = validate_bound(report.observed_max_Bps, report.estimate);
    reports.push_back(report);
  }
  return reports;
}

BoundSurveySummary summarize_survey(
    const std::vector<EdgeBoundReport>& reports) {
  BoundSurveySummary summary;
  for (const auto& report : reports) {
    if (report.validation.consistent) {
      ++summary.consistent;
      switch (report.validation.bottleneck) {
        case Bottleneck::kDiskRead:
          ++summary.read_limited;
          break;
        case Bottleneck::kNetwork:
          ++summary.network_limited;
          break;
        case Bottleneck::kDiskWrite:
          ++summary.write_limited;
          break;
      }
    } else if (report.validation.exceeds) {
      ++summary.exceeds;
    } else {
      ++summary.below;
    }
  }
  return summary;
}

}  // namespace xfl::core
