// Public prediction API — the downstream-facing deliverable the paper
// motivates: "Our predictions can be used for distributed workflow
// scheduling and optimization."
//
// TransferPredictor learns from a historical log: one gradient-boosting
// model per sufficiently used edge, plus the pooled global model of §5.4
// (with ROmax/RImax endpoint-capability features) as a fallback for edges
// with little or no history. Callers supply the planned transfer and the
// competing load they expect during it (e.g. from currently running
// transfers) and receive a rate estimate.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "ml/gbt.hpp"
#include "ml/scaler.hpp"

namespace xfl {
class ThreadPool;
}

namespace xfl::core {

/// A transfer about to be submitted.
struct PlannedTransfer {
  endpoint::EndpointId src = 0;
  endpoint::EndpointId dst = 0;
  double bytes = 0.0;
  std::uint64_t files = 1;
  std::uint64_t dirs = 1;
  std::uint32_t concurrency = 4;
  std::uint32_t parallelism = 4;
};

/// One joined prediction/feedback observation from the serve path — the
/// raw material of a live refit: the planned transfer, the competing
/// load the caller reported, and the observed average rate. The retrain
/// subsystem (src/retrain) replays journalled EdgeSamples through
/// refit_edge() to rebuild a per-edge model from serving ground truth.
struct EdgeSample {
  PlannedTransfer transfer;
  features::ContentionFeatures load;
  double observed_mbps = 0.0;
};

/// A rate prediction with an empirical uncertainty band (the 10th and
/// 90th percentiles of the training-residual ratio applied to the point
/// estimate). Schedulers can plan against `low_mbps` for deadlines.
struct RateInterval {
  double low_mbps = 0.0;
  double expected_mbps = 0.0;
  double high_mbps = 0.0;
};

/// One explained prediction: the served rate plus the Saabas
/// decomposition of where it came from. Exactness contract:
/// `contributions` summed in ascending feature order plus `bias_mbps`
/// (added last) equals `raw_mbps` bit-exactly, and `rate_mbps` ==
/// max(raw_mbps, 0.01) is bit-identical to what predict_rates_mbps
/// serves for the same transfer. Contributions are in MB/s — each is the
/// summed shift in subtree expectation its feature's splits caused along
/// every tree's decision path — and `bias_mbps` is the ensemble's base
/// score plus the root expectations (what an average training row would
/// get), absorbing the few-ulp summation residual.
struct RateExplanation {
  double rate_mbps = 0.0;   ///< Served rate (clamped at 0.01 MB/s).
  double raw_mbps = 0.0;    ///< Unclamped model output = bias + sum.
  double bias_mbps = 0.0;   ///< Base + root expectations (+ residual).
  double low_mbps = 0.0;    ///< rate * ratio_p10 band, as in RateInterval.
  double high_mbps = 0.0;
  bool edge_model = false;  ///< Dedicated edge model vs. global fallback.
  /// Parallel arrays, in the serving model's feature order (15 per-edge
  /// features, +ROmax_src/RImax_dst on the global fallback).
  std::vector<std::string> feature_names;
  std::vector<double> contributions;
};

/// Historical-log-trained transfer rate predictor.
class TransferPredictor {
 public:
  struct Options {
    /// Per-edge models are trained for edges with at least this many
    /// transfers; others fall back to the global model.
    std::size_t min_edge_transfers = 100;
    /// Optional unknown-load filter applied to training data (0 = off).
    double load_threshold = 0.0;
    ml::GbtConfig gbt;
    std::uint64_t seed = 1234;
  };

  /// Plain-data view of one model's non-GBT state (serialisation helper).
  struct PersistedModel {
    std::vector<std::string> feature_names;
    std::vector<double> means;
    std::vector<double> sigmas;
    double ratio_p10 = 1.0;
    double ratio_p90 = 1.0;
  };

  TransferPredictor();
  explicit TransferPredictor(Options options);

  /// Train from a historical log. May be called again to refit.
  void fit(const logs::LogStore& log);

  /// Deep copy of a fitted predictor via a save()/load() round trip (the
  /// members are move-only, so persistence is the copy path). Used by the
  /// retrain worker to build a candidate off the hot path without
  /// touching the serving instance. Training-only options that do not
  /// persist (gbt config, seed) reset to defaults in the copy — callers
  /// that refit the clone pass their own GbtConfig. Requires fit().
  TransferPredictor clone() const;

  /// Refit (or create) the dedicated model for `edge` from raw serving
  /// samples. Builds the 15-column per-edge feature matrix, standardises
  /// it with freshly fitted moments, trains a GBT under `gbt` with the
  /// optional integer sample `weights` (the retrain worker's quantised
  /// recency decay; empty = unweighted), and recalibrates the residual
  /// interval. The global model and other edges are untouched. Requires
  /// fit() (or load()), samples.size() >= 2, finite observed rates > 0,
  /// and weights empty or parallel to samples.
  void refit_edge(const logs::EdgeKey& edge, std::span<const EdgeSample> samples,
                  std::span<const std::uint32_t> weights, const ml::GbtConfig& gbt);

  bool fitted() const { return fitted_; }

  /// True when a dedicated model exists for the edge.
  bool has_edge_model(const logs::EdgeKey& edge) const;

  /// Predict the average transfer rate in MB/s. `expected_load` carries the
  /// competing-load features the caller anticipates (default: idle).
  /// Requires fit() first.
  double predict_rate_mbps(
      const PlannedTransfer& transfer,
      const features::ContentionFeatures& expected_load = {}) const;

  /// Batch serving path: predict rates for many planned transfers at once.
  /// Transfers are grouped per serving model (edge or global fallback),
  /// standardised into one matrix per group, and pushed through the
  /// flattened batch-inference engine — bit-identical to calling
  /// predict_rate_mbps per transfer, in any grouping. `expected_loads` is
  /// either empty (all idle) or parallel to `transfers`. `pool` lets a
  /// caller that already owns workers (e.g. the serve micro-batcher) fan
  /// the flat kernel across them; results are bit-identical with or
  /// without it. Requires fit().
  std::vector<double> predict_rates_mbps(
      std::span<const PlannedTransfer> transfers,
      std::span<const features::ContentionFeatures> expected_loads = {},
      ThreadPool* pool = nullptr) const;

  /// Explained batch serving path: the same per-model grouping and
  /// standardisation as predict_rates_mbps, routed through the flat
  /// engine's Saabas attribution kernel. Each result's rate_mbps is
  /// bit-identical to the rate predict_rates_mbps would serve, and its
  /// contributions + bias reconstruct raw_mbps bit-exactly (see
  /// RateExplanation). Per-feature |contribution| values are recorded
  /// into `predictor.attribution.<feature>` histograms. Requires fit().
  std::vector<RateExplanation> explain_rates_mbps(
      std::span<const PlannedTransfer> transfers,
      std::span<const features::ContentionFeatures> expected_loads = {},
      ThreadPool* pool = nullptr) const;

  /// Point prediction plus an empirical 10th-90th percentile band.
  /// Requires fit().
  RateInterval predict_rate_interval(
      const PlannedTransfer& transfer,
      const features::ContentionFeatures& expected_load = {}) const;

  /// Predicted wall-clock duration in seconds (bytes / predicted rate).
  double estimate_duration_s(
      const PlannedTransfer& transfer,
      const features::ContentionFeatures& expected_load = {}) const;

  /// Name of the batch-inference kernel the serving path would run right
  /// now ("scalar" / "avx2" / "quantized"): the process-wide dispatch
  /// (XFL_KERNEL / --kernel / CPU detection) resolved against the global
  /// model's compiled ensemble. Surfaced in the serve startup log and the
  /// `stats` admin reply. Requires fit() (or load()).
  const char* serving_kernel() const;

  /// Feature importances of the model serving this edge (name, weight),
  /// most important first. Requires fit().
  std::vector<std::pair<std::string, double>> explain(
      const logs::EdgeKey& edge) const;

  /// Historical capability estimate for an endpoint, if it has history.
  const features::EndpointCapability* capability(
      endpoint::EndpointId endpoint) const;

  /// Persist the fitted predictor (per-edge + global models, scalers,
  /// capabilities) to a line-oriented text stream; load() restores a
  /// predictor that answers identically. Requires fit().
  void save(std::ostream& out) const;
  static TransferPredictor load(std::istream& in);

  /// File-based persistence with crash-safe replacement: save_file writes
  /// to `path + ".tmp.<pid>"`, fsyncs the temp file, atomically
  /// rename(2)s it into place, then fsyncs the parent directory — so a
  /// concurrent reader (e.g. the serve hot-reload watcher) sees either
  /// the old complete file or the new complete file, never a torn write,
  /// and a power loss right after return cannot roll back to a missing or
  /// zero-length model. Both throw std::runtime_error on I/O failure.
  void save_file(const std::string& path) const;
  static TransferPredictor load_file(const std::string& path);

 private:
  /// One serving model (per-edge or global). Its GradientBoostedTrees
  /// carries the compiled FlatEnsemble that answers queries — the
  /// per-edge compiled-model cache. The cache is derived state rebuilt at
  /// the end of every GBT fit() and load(), so a (re)fit or load of the
  /// predictor can never serve a stale compiled model.
  struct Model {
    ml::StandardScaler scaler;
    std::unique_ptr<ml::GradientBoostedTrees> boosted;
    std::vector<std::string> feature_names;
    /// Empirical training-residual ratio quantiles (actual / predicted).
    double ratio_p10 = 1.0;
    double ratio_p90 = 1.0;
  };

  static void calibrate_interval(Model& model, const ml::Matrix& x,
                                 const std::vector<double>& y);
  std::vector<double> feature_vector(
      const PlannedTransfer& transfer,
      const features::ContentionFeatures& expected_load,
      bool with_capabilities) const;
  const Model& model_for(const logs::EdgeKey& edge) const;

  Options options_;
  bool fitted_ = false;
  std::map<logs::EdgeKey, Model> edge_models_;
  Model global_model_;
  std::map<endpoint::EndpointId, features::EndpointCapability> capabilities_;
};

}  // namespace xfl::core
