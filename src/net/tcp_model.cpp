#include "net/tcp_model.hpp"

#include <cmath>

#include "common/contracts.hpp"

namespace xfl::net {

namespace {
// Effective ceiling used when the loss rate is exactly zero (clean path):
// large enough never to bind before NIC/link capacity does.
constexpr double kUnboundedBps = 1.0e12;
// Streams at which diminishing returns halve the marginal benefit.
constexpr double kStreamHalfPoint = 64.0;
}  // namespace

double mathis_throughput_Bps(const TcpConfig& cfg, double rtt_s, double loss_rate) {
  XFL_EXPECTS(rtt_s > 0.0);
  XFL_EXPECTS(loss_rate >= 0.0 && loss_rate < 1.0);
  if (loss_rate == 0.0) return kUnboundedBps;
  return cfg.mss_bytes / (rtt_s * std::sqrt(2.0 * loss_rate / 3.0));
}

double window_throughput_Bps(const TcpConfig& cfg, double rtt_s) {
  XFL_EXPECTS(rtt_s > 0.0);
  return cfg.max_window_bytes / rtt_s;
}

double single_stream_ceiling_Bps(const TcpConfig& cfg, double rtt_s,
                                 double loss_rate) {
  const double loss_bound = mathis_throughput_Bps(cfg, rtt_s, loss_rate);
  const double window_bound = window_throughput_Bps(cfg, rtt_s);
  return loss_bound < window_bound ? loss_bound : window_bound;
}

double parallel_stream_ceiling_Bps(const TcpConfig& cfg, std::uint32_t streams,
                                   double rtt_s, double loss_rate) {
  XFL_EXPECTS(streams >= 1);
  const double per_stream = single_stream_ceiling_Bps(cfg, rtt_s, loss_rate);
  const double n = static_cast<double>(streams);
  const double n_eff = n / (1.0 + n / kStreamHalfPoint);
  return per_stream * n_eff;
}

}  // namespace xfl::net
