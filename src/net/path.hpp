// Wide-area path model between two sites: round-trip time derived from the
// great-circle distance, a bottleneck capacity (the narrowest backbone or
// border link), and a residual packet-loss rate. The simulator treats each
// directed site pair as one shared "WAN" resource with these parameters.
#pragma once

#include <cstdint>

#include "net/site.hpp"
#include "net/tcp_model.hpp"

namespace xfl::net {

/// Parameters of one directed wide-area path.
struct WanPath {
  double rtt_s = 0.05;             ///< Round-trip time (seconds).
  double capacity_Bps = 1.25e9;    ///< Bottleneck link capacity (10 Gb/s default).
  double loss_rate = 1.0e-6;       ///< Residual segment-loss probability.
};

/// Defaults used when deriving paths from geometry.
struct PathDefaults {
  /// 10 Gb/s R&E backbone share less ~6% TCP/IP framing overhead: a clean
  /// memory-to-memory GridFTP run peaks near 9.4 Gb/s (Table 1's MM column).
  double capacity_Bps = 1.175e9;
  double base_loss = 5.0e-7;       ///< Loss floor on clean paths.
  /// Loss grows with path length (more hops); calibrated so that a
  /// ~7,000 km intercontinental path yields MM ~8.9-9.0 Gb/s with 16
  /// parallel streams, as the paper measured for the CERN edges.
  double loss_per_1000km = 1.2e-7;
  double queueing_rtt_s = 0.002;   ///< Stack + queueing additive RTT.
};

/// Derive a WanPath between two sites from catalogue geometry: RTT is the
/// propagation lower bound plus a queueing term; loss grows mildly with
/// distance (intercontinental paths traverse more devices — the paper's
/// Fig. 6 shows a clear intra- vs intercontinental split).
WanPath derive_path(const SiteCatalog& sites, SiteId src, SiteId dst,
                    const PathDefaults& defaults = {});

}  // namespace xfl::net
