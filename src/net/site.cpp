#include "net/site.hpp"

#include "common/contracts.hpp"

namespace xfl::net {

SiteId SiteCatalog::add(Site site) {
  sites_.push_back(std::move(site));
  return static_cast<SiteId>(sites_.size() - 1);
}

const Site& SiteCatalog::operator[](SiteId id) const {
  XFL_EXPECTS(id < sites_.size());
  return sites_[id];
}

bool SiteCatalog::find(const std::string& name, SiteId& out) const {
  for (std::size_t i = 0; i < sites_.size(); ++i) {
    if (sites_[i].name == name) {
      out = static_cast<SiteId>(i);
      return true;
    }
  }
  return false;
}

double SiteCatalog::distance_km(SiteId a, SiteId b) const {
  XFL_EXPECTS(a < sites_.size() && b < sites_.size());
  return great_circle_km(sites_[a].location, sites_[b].location);
}

SiteCatalog SiteCatalog::with_known_facilities() {
  SiteCatalog catalog;
  // ESnet testbed sites (Table 1).
  catalog.add({"ANL", {41.708, -87.983}});       // Argonne, IL
  catalog.add({"BNL", {40.873, -72.872}});       // Brookhaven, NY
  catalog.add({"CERN", {46.234, 6.053}});        // Geneva, CH
  catalog.add({"LBL", {37.876, -122.251}});      // Berkeley, CA
  // Production facilities from Figs. 4 and 8.
  catalog.add({"NERSC", {37.876, -122.253}});    // Berkeley, CA
  catalog.add({"ALCF", {41.708, -87.981}});      // Argonne, IL
  catalog.add({"TACC", {30.390, -97.726}});      // Austin, TX
  catalog.add({"SDSC", {32.884, -117.239}});     // San Diego, CA
  catalog.add({"JLAB", {37.098, -76.482}});      // Newport News, VA
  catalog.add({"UCAR", {40.031, -105.244}});     // Boulder, CO
  catalog.add({"Colorado", {40.007, -105.266}}); // Boulder, CO
  catalog.add({"ORNL", {35.931, -84.310}});      // Oak Ridge, TN
  catalog.add({"PNNL", {46.345, -119.279}});     // Richland, WA
  catalog.add({"FNAL", {41.840, -88.257}});      // Batavia, IL
  catalog.add({"NCSA", {40.115, -88.224}});      // Urbana, IL
  return catalog;
}

}  // namespace xfl::net
