// Steady-state TCP throughput model used to derive per-flow rate ceilings
// in the fluid simulator.
//
// A single TCP stream over a long fat pipe is limited by the smaller of the
// window bound (wnd / RTT) and the loss bound (the Mathis et al. formula
// MSS / (RTT * sqrt(2p/3))). GridFTP's parallelism parameter P opens P
// streams per process pair precisely to multiply these bounds (§4.1, §6 of
// the paper); aggregate parallel-stream throughput scales ~linearly in the
// stream count until it saturates the path, with a mild diminishing-returns
// correction for self-induced congestion.
#pragma once

#include <cstdint>

namespace xfl::net {

/// Static parameters of a TCP stack/stream configuration.
struct TcpConfig {
  double mss_bytes = 8948.0;        ///< Jumbo-frame MSS typical of DTNs.
  /// Autotuned socket buffer ceiling. DTNs are tuned for long fat pipes
  /// (fasterdata-style 64 MB buffers); anything small would window-limit
  /// every intercontinental stream regardless of loss.
  double max_window_bytes = 6.4e7;
  double syn_overhead_s = 0.5;      ///< Connection setup + slow-start cost.
};

/// Loss-bound throughput of one stream (Mathis): MSS / (RTT * sqrt(2p/3)).
/// p == 0 yields infinity-like ceiling represented by a very large value.
/// Preconditions: rtt_s > 0, loss_rate in [0, 1).
double mathis_throughput_Bps(const TcpConfig& cfg, double rtt_s, double loss_rate);

/// Window-bound throughput of one stream: max_window / RTT.
/// Precondition: rtt_s > 0.
double window_throughput_Bps(const TcpConfig& cfg, double rtt_s);

/// Ceiling for a single stream: min(window bound, loss bound).
double single_stream_ceiling_Bps(const TcpConfig& cfg, double rtt_s, double loss_rate);

/// Aggregate ceiling for `streams` parallel streams on one path. Scales the
/// single-stream ceiling by an effective stream count with diminishing
/// returns: n_eff = n / (1 + n / n_half), calibrated so that a handful of
/// streams recovers most of the path on lossy links while very large stream
/// counts stop helping (paper: "more TCP streams do not always contribute
/// to higher aggregate transfer rate", §5.1).
/// Preconditions: streams >= 1, rtt_s > 0, loss_rate in [0, 1).
double parallel_stream_ceiling_Bps(const TcpConfig& cfg, std::uint32_t streams,
                                   double rtt_s, double loss_rate);

}  // namespace xfl::net
