// Site catalogue. A "site" is a physical location hosting one or more
// endpoints (the paper groups endpoints by location in §3.2: 2,496 edges
// collapse to 469 site pairs). Real coordinates are included for the
// facilities named in the paper so that great-circle edge lengths (Table 3,
// Fig. 6) are realistic; synthetic sites can be added for scale.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/geo.hpp"

namespace xfl::net {

using SiteId = std::uint32_t;

/// A physical location hosting endpoints.
struct Site {
  std::string name;
  GeoPoint location;
};

/// An append-only catalogue of sites with name lookup.
class SiteCatalog {
 public:
  /// Add a site; returns its id. Duplicate names are allowed but lookup
  /// returns the first match.
  SiteId add(Site site);

  const Site& operator[](SiteId id) const;
  std::size_t size() const { return sites_.size(); }

  /// Find a site id by exact name; returns true and sets `out` on success.
  bool find(const std::string& name, SiteId& out) const;

  /// Great-circle distance between two catalogued sites, in km.
  double distance_km(SiteId a, SiteId b) const;

  /// Catalogue preloaded with the facilities named in the paper: the four
  /// ESnet testbed sites (ANL, BNL, LBL, CERN) and the production sites
  /// from Figs. 4 and 8 (NERSC, TACC, SDSC, JLAB, UCAR, Colorado, ALCF).
  static SiteCatalog with_known_facilities();

 private:
  std::vector<Site> sites_;
};

/// Names of the four ESnet testbed sites, in the order used by Table 1.
inline constexpr const char* kEsnetSites[4] = {"ANL", "BNL", "CERN", "LBL"};

}  // namespace xfl::net
