#include "net/path.hpp"

#include "common/contracts.hpp"
#include "common/geo.hpp"

namespace xfl::net {

WanPath derive_path(const SiteCatalog& sites, SiteId src, SiteId dst,
                    const PathDefaults& defaults) {
  const double km = sites.distance_km(src, dst);
  WanPath path;
  path.rtt_s = rtt_lower_bound_s(km) + defaults.queueing_rtt_s;
  path.capacity_Bps = defaults.capacity_Bps;
  path.loss_rate = defaults.base_loss + defaults.loss_per_1000km * (km / 1000.0);
  XFL_ENSURES(path.rtt_s > 0.0 && path.loss_rate < 1.0);
  return path;
}

}  // namespace xfl::net
