#include "serve/batcher.hpp"

#include <exception>
#include <utility>

#include "common/contracts.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/protocol.hpp"

namespace xfl::serve {

namespace {

struct BatcherMetrics {
  obs::Counter& batches = obs::counter("serve.batch.count");
  obs::Counter& rows = obs::counter("serve.batch.rows");
  obs::Counter& timeouts = obs::counter("serve.request.timeout");
  obs::Counter& failures = obs::counter("serve.batch.failures");
  obs::Gauge& depth = obs::gauge("serve.queue.depth");
  obs::Histogram& latency =
      obs::histogram("serve.batch.latency_us", obs::default_latency_bounds_us());
  obs::Histogram& size = obs::histogram(
      "serve.batch.size",
      std::vector<double>{1, 2, 4, 8, 16, 32, 64, 128, 256});
  // Stage timers, fine log-spaced buckets so exported quantiles are
  // meaningful: per-request queue wait, then the three batch stages.
  obs::Histogram& queue_wait = obs::histogram(
      "serve.request.queue_wait_us", obs::quantile_latency_bounds_us());
  obs::Histogram& assemble = obs::histogram(
      "serve.batch.assemble_us", obs::quantile_latency_bounds_us());
  obs::Histogram& predict = obs::histogram(
      "serve.batch.predict_us", obs::quantile_latency_bounds_us());
  obs::Histogram& respond = obs::histogram(
      "serve.batch.respond_us", obs::quantile_latency_bounds_us());
};

BatcherMetrics& batcher_metrics() {
  static BatcherMetrics metrics;
  return metrics;
}

void deliver(const BatchItem& item, const PredictOutcome& outcome) {
  if (!item.done) return;
  try {
    item.done(outcome);
  } catch (const std::exception& error) {
    // A callback failure (e.g. a dead socket) must not take the batch
    // worker down with it.
    XFL_LOG(warn) << "serve batch callback threw"
                  << obs::kv("what", error.what());
  }
}

}  // namespace

MicroBatcher::MicroBatcher(ModelHost& host, Options options)
    : host_(host), options_(options) {
  XFL_EXPECTS(options_.max_batch >= 1 && options_.queue_capacity >= 1);
  if (options_.predict_threads > 1)
    pool_ = std::make_unique<ThreadPool>(options_.predict_threads);
  worker_ = std::thread([this] { worker_loop(); });
}

MicroBatcher::~MicroBatcher() { drain_and_stop(); }

MicroBatcher::Admission MicroBatcher::submit(BatchItem item) {
  {
    std::lock_guard lock(mutex_);
    if (stopping_) return Admission::kShuttingDown;
    if (queue_.size() >= options_.queue_capacity)
      return Admission::kOverloaded;
    item.enqueue_us = obs::monotonic_us();
    queue_.push_back(std::move(item));
    batcher_metrics().depth.set(static_cast<double>(queue_.size()));
  }
  cv_.notify_all();
  return Admission::kAccepted;
}

void MicroBatcher::pause() {
  std::lock_guard lock(mutex_);
  paused_ = true;
}

void MicroBatcher::resume() {
  {
    std::lock_guard lock(mutex_);
    paused_ = false;
  }
  cv_.notify_all();
}

void MicroBatcher::drain_and_stop() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
    paused_ = false;  // Drain must terminate even if someone paused us.
  }
  cv_.notify_all();
  // A second mutex serialises concurrent stop callers around the join.
  std::lock_guard stop_lock(stop_mutex_);
  if (worker_.joinable()) worker_.join();
}

std::size_t MicroBatcher::queue_depth() const {
  std::lock_guard lock(mutex_);
  return queue_.size();
}

void MicroBatcher::worker_loop() {
  std::unique_lock lock(mutex_);
  for (;;) {
    cv_.wait(lock, [this] {
      return stopping_ || (!paused_ && !queue_.empty());
    });
    if (queue_.empty()) {
      if (stopping_) return;
      continue;
    }
    std::vector<BatchItem> batch;
    const std::size_t take = std::min(options_.max_batch, queue_.size());
    batch.reserve(take);
    for (std::size_t i = 0; i < take; ++i) {
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    batcher_metrics().depth.set(static_cast<double>(queue_.size()));
    lock.unlock();
    process(batch);
    lock.lock();
  }
}

void MicroBatcher::process(std::vector<BatchItem>& batch) {
  XFL_SPAN("serve.batch");
  auto& metrics = batcher_metrics();
  const std::uint64_t start_us = obs::monotonic_us();

  // Stage 1: assembly — per-request queue wait, deadline triage, and
  // packing the surviving rows into the flat-kernel input vectors.
  const ModelHost::Snapshot snapshot = host_.snapshot();
  std::vector<const BatchItem*> live;
  std::vector<core::PlannedTransfer> transfers;
  std::vector<features::ContentionFeatures> loads;
  {
    XFL_SPAN("serve.batch.assemble");
    live.reserve(batch.size());
    for (const auto& item : batch) {
      if (item.enqueue_us != 0)
        metrics.queue_wait.record(
            static_cast<double>(start_us - item.enqueue_us));
      // Items whose deadline passed while queued time out here — the cost
      // of predicting them would only push every later request further
      // past its own deadline.
      if (item.deadline_us != 0 && start_us > item.deadline_us) {
        PredictOutcome timeout;
        timeout.error = kErrTimeout;
        timeout.message = "deadline expired before batch execution";
        metrics.timeouts.add(1);
        deliver(item, timeout);
      } else {
        live.push_back(&item);
      }
    }
    transfers.reserve(live.size());
    loads.reserve(live.size());
    for (const BatchItem* item : live) {
      transfers.push_back(item->transfer);
      loads.push_back(item->load);
    }
    metrics.assemble.record(static_cast<double>(obs::monotonic_us() - start_us));
  }
  if (live.empty()) return;

  // Stage 2: one flat-kernel predict call for the whole batch.
  const std::uint64_t predict_start_us = obs::monotonic_us();
  std::vector<double> rates;
  try {
    XFL_SPAN("serve.batch.predict");
    rates = snapshot.predictor->predict_rates_mbps(transfers, loads,
                                                   pool_.get());
    metrics.predict.record(
        static_cast<double>(obs::monotonic_us() - predict_start_us));
  } catch (const std::exception& error) {
    metrics.failures.add(1);
    XFL_LOG(error) << "serve batch predict failed"
                   << obs::kv("rows", live.size())
                   << obs::kv("what", error.what());
    PredictOutcome failed;
    failed.error = kErrInternal;
    failed.message = error.what();
    for (const BatchItem* item : live) deliver(*item, failed);
    return;
  }

  // Batch accounting is committed BEFORE the replies go out so a client
  // that reads its answer and immediately asks for `stats` sees this
  // batch's rows counted (only the whole-batch latency, which includes
  // the respond stage itself, is recorded after).
  metrics.batches.add(1);
  metrics.rows.add(live.size());
  metrics.size.record(static_cast<double>(live.size()));

  // Stage 3: serialise + write each reply (runs the done callbacks).
  {
    XFL_SPAN("serve.batch.respond");
    const std::uint64_t respond_start_us = obs::monotonic_us();
    for (std::size_t i = 0; i < live.size(); ++i) {
      PredictOutcome outcome;
      outcome.ok = true;
      outcome.rate_mbps = rates[i];
      outcome.edge_model = snapshot.predictor->has_edge_model(
          {live[i]->transfer.src, live[i]->transfer.dst});
      outcome.model_version = snapshot.version;
      deliver(*live[i], outcome);
    }
    metrics.respond.record(
        static_cast<double>(obs::monotonic_us() - respond_start_us));
  }

  metrics.latency.record(static_cast<double>(obs::monotonic_us() - start_us));
}

}  // namespace xfl::serve
