#include "serve/batcher.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <utility>

#include "common/contracts.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/protocol.hpp"

namespace xfl::serve {

namespace {

struct BatcherMetrics {
  obs::Counter& batches = obs::counter("serve.batch.count");
  obs::Counter& rows = obs::counter("serve.batch.rows");
  obs::Counter& explain_rows = obs::counter("serve.batch.explain_rows");
  obs::Counter& timeouts = obs::counter("serve.request.timeout");
  obs::Counter& failures = obs::counter("serve.batch.failures");
  obs::Counter& steals = obs::counter("serve.batch.steals");
  obs::Gauge& depth = obs::gauge("serve.queue.depth");
  obs::Histogram& latency =
      obs::histogram("serve.batch.latency_us", obs::default_latency_bounds_us());
  obs::Histogram& size = obs::histogram(
      "serve.batch.size",
      std::vector<double>{1, 2, 4, 8, 16, 32, 64, 128, 256});
  // Stage timers, fine log-spaced buckets so exported quantiles are
  // meaningful: per-request queue wait, then the three batch stages.
  obs::Histogram& queue_wait = obs::histogram(
      "serve.request.queue_wait_us", obs::quantile_latency_bounds_us());
  obs::Histogram& assemble = obs::histogram(
      "serve.batch.assemble_us", obs::quantile_latency_bounds_us());
  obs::Histogram& predict = obs::histogram(
      "serve.batch.predict_us", obs::quantile_latency_bounds_us());
  obs::Histogram& respond = obs::histogram(
      "serve.batch.respond_us", obs::quantile_latency_bounds_us());
};

BatcherMetrics& batcher_metrics() {
  static BatcherMetrics metrics;
  return metrics;
}

void deliver(const BatchItem& item, const PredictOutcome& outcome) {
  if (!item.done) return;
  try {
    item.done(outcome);
  } catch (const std::exception& error) {
    // A callback failure (e.g. a dead socket) must not take the batch
    // worker down with it.
    XFL_LOG(warn) << "serve batch callback threw"
                  << obs::kv("what", error.what());
  }
}

}  // namespace

MicroBatcher::MicroBatcher(ModelHost& host, Options options)
    : host_(host), options_(options) {
  XFL_EXPECTS(options_.max_batch >= 1 && options_.queue_capacity >= 1 &&
              options_.shards >= 1);
  shards_.reserve(options_.shards);
  for (std::size_t i = 0; i < options_.shards; ++i) {
    auto shard = std::make_unique<Shard>();
    if (options_.predict_threads > 1)
      shard->pool = std::make_unique<ThreadPool>(options_.predict_threads);
    shards_.push_back(std::move(shard));
  }
  for (std::size_t i = 0; i < shards_.size(); ++i)
    shards_[i]->worker = std::thread([this, i] { worker_loop(i); });
}

MicroBatcher::~MicroBatcher() { drain_and_stop(); }

MicroBatcher::Admission MicroBatcher::submit(BatchItem item,
                                             std::size_t shard_index) {
  Shard& shard = *shards_[shard_index % shards_.size()];
  bool imbalance = false;
  {
    std::lock_guard lock(shard.mutex);
    if (stopping_.load(std::memory_order_relaxed))
      return Admission::kShuttingDown;
    if (shard.queue.size() >= options_.queue_capacity)
      return Admission::kOverloaded;
    item.enqueue_us = obs::monotonic_us();
    shard.queue.push_back(std::move(item));
    shard.size.store(shard.queue.size(), std::memory_order_relaxed);
    imbalance = shard.queue.size() > options_.max_batch;
    batcher_metrics().depth.set(static_cast<double>(
        total_depth_.fetch_add(1, std::memory_order_relaxed) + 1));
  }
  shard.cv.notify_one();
  // A backlog deeper than one batch is the steal signal: wake every idle
  // sibling so it can take half. Cheap — only fired past the threshold.
  if (imbalance && shards_.size() > 1) notify_all_shards();
  return Admission::kAccepted;
}

std::size_t MicroBatcher::submit_burst(std::vector<BatchItem>& items,
                                       std::size_t shard_index,
                                       Admission& status) {
  status = Admission::kAccepted;
  if (items.empty()) return 0;
  Shard& shard = *shards_[shard_index % shards_.size()];
  std::size_t admitted = 0;
  bool imbalance = false;
  {
    std::lock_guard lock(shard.mutex);
    if (stopping_.load(std::memory_order_relaxed)) {
      status = Admission::kShuttingDown;
      return 0;
    }
    const std::size_t room =
        options_.queue_capacity -
        std::min(options_.queue_capacity, shard.queue.size());
    admitted = std::min(room, items.size());
    const std::uint64_t now_us = obs::monotonic_us();
    for (std::size_t i = 0; i < admitted; ++i) {
      items[i].enqueue_us = now_us;
      shard.queue.push_back(std::move(items[i]));
    }
    shard.size.store(shard.queue.size(), std::memory_order_relaxed);
    imbalance = shard.queue.size() > options_.max_batch;
    if (admitted != 0)
      batcher_metrics().depth.set(static_cast<double>(
          total_depth_.fetch_add(admitted, std::memory_order_relaxed) +
          admitted));
    if (admitted != items.size()) status = Admission::kOverloaded;
  }
  if (admitted != 0) shard.cv.notify_one();
  if (imbalance && shards_.size() > 1) notify_all_shards();
  return admitted;
}

void MicroBatcher::notify_all_shards() {
  for (auto& shard : shards_) {
    // Taking the mutex (and dropping it) before notify pairs the flag
    // write with the predicate check — a worker mid-check cannot miss it.
    { std::lock_guard lock(shard->mutex); }
    shard->cv.notify_all();
  }
}

void MicroBatcher::pause() {
  paused_.store(true);
  notify_all_shards();
}

void MicroBatcher::resume() {
  paused_.store(false);
  notify_all_shards();
}

void MicroBatcher::drain_and_stop() {
  stopping_.store(true);
  paused_.store(false);  // Drain must terminate even if someone paused us.
  notify_all_shards();
  // A second mutex serialises concurrent stop callers around the joins.
  std::lock_guard stop_lock(stop_mutex_);
  for (auto& shard : shards_)
    if (shard->worker.joinable()) shard->worker.join();
}

std::size_t MicroBatcher::queue_depth() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard->mutex);
    total += shard->queue.size();
  }
  return total;
}

bool MicroBatcher::try_steal(std::size_t thief,
                             std::vector<BatchItem>& batch) {
  // Rank siblings by their mirrored sizes without locking; lock only the
  // winner. The race (size changed under us) is benign — stealing is an
  // opportunistic rebalance, not a correctness mechanism.
  std::size_t victim = thief;
  std::size_t deepest = 1;  // Require >= 2 queued: one item is not imbalance.
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (i == thief) continue;
    const std::size_t size = shards_[i]->size.load(std::memory_order_relaxed);
    if (size > deepest) {
      deepest = size;
      victim = i;
    }
  }
  if (victim == thief) return false;
  Shard& shard = *shards_[victim];
  std::lock_guard lock(shard.mutex);
  if (shard.queue.size() < 2) return false;
  // Take the older half from the front: the thief inherits the requests
  // that have waited longest, which is exactly what deadline fairness
  // wants from a rebalance.
  const std::size_t take =
      std::min(options_.max_batch, shard.queue.size() / 2);
  batch.reserve(batch.size() + take);
  for (std::size_t i = 0; i < take; ++i) {
    batch.push_back(std::move(shard.queue.front()));
    shard.queue.pop_front();
  }
  shard.size.store(shard.queue.size(), std::memory_order_relaxed);
  steals_.fetch_add(take, std::memory_order_relaxed);
  batcher_metrics().steals.add(take);
  return true;
}

void MicroBatcher::worker_loop(std::size_t index) {
  Shard& own = *shards_[index];
  std::vector<BatchItem> batch;
  for (;;) {
    batch.clear();
    {
      std::unique_lock lock(own.mutex);
      if (!paused_.load(std::memory_order_relaxed) && !own.queue.empty()) {
        const std::size_t take =
            std::min(options_.max_batch, own.queue.size());
        batch.reserve(take);
        for (std::size_t i = 0; i < take; ++i) {
          batch.push_back(std::move(own.queue.front()));
          own.queue.pop_front();
        }
        own.size.store(own.queue.size(), std::memory_order_relaxed);
      }
    }
    // Empty-handed and idle: rebalance from the deepest sibling. Never
    // during drain (owners answer their own queues, so shutdown has a
    // clean per-shard invariant) and never while paused.
    if (batch.empty() && shards_.size() > 1 &&
        !paused_.load(std::memory_order_relaxed) &&
        !stopping_.load(std::memory_order_relaxed))
      try_steal(index, batch);

    if (!batch.empty()) {
      batcher_metrics().depth.set(static_cast<double>(
          total_depth_.fetch_sub(batch.size(), std::memory_order_relaxed) -
          batch.size()));
      process(batch, own.pool.get());
      continue;
    }

    std::unique_lock lock(own.mutex);
    if (stopping_.load(std::memory_order_relaxed)) {
      if (own.queue.empty()) return;
      continue;  // Refilled between unlock and here; drain it first.
    }
    const auto runnable = [this, &own] {
      return stopping_.load(std::memory_order_relaxed) ||
             (!paused_.load(std::memory_order_relaxed) &&
              !own.queue.empty());
    };
    if (shards_.size() > 1) {
      // Multi-shard workers also wake on a timer so a steal opportunity
      // that raced the imbalance notification is picked up within 50ms.
      own.cv.wait_for(lock, std::chrono::milliseconds(50), runnable);
    } else {
      own.cv.wait(lock, runnable);
    }
  }
}

void MicroBatcher::process(std::vector<BatchItem>& batch, ThreadPool* pool) {
  XFL_SPAN("serve.batch");
  auto& metrics = batcher_metrics();
  const std::uint64_t start_us = obs::monotonic_us();

  // Cork the batch: every deliver() below (timeouts included) runs
  // between hook(true) and hook(false), so the server can coalesce all
  // of a connection's replies into one flush. The guard covers the
  // early-return paths.
  struct BatchHookGuard {
    const std::function<void(bool)>& hook;
    explicit BatchHookGuard(const std::function<void(bool)>& hook)
        : hook(hook) {
      if (hook) hook(true);
    }
    ~BatchHookGuard() {
      if (hook) hook(false);
    }
  } hook_guard(options_.batch_hook);

  // Stage 1: assembly — per-request queue wait, deadline triage, and
  // packing the surviving rows into the flat-kernel input vectors.
  const ModelHost::Snapshot snapshot = host_.snapshot();
  std::vector<const BatchItem*> live;
  std::vector<core::PlannedTransfer> transfers;
  std::vector<features::ContentionFeatures> loads;
  {
    XFL_SPAN("serve.batch.assemble");
    live.reserve(batch.size());
    for (const auto& item : batch) {
      if (item.enqueue_us != 0)
        metrics.queue_wait.record(
            static_cast<double>(start_us - item.enqueue_us));
      // Items whose deadline passed while queued time out here — the cost
      // of predicting them would only push every later request further
      // past its own deadline.
      if (item.deadline_us != 0 && start_us > item.deadline_us) {
        PredictOutcome timeout;
        timeout.error = kErrTimeout;
        timeout.message = "deadline expired before batch execution";
        metrics.timeouts.add(1);
        deliver(item, timeout);
      } else {
        live.push_back(&item);
      }
    }
    transfers.reserve(live.size());
    loads.reserve(live.size());
    for (const BatchItem* item : live) {
      transfers.push_back(item->transfer);
      loads.push_back(item->load);
    }
    metrics.assemble.record(static_cast<double>(obs::monotonic_us() - start_us));
  }
  if (live.empty()) return;

  // Stage 2: one flat-kernel call per partition. Plain rows keep the
  // single predict_rates_mbps call; explain rows go through the
  // attribution kernel (whose served rates are bit-identical), so a
  // batch mixing both costs one extra kernel call, not one per row.
  std::vector<std::size_t> explain_idx;
  for (std::size_t i = 0; i < live.size(); ++i)
    if (live[i]->explain) explain_idx.push_back(i);
  const std::uint64_t predict_start_us = obs::monotonic_us();
  std::vector<double> rates;
  std::vector<core::RateExplanation> explanations;
  try {
    XFL_SPAN("serve.batch.predict");
    if (explain_idx.empty()) {
      rates = snapshot.predictor->predict_rates_mbps(transfers, loads, pool);
    } else {
      rates.assign(live.size(), 0.0);
      std::vector<core::PlannedTransfer> part_transfers;
      std::vector<features::ContentionFeatures> part_loads;
      if (explain_idx.size() < live.size()) {
        part_transfers.reserve(live.size() - explain_idx.size());
        part_loads.reserve(live.size() - explain_idx.size());
        std::vector<std::size_t> plain_idx;
        plain_idx.reserve(live.size() - explain_idx.size());
        for (std::size_t i = 0; i < live.size(); ++i) {
          if (live[i]->explain) continue;
          plain_idx.push_back(i);
          part_transfers.push_back(transfers[i]);
          part_loads.push_back(loads[i]);
        }
        const auto plain_rates = snapshot.predictor->predict_rates_mbps(
            part_transfers, part_loads, pool);
        for (std::size_t k = 0; k < plain_idx.size(); ++k)
          rates[plain_idx[k]] = plain_rates[k];
      }
      part_transfers.clear();
      part_loads.clear();
      part_transfers.reserve(explain_idx.size());
      part_loads.reserve(explain_idx.size());
      for (const std::size_t i : explain_idx) {
        part_transfers.push_back(transfers[i]);
        part_loads.push_back(loads[i]);
      }
      explanations = snapshot.predictor->explain_rates_mbps(
          part_transfers, part_loads, pool);
      for (std::size_t k = 0; k < explain_idx.size(); ++k)
        rates[explain_idx[k]] = explanations[k].rate_mbps;
      metrics.explain_rows.add(explain_idx.size());
    }
    metrics.predict.record(
        static_cast<double>(obs::monotonic_us() - predict_start_us));
  } catch (const std::exception& error) {
    metrics.failures.add(1);
    XFL_LOG(error) << "serve batch predict failed"
                   << obs::kv("rows", live.size())
                   << obs::kv("what", error.what());
    PredictOutcome failed;
    failed.error = kErrInternal;
    failed.message = error.what();
    for (const BatchItem* item : live) deliver(*item, failed);
    return;
  }

  // Batch accounting is committed BEFORE the replies go out so a client
  // that reads its answer and immediately asks for `stats` sees this
  // batch's rows counted (only the whole-batch latency, which includes
  // the respond stage itself, is recorded after).
  metrics.batches.add(1);
  metrics.rows.add(live.size());
  metrics.size.record(static_cast<double>(live.size()));

  // Stage 3: serialise + write each reply (runs the done callbacks).
  {
    XFL_SPAN("serve.batch.respond");
    const std::uint64_t respond_start_us = obs::monotonic_us();
    std::size_t next_explanation = 0;
    for (std::size_t i = 0; i < live.size(); ++i) {
      PredictOutcome outcome;
      outcome.ok = true;
      outcome.rate_mbps = rates[i];
      outcome.edge_model = snapshot.predictor->has_edge_model(
          {live[i]->transfer.src, live[i]->transfer.dst});
      outcome.model_version = snapshot.version;
      if (live[i]->explain) {
        // explain_idx is ascending, so explanations drain in live order.
        outcome.explained = true;
        outcome.explanation = std::move(explanations[next_explanation++]);
      }
      deliver(*live[i], outcome);
    }
    metrics.respond.record(
        static_cast<double>(obs::monotonic_us() - respond_start_us));
  }

  metrics.latency.record(static_cast<double>(obs::monotonic_us() - start_us));
}

}  // namespace xfl::serve
