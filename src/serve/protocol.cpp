#include "serve/protocol.hpp"

#include <cmath>
#include <stdexcept>

namespace xfl::serve {

namespace {

/// Thrown internally to turn field-level validation failures into one
/// kBad frame; never escapes parse_frame.
struct FrameError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

[[noreturn]] void reject(const std::string& what) { throw FrameError(what); }

std::string extract_id(const JsonValue& root) {
  const JsonValue* id = root.find("id");
  if (id == nullptr) return {};
  if (id->is_string()) return id->string;
  if (id->is_number()) return json_number(id->number);
  reject("'id' must be a string or number");
}

double require_number(const JsonValue& object, const std::string& key) {
  const JsonValue* v = object.find(key);
  if (v == nullptr) reject("missing required field '" + key + "'");
  if (!v->is_number()) reject("field '" + key + "' must be a number");
  return v->number;
}

/// Optional non-negative integral field with a default and an upper cap.
std::uint64_t integral_or(const JsonValue& object, const std::string& key,
                          std::uint64_t fallback, std::uint64_t min_value,
                          std::uint64_t max_value) {
  const JsonValue* v = object.find(key);
  if (v == nullptr) return fallback;
  if (!v->is_number()) reject("field '" + key + "' must be a number");
  const double d = v->number;
  if (!(d >= 0.0) || d != std::floor(d) || d > 9.007199254740992e15)
    reject("field '" + key + "' must be a non-negative integer");
  const auto n = static_cast<std::uint64_t>(d);
  if (n < min_value || n > max_value)
    reject("field '" + key + "' out of range");
  return n;
}

features::ContentionFeatures parse_load(const JsonValue& load) {
  if (!load.is_object()) reject("'load' must be an object");
  features::ContentionFeatures features;
  for (const auto& [key, value] : load.object) {
    if (!value.is_number()) reject("load field '" + key + "' must be a number");
    double* slot = nullptr;
    if (key == "k_sout") slot = &features.k_sout;
    else if (key == "k_sin") slot = &features.k_sin;
    else if (key == "k_dout") slot = &features.k_dout;
    else if (key == "k_din") slot = &features.k_din;
    else if (key == "g_src") slot = &features.g_src;
    else if (key == "g_dst") slot = &features.g_dst;
    else if (key == "s_sout") slot = &features.s_sout;
    else if (key == "s_sin") slot = &features.s_sin;
    else if (key == "s_dout") slot = &features.s_dout;
    else if (key == "s_din") slot = &features.s_din;
    else reject("unknown load field '" + key + "'");
    if (!std::isfinite(value.number)) reject("load field '" + key + "' must be finite");
    *slot = value.number;
  }
  return features;
}

Frame parse_admin(const JsonValue& root, std::string id) {
  const JsonValue* cmd = root.find("cmd");
  if (!cmd->is_string()) reject("'cmd' must be a string");
  Frame frame;
  frame.kind = Frame::Kind::kAdmin;
  frame.id = id;
  frame.admin.id = std::move(id);
  frame.admin.cmd = cmd->string;
  bool saw_registry = false;
  for (const auto& [key, value] : root.object) {
    if (key == "cmd" || key == "id") continue;
    if (key == "path") {
      if (!value.is_string()) reject("'path' must be a string");
      frame.admin.path = value.string;
      continue;
    }
    if (key == "registry") {
      if (!value.is_bool()) reject("'registry' must be a boolean");
      frame.admin.registry = value.boolean;
      saw_registry = true;
      continue;
    }
    reject("unknown field '" + key + "'");
  }
  if (frame.admin.cmd != "ping" && frame.admin.cmd != "stats" &&
      frame.admin.cmd != "reload")
    reject("unknown cmd '" + frame.admin.cmd + "'");
  if (!frame.admin.path.empty() && frame.admin.cmd != "reload")
    reject("'path' is only valid with cmd 'reload'");
  if (saw_registry && frame.admin.cmd != "stats")
    reject("'registry' is only valid with cmd 'stats'");
  return frame;
}

Frame parse_feedback(const JsonValue& root, std::string id) {
  Frame frame;
  frame.kind = Frame::Kind::kFeedback;
  frame.id = id;
  frame.feedback.id = std::move(id);
  for (const auto& [key, value] : root.object) {
    (void)value;
    if (key != "id" && key != "feedback" && key != "observed_mbps")
      reject("unknown field '" + key + "'");
  }
  const JsonValue* trace = root.find("feedback");
  if (!trace->is_string()) reject("'feedback' must be a trace-id string");
  if (!parse_trace_id(trace->string, frame.feedback.trace_id))
    reject("'feedback' must look like \"t<number>\"");
  frame.feedback.observed_mbps = require_number(root, "observed_mbps");
  if (!std::isfinite(frame.feedback.observed_mbps) ||
      !(frame.feedback.observed_mbps > 0.0))
    reject("'observed_mbps' must be finite and positive");
  return frame;
}

Frame parse_predict(const JsonValue& root, std::string id) {
  Frame frame;
  frame.kind = Frame::Kind::kPredict;
  frame.id = id;
  frame.predict.id = std::move(id);

  for (const auto& [key, value] : root.object) {
    (void)value;
    if (key != "id" && key != "src" && key != "dst" && key != "bytes" &&
        key != "files" && key != "dirs" && key != "concurrency" &&
        key != "parallelism" && key != "deadline_ms" && key != "load")
      reject("unknown field '" + key + "'");
  }

  auto& transfer = frame.predict.transfer;
  transfer.src = static_cast<endpoint::EndpointId>(
      integral_or(root, "src", 0, 0, 1u << 30));
  if (root.find("src") == nullptr) reject("missing required field 'src'");
  transfer.dst = static_cast<endpoint::EndpointId>(
      integral_or(root, "dst", 0, 0, 1u << 30));
  if (root.find("dst") == nullptr) reject("missing required field 'dst'");
  transfer.bytes = require_number(root, "bytes");
  if (!(transfer.bytes >= 0.0) || !std::isfinite(transfer.bytes))
    reject("'bytes' must be finite and non-negative");
  transfer.files = integral_or(root, "files", 1, 1, 1ull << 40);
  transfer.dirs = integral_or(root, "dirs", 1, 1, 1ull << 40);
  transfer.concurrency = static_cast<std::uint32_t>(
      integral_or(root, "concurrency", 4, 1, 1u << 20));
  transfer.parallelism = static_cast<std::uint32_t>(
      integral_or(root, "parallelism", 4, 1, 1u << 20));
  frame.predict.deadline_ms =
      integral_or(root, "deadline_ms", 0, 0, 86400u * 1000u);
  if (const JsonValue* load = root.find("load"))
    frame.predict.load = parse_load(*load);
  return frame;
}

/// True when any contention field is set; idle loads are elided on the
/// wire (the server defaults them identically).
bool any_load(const features::ContentionFeatures& load) {
  return load.k_sout != 0.0 || load.k_sin != 0.0 || load.k_dout != 0.0 ||
         load.k_din != 0.0 || load.g_src != 0.0 || load.g_dst != 0.0 ||
         load.s_sout != 0.0 || load.s_sin != 0.0 || load.s_dout != 0.0 ||
         load.s_din != 0.0;
}

void append_field(std::string& out, const char* key, const std::string& value,
                  bool quote = false) {
  if (out.back() != '{') out.push_back(',');
  append_json_string(out, key);
  out.push_back(':');
  if (quote)
    append_json_string(out, value);
  else
    out += value;
}

}  // namespace

Frame parse_frame(const std::string& line) {
  Frame bad;
  bad.kind = Frame::Kind::kBad;
  if (line.size() > kMaxFrameBytes) {
    bad.error = "frame exceeds " + std::to_string(kMaxFrameBytes) + " bytes";
    return bad;
  }
  JsonValue root;
  try {
    root = parse_json(line);
  } catch (const std::exception& error) {
    bad.error = error.what();
    return bad;
  }
  if (!root.is_object()) {
    bad.error = "frame must be a JSON object";
    return bad;
  }
  try {
    std::string id = extract_id(root);
    bad.id = id;  // Preserved for the error response if parsing fails below.
    if (root.find("cmd") != nullptr) return parse_admin(root, std::move(id));
    if (root.find("feedback") != nullptr)
      return parse_feedback(root, std::move(id));
    return parse_predict(root, std::move(id));
  } catch (const FrameError& error) {
    bad.error = error.what();
    return bad;
  }
}

std::string trace_id_string(std::uint64_t trace_id) {
  std::string out = "t";
  out += std::to_string(trace_id);
  return out;
}

bool parse_trace_id(const std::string& text, std::uint64_t& trace_id) {
  if (text.size() < 2 || text.size() > 21 || text[0] != 't') return false;
  std::uint64_t value = 0;
  for (std::size_t i = 1; i < text.size(); ++i) {
    const char c = text[i];
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  trace_id = value;
  return true;
}

std::string predict_request_line(const std::string& id,
                                 const core::PlannedTransfer& transfer,
                                 const features::ContentionFeatures& load,
                                 std::uint64_t deadline_ms) {
  std::string out = "{";
  append_field(out, "id", id, /*quote=*/true);
  append_field(out, "src", std::to_string(transfer.src));
  append_field(out, "dst", std::to_string(transfer.dst));
  append_field(out, "bytes", json_number(transfer.bytes));
  append_field(out, "files", std::to_string(transfer.files));
  append_field(out, "dirs", std::to_string(transfer.dirs));
  append_field(out, "concurrency", std::to_string(transfer.concurrency));
  append_field(out, "parallelism", std::to_string(transfer.parallelism));
  if (deadline_ms > 0)
    append_field(out, "deadline_ms", std::to_string(deadline_ms));
  if (any_load(load)) {
    std::string nested = "{";
    append_field(nested, "k_sout", json_number(load.k_sout));
    append_field(nested, "k_sin", json_number(load.k_sin));
    append_field(nested, "k_dout", json_number(load.k_dout));
    append_field(nested, "k_din", json_number(load.k_din));
    append_field(nested, "g_src", json_number(load.g_src));
    append_field(nested, "g_dst", json_number(load.g_dst));
    append_field(nested, "s_sout", json_number(load.s_sout));
    append_field(nested, "s_sin", json_number(load.s_sin));
    append_field(nested, "s_dout", json_number(load.s_dout));
    append_field(nested, "s_din", json_number(load.s_din));
    nested.push_back('}');
    append_field(out, "load", nested);
  }
  out += "}\n";
  return out;
}

std::string feedback_request_line(const std::string& id,
                                  const std::string& trace_id,
                                  double observed_mbps) {
  std::string out = "{";
  append_field(out, "id", id, /*quote=*/true);
  append_field(out, "feedback", trace_id, /*quote=*/true);
  append_field(out, "observed_mbps", json_number(observed_mbps));
  out += "}\n";
  return out;
}

std::string predict_response(const std::string& id, double rate_mbps,
                             bool edge_model, std::uint64_t model_version,
                             std::uint64_t trace_id, double server_ms) {
  std::string out = "{";
  append_field(out, "id", id, /*quote=*/true);
  append_field(out, "ok", "true");
  append_field(out, "rate_mbps", json_number(rate_mbps));
  append_field(out, "model", edge_model ? "edge" : "global", /*quote=*/true);
  append_field(out, "version", std::to_string(model_version));
  append_field(out, "trace_id", trace_id_string(trace_id), /*quote=*/true);
  append_field(out, "server_ms", json_number(server_ms));
  out += "}\n";
  return out;
}

std::string error_response(const std::string& id, const char* code,
                           const std::string& message) {
  std::string out = "{";
  append_field(out, "id", id, /*quote=*/true);
  append_field(out, "ok", "false");
  append_field(out, "error", code, /*quote=*/true);
  append_field(out, "message", message, /*quote=*/true);
  out += "}\n";
  return out;
}

std::string error_response(const std::string& id, const char* code,
                           const std::string& message,
                           std::uint64_t trace_id, double server_ms) {
  std::string out = "{";
  append_field(out, "id", id, /*quote=*/true);
  append_field(out, "ok", "false");
  append_field(out, "error", code, /*quote=*/true);
  append_field(out, "message", message, /*quote=*/true);
  append_field(out, "trace_id", trace_id_string(trace_id), /*quote=*/true);
  append_field(out, "server_ms", json_number(server_ms));
  out += "}\n";
  return out;
}

std::string feedback_response(const std::string& id,
                              const std::string& trace_id,
                              const ServeMonitor::FeedbackResult& result) {
  std::string out = "{";
  append_field(out, "id", id, /*quote=*/true);
  append_field(out, "ok", "true");
  append_field(out, "trace_id", trace_id, /*quote=*/true);
  append_field(out, "matched", result.matched ? "true" : "false");
  if (result.matched) {
    append_field(out, "ape_pct", json_number(result.ape_pct));
    append_field(out, "predicted_mbps", json_number(result.predicted_mbps));
    append_field(out, "version", std::to_string(result.model_version));
    append_field(out, "mdape_pct", json_number(result.mdape_pct));
    append_field(out, "window", std::to_string(result.window_count));
    append_field(out, "alarm", result.alarm ? "true" : "false");
  }
  out += "}\n";
  return out;
}

std::string pong_response(const std::string& id, std::uint64_t model_version) {
  std::string out = "{";
  append_field(out, "id", id, /*quote=*/true);
  append_field(out, "ok", "true");
  append_field(out, "pong", "true");
  append_field(out, "version", std::to_string(model_version));
  out += "}\n";
  return out;
}

std::string reload_response(const std::string& id,
                            std::uint64_t model_version) {
  std::string out = "{";
  append_field(out, "id", id, /*quote=*/true);
  append_field(out, "ok", "true");
  append_field(out, "reloaded", "true");
  append_field(out, "version", std::to_string(model_version));
  out += "}\n";
  return out;
}

namespace {

std::string quantiles_object(const StageQuantiles& q) {
  std::string out = "{";
  append_field(out, "count", std::to_string(q.count));
  append_field(out, "p50", json_number(q.p50));
  append_field(out, "p95", json_number(q.p95));
  append_field(out, "p99", json_number(q.p99));
  out.push_back('}');
  return out;
}

}  // namespace

std::string stats_response(const std::string& id, const StatsReport& report) {
  std::string out = "{";
  append_field(out, "id", id, /*quote=*/true);
  append_field(out, "ok", "true");
  append_field(out, "queue_depth", std::to_string(report.queue_depth));
  append_field(out, "version", std::to_string(report.model_version));
  append_field(out, "kernel", report.kernel, /*quote=*/true);
  append_field(out, "requests", std::to_string(report.requests));
  append_field(out, "rejected", std::to_string(report.rejected));

  std::string latency = "{";
  for (const auto& [stage, quantiles] : report.latency_us)
    append_field(latency, stage.c_str(), quantiles_object(quantiles));
  latency.push_back('}');
  append_field(out, "latency_us", latency);

  std::string batch = "{";
  append_field(batch, "batches", std::to_string(report.batches));
  append_field(batch, "rows", std::to_string(report.batch_rows));
  append_field(batch, "size", quantiles_object(report.batch_size));
  batch.push_back('}');
  append_field(out, "batch", batch);

  std::string versions = "{";
  for (const auto& [version, stats] : report.versions) {
    std::string entry = "{";
    append_field(entry, "predictions", std::to_string(stats.predictions));
    append_field(entry, "feedback", std::to_string(stats.feedback));
    append_field(entry, "mdape_pct", json_number(stats.mdape_pct));
    append_field(entry, "window", std::to_string(stats.window_count));
    append_field(entry, "alarm", stats.alarm ? "true" : "false");
    entry.push_back('}');
    append_field(versions, std::to_string(version).c_str(), entry);
  }
  versions.push_back('}');
  append_field(out, "versions", versions);

  std::string drift = "{";
  append_field(drift, "alarm", report.drift_alarm ? "true" : "false");
  append_field(drift, "alarms_total", std::to_string(report.drift_alarms_total));
  append_field(drift, "window", std::to_string(report.drift_options.drift_window));
  append_field(drift, "threshold_pct",
               json_number(report.drift_options.drift_threshold_pct));
  append_field(drift, "min_samples",
               std::to_string(report.drift_options.drift_min_samples));
  append_field(drift, "feedback", std::to_string(report.feedback_count));
  append_field(drift, "unmatched", std::to_string(report.feedback_unmatched));
  drift.push_back('}');
  append_field(out, "drift", drift);

  if (!report.registry_json.empty())
    append_field(out, "metrics", report.registry_json);
  out += "}\n";
  return out;
}

}  // namespace xfl::serve
