#include "serve/protocol.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "common/contracts.hpp"

namespace xfl::serve {

namespace {

/// Thrown internally to turn field-level validation failures into one
/// kBad frame; never escapes parse_frame.
struct FrameError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

[[noreturn]] void reject(const std::string& what) { throw FrameError(what); }

std::string extract_id(const JsonValue& root) {
  const JsonValue* id = root.find("id");
  if (id == nullptr) return {};
  if (id->is_string()) return id->string;
  if (id->is_number()) return json_number(id->number);
  reject("'id' must be a string or number");
}

double require_number(const JsonValue& object, const std::string& key) {
  const JsonValue* v = object.find(key);
  if (v == nullptr) reject("missing required field '" + key + "'");
  if (!v->is_number()) reject("field '" + key + "' must be a number");
  return v->number;
}

/// Optional non-negative integral field with a default and an upper cap.
std::uint64_t integral_or(const JsonValue& object, const std::string& key,
                          std::uint64_t fallback, std::uint64_t min_value,
                          std::uint64_t max_value) {
  const JsonValue* v = object.find(key);
  if (v == nullptr) return fallback;
  if (!v->is_number()) reject("field '" + key + "' must be a number");
  const double d = v->number;
  if (!(d >= 0.0) || d != std::floor(d) || d > 9.007199254740992e15)
    reject("field '" + key + "' must be a non-negative integer");
  const auto n = static_cast<std::uint64_t>(d);
  if (n < min_value || n > max_value)
    reject("field '" + key + "' out of range");
  return n;
}

features::ContentionFeatures parse_load(const JsonValue& load) {
  if (!load.is_object()) reject("'load' must be an object");
  features::ContentionFeatures features;
  for (const auto& [key, value] : load.object) {
    if (!value.is_number()) reject("load field '" + key + "' must be a number");
    double* slot = nullptr;
    if (key == "k_sout") slot = &features.k_sout;
    else if (key == "k_sin") slot = &features.k_sin;
    else if (key == "k_dout") slot = &features.k_dout;
    else if (key == "k_din") slot = &features.k_din;
    else if (key == "g_src") slot = &features.g_src;
    else if (key == "g_dst") slot = &features.g_dst;
    else if (key == "s_sout") slot = &features.s_sout;
    else if (key == "s_sin") slot = &features.s_sin;
    else if (key == "s_dout") slot = &features.s_dout;
    else if (key == "s_din") slot = &features.s_din;
    else reject("unknown load field '" + key + "'");
    if (!std::isfinite(value.number)) reject("load field '" + key + "' must be finite");
    *slot = value.number;
  }
  return features;
}

Frame parse_admin(const JsonValue& root, std::string id) {
  const JsonValue* cmd = root.find("cmd");
  if (!cmd->is_string()) reject("'cmd' must be a string");
  Frame frame;
  frame.kind = Frame::Kind::kAdmin;
  frame.id = id;
  frame.admin.id = std::move(id);
  frame.admin.cmd = cmd->string;
  bool saw_registry = false;
  for (const auto& [key, value] : root.object) {
    if (key == "cmd" || key == "id") continue;
    if (key == "path") {
      if (!value.is_string()) reject("'path' must be a string");
      frame.admin.path = value.string;
      continue;
    }
    if (key == "registry") {
      if (!value.is_bool()) reject("'registry' must be a boolean");
      frame.admin.registry = value.boolean;
      saw_registry = true;
      continue;
    }
    reject("unknown field '" + key + "'");
  }
  if (frame.admin.cmd != "ping" && frame.admin.cmd != "stats" &&
      frame.admin.cmd != "reload" && frame.admin.cmd != "retrain-status")
    reject("unknown cmd '" + frame.admin.cmd + "'");
  if (!frame.admin.path.empty() && frame.admin.cmd != "reload")
    reject("'path' is only valid with cmd 'reload'");
  if (saw_registry && frame.admin.cmd != "stats")
    reject("'registry' is only valid with cmd 'stats'");
  return frame;
}

Frame parse_feedback(const JsonValue& root, std::string id) {
  Frame frame;
  frame.kind = Frame::Kind::kFeedback;
  frame.id = id;
  frame.feedback.id = std::move(id);
  for (const auto& [key, value] : root.object) {
    (void)value;
    if (key != "id" && key != "feedback" && key != "observed_mbps")
      reject("unknown field '" + key + "'");
  }
  const JsonValue* trace = root.find("feedback");
  if (!trace->is_string()) reject("'feedback' must be a trace-id string");
  if (!parse_trace_id(trace->string, frame.feedback.trace_id))
    reject("'feedback' must look like \"t<number>\"");
  frame.feedback.observed_mbps = require_number(root, "observed_mbps");
  if (!std::isfinite(frame.feedback.observed_mbps) ||
      !(frame.feedback.observed_mbps > 0.0))
    reject("'observed_mbps' must be finite and positive");
  return frame;
}

Frame parse_predict(const JsonValue& root, std::string id) {
  Frame frame;
  frame.kind = Frame::Kind::kPredict;
  frame.id = id;
  frame.predict.id = std::move(id);

  for (const auto& [key, value] : root.object) {
    (void)value;
    if (key != "id" && key != "src" && key != "dst" && key != "bytes" &&
        key != "files" && key != "dirs" && key != "concurrency" &&
        key != "parallelism" && key != "deadline_ms" && key != "load" &&
        key != "explain" && key != "top_k")
      reject("unknown field '" + key + "'");
  }

  if (const JsonValue* explain = root.find("explain")) {
    if (!explain->is_bool()) reject("'explain' must be a boolean");
    frame.predict.explain = explain->boolean;
  }
  frame.predict.top_k =
      static_cast<std::uint16_t>(integral_or(root, "top_k", 0, 0, 0xffff));
  if (root.find("top_k") != nullptr && !frame.predict.explain)
    reject("'top_k' is only valid with 'explain'");

  auto& transfer = frame.predict.transfer;
  transfer.src = static_cast<endpoint::EndpointId>(
      integral_or(root, "src", 0, 0, 1u << 30));
  if (root.find("src") == nullptr) reject("missing required field 'src'");
  transfer.dst = static_cast<endpoint::EndpointId>(
      integral_or(root, "dst", 0, 0, 1u << 30));
  if (root.find("dst") == nullptr) reject("missing required field 'dst'");
  transfer.bytes = require_number(root, "bytes");
  if (!(transfer.bytes >= 0.0) || !std::isfinite(transfer.bytes))
    reject("'bytes' must be finite and non-negative");
  transfer.files = integral_or(root, "files", 1, 1, 1ull << 40);
  transfer.dirs = integral_or(root, "dirs", 1, 1, 1ull << 40);
  transfer.concurrency = static_cast<std::uint32_t>(
      integral_or(root, "concurrency", 4, 1, 1u << 20));
  transfer.parallelism = static_cast<std::uint32_t>(
      integral_or(root, "parallelism", 4, 1, 1u << 20));
  frame.predict.deadline_ms =
      integral_or(root, "deadline_ms", 0, 0, 86400u * 1000u);
  if (const JsonValue* load = root.find("load"))
    frame.predict.load = parse_load(*load);
  return frame;
}

/// True when any contention field is set; idle loads are elided on the
/// wire (the server defaults them identically).
bool any_load(const features::ContentionFeatures& load) {
  return load.k_sout != 0.0 || load.k_sin != 0.0 || load.k_dout != 0.0 ||
         load.k_din != 0.0 || load.g_src != 0.0 || load.g_dst != 0.0 ||
         load.s_sout != 0.0 || load.s_sin != 0.0 || load.s_dout != 0.0 ||
         load.s_din != 0.0;
}

void append_field(std::string& out, const char* key, const std::string& value,
                  bool quote = false) {
  if (out.back() != '{') out.push_back(',');
  append_json_string(out, key);
  out.push_back(':');
  if (quote)
    append_json_string(out, value);
  else
    out += value;
}

}  // namespace

Frame parse_frame(const std::string& line) {
  Frame bad;
  bad.kind = Frame::Kind::kBad;
  if (line.size() > kMaxFrameBytes) {
    bad.error = "frame exceeds " + std::to_string(kMaxFrameBytes) + " bytes";
    return bad;
  }
  JsonValue root;
  try {
    root = parse_json(line);
  } catch (const std::exception& error) {
    bad.error = error.what();
    return bad;
  }
  if (!root.is_object()) {
    bad.error = "frame must be a JSON object";
    return bad;
  }
  try {
    std::string id = extract_id(root);
    bad.id = id;  // Preserved for the error response if parsing fails below.
    if (root.find("cmd") != nullptr) return parse_admin(root, std::move(id));
    if (root.find("feedback") != nullptr)
      return parse_feedback(root, std::move(id));
    return parse_predict(root, std::move(id));
  } catch (const FrameError& error) {
    bad.error = error.what();
    return bad;
  }
}

std::string trace_id_string(std::uint64_t trace_id) {
  std::string out = "t";
  out += std::to_string(trace_id);
  return out;
}

bool parse_trace_id(const std::string& text, std::uint64_t& trace_id) {
  if (text.size() < 2 || text.size() > 21 || text[0] != 't') return false;
  std::uint64_t value = 0;
  for (std::size_t i = 1; i < text.size(); ++i) {
    const char c = text[i];
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  trace_id = value;
  return true;
}

namespace {

std::string request_line(const std::string& id,
                         const core::PlannedTransfer& transfer,
                         const features::ContentionFeatures& load,
                         std::uint64_t deadline_ms, bool explain,
                         std::uint16_t top_k) {
  std::string out = "{";
  append_field(out, "id", id, /*quote=*/true);
  append_field(out, "src", std::to_string(transfer.src));
  append_field(out, "dst", std::to_string(transfer.dst));
  append_field(out, "bytes", json_number(transfer.bytes));
  append_field(out, "files", std::to_string(transfer.files));
  append_field(out, "dirs", std::to_string(transfer.dirs));
  append_field(out, "concurrency", std::to_string(transfer.concurrency));
  append_field(out, "parallelism", std::to_string(transfer.parallelism));
  if (deadline_ms > 0)
    append_field(out, "deadline_ms", std::to_string(deadline_ms));
  if (explain) {
    append_field(out, "explain", "true");
    if (top_k > 0) append_field(out, "top_k", std::to_string(top_k));
  }
  if (any_load(load)) {
    std::string nested = "{";
    append_field(nested, "k_sout", json_number(load.k_sout));
    append_field(nested, "k_sin", json_number(load.k_sin));
    append_field(nested, "k_dout", json_number(load.k_dout));
    append_field(nested, "k_din", json_number(load.k_din));
    append_field(nested, "g_src", json_number(load.g_src));
    append_field(nested, "g_dst", json_number(load.g_dst));
    append_field(nested, "s_sout", json_number(load.s_sout));
    append_field(nested, "s_sin", json_number(load.s_sin));
    append_field(nested, "s_dout", json_number(load.s_dout));
    append_field(nested, "s_din", json_number(load.s_din));
    nested.push_back('}');
    append_field(out, "load", nested);
  }
  out += "}\n";
  return out;
}

}  // namespace

std::string predict_request_line(const std::string& id,
                                 const core::PlannedTransfer& transfer,
                                 const features::ContentionFeatures& load,
                                 std::uint64_t deadline_ms) {
  return request_line(id, transfer, load, deadline_ms, /*explain=*/false, 0);
}

std::string explain_request_line(const std::string& id,
                                 const core::PlannedTransfer& transfer,
                                 const features::ContentionFeatures& load,
                                 std::uint64_t deadline_ms,
                                 std::uint16_t top_k) {
  return request_line(id, transfer, load, deadline_ms, /*explain=*/true,
                      top_k);
}

std::string feedback_request_line(const std::string& id,
                                  const std::string& trace_id,
                                  double observed_mbps) {
  std::string out = "{";
  append_field(out, "id", id, /*quote=*/true);
  append_field(out, "feedback", trace_id, /*quote=*/true);
  append_field(out, "observed_mbps", json_number(observed_mbps));
  out += "}\n";
  return out;
}

std::string predict_response(const std::string& id, double rate_mbps,
                             bool edge_model, std::uint64_t model_version,
                             std::uint64_t trace_id, double server_ms) {
  std::string out = "{";
  append_field(out, "id", id, /*quote=*/true);
  append_field(out, "ok", "true");
  append_field(out, "rate_mbps", json_number(rate_mbps));
  append_field(out, "model", edge_model ? "edge" : "global", /*quote=*/true);
  append_field(out, "version", std::to_string(model_version));
  append_field(out, "trace_id", trace_id_string(trace_id), /*quote=*/true);
  append_field(out, "server_ms", json_number(server_ms));
  out += "}\n";
  return out;
}

namespace {

/// Feature indices ordered by |contribution| descending (ties keep the
/// model's feature order), truncated to top_k when top_k > 0. Shared by
/// the JSON and binary explain reply builders so both protocols agree on
/// which contributions a truncated reply keeps.
std::vector<std::size_t> attribution_order(
    const std::vector<double>& contributions, std::uint16_t top_k) {
  std::vector<std::size_t> order(contributions.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&contributions](std::size_t a, std::size_t b) {
                     return std::abs(contributions[a]) >
                            std::abs(contributions[b]);
                   });
  if (top_k > 0 && top_k < order.size()) order.resize(top_k);
  return order;
}

}  // namespace

std::string explain_response(const std::string& id,
                             const core::RateExplanation& explanation,
                             std::uint64_t model_version,
                             std::uint64_t trace_id, double server_ms,
                             std::uint16_t top_k) {
  std::string out = "{";
  append_field(out, "id", id, /*quote=*/true);
  append_field(out, "ok", "true");
  append_field(out, "rate_mbps", json_number(explanation.rate_mbps));
  append_field(out, "raw_mbps", json_number(explanation.raw_mbps));
  append_field(out, "bias_mbps", json_number(explanation.bias_mbps));
  append_field(out, "low_mbps", json_number(explanation.low_mbps));
  append_field(out, "high_mbps", json_number(explanation.high_mbps));
  append_field(out, "model", explanation.edge_model ? "edge" : "global",
               /*quote=*/true);
  append_field(out, "version", std::to_string(model_version));
  append_field(out, "trace_id", trace_id_string(trace_id), /*quote=*/true);
  append_field(out, "server_ms", json_number(server_ms));
  const auto order = attribution_order(explanation.contributions, top_k);
  std::string entries = "[";
  for (const std::size_t c : order) {
    if (entries.back() != '[') entries.push_back(',');
    std::string entry = "{";
    append_field(entry, "feature", explanation.feature_names[c],
                 /*quote=*/true);
    append_field(entry, "mbps", json_number(explanation.contributions[c]));
    entry.push_back('}');
    entries += entry;
  }
  entries.push_back(']');
  append_field(out, "contributions", entries);
  out += "}\n";
  return out;
}

std::string error_response(const std::string& id, const char* code,
                           const std::string& message) {
  std::string out = "{";
  append_field(out, "id", id, /*quote=*/true);
  append_field(out, "ok", "false");
  append_field(out, "error", code, /*quote=*/true);
  append_field(out, "message", message, /*quote=*/true);
  out += "}\n";
  return out;
}

std::string error_response(const std::string& id, const char* code,
                           const std::string& message,
                           std::uint64_t trace_id, double server_ms) {
  std::string out = "{";
  append_field(out, "id", id, /*quote=*/true);
  append_field(out, "ok", "false");
  append_field(out, "error", code, /*quote=*/true);
  append_field(out, "message", message, /*quote=*/true);
  append_field(out, "trace_id", trace_id_string(trace_id), /*quote=*/true);
  append_field(out, "server_ms", json_number(server_ms));
  out += "}\n";
  return out;
}

std::string feedback_response(const std::string& id,
                              const std::string& trace_id,
                              const ServeMonitor::FeedbackResult& result) {
  std::string out = "{";
  append_field(out, "id", id, /*quote=*/true);
  append_field(out, "ok", "true");
  append_field(out, "trace_id", trace_id, /*quote=*/true);
  append_field(out, "matched", result.matched ? "true" : "false");
  if (result.matched) {
    append_field(out, "ape_pct", json_number(result.ape_pct));
    append_field(out, "predicted_mbps", json_number(result.predicted_mbps));
    append_field(out, "version", std::to_string(result.model_version));
    append_field(out, "mdape_pct", json_number(result.mdape_pct));
    append_field(out, "window", std::to_string(result.window_count));
    append_field(out, "alarm", result.alarm ? "true" : "false");
  }
  out += "}\n";
  return out;
}

std::string pong_response(const std::string& id, std::uint64_t model_version) {
  std::string out = "{";
  append_field(out, "id", id, /*quote=*/true);
  append_field(out, "ok", "true");
  append_field(out, "pong", "true");
  append_field(out, "version", std::to_string(model_version));
  out += "}\n";
  return out;
}

std::string retrain_status_response(const std::string& id,
                                    const std::string& retrain_json) {
  std::string out = "{";
  append_field(out, "id", id, /*quote=*/true);
  append_field(out, "ok", "true");
  append_field(out, "retrain",
               retrain_json.empty() ? "{\"enabled\":false}" : retrain_json);
  out += "}\n";
  return out;
}

std::string reload_response(const std::string& id,
                            std::uint64_t model_version) {
  std::string out = "{";
  append_field(out, "id", id, /*quote=*/true);
  append_field(out, "ok", "true");
  append_field(out, "reloaded", "true");
  append_field(out, "version", std::to_string(model_version));
  out += "}\n";
  return out;
}

namespace {

std::string quantiles_object(const StageQuantiles& q) {
  std::string out = "{";
  append_field(out, "count", std::to_string(q.count));
  append_field(out, "p50", json_number(q.p50));
  append_field(out, "p95", json_number(q.p95));
  append_field(out, "p99", json_number(q.p99));
  out.push_back('}');
  return out;
}

}  // namespace

std::string stats_response(const std::string& id, const StatsReport& report) {
  std::string out = "{";
  append_field(out, "id", id, /*quote=*/true);
  append_field(out, "ok", "true");
  append_field(out, "queue_depth", std::to_string(report.queue_depth));
  append_field(out, "connections", std::to_string(report.connections));
  append_field(out, "shards", std::to_string(report.shards));
  append_field(out, "steals", std::to_string(report.steals));
  append_field(out, "version", std::to_string(report.model_version));
  append_field(out, "kernel", report.kernel, /*quote=*/true);
  append_field(out, "requests", std::to_string(report.requests));
  append_field(out, "rejected", std::to_string(report.rejected));
  append_field(out, "uptime_seconds", json_number(report.uptime_seconds));

  std::string latency = "{";
  for (const auto& [stage, quantiles] : report.latency_us)
    append_field(latency, stage.c_str(), quantiles_object(quantiles));
  latency.push_back('}');
  append_field(out, "latency_us", latency);

  std::string batch = "{";
  append_field(batch, "batches", std::to_string(report.batches));
  append_field(batch, "rows", std::to_string(report.batch_rows));
  append_field(batch, "size", quantiles_object(report.batch_size));
  batch.push_back('}');
  append_field(out, "batch", batch);

  std::string versions = "{";
  for (const auto& [version, stats] : report.versions) {
    std::string entry = "{";
    append_field(entry, "predictions", std::to_string(stats.predictions));
    append_field(entry, "feedback", std::to_string(stats.feedback));
    append_field(entry, "mdape_pct", json_number(stats.mdape_pct));
    append_field(entry, "window", std::to_string(stats.window_count));
    append_field(entry, "alarm", stats.alarm ? "true" : "false");
    entry.push_back('}');
    append_field(versions, std::to_string(version).c_str(), entry);
  }
  versions.push_back('}');
  append_field(out, "versions", versions);

  std::string drift = "{";
  append_field(drift, "alarm", report.drift_alarm ? "true" : "false");
  append_field(drift, "alarms_total", std::to_string(report.drift_alarms_total));
  append_field(drift, "window", std::to_string(report.drift_options.drift_window));
  append_field(drift, "threshold_pct",
               json_number(report.drift_options.drift_threshold_pct));
  append_field(drift, "min_samples",
               std::to_string(report.drift_options.drift_min_samples));
  append_field(drift, "feedback", std::to_string(report.feedback_count));
  append_field(drift, "unmatched", std::to_string(report.feedback_unmatched));

  const auto& shift = report.attribution_shift;
  std::string shift_json = "{";
  append_field(shift_json, "valid", shift.valid ? "true" : "false");
  append_field(shift_json, "events_total", std::to_string(shift.events));
  if (shift.valid) {
    append_field(shift_json, "model_version",
                 std::to_string(shift.model_version));
    std::string ranked = "[";
    for (const auto& entry : shift.ranked) {
      if (ranked.back() != '[') ranked.push_back(',');
      std::string item = "{";
      append_field(item, "feature", entry.feature, /*quote=*/true);
      append_field(item, "baseline_mean_mbps",
                   json_number(entry.baseline_mean_mbps));
      append_field(item, "alarm_mean_mbps",
                   json_number(entry.alarm_mean_mbps));
      append_field(item, "delta_mbps", json_number(entry.delta_mbps));
      item.push_back('}');
      ranked += item;
    }
    ranked.push_back(']');
    append_field(shift_json, "ranked", ranked);
  }
  shift_json.push_back('}');
  append_field(drift, "attribution_shift", shift_json);
  drift.push_back('}');
  append_field(out, "drift", drift);

  if (!report.registry_json.empty())
    append_field(out, "metrics", report.registry_json);
  out += "}\n";
  return out;
}

// ------------------------------------------------------------ binary codec

namespace {

// Integers travel little-endian byte by byte; doubles travel as the
// little-endian bytes of their IEEE-754 bit pattern, so a decoded rate is
// bit-identical to the encoded one (the binary analogue of %.17g).

void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

void put_u16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8)
    out.push_back(static_cast<char>((v >> shift) & 0xff));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8)
    out.push_back(static_cast<char>((v >> shift) & 0xff));
}

void put_f64(std::string& out, double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof bits == sizeof v);
  std::memcpy(&bits, &v, sizeof bits);
  put_u64(out, bits);
}

/// Bounds-checked cursor over a payload; every read either succeeds in
/// full or returns false with the cursor untouched — no partial reads,
/// no access past the view.
struct Cursor {
  const char* data;
  std::size_t size;
  std::size_t off = 0;

  explicit Cursor(std::string_view payload)
      : data(payload.data()), size(payload.size()) {}

  std::size_t remaining() const { return size - off; }

  bool u8(std::uint8_t& v) {
    if (remaining() < 1) return false;
    v = static_cast<std::uint8_t>(data[off++]);
    return true;
  }

  bool u16(std::uint16_t& v) {
    if (remaining() < 2) return false;
    v = 0;
    for (int shift = 0; shift < 16; shift += 8)
      v = static_cast<std::uint16_t>(
          v | static_cast<std::uint16_t>(
                  static_cast<std::uint8_t>(data[off++]))
                  << shift);
    return true;
  }

  bool u32(std::uint32_t& v) {
    if (remaining() < 4) return false;
    v = 0;
    for (int shift = 0; shift < 32; shift += 8)
      v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(data[off++]))
           << shift;
    return true;
  }

  bool u64(std::uint64_t& v) {
    if (remaining() < 8) return false;
    v = 0;
    for (int shift = 0; shift < 64; shift += 8)
      v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(data[off++]))
           << shift;
    return true;
  }

  bool f64(double& v) {
    std::uint64_t bits = 0;
    if (!u64(bits)) return false;
    std::memcpy(&v, &bits, sizeof v);
    return true;
  }

  bool bytes(std::string& v, std::size_t n) {
    if (remaining() < n) return false;
    v.assign(data + off, n);
    off += n;
    return true;
  }
};

/// Open a frame: emit the length placeholder (patched by seal_frame) and
/// the type byte; returns the offset of the placeholder.
std::size_t open_frame(std::string& out, BinaryType type) {
  const std::size_t at = out.size();
  put_u32(out, 0);
  put_u8(out, static_cast<std::uint8_t>(type));
  return at;
}

void seal_frame(std::string& out, std::size_t at) {
  const std::uint64_t length = out.size() - at - 4;
  XFL_EXPECTS(length >= 1 && length <= kMaxFrameBytes);
  for (int i = 0; i < 4; ++i)
    out[at + static_cast<std::size_t>(i)] =
        static_cast<char>((length >> (8 * i)) & 0xff);
}

constexpr std::uint8_t kLoadFlag = 0x01;  ///< kPredict: load block present.
constexpr std::uint8_t kEdgeFlag = 0x01;  ///< kPredictOk: edge model answered.

}  // namespace

BinaryDecode decode_binary_frame(std::string_view buffer) {
  BinaryDecode result;
  if (buffer.size() < 5) return result;  // kNeedMore: header incomplete.
  Cursor cursor(buffer);
  std::uint32_t length = 0;
  cursor.u32(length);
  if (length < 1) {
    result.status = BinaryDecode::Status::kBad;
    result.error = "binary frame length must cover the type byte";
    return result;
  }
  if (length > kMaxFrameBytes) {
    result.status = BinaryDecode::Status::kBad;
    result.error = "binary frame exceeds " + std::to_string(kMaxFrameBytes) +
                   " bytes";
    return result;
  }
  std::uint8_t type = 0;
  cursor.u8(type);
  if (type > static_cast<std::uint8_t>(BinaryType::kExplainOk)) {
    result.status = BinaryDecode::Status::kBad;
    result.error = "unknown binary frame type " + std::to_string(type);
    return result;
  }
  if (buffer.size() < 4u + length) return result;  // kNeedMore: body short.
  result.status = BinaryDecode::Status::kFrame;
  result.consumed = 4u + length;
  result.type = static_cast<BinaryType>(type);
  result.payload = buffer.substr(5, length - 1);
  return result;
}

namespace {

/// Shared body of kPredict / kExplain requests (everything between the
/// frame header and the kExplain-only trailing top_k).
void put_predict_payload(std::string& out, std::uint64_t id,
                         const core::PlannedTransfer& transfer,
                         const features::ContentionFeatures& load,
                         std::uint64_t deadline_ms) {
  put_u64(out, id);
  put_u32(out, static_cast<std::uint32_t>(transfer.src));
  put_u32(out, static_cast<std::uint32_t>(transfer.dst));
  put_f64(out, transfer.bytes);
  put_u64(out, transfer.files);
  put_u64(out, transfer.dirs);
  put_u32(out, transfer.concurrency);
  put_u32(out, transfer.parallelism);
  put_u32(out, static_cast<std::uint32_t>(deadline_ms));
  const double slots[10] = {load.k_sout, load.k_sin,  load.k_dout,
                            load.k_din,  load.g_src,  load.g_dst,
                            load.s_sout, load.s_sin,  load.s_dout,
                            load.s_din};
  bool any = false;
  for (const double v : slots) any |= v != 0.0;
  put_u8(out, any ? kLoadFlag : 0);
  if (any)
    for (const double v : slots) put_f64(out, v);
}

}  // namespace

std::string binary_predict_request(std::uint64_t id,
                                   const core::PlannedTransfer& transfer,
                                   const features::ContentionFeatures& load,
                                   std::uint64_t deadline_ms) {
  std::string out;
  const std::size_t at = open_frame(out, BinaryType::kPredict);
  put_predict_payload(out, id, transfer, load, deadline_ms);
  seal_frame(out, at);
  return out;
}

std::string binary_explain_request(std::uint64_t id,
                                   const core::PlannedTransfer& transfer,
                                   const features::ContentionFeatures& load,
                                   std::uint64_t deadline_ms,
                                   std::uint16_t top_k) {
  std::string out;
  const std::size_t at = open_frame(out, BinaryType::kExplain);
  put_predict_payload(out, id, transfer, load, deadline_ms);
  put_u16(out, top_k);
  seal_frame(out, at);
  return out;
}

namespace {

Frame parse_binary_predict_impl(std::string_view payload, bool explain) {
  Frame frame;
  frame.kind = Frame::Kind::kBad;
  frame.predict.binary = true;
  Cursor cursor(payload);
  std::uint64_t id = 0;
  if (!cursor.u64(id)) {
    frame.error = "binary predict payload truncated before id";
    return frame;
  }
  // From here on the id is known; keep it on the bad frame so the error
  // response stays correlatable, exactly like the JSON parser does.
  frame.predict.binary_id = id;
  frame.id = std::to_string(id);
  frame.predict.id = frame.id;

  auto reject = [&frame](const char* what) {
    frame.kind = Frame::Kind::kBad;
    frame.error = what;
    return frame;
  };

  auto& transfer = frame.predict.transfer;
  std::uint32_t src = 0, dst = 0, concurrency = 0, parallelism = 0,
                deadline_ms = 0;
  std::uint64_t files = 0, dirs = 0;
  double bytes = 0.0;
  std::uint8_t flags = 0;
  if (!cursor.u32(src) || !cursor.u32(dst) || !cursor.f64(bytes) ||
      !cursor.u64(files) || !cursor.u64(dirs) || !cursor.u32(concurrency) ||
      !cursor.u32(parallelism) || !cursor.u32(deadline_ms) ||
      !cursor.u8(flags))
    return reject("binary predict payload truncated");
  if (src > (1u << 30) || dst > (1u << 30))
    return reject("'src'/'dst' out of range");
  if (!(bytes >= 0.0) || !std::isfinite(bytes))
    return reject("'bytes' must be finite and non-negative");
  if (files < 1 || files > (1ull << 40))
    return reject("'files' out of range");
  if (dirs < 1 || dirs > (1ull << 40)) return reject("'dirs' out of range");
  if (concurrency < 1 || concurrency > (1u << 20))
    return reject("'concurrency' out of range");
  if (parallelism < 1 || parallelism > (1u << 20))
    return reject("'parallelism' out of range");
  if (deadline_ms > 86400u * 1000u) return reject("'deadline_ms' out of range");
  if ((flags & ~kLoadFlag) != 0)
    return reject("unknown binary predict flags");
  if ((flags & kLoadFlag) != 0) {
    double slots[10];
    for (double& slot : slots)
      if (!cursor.f64(slot))
        return reject("binary predict load block truncated");
    for (const double slot : slots)
      if (!std::isfinite(slot)) return reject("load field must be finite");
    auto& load = frame.predict.load;
    load.k_sout = slots[0];
    load.k_sin = slots[1];
    load.k_dout = slots[2];
    load.k_din = slots[3];
    load.g_src = slots[4];
    load.g_dst = slots[5];
    load.s_sout = slots[6];
    load.s_sin = slots[7];
    load.s_dout = slots[8];
    load.s_din = slots[9];
  }
  if (explain) {
    std::uint16_t top_k = 0;
    if (!cursor.u16(top_k))
      return reject("binary explain payload truncated before top_k");
    frame.predict.explain = true;
    frame.predict.top_k = top_k;
  }
  if (cursor.remaining() != 0)
    return reject("binary predict payload has trailing bytes");

  transfer.src = static_cast<endpoint::EndpointId>(src);
  transfer.dst = static_cast<endpoint::EndpointId>(dst);
  transfer.bytes = bytes;
  transfer.files = files;
  transfer.dirs = dirs;
  transfer.concurrency = concurrency;
  transfer.parallelism = parallelism;
  frame.predict.deadline_ms = deadline_ms;
  frame.kind = Frame::Kind::kPredict;
  return frame;
}

}  // namespace

Frame parse_binary_predict(std::string_view payload) {
  return parse_binary_predict_impl(payload, /*explain=*/false);
}

Frame parse_binary_explain(std::string_view payload) {
  return parse_binary_predict_impl(payload, /*explain=*/true);
}

std::string binary_predict_response(std::uint64_t id, double rate_mbps,
                                    bool edge_model,
                                    std::uint64_t model_version,
                                    std::uint64_t trace_id,
                                    double server_ms) {
  std::string out;
  const std::size_t at = open_frame(out, BinaryType::kPredictOk);
  put_u64(out, id);
  put_f64(out, rate_mbps);
  put_u8(out, edge_model ? kEdgeFlag : 0);
  put_u64(out, model_version);
  put_u64(out, trace_id);
  put_f64(out, server_ms);
  seal_frame(out, at);
  return out;
}

std::string binary_explain_response(std::uint64_t id,
                                    const core::RateExplanation& explanation,
                                    std::uint64_t model_version,
                                    std::uint64_t trace_id, double server_ms,
                                    std::uint16_t top_k) {
  std::string out;
  const std::size_t at = open_frame(out, BinaryType::kExplainOk);
  put_u64(out, id);
  put_f64(out, explanation.rate_mbps);
  put_u8(out, explanation.edge_model ? kEdgeFlag : 0);
  put_u64(out, model_version);
  put_u64(out, trace_id);
  put_f64(out, server_ms);
  put_f64(out, explanation.raw_mbps);
  put_f64(out, explanation.bias_mbps);
  put_f64(out, explanation.low_mbps);
  put_f64(out, explanation.high_mbps);
  const auto order = attribution_order(explanation.contributions, top_k);
  put_u16(out, static_cast<std::uint16_t>(order.size()));
  for (const std::size_t c : order) {
    const std::string& name = explanation.feature_names[c];
    const std::size_t name_len = std::min<std::size_t>(name.size(), 0xffff);
    put_u16(out, static_cast<std::uint16_t>(name_len));
    out.append(name.data(), name_len);
    put_f64(out, explanation.contributions[c]);
  }
  seal_frame(out, at);
  return out;
}

std::string binary_error_response(std::uint64_t id, const char* code,
                                  const std::string& message,
                                  std::uint64_t trace_id, double server_ms) {
  std::string out;
  const std::size_t at = open_frame(out, BinaryType::kError);
  put_u64(out, id);
  put_u64(out, trace_id);
  put_f64(out, server_ms);
  const std::string_view code_view{code};
  // Length caps keep the frame bounded whatever the message source; a
  // truncated message beats an unparseable frame.
  const std::size_t code_len = std::min<std::size_t>(code_view.size(), 0xffff);
  const std::size_t msg_len = std::min<std::size_t>(message.size(), 0xffff);
  put_u16(out, static_cast<std::uint16_t>(code_len));
  out.append(code_view.data(), code_len);
  put_u16(out, static_cast<std::uint16_t>(msg_len));
  out.append(message.data(), msg_len);
  seal_frame(out, at);
  return out;
}

std::string binary_json_frame(std::string_view json_document) {
  while (!json_document.empty() &&
         (json_document.back() == '\n' || json_document.back() == '\r'))
    json_document.remove_suffix(1);
  std::string out;
  const std::size_t at = open_frame(out, BinaryType::kJson);
  out.append(json_document.data(), json_document.size());
  seal_frame(out, at);
  return out;
}

BinaryPredictReply parse_binary_reply(BinaryType type,
                                      std::string_view payload) {
  BinaryPredictReply reply;
  Cursor cursor(payload);
  if (type == BinaryType::kPredictOk) {
    std::uint8_t flags = 0;
    if (!cursor.u64(reply.id) || !cursor.f64(reply.rate_mbps) ||
        !cursor.u8(flags) || !cursor.u64(reply.model_version) ||
        !cursor.u64(reply.trace_id) || !cursor.f64(reply.server_ms) ||
        cursor.remaining() != 0)
      throw std::runtime_error("malformed binary predict response");
    reply.ok = true;
    reply.edge_model = (flags & kEdgeFlag) != 0;
    return reply;
  }
  if (type == BinaryType::kExplainOk) {
    std::uint8_t flags = 0;
    std::uint16_t entries = 0;
    if (!cursor.u64(reply.id) || !cursor.f64(reply.rate_mbps) ||
        !cursor.u8(flags) || !cursor.u64(reply.model_version) ||
        !cursor.u64(reply.trace_id) || !cursor.f64(reply.server_ms) ||
        !cursor.f64(reply.raw_mbps) || !cursor.f64(reply.bias_mbps) ||
        !cursor.f64(reply.low_mbps) || !cursor.f64(reply.high_mbps) ||
        !cursor.u16(entries))
      throw std::runtime_error("malformed binary explain response");
    reply.contributions.reserve(entries);
    for (std::uint16_t e = 0; e < entries; ++e) {
      std::uint16_t name_len = 0;
      std::string name;
      double mbps = 0.0;
      if (!cursor.u16(name_len) || !cursor.bytes(name, name_len) ||
          !cursor.f64(mbps))
        throw std::runtime_error("malformed binary explain response");
      reply.contributions.emplace_back(std::move(name), mbps);
    }
    if (cursor.remaining() != 0)
      throw std::runtime_error("malformed binary explain response");
    reply.ok = true;
    reply.explained = true;
    reply.edge_model = (flags & kEdgeFlag) != 0;
    return reply;
  }
  if (type == BinaryType::kError) {
    std::uint16_t code_len = 0, msg_len = 0;
    if (!cursor.u64(reply.id) || !cursor.u64(reply.trace_id) ||
        !cursor.f64(reply.server_ms) || !cursor.u16(code_len) ||
        !cursor.bytes(reply.error, code_len) || !cursor.u16(msg_len) ||
        !cursor.bytes(reply.message, msg_len) || cursor.remaining() != 0)
      throw std::runtime_error("malformed binary error response");
    reply.ok = false;
    return reply;
  }
  throw std::runtime_error("not a binary reply frame");
}

}  // namespace xfl::serve
