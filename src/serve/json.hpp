// Minimal JSON support for the serve wire protocol (src/serve). The
// protocol is line-delimited JSON objects, so the parser accepts exactly
// one document per call and the writer side is a pair of helpers —
// string escaping and round-trip double formatting — used by the
// response builders in protocol.cpp. Dependency-free by design: the
// serve layer must not pull a JSON library into the build.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace xfl::serve {

/// One parsed JSON value. A tagged struct rather than a variant keeps
/// accessors trivial; frames are tiny so the unused members cost nothing
/// that matters.
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kObject, kArray };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::map<std::string, JsonValue> object;
  std::vector<JsonValue> array;

  bool is_null() const { return type == Type::kNull; }
  bool is_bool() const { return type == Type::kBool; }
  bool is_number() const { return type == Type::kNumber; }
  bool is_string() const { return type == Type::kString; }
  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(const std::string& key) const;
};

/// Parse one JSON document (trailing whitespace allowed, nothing else).
/// Throws std::runtime_error with a position-annotated message on
/// malformed input.
JsonValue parse_json(std::string_view text);

/// Append `text` to `out` as a JSON string, surrounding quotes included.
void append_json_string(std::string& out, std::string_view text);

/// Format a double so that strtod() round-trips it bit-identically
/// ("%.17g"); non-finite values render as null per JSON.
std::string json_number(double v);

}  // namespace xfl::serve
