// Blocking client for the prediction server. One TCP connection, one
// outstanding high-level call at a time; replies are matched on the
// request id, so a pipelining caller can also drive the connection
// directly through send_line()/read_line() (the overload and drain tests
// do, and serve-bench uses the high-level calls from many threads, one
// client each).
//
// negotiate_binary() flips the connection to the length-prefixed binary
// framing: predict() then travels as packed kPredict/kPredictOk frames
// (bit-identical rates, no JSON in the hot path) while feedback/admin
// calls transparently ride inside kJson frames. The high-level API is
// identical in both modes.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/predictor.hpp"
#include "features/contention.hpp"
#include "serve/json.hpp"
#include "serve/protocol.hpp"

namespace xfl::serve {

/// One server reply, decoded. For admin replies rate_mbps/model are unset.
struct PredictReply {
  std::string id;
  bool ok = false;
  double rate_mbps = 0.0;
  std::string model;  ///< "edge" or "global" on success.
  std::uint64_t model_version = 0;
  std::string trace_id;   ///< Server trace id ("t17"); feedback joins on it.
  double server_ms = 0.0; ///< In-server latency reported by the server.
  std::string error;  ///< Protocol error code when !ok.
  std::string message;
};

/// One decoded explain reply. Contributions come back in the server's
/// ranked order (|mbps| descending, ties in model feature order) and sum
/// with bias_mbps to raw_mbps bit-exactly when top_k did not truncate.
struct ExplainReply {
  std::string id;
  bool ok = false;
  double rate_mbps = 0.0;
  double raw_mbps = 0.0;
  double bias_mbps = 0.0;
  double low_mbps = 0.0;
  double high_mbps = 0.0;
  std::string model;  ///< "edge" or "global" on success.
  std::uint64_t model_version = 0;
  std::string trace_id;
  double server_ms = 0.0;
  std::vector<std::pair<std::string, double>> contributions;
  std::string error;  ///< Protocol error code when !ok.
  std::string message;
};

/// One decoded feedback reply.
struct FeedbackReply {
  std::string id;
  bool ok = false;
  bool matched = false;    ///< Trace id was still in the server journal.
  double ape_pct = 0.0;
  double predicted_mbps = 0.0;
  std::uint64_t model_version = 0;
  double mdape_pct = 0.0;  ///< Windowed MdAPE for that model version.
  std::uint64_t window = 0;
  bool alarm = false;
};

class PredictionClient {
 public:
  /// Connects immediately; throws std::runtime_error on failure.
  /// `host` is a dotted IPv4 address or "localhost".
  PredictionClient(const std::string& host, std::uint16_t port);
  ~PredictionClient();

  PredictionClient(const PredictionClient&) = delete;
  PredictionClient& operator=(const PredictionClient&) = delete;

  /// Send one predict request and block for its reply. Transport errors
  /// throw; server-side errors come back in the reply (ok = false).
  PredictReply predict(const core::PlannedTransfer& transfer,
                       const features::ContentionFeatures& load = {},
                       std::uint64_t deadline_ms = 0);

  /// predict() plus per-feature attribution. `top_k` keeps only the
  /// strongest contributions (0 = all). Travels as an "explain" JSON
  /// request or a kExplain frame after negotiate_binary().
  ExplainReply explain(const core::PlannedTransfer& transfer,
                       const features::ContentionFeatures& load = {},
                       std::uint64_t deadline_ms = 0,
                       std::uint16_t top_k = 0);

  /// Report the observed rate of a completed transfer back to the
  /// prediction identified by `trace_id` (from PredictReply::trace_id).
  FeedbackReply feedback(const std::string& trace_id, double observed_mbps);

  /// True when the server answers the ping.
  bool ping();

  /// Hot-reload the server's model (empty path = server's configured
  /// file). Returns the new model version; throws on reload failure.
  std::uint64_t reload(const std::string& path = "");

  /// Raw parsed "stats" reply. `registry` embeds the server's full
  /// metrics-registry snapshot under "metrics".
  JsonValue stats(bool registry = false);

  /// Raw parsed "retrain-status" reply: the background refit worker's
  /// status under "retrain" ({"enabled":false} when none is attached).
  JsonValue retrain_status();

  /// Switch this connection to binary framing (sends the magic, blocks
  /// for the server's ack). Irreversible; throws if the server does not
  /// ack or if un-consumed pipelined replies are still buffered.
  void negotiate_binary();
  bool binary() const { return binary_; }

  // Low-level framing for pipelined use (JSON mode).
  void send_line(const std::string& line);  ///< Throws on transport error.
  std::string read_line();                  ///< Blocks; throws on EOF.
  static PredictReply parse_reply(const std::string& line);

  // Low-level binary framing (after negotiate_binary()).
  void send_raw(std::string_view bytes);
  /// Block for one well-formed frame; throws on EOF or bad framing.
  std::pair<BinaryType, std::string> read_frame();

  /// True when a complete response (a full frame in binary mode, a
  /// newline-terminated line otherwise) is already buffered, so the next
  /// read will not touch the socket. Pipelined callers use this to drain
  /// every buffered reply and batch the follow-up sends into one write.
  bool response_buffered() const;

 private:
  PredictReply round_trip(const std::string& line, const std::string& id);
  /// Send one JSON document over whichever framing is active.
  void send_document(const std::string& line);
  /// Block for one JSON document (a line, or a kJson frame's payload).
  std::string read_document();

  int fd_ = -1;
  std::string buffer_;
  std::uint64_t next_id_ = 1;
  bool binary_ = false;
};

}  // namespace xfl::serve
