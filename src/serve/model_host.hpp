// Holds the resident TransferPredictor behind the serving hot path and
// implements atomic hot reload: a replacement model is loaded from disk
// off the hot path (caller's thread), then swapped in with one
// shared_ptr exchange under a mutex. Batches that already snapshotted
// the old model finish on it — no request ever observes a torn or
// half-loaded predictor — and the old model is destroyed when the last
// in-flight batch drops its reference. A failed reload throws and leaves
// the current model serving.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "core/predictor.hpp"

namespace xfl::serve {

class ModelHost {
 public:
  /// The predictor a batch runs against plus the version it was published
  /// under; both are captured under one lock so they always agree.
  struct Snapshot {
    std::shared_ptr<const core::TransferPredictor> predictor;
    std::uint64_t version = 0;
  };

  /// `source_path` is the default target for path-less reloads (the file
  /// the model was loaded from); empty disables them.
  explicit ModelHost(std::shared_ptr<const core::TransferPredictor> initial,
                     std::string source_path = "");

  Snapshot snapshot() const;
  std::uint64_t version() const;
  std::string source_path() const;

  /// Publish an already-built predictor; returns the new version.
  std::uint64_t swap(std::shared_ptr<const core::TransferPredictor> next);

  /// Load `path` (empty = source_path()) off the hot path and publish it.
  /// On success the path becomes the new default reload target and the
  /// new version is returned; on failure an exception propagates and the
  /// old model keeps serving, version unchanged.
  std::uint64_t reload_from_file(const std::string& path = "");

 private:
  mutable std::mutex mutex_;
  std::shared_ptr<const core::TransferPredictor> predictor_;
  std::uint64_t version_ = 1;
  std::string source_path_;
};

}  // namespace xfl::serve
