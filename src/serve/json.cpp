#include "serve/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace xfl::serve {

const JsonValue* JsonValue::find(const std::string& key) const {
  if (type != Type::kObject) return nullptr;
  const auto it = object.find(key);
  return it == object.end() ? nullptr : &it->second;
}

namespace {

/// Recursive-descent parser over a string_view. Depth is capped so a
/// hostile frame of nested brackets cannot exhaust the stack.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue value = parse_value(0);
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return value;
  }

 private:
  static constexpr int kMaxDepth = 32;

  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json parse error at offset " +
                             std::to_string(pos_) + ": " + what);
  }

  void skip_whitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  JsonValue parse_value(int depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    skip_whitespace();
    const char c = peek();
    JsonValue value;
    if (c == '{') {
      value.type = JsonValue::Type::kObject;
      parse_object(value.object, depth + 1);
    } else if (c == '[') {
      value.type = JsonValue::Type::kArray;
      parse_array(value.array, depth + 1);
    } else if (c == '"') {
      value.type = JsonValue::Type::kString;
      value.string = parse_string();
    } else if (c == 't') {
      if (!consume_literal("true")) fail("bad literal");
      value.type = JsonValue::Type::kBool;
      value.boolean = true;
    } else if (c == 'f') {
      if (!consume_literal("false")) fail("bad literal");
      value.type = JsonValue::Type::kBool;
      value.boolean = false;
    } else if (c == 'n') {
      if (!consume_literal("null")) fail("bad literal");
      value.type = JsonValue::Type::kNull;
    } else if (c == '-' || (c >= '0' && c <= '9')) {
      value.type = JsonValue::Type::kNumber;
      value.number = parse_number();
    } else {
      fail(std::string("unexpected character '") + c + "'");
    }
    return value;
  }

  void parse_object(std::map<std::string, JsonValue>& out, int depth) {
    expect('{');
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return;
    }
    for (;;) {
      skip_whitespace();
      if (peek() != '"') fail("expected object key");
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      // Duplicate keys keep the last value, like every mainstream parser.
      out[std::move(key)] = parse_value(depth);
      skip_whitespace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return;
    }
  }

  void parse_array(std::vector<JsonValue>& out, int depth) {
    expect('[');
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return;
    }
    for (;;) {
      out.push_back(parse_value(depth));
      skip_whitespace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return;
    }
  }

  void append_utf8(std::string& out, unsigned code_point) {
    if (code_point < 0x80) {
      out.push_back(static_cast<char>(code_point));
    } else if (code_point < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code_point >> 6)));
      out.push_back(static_cast<char>(0x80 | (code_point & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xE0 | (code_point >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code_point >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code_point & 0x3F)));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("control byte in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char escape = text_[pos_++];
      switch (escape) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code_point = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code_point <<= 4;
            if (h >= '0' && h <= '9') code_point |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code_point |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code_point |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape digit");
          }
          // Surrogate pairs are not needed by the protocol; map them to
          // U+FFFD rather than emitting invalid UTF-8.
          if (code_point >= 0xD800 && code_point <= 0xDFFF) code_point = 0xFFFD;
          append_utf8(out, code_point);
          break;
        }
        default: fail("bad escape character");
      }
    }
  }

  double parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || token.empty())
      fail("bad number '" + token + "'");
    return value;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue parse_json(std::string_view text) {
  return Parser(text).parse_document();
}

void append_json_string(std::string& out, std::string_view text) {
  out.push_back('"');
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

}  // namespace xfl::serve
