#include "serve/monitor.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/contracts.hpp"
#include "common/stats.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"

namespace xfl::serve {

namespace {

struct MonitorMetrics {
  obs::Counter& feedback = obs::counter("serve.feedback.count");
  obs::Counter& unmatched = obs::counter("serve.feedback.unmatched");
  obs::Counter& alarms = obs::counter("serve.drift.alarms");
  obs::Counter& cleared = obs::counter("serve.drift.cleared");
  obs::Counter& shifts = obs::counter("serve.drift.attribution_events");
  obs::Gauge& alarm = obs::gauge("serve.drift.alarm");
  obs::Gauge& mdape = obs::gauge("serve.drift.mdape_pct");
  obs::Gauge& journal = obs::gauge("serve.monitor.journal_size");
};

MonitorMetrics& monitor_metrics() {
  static MonitorMetrics metrics;
  return metrics;
}

}  // namespace

ServeMonitor::ServeMonitor() : ServeMonitor(Options()) {}

ServeMonitor::ServeMonitor(Options options) : options_(options) {
  XFL_EXPECTS(options_.journal_capacity >= 1 && options_.drift_window >= 1 &&
              options_.drift_min_samples >= 1);
}

void ServeMonitor::set_alarm_hook(AlarmHook hook) {
  std::lock_guard lock(mutex_);
  alarm_hook_ = std::move(hook);
}

void ServeMonitor::record_prediction(std::uint64_t trace_id,
                                     double rate_mbps,
                                     std::uint64_t model_version,
                                     const core::PlannedTransfer& transfer,
                                     const features::ContentionFeatures& load) {
  std::lock_guard lock(mutex_);
  windows_[model_version].predictions += 1;
  auto [it, inserted] = journal_.try_emplace(
      trace_id, Pending{rate_mbps, model_version, transfer, load});
  if (!inserted) return;  // Trace ids are unique; be defensive anyway.
  journal_order_.push_back(trace_id);
  while (journal_.size() > options_.journal_capacity) {
    journal_.erase(journal_order_.front());
    journal_order_.pop_front();
  }
  monitor_metrics().journal.set(static_cast<double>(journal_.size()));
}

bool ServeMonitor::lookup(std::uint64_t trace_id,
                          core::PlannedTransfer& transfer,
                          features::ContentionFeatures& load) const {
  std::lock_guard lock(mutex_);
  const auto it = journal_.find(trace_id);
  if (it == journal_.end()) return false;
  transfer = it->second.transfer;
  load = it->second.load;
  return true;
}

void ServeMonitor::record_attribution(std::span<const std::string> names,
                                      std::span<const double> contributions) {
  XFL_EXPECTS(names.size() == contributions.size());
  std::lock_guard lock(mutex_);
  const std::size_t cap = 2 * options_.drift_window;
  for (std::size_t c = 0; c < names.size(); ++c) {
    auto& window = attribution_[names[c]];
    window.push_back(std::abs(contributions[c]));
    while (window.size() > cap) window.pop_front();
  }
}

ServeMonitor::AttributionShift ServeMonitor::last_shift() const {
  std::lock_guard lock(mutex_);
  return last_shift_;
}

ServeMonitor::FeedbackResult ServeMonitor::record_feedback(
    std::uint64_t trace_id, double observed_mbps) {
  auto& metrics = monitor_metrics();
  metrics.feedback.add(1);
  FeedbackResult result;
  int edge = 0;
  AlarmHook hook;
  {
    std::lock_guard lock(mutex_);
    const auto it = journal_.find(trace_id);
    if (it == journal_.end() || !(observed_mbps > 0.0) ||
        !std::isfinite(observed_mbps)) {
      metrics.unmatched.add(1);
      return result;
    }
    const Pending pending = it->second;
    journal_.erase(it);  // One feedback per prediction; frees journal space.

    result.matched = true;
    result.predicted_mbps = pending.rate_mbps;
    result.model_version = pending.model_version;
    result.transfer = pending.transfer;
    result.load = pending.load;
    // The paper's APE: error relative to the observed (actual) rate.
    result.ape_pct =
        std::abs(observed_mbps - pending.rate_mbps) / observed_mbps * 100.0;

    Window& window = windows_[pending.model_version];
    window.feedback += 1;
    window.apes.push_back(result.ape_pct);
    while (window.apes.size() > options_.drift_window) window.apes.pop_front();
    edge = refresh_window(pending.model_version, window);

    result.mdape_pct = window.mdape_pct;
    result.window_count = window.apes.size();
    result.alarm = window.alarm;
    if (edge != 0) hook = alarm_hook_;  // Copied so it runs unlocked.
  }
  if (edge != 0 && hook)
    hook(result.model_version, result.mdape_pct, edge > 0);
  return result;
}

int ServeMonitor::refresh_window(std::uint64_t version, Window& window) {
  const std::vector<double> apes(window.apes.begin(), window.apes.end());
  window.mdape_pct = apes.empty() ? 0.0 : percentile(apes, 50.0);

  const bool breach = window.apes.size() >= options_.drift_min_samples &&
                      window.mdape_pct > options_.drift_threshold_pct;
  auto& metrics = monitor_metrics();
  int edge = 0;
  if (breach && !window.alarm) {
    edge = 1;
    metrics.alarms.add(1);
    XFL_LOG(warn) << "prediction drift alarm raised"
                  << obs::kv("event", "drift.raised")
                  << obs::kv("model_version", version)
                  << obs::kv("mdape_pct", window.mdape_pct)
                  << obs::kv("threshold_pct", options_.drift_threshold_pct)
                  << obs::kv("window", window.apes.size());
    emit_attribution_shift(version);
  } else if (!breach && window.alarm) {
    // The falling edge is a first-class structured event (not just a
    // gauge flip): it carries the recovering MdAPE so log pipelines can
    // close the incident the rising edge opened.
    edge = -1;
    metrics.cleared.add(1);
    XFL_LOG(info) << "prediction drift alarm cleared"
                  << obs::kv("event", "drift.cleared")
                  << obs::kv("model_version", version)
                  << obs::kv("recovered_mdape_pct", window.mdape_pct)
                  << obs::kv("threshold_pct", options_.drift_threshold_pct)
                  << obs::kv("window", window.apes.size());
  }
  window.alarm = breach;

  metrics.mdape.set(window.mdape_pct);
  bool any_alarm = false;
  for (const auto& [v, w] : windows_) any_alarm = any_alarm || w.alarm;
  metrics.alarm.set(any_alarm ? 1.0 : 0.0);
  return edge;
}

void ServeMonitor::emit_attribution_shift(std::uint64_t version) {
  // Compare each feature's mean |contribution| over the newest
  // drift_window samples (the window that tripped the alarm) against the
  // chunk before it. Features without at least one sample on each side
  // have no baseline to move from and are skipped.
  AttributionShift shift;
  shift.model_version = version;
  for (const auto& [feature, samples] : attribution_) {
    const std::size_t alarm_n = std::min(samples.size(), options_.drift_window);
    const std::size_t baseline_n = samples.size() - alarm_n;
    if (alarm_n == 0 || baseline_n == 0) continue;
    double baseline_sum = 0.0, alarm_sum = 0.0;
    std::size_t i = 0;
    for (const double v : samples) {
      (i++ < baseline_n ? baseline_sum : alarm_sum) += v;
    }
    ShiftEntry entry;
    entry.feature = feature;
    entry.baseline_mean_mbps = baseline_sum / static_cast<double>(baseline_n);
    entry.alarm_mean_mbps = alarm_sum / static_cast<double>(alarm_n);
    entry.delta_mbps = entry.alarm_mean_mbps - entry.baseline_mean_mbps;
    shift.ranked.push_back(std::move(entry));
  }
  if (shift.ranked.empty()) return;  // No attribution data joined yet.
  std::sort(shift.ranked.begin(), shift.ranked.end(),
            [](const ShiftEntry& a, const ShiftEntry& b) {
              const double da = std::abs(a.delta_mbps);
              const double db = std::abs(b.delta_mbps);
              if (da != db) return da > db;
              return a.feature < b.feature;
            });
  shift.valid = true;
  shift.events = last_shift_.events + 1;
  monitor_metrics().shifts.add(1);

  const std::size_t top = std::min<std::size_t>(shift.ranked.size(), 3);
  std::string ranking = shift.ranked[0].feature;
  for (std::size_t r = 1; r < top; ++r) ranking += ">" + shift.ranked[r].feature;
  XFL_LOG(warn) << "drift attribution shift"
                << obs::kv("event", "drift.attribution")
                << obs::kv("model_version", version)
                << obs::kv("features_ranked", shift.ranked.size())
                << obs::kv("top_feature", shift.ranked[0].feature)
                << obs::kv("top_delta_mbps", shift.ranked[0].delta_mbps)
                << obs::kv("top_baseline_mbps",
                           shift.ranked[0].baseline_mean_mbps)
                << obs::kv("top_alarm_mbps", shift.ranked[0].alarm_mean_mbps)
                << obs::kv("ranking", ranking);
  last_shift_ = std::move(shift);
}

std::map<std::uint64_t, ServeMonitor::VersionStats>
ServeMonitor::version_stats() const {
  std::lock_guard lock(mutex_);
  std::map<std::uint64_t, VersionStats> out;
  for (const auto& [version, window] : windows_) {
    VersionStats stats;
    stats.predictions = window.predictions;
    stats.feedback = window.feedback;
    stats.mdape_pct = window.mdape_pct;
    stats.window_count = window.apes.size();
    stats.alarm = window.alarm;
    out.emplace(version, stats);
  }
  return out;
}

bool ServeMonitor::alarm_active() const {
  std::lock_guard lock(mutex_);
  for (const auto& [version, window] : windows_)
    if (window.alarm) return true;
  return false;
}

std::size_t ServeMonitor::journal_size() const {
  std::lock_guard lock(mutex_);
  return journal_.size();
}

}  // namespace xfl::serve
