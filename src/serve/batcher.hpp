// Micro-batching queue between connection threads and the predictor.
// Connection threads submit() individual requests; a single batch worker
// drains up to max_batch of them at a time and answers the whole batch
// with one TransferPredictor::predict_rates_mbps call, so the flattened
// lockstep kernel — built for exactly this serving path — is exercised
// per batch instead of once per request.
//
// Admission control happens at submit(): the queue is bounded, and a
// full queue (or a draining batcher) is an immediate structured
// rejection on the caller's thread, never unbounded latency. Each item
// may carry an absolute deadline; items whose deadline passed while
// queued are answered with a timeout error instead of being predicted.
//
// Completion callbacks run on the batch worker thread with no batcher
// lock held, so they may submit follow-up work or write to sockets.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/predictor.hpp"
#include "features/contention.hpp"
#include "serve/model_host.hpp"

namespace xfl::serve {

/// Result of one batched prediction, delivered to the item's callback.
struct PredictOutcome {
  bool ok = false;
  double rate_mbps = 0.0;
  bool edge_model = false;          ///< Dedicated edge model vs. global.
  std::uint64_t model_version = 0;  ///< ModelHost version that answered.
  const char* error = nullptr;      ///< Protocol error code when !ok.
  std::string message;
};

/// One queued request.
struct BatchItem {
  core::PlannedTransfer transfer;
  features::ContentionFeatures load;
  /// Server-assigned trace id; propagated through the queue into the
  /// worker batch so the response and stage timings stay correlatable.
  std::uint64_t trace_id = 0;
  /// obs::monotonic_us() when the frame was received (set by the server;
  /// the queue-wait histogram measures from submit, this one anchors the
  /// end-to-end server_ms figure).
  std::uint64_t received_us = 0;
  /// Absolute obs::monotonic_us() deadline; 0 = none. Checked when the
  /// batch worker picks the item up.
  std::uint64_t deadline_us = 0;
  /// Set by submit(); queue wait is measured from here.
  std::uint64_t enqueue_us = 0;
  std::function<void(const PredictOutcome&)> done;
};

class MicroBatcher {
 public:
  struct Options {
    std::size_t max_batch = 64;        ///< Rows coalesced per predict call.
    std::size_t queue_capacity = 1024; ///< Admission bound.
    /// Worker threads for the flat kernel inside a batch: 1 = serial on
    /// the batch thread, N > 1 = dedicated ThreadPool of N.
    std::size_t predict_threads = 1;
  };

  enum class Admission { kAccepted, kOverloaded, kShuttingDown };

  MicroBatcher(ModelHost& host, Options options);
  ~MicroBatcher();

  MicroBatcher(const MicroBatcher&) = delete;
  MicroBatcher& operator=(const MicroBatcher&) = delete;

  /// Enqueue one request. kAccepted guarantees `item.done` will be called
  /// exactly once (possibly with a timeout outcome); the rejections
  /// guarantee it will never be called, so the caller answers instead.
  Admission submit(BatchItem item);

  /// Halt batch execution while keeping admission open (queued items wait;
  /// ops lever and the deterministic overload/deadline test hook).
  void pause();
  void resume();

  /// Process everything already admitted, then stop the worker. Further
  /// submits return kShuttingDown. Clears any pause so drain always
  /// terminates. Idempotent.
  void drain_and_stop();

  std::size_t queue_depth() const;

 private:
  void worker_loop();
  void process(std::vector<BatchItem>& batch);

  ModelHost& host_;
  Options options_;
  std::unique_ptr<ThreadPool> pool_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<BatchItem> queue_;
  bool paused_ = false;
  bool stopping_ = false;
  std::mutex stop_mutex_;  ///< Serialises drain_and_stop() joins.
  std::thread worker_;
};

}  // namespace xfl::serve
