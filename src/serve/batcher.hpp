// Sharded micro-batching stage between the event loop and the predictor.
// The server submits individual requests into one of N shards — each
// shard is a bounded queue owned by exactly one worker thread, so the
// hot path has no shared queue and no contended lock (the MAGPIE
// per-worker-state idiom). Each worker drains up to max_batch of its own
// items at a time and answers the whole batch with one
// TransferPredictor::predict_rates_mbps call, so the flattened lockstep
// kernel — built for exactly this serving path — is exercised per batch
// instead of once per request.
//
// Work stealing happens only on imbalance: a worker that finds its own
// queue empty takes half of the deepest sibling's backlog. Admission
// never spills — a full shard rejects even if siblings have room, which
// keeps per-connection admission deterministic (a connection is pinned
// to one shard) and bounds every queue independently.
//
// Admission control happens at submit(): the queue is bounded per shard,
// and a full queue (or a draining batcher) is an immediate structured
// rejection on the caller's thread, never unbounded latency. Each item
// may carry an absolute deadline; items whose deadline passed while
// queued are answered with a timeout error instead of being predicted.
//
// Completion callbacks run on a worker thread with no batcher lock held,
// so they may submit follow-up work or write to sockets.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/predictor.hpp"
#include "features/contention.hpp"
#include "serve/model_host.hpp"

namespace xfl::serve {

/// Result of one batched prediction, delivered to the item's callback.
struct PredictOutcome {
  bool ok = false;
  double rate_mbps = 0.0;
  bool edge_model = false;          ///< Dedicated edge model vs. global.
  std::uint64_t model_version = 0;  ///< ModelHost version that answered.
  const char* error = nullptr;      ///< Protocol error code when !ok.
  std::string message;
  /// Explain items only: the full Saabas attribution of rate_mbps (the
  /// rate itself is bit-identical to the plain predict path).
  bool explained = false;
  core::RateExplanation explanation;
};

/// One queued request.
struct BatchItem {
  core::PlannedTransfer transfer;
  features::ContentionFeatures load;
  /// Route through the attribution kernel; the outcome carries the
  /// explanation. Explain rows ride the same queue and batch as plain
  /// predicts — they are partitioned only at the kernel call.
  bool explain = false;
  /// Server-assigned trace id; propagated through the queue into the
  /// worker batch so the response and stage timings stay correlatable.
  std::uint64_t trace_id = 0;
  /// obs::monotonic_us() when the frame was received (set by the server;
  /// the queue-wait histogram measures from submit, this one anchors the
  /// end-to-end server_ms figure).
  std::uint64_t received_us = 0;
  /// Absolute obs::monotonic_us() deadline; 0 = none. Checked when the
  /// batch worker picks the item up.
  std::uint64_t deadline_us = 0;
  /// Set by submit(); queue wait is measured from here.
  std::uint64_t enqueue_us = 0;
  std::function<void(const PredictOutcome&)> done;
};

class MicroBatcher {
 public:
  struct Options {
    std::size_t max_batch = 64;        ///< Rows coalesced per predict call.
    std::size_t queue_capacity = 1024; ///< Admission bound, per shard.
    /// Worker threads for the flat kernel inside a batch: 1 = serial on
    /// the shard worker, N > 1 = a dedicated ThreadPool of N per shard.
    std::size_t predict_threads = 1;
    /// Shard (worker) count. Every shard owns one queue and one worker;
    /// single-shard batchers behave exactly like the pre-shard design.
    std::size_t shards = 1;
    /// Called on the worker thread around every batch's callback runs:
    /// hook(true) before the first `done` of a batch, hook(false) after
    /// the last (including early exits). Lets the server cork socket
    /// writes for the whole batch and flush each connection once instead
    /// of paying one send(2) per reply. May be empty.
    std::function<void(bool)> batch_hook;
  };

  enum class Admission { kAccepted, kOverloaded, kShuttingDown };

  MicroBatcher(ModelHost& host, Options options);
  ~MicroBatcher();

  MicroBatcher(const MicroBatcher&) = delete;
  MicroBatcher& operator=(const MicroBatcher&) = delete;

  /// Enqueue one request on `shard` (wrapped modulo the shard count; the
  /// single-argument form targets shard 0). kAccepted guarantees
  /// `item.done` will be called exactly once (possibly with a timeout
  /// outcome); the rejections guarantee it will never be called, so the
  /// caller answers instead.
  Admission submit(BatchItem item) { return submit(std::move(item), 0); }
  Admission submit(BatchItem item, std::size_t shard);

  /// Enqueue a burst on one shard under a single lock + notify (the event
  /// loop submits every frame a readiness round decoded in one call).
  /// Admits a prefix: returns how many items were moved off the front of
  /// `items`; the remainder is left untouched and `status` names why
  /// admission stopped (kAccepted when everything fit). Admitted items
  /// carry the same done-exactly-once guarantee as submit().
  std::size_t submit_burst(std::vector<BatchItem>& items, std::size_t shard,
                           Admission& status);

  /// Halt batch execution on every shard while keeping admission open
  /// (queued items wait; ops lever and the deterministic
  /// overload/deadline test hook).
  void pause();
  void resume();

  /// Process everything already admitted on every shard, then stop the
  /// workers. Further submits return kShuttingDown. Clears any pause so
  /// drain always terminates. Idempotent.
  void drain_and_stop();

  /// Total queued items across all shards.
  std::size_t queue_depth() const;

  std::size_t shard_count() const { return shards_.size(); }
  /// Items moved between shards by work stealing since construction.
  std::uint64_t steals() const {
    return steals_.load(std::memory_order_relaxed);
  }

 private:
  /// One queue + its owning worker. `size` mirrors queue.size() so the
  /// steal scan can rank shards without taking every lock.
  struct Shard {
    mutable std::mutex mutex;
    std::condition_variable cv;
    std::deque<BatchItem> queue;
    std::atomic<std::size_t> size{0};
    std::unique_ptr<ThreadPool> pool;
    std::thread worker;
  };

  void worker_loop(std::size_t index);
  /// Move up to half of the deepest sibling's backlog into `batch`.
  bool try_steal(std::size_t thief, std::vector<BatchItem>& batch);
  void process(std::vector<BatchItem>& batch, ThreadPool* pool);
  void notify_all_shards();

  ModelHost& host_;
  Options options_;
  std::vector<std::unique_ptr<Shard>> shards_;
  // Lifecycle flags are atomics read in cv predicates; every setter
  // takes each shard mutex around its notify so wakeups are never lost.
  std::atomic<bool> paused_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> steals_{0};
  std::atomic<std::size_t> total_depth_{0};
  std::mutex stop_mutex_;  ///< Serialises drain_and_stop() joins.
};

}  // namespace xfl::serve
