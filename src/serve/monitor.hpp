// Online prediction-accuracy and drift monitor for the serve path — the
// operational analogue of the paper's §5.5 unknown-load study, where
// offline accuracy collapsed once unmonitored load appeared. The server
// records every answered prediction in a bounded journal keyed by trace
// id; clients report the observed average rate after the transfer
// completes via a `feedback` frame, and the monitor joins the two,
// maintains a rolling window of absolute percentage errors per model
// version, and recomputes the windowed MdAPE (the paper's accuracy
// metric) on every join. When the window holds enough samples and its
// MdAPE exceeds the configured threshold, a structured drift alarm is
// raised: one warn log on the rising edge, the serve.drift.* metrics,
// and an `alarm` field in `stats` and feedback responses.
//
// The monitor also explains drift, not just detects it: the server
// explains every joined feedback observation (the Saabas attribution of
// the prediction that transfer was scheduled on) and records the
// per-feature |contribution| values here in rolling windows twice the
// drift window deep. On the alarm's rising edge the monitor compares
// each feature's mean |contribution| over the newest drift_window
// samples against the preceding baseline chunk, ranks features by how
// much their attribution mass moved, and emits one structured
// `drift.attribution` warn event naming the movers — turning "the model
// is wrong" into "the model is wrong and it started leaning on X".
//
// All entry points lock one mutex. Predictions arrive from the batch
// worker (one journal insert per answered request) and feedback from
// connection threads (one per completed transfer) — both orders of
// magnitude below the contention the sharded metric cells are built for,
// so a plain mutex keeps the window arithmetic exact and trivially
// TSan-clean.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/predictor.hpp"
#include "features/contention.hpp"

namespace xfl::serve {

class ServeMonitor {
 public:
  struct Options {
    /// Predictions remembered while awaiting feedback; FIFO eviction.
    std::size_t journal_capacity = 4096;
    /// Rolling APE window per model version.
    std::size_t drift_window = 64;
    /// Windowed MdAPE (percent) above which the drift alarm raises.
    double drift_threshold_pct = 30.0;
    /// Minimum feedback samples in the window before the alarm may fire.
    std::size_t drift_min_samples = 16;
  };

  /// Result of joining one feedback record, echoed in the response. A
  /// matched join also returns the prediction's captured request features
  /// (transfer + expected load), so the caller can journal the complete
  /// observation — the training record the retrain subsystem refits from.
  struct FeedbackResult {
    bool matched = false;       ///< Trace id was in the journal.
    double ape_pct = 0.0;       ///< |observed - predicted| / observed * 100.
    double predicted_mbps = 0.0;
    std::uint64_t model_version = 0;
    double mdape_pct = 0.0;     ///< Windowed MdAPE for that version.
    std::size_t window_count = 0;
    bool alarm = false;         ///< Alarm state for that version after join.
    core::PlannedTransfer transfer;       ///< Matched joins only.
    features::ContentionFeatures load;    ///< Matched joins only.
  };

  /// Alarm edge callback: raised == true on the rising edge, false on the
  /// falling edge, with the window's MdAPE at the flip. Invoked from
  /// record_feedback AFTER the monitor mutex is released (monitor entry
  /// points may be called back into), on the thread that reported the
  /// feedback — keep it cheap and non-blocking (the retrain worker's hook
  /// just nudges a condition variable).
  using AlarmHook =
      std::function<void(std::uint64_t model_version, double mdape_pct,
                         bool raised)>;

  /// One feature's attribution movement between the baseline chunk and
  /// the alarm-window chunk (means of |contribution| in MB/s).
  struct ShiftEntry {
    std::string feature;
    double baseline_mean_mbps = 0.0;
    double alarm_mean_mbps = 0.0;
    double delta_mbps = 0.0;  ///< alarm_mean - baseline_mean.
  };

  /// The report behind one `drift.attribution` event: every feature with
  /// samples in both chunks, ranked by |delta_mbps| descending (ties by
  /// name). valid stays false until the first event fires.
  struct AttributionShift {
    bool valid = false;
    std::uint64_t events = 0;         ///< drift.attribution events so far.
    std::uint64_t model_version = 0;  ///< Version whose alarm triggered it.
    std::vector<ShiftEntry> ranked;
  };

  /// Per-model-version aggregate for the `stats` admin command.
  struct VersionStats {
    std::uint64_t predictions = 0;  ///< Answered predict requests.
    std::uint64_t feedback = 0;     ///< Matched feedback joins.
    double mdape_pct = 0.0;         ///< Windowed MdAPE (0 when no feedback).
    std::size_t window_count = 0;
    bool alarm = false;
  };

  ServeMonitor();
  explicit ServeMonitor(Options options);

  const Options& options() const { return options_; }

  /// Journal one answered prediction (batch-worker callback path). The
  /// transfer and expected load ride along so a later matched feedback
  /// join can hand the caller the full observation; omitting them keeps
  /// the old accuracy-only behaviour.
  void record_prediction(std::uint64_t trace_id, double rate_mbps,
                         std::uint64_t model_version,
                         const core::PlannedTransfer& transfer = {},
                         const features::ContentionFeatures& load = {});

  /// Peek a journalled prediction without consuming it, so the caller can
  /// explain the joined observation BEFORE record_feedback erases the
  /// entry (and before the alarm edge it may trigger reads the
  /// attribution windows). Returns false for unknown trace ids.
  bool lookup(std::uint64_t trace_id, core::PlannedTransfer& transfer,
              features::ContentionFeatures& load) const;

  /// Record one explained observation's per-feature |contribution|
  /// values (parallel spans, the serving model's feature order). Windows
  /// are capped at 2 * drift_window per feature so a rising alarm edge
  /// can compare the newest drift_window chunk against the preceding
  /// baseline chunk. Call before record_feedback for the same trace id.
  void record_attribution(std::span<const std::string> names,
                          std::span<const double> contributions);

  /// Join an observed rate to its prediction. Unknown trace ids (evicted,
  /// duplicate, or bogus) return matched=false and change no window.
  FeedbackResult record_feedback(std::uint64_t trace_id,
                                 double observed_mbps);

  /// The report of the most recent drift.attribution event (valid ==
  /// false until the first alarm rising edge with attribution data).
  AttributionShift last_shift() const;

  /// Aggregates per model version, keyed by version.
  std::map<std::uint64_t, VersionStats> version_stats() const;

  /// True while any version's window breaches the threshold.
  bool alarm_active() const;

  std::size_t journal_size() const;

  /// Install the alarm edge callback (see AlarmHook). Install before
  /// traffic flows; replacing it mid-flight is racy by design.
  void set_alarm_hook(AlarmHook hook);

 private:
  struct Pending {
    double rate_mbps = 0.0;
    std::uint64_t model_version = 0;
    core::PlannedTransfer transfer;
    features::ContentionFeatures load;
  };
  struct Window {
    std::uint64_t predictions = 0;
    std::uint64_t feedback = 0;
    std::deque<double> apes;
    double mdape_pct = 0.0;
    bool alarm = false;
  };

  /// Recompute the windowed MdAPE and alarm edge. Caller holds mutex_.
  /// Returns +1 on a rising edge, -1 on a falling edge, 0 otherwise, so
  /// record_feedback can fire the hook after releasing the mutex.
  int refresh_window(std::uint64_t version, Window& window);

  /// Build and publish the attribution-shift report for a rising alarm
  /// edge (stores last_shift_, bumps the event counter, emits the
  /// drift.attribution warn log). Caller holds mutex_.
  void emit_attribution_shift(std::uint64_t version);

  Options options_;
  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t, Pending> journal_;
  std::deque<std::uint64_t> journal_order_;  ///< FIFO eviction order.
  std::map<std::uint64_t, Window> windows_;  ///< Keyed by model version.
  /// Rolling |contribution| windows per feature name, each capped at
  /// 2 * drift_window (alarm chunk + baseline chunk).
  std::map<std::string, std::deque<double>> attribution_;
  AttributionShift last_shift_;  ///< Report of the latest event.
  AlarmHook alarm_hook_;  ///< Fired outside mutex_; set before traffic.
};

}  // namespace xfl::serve
