// Online prediction-accuracy and drift monitor for the serve path — the
// operational analogue of the paper's §5.5 unknown-load study, where
// offline accuracy collapsed once unmonitored load appeared. The server
// records every answered prediction in a bounded journal keyed by trace
// id; clients report the observed average rate after the transfer
// completes via a `feedback` frame, and the monitor joins the two,
// maintains a rolling window of absolute percentage errors per model
// version, and recomputes the windowed MdAPE (the paper's accuracy
// metric) on every join. When the window holds enough samples and its
// MdAPE exceeds the configured threshold, a structured drift alarm is
// raised: one warn log on the rising edge, the serve.drift.* metrics,
// and an `alarm` field in `stats` and feedback responses.
//
// All entry points lock one mutex. Predictions arrive from the batch
// worker (one journal insert per answered request) and feedback from
// connection threads (one per completed transfer) — both orders of
// magnitude below the contention the sharded metric cells are built for,
// so a plain mutex keeps the window arithmetic exact and trivially
// TSan-clean.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <unordered_map>

namespace xfl::serve {

class ServeMonitor {
 public:
  struct Options {
    /// Predictions remembered while awaiting feedback; FIFO eviction.
    std::size_t journal_capacity = 4096;
    /// Rolling APE window per model version.
    std::size_t drift_window = 64;
    /// Windowed MdAPE (percent) above which the drift alarm raises.
    double drift_threshold_pct = 30.0;
    /// Minimum feedback samples in the window before the alarm may fire.
    std::size_t drift_min_samples = 16;
  };

  /// Result of joining one feedback record, echoed in the response.
  struct FeedbackResult {
    bool matched = false;       ///< Trace id was in the journal.
    double ape_pct = 0.0;       ///< |observed - predicted| / observed * 100.
    double predicted_mbps = 0.0;
    std::uint64_t model_version = 0;
    double mdape_pct = 0.0;     ///< Windowed MdAPE for that version.
    std::size_t window_count = 0;
    bool alarm = false;         ///< Alarm state for that version after join.
  };

  /// Per-model-version aggregate for the `stats` admin command.
  struct VersionStats {
    std::uint64_t predictions = 0;  ///< Answered predict requests.
    std::uint64_t feedback = 0;     ///< Matched feedback joins.
    double mdape_pct = 0.0;         ///< Windowed MdAPE (0 when no feedback).
    std::size_t window_count = 0;
    bool alarm = false;
  };

  ServeMonitor();
  explicit ServeMonitor(Options options);

  const Options& options() const { return options_; }

  /// Journal one answered prediction (batch-worker callback path).
  void record_prediction(std::uint64_t trace_id, double rate_mbps,
                         std::uint64_t model_version);

  /// Join an observed rate to its prediction. Unknown trace ids (evicted,
  /// duplicate, or bogus) return matched=false and change no window.
  FeedbackResult record_feedback(std::uint64_t trace_id,
                                 double observed_mbps);

  /// Aggregates per model version, keyed by version.
  std::map<std::uint64_t, VersionStats> version_stats() const;

  /// True while any version's window breaches the threshold.
  bool alarm_active() const;

  std::size_t journal_size() const;

 private:
  struct Pending {
    double rate_mbps = 0.0;
    std::uint64_t model_version = 0;
  };
  struct Window {
    std::uint64_t predictions = 0;
    std::uint64_t feedback = 0;
    std::deque<double> apes;
    double mdape_pct = 0.0;
    bool alarm = false;
  };

  /// Recompute the windowed MdAPE and alarm edge. Caller holds mutex_.
  void refresh_window(std::uint64_t version, Window& window);

  Options options_;
  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t, Pending> journal_;
  std::deque<std::uint64_t> journal_order_;  ///< FIFO eviction order.
  std::map<std::uint64_t, Window> windows_;  ///< Keyed by model version.
};

}  // namespace xfl::serve
