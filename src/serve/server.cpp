#include "serve/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <span>
#include <stdexcept>
#include <utility>

#include "common/contracts.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace xfl::serve {

namespace {

struct ServerMetrics {
  obs::Counter& accepted = obs::counter("serve.conn.accepted");
  obs::Gauge& active = obs::gauge("serve.conn.active");
  obs::Gauge& uptime = obs::gauge("serve.uptime_seconds");
  obs::Counter& frame_timeouts = obs::counter("serve.conn.frame_timeout");
  obs::Counter& binary_upgrades = obs::counter("serve.conn.binary");
  obs::Counter& requests = obs::counter("serve.request.count");
  obs::Counter& admin = obs::counter("serve.request.admin");
  obs::Counter& feedback = obs::counter("serve.request.feedback");
  obs::Counter& bad = obs::counter("serve.request.bad");
  obs::Counter& overloaded = obs::counter("serve.request.overloaded");
  obs::Counter& shutting_down = obs::counter("serve.request.shutting_down");
  obs::Counter& ok = obs::counter("serve.response.ok");
  obs::Counter& errors = obs::counter("serve.response.error");
  // Stage timers with fine log-spaced buckets (quantiles are exported).
  obs::Histogram& parse = obs::histogram("serve.request.parse_us",
                                         obs::quantile_latency_bounds_us());
  obs::Histogram& server_time = obs::histogram(
      "serve.request.server_us", obs::quantile_latency_bounds_us());
};

ServerMetrics& server_metrics() {
  static ServerMetrics metrics;
  return metrics;
}

/// Stage quantile summary for the stats report, resolved by name so the
/// batcher's TU-local histograms are reachable too.
StageQuantiles stage_quantiles(const char* name) {
  const auto snap =
      obs::Registry::instance().histogram(name, {}).snapshot();
  StageQuantiles q;
  q.count = snap.count;
  q.p50 = snap.quantile(50.0);
  q.p95 = snap.quantile(95.0);
  q.p99 = snap.quantile(99.0);
  return q;
}

/// A write buffer past this limit means the peer stopped reading long
/// ago; treat it like a dead socket instead of buffering without bound.
constexpr std::size_t kMaxOutBufferBytes = 8u << 20;

// Build provenance surfaced in the startup log so a log reader can tell
// which toolchain and flags produced the binary answering on this port.
#if defined(__clang__)
constexpr const char* kCompiler = "clang";
#elif defined(__GNUC__)
constexpr const char* kCompiler = "gcc";
#else
constexpr const char* kCompiler = "unknown";
#endif

#ifndef XFL_BUILD_FLAGS
#define XFL_BUILD_FLAGS ""
#endif

/// Resolve Options::shards == 0 (auto) before the batcher is built.
PredictionServer::Options normalize(PredictionServer::Options options) {
  if (options.shards == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    options.shards = std::clamp<std::size_t>(hw == 0 ? 1 : hw, 1, 4);
  }
  return options;
}

}  // namespace

/// One accepted socket and all of its state. Ownership rules keep the
/// hot path lock-free-ish and TSan-clean:
///   - Plain fields below `// poll-thread state` are touched only by the
///     poll thread (read buffer, framing mode, epoll interest).
///   - `out_mutex` guards the write side (out buffer, want_write,
///     closed, write_failed) because batch workers append responses.
///   - `read_closed` / `in_flight` are atomics: workers consult them to
///     decide whether the poll thread must re-check close eligibility.
/// The fd is closed only by the destructor, so a batcher callback still
/// holding a shared_ptr writes to a valid (if shut-down) descriptor —
/// never to a recycled one.
struct PredictionServer::Connection {
  Connection(int fd, std::size_t shard) : fd(fd), shard(shard) {}
  ~Connection() {
    if (fd >= 0) ::close(fd);
  }

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  const int fd;
  const std::size_t shard;  ///< Batcher shard this connection is pinned to.

  // poll-thread state
  std::string in;        ///< Bytes received, not yet framed.
  bool binary = false;   ///< Negotiated length-prefixed framing.
  bool dead = false;     ///< Removed from the fd table; ignore events.
  std::uint32_t interest = 0;            ///< Current epoll event mask.
  std::uint64_t partial_since_us = 0;    ///< First byte of a partial frame.

  // cross-thread state
  std::atomic<bool> read_closed{false};  ///< EOF seen or input abandoned.
  std::atomic<std::size_t> in_flight{0}; ///< Requests awaiting a response.
  std::mutex out_mutex;
  std::string out;            ///< Bytes the socket would not take yet.
  bool want_write = false;    ///< EPOLLOUT wanted (out non-empty).
  bool closed = false;        ///< Logical close: drop further output.
  bool write_failed = false;  ///< Peer is gone; connection is doomed.
};

/// Per-thread cork: batch workers collect the connections they wrote to
/// during one batch and flush each exactly once at batch end. Thread
/// local, so shards never contend and non-worker threads (poll, admin)
/// see an inactive cork and keep the immediate-send fast path.
struct PredictionServer::Cork {
  bool active = false;
  std::vector<std::shared_ptr<Connection>> pending;
};

/// A decoded predict frame parked by handle_frame until the readiness
/// round's flush_predict_burst. Carries everything the rejection path
/// needs to answer without the Frame (which dies with the input buffer).
/// The item already holds one in_flight reference.
struct PredictionServer::PendingPredict {
  BatchItem item;
  bool packed = false;  ///< Arrived as a binary kPredict frame.
  bool wrap = false;    ///< Connection had negotiated binary framing.
  std::uint64_t wire_id = 0;
  std::string id;
  std::uint64_t trace_id = 0;
  std::uint64_t received_us = 0;
};

PredictionServer::Cork& PredictionServer::cork_state() {
  static thread_local Cork cork;
  return cork;
}

PredictionServer::PredictionServer(ModelHost& host)
    : PredictionServer(host, Options()) {}

PredictionServer::PredictionServer(ModelHost& host, Options options)
    : host_(host),
      options_(normalize(std::move(options))),
      batcher_(host,
               MicroBatcher::Options{options_.max_batch,
                                     options_.queue_capacity,
                                     options_.predict_threads,
                                     options_.shards,
                                     [this](bool begin) {
                                       if (begin)
                                         cork_begin();
                                       else
                                         cork_end();
                                     }}),
      monitor_(options_.monitor) {}

PredictionServer::~PredictionServer() { stop(); }

void PredictionServer::start() {
  {
    std::lock_guard lock(state_mutex_);
    XFL_EXPECTS(!started_);
    started_ = true;
  }

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0)
    throw std::runtime_error(std::string("PredictionServer: epoll_create1: ") +
                             std::strerror(errno));
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wake_fd_ < 0) {
    ::close(epoll_fd_);
    epoll_fd_ = -1;
    throw std::runtime_error(std::string("PredictionServer: eventfd: ") +
                             std::strerror(errno));
  }

  listen_fd_ =
      ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC | SOCK_NONBLOCK, 0);
  if (listen_fd_ < 0)
    throw std::runtime_error(std::string("PredictionServer: socket: ") +
                             std::strerror(errno));
  const int enable = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof enable);

  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(),
                  &address.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("PredictionServer: bad bind address '" +
                             options_.bind_address + "'");
  }
  // Backlog sized for connection-storm tests (1k clients connecting at
  // once); the kernel clamps to somaxconn.
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&address),
             sizeof address) != 0 ||
      ::listen(listen_fd_, 1024) != 0) {
    const std::string what = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("PredictionServer: bind/listen on " +
                             options_.bind_address + ":" +
                             std::to_string(options_.port) + ": " + what);
  }
  socklen_t address_len = sizeof address;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&address),
                &address_len);
  port_ = ntohs(address.sin_port);

  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.fd = wake_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);

  poll_thread_ = std::thread([this] { poll_loop(); });
  start_us_ = obs::monotonic_us();
  server_metrics().uptime.set(0.0);
  XFL_LOG(info) << "prediction server listening"
                << obs::kv("address", options_.bind_address)
                << obs::kv("port", port_)
                << obs::kv("max_batch", options_.max_batch)
                << obs::kv("queue_capacity", options_.queue_capacity)
                << obs::kv("shards", batcher_.shard_count())
                << obs::kv("kernel",
                           host_.snapshot().predictor->serving_kernel());
  XFL_LOG(info) << "prediction server build info"
                << obs::kv("compiler", kCompiler)
                << obs::kv("compiler_version", __VERSION__)
                << obs::kv("flags", XFL_BUILD_FLAGS)
#ifdef NDEBUG
                << obs::kv("assertions", "off")
#else
                << obs::kv("assertions", "on")
#endif
                << obs::kv("kernel",
                           host_.snapshot().predictor->serving_kernel());
}

void PredictionServer::stop() {
  {
    std::lock_guard lock(state_mutex_);
    if (!started_ || stopped_) return;
    stopped_ = true;
  }
  // 1. Stop accepting: the poll thread closes the listen socket on the
  //    next iteration but keeps serving reads and flushing writes.
  stopping_.store(true);
  wake();

  // 2. Drain: everything already admitted gets a real answer (the poll
  //    loop flushes response bytes while this blocks); requests read
  //    after this point get a structured "shutting_down".
  batcher_.drain_and_stop();
  join_admin_threads();

  // 3. Flush: the poll loop pushes out every buffered response (bounded
  //    by drain_flush_timeout_ms), closes all connections, and exits.
  flush_and_exit_.store(true);
  wake();
  if (poll_thread_.joinable()) poll_thread_.join();

  if (listen_fd_ >= 0) ::close(listen_fd_);
  listen_fd_ = -1;
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  epoll_fd_ = -1;
  if (wake_fd_ >= 0) ::close(wake_fd_);
  wake_fd_ = -1;
  server_metrics().active.set(0.0);
  XFL_LOG(info) << "prediction server stopped" << obs::kv("port", port_);
}

void PredictionServer::wake() {
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof one);
}

void PredictionServer::poll_loop() {
  std::vector<epoll_event> events(128);
  bool accepting = true;
  std::uint64_t flush_deadline_us = 0;
  std::uint64_t last_sweep_us = 0;
  for (;;) {
    const int n = ::epoll_wait(epoll_fd_, events.data(),
                               static_cast<int>(events.size()), 100);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // epoll fd gone; nothing left to serve.
    }
    for (int i = 0; i < n; ++i) {
      const epoll_event& ev = events[i];
      const int fd = ev.data.fd;
      if (fd == wake_fd_) {
        std::uint64_t drained = 0;
        [[maybe_unused]] const ssize_t r =
            ::read(wake_fd_, &drained, sizeof drained);
        continue;
      }
      if (accepting && fd == listen_fd_) {
        handle_accepts();
        continue;
      }
      // Copy the shared_ptr: a handler may close and unregister the slot.
      const std::shared_ptr<Connection> conn =
          static_cast<std::size_t>(fd) < conns_.size() ? conns_[fd] : nullptr;
      if (!conn) continue;
      if (ev.events & EPOLLOUT) handle_writable(conn);
      if (!conn->dead && (ev.events & (EPOLLIN | EPOLLHUP | EPOLLERR)))
        handle_readable(conn);
    }
    drain_pending_attention();

    if (stopping_.load(std::memory_order_relaxed) && accepting) {
      accepting = false;
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
      ::close(listen_fd_);
      listen_fd_ = -1;
    }

    const std::uint64_t now_us = obs::monotonic_us();
    // Sweeping walks the whole fd table; twice a second is plenty for a
    // multi-second timeout and keeps the walk off the hot path.
    if (now_us - last_sweep_us >= 500000) {
      last_sweep_us = now_us;
      sweep_partial_frame_timeouts(now_us);
    }

    if (flush_and_exit_.load(std::memory_order_relaxed)) {
      if (flush_deadline_us == 0)
        flush_deadline_us = now_us + options_.drain_flush_timeout_ms * 1000;
      bool pending = false;
      for (const auto& conn : conns_) {
        if (!conn) continue;
        if (conn->in_flight.load(std::memory_order_relaxed) > 0) {
          pending = true;
          break;
        }
        std::lock_guard lock(conn->out_mutex);
        if (!conn->out.empty() && !conn->write_failed) {
          pending = true;
          break;
        }
      }
      if (!pending || now_us >= flush_deadline_us) break;
    }
  }
  for (std::size_t fd = 0; fd < conns_.size(); ++fd) {
    const std::shared_ptr<Connection> conn = conns_[fd];
    if (conn) close_connection(conn);
  }
}

void PredictionServer::handle_accepts() {
  for (;;) {
    const int fd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return;  // EAGAIN: the backlog is empty.
    }
    if (stopping_.load(std::memory_order_relaxed)) {
      ::close(fd);
      continue;
    }
    const int nodelay = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &nodelay, sizeof nodelay);
    // Round-robin shard pinning: a connection's requests all land on one
    // shard, so per-connection admission order stays deterministic.
    auto conn = std::make_shared<Connection>(
        fd, next_shard_.fetch_add(1, std::memory_order_relaxed) %
                batcher_.shard_count());
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0)
      continue;  // Connection destructor closes the fd.
    conn->interest = EPOLLIN;
    if (static_cast<std::size_t>(fd) >= conns_.size())
      conns_.resize(static_cast<std::size_t>(fd) + 1);
    conns_[static_cast<std::size_t>(fd)] = std::move(conn);
    server_metrics().accepted.add(1);
    server_metrics().active.set(static_cast<double>(
        conn_count_.fetch_add(1, std::memory_order_relaxed) + 1));
  }
}

void PredictionServer::handle_readable(
    const std::shared_ptr<Connection>& conn) {
  if (conn->dead || conn->read_closed.load(std::memory_order_relaxed)) return;
  char chunk[16384];
  bool eof = false;
  // Bounded rounds per readiness: a firehose client cannot starve its
  // neighbours — level-triggered epoll re-reports leftover bytes.
  for (int rounds = 0; rounds < 16; ++rounds) {
    const ssize_t n = ::recv(conn->fd, chunk, sizeof chunk, 0);
    if (n > 0) {
      conn->in.append(chunk, static_cast<std::size_t>(n));
      if (conn->in.size() >= kMaxFrameBytes * 2) break;
      continue;
    }
    if (n == 0) {
      eof = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    close_connection(conn);  // ECONNRESET and friends.
    return;
  }
  process_input(conn);
  if (conn->dead) return;
  if (eof) {
    // Half-close: the client is done asking but may still be reading.
    // Answer everything in flight, flush, then close.
    conn->read_closed.store(true, std::memory_order_relaxed);
    conn->in.clear();
    conn->partial_since_us = 0;
    update_epoll_interest(*conn);
    maybe_close(conn);
  }
}

void PredictionServer::process_input(
    const std::shared_ptr<Connection>& conn) {
  auto& metrics = server_metrics();
  std::string& in = conn->in;
  // Every predict frame this readiness round decodes is parked here and
  // admitted with one submit_burst call at the end (or before any admin/
  // feedback/error frame, which must observe prior admissions). Each
  // parked item already holds an in_flight reference, so every exit path
  // below must flush — a dropped burst would wedge close forever.
  std::vector<PendingPredict> burst;
  bool progress = true;
  while (progress && !conn->dead &&
         !conn->read_closed.load(std::memory_order_relaxed)) {
    progress = false;
    if (!conn->binary) {
      // Binary negotiation: the exact magic bytes at a frame boundary
      // (and nothing else — "XFLBIN1x" falls through to JSON parsing).
      if (!in.empty() && in[0] == kBinaryMagic[0]) {
        const std::size_t have = std::min(in.size(), kBinaryMagic.size());
        if (kBinaryMagic.compare(0, have, in.data(), have) == 0) {
          if (in.size() < kBinaryMagic.size()) break;  // Partial magic.
          in.erase(0, kBinaryMagic.size());
          conn->binary = true;
          metrics.binary_upgrades.add(1);
          queue_output(conn, kBinaryMagic);  // Ack: same 8 bytes back.
          progress = true;
          continue;
        }
      }
      const std::size_t newline = in.find('\n');
      if (newline == std::string::npos) {
        if (in.size() > kMaxFrameBytes) {
          metrics.bad.add(1);
          flush_predict_burst(conn, burst);
          fail_connection(conn, kErrBadRequest,
                          "frame exceeds maximum length");
          return;
        }
        break;
      }
      std::string line = in.substr(0, newline);
      in.erase(0, newline + 1);
      progress = true;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      const std::uint64_t received_us = obs::monotonic_us();
      const Frame frame = parse_frame(line);
      metrics.parse.record(
          static_cast<double>(obs::monotonic_us() - received_us));
      handle_frame(conn, frame, received_us, burst);
    } else {
      const BinaryDecode decoded = decode_binary_frame(in);
      if (decoded.status == BinaryDecode::Status::kNeedMore) break;
      if (decoded.status == BinaryDecode::Status::kBad) {
        // Framing cannot resync after a bad length or type byte: one
        // structured error, then the connection is done.
        metrics.bad.add(1);
        flush_predict_burst(conn, burst);
        fail_connection(conn, kErrBadRequest, decoded.error);
        return;
      }
      const std::uint64_t received_us = obs::monotonic_us();
      Frame frame;
      switch (decoded.type) {
        case BinaryType::kPredict:
          frame = parse_binary_predict(decoded.payload);
          break;
        case BinaryType::kExplain:
          frame = parse_binary_explain(decoded.payload);
          break;
        case BinaryType::kJson:
          frame = parse_frame(std::string(decoded.payload));
          break;
        default:
          frame.kind = Frame::Kind::kBad;
          frame.error = "response-type frame sent by client";
          break;
      }
      in.erase(0, decoded.consumed);
      progress = true;
      metrics.parse.record(
          static_cast<double>(obs::monotonic_us() - received_us));
      handle_frame(conn, frame, received_us, burst);
    }
  }
  flush_predict_burst(conn, burst);
  if (conn->dead) return;
  // Partial-frame clock: starts when an incomplete frame begins to sit
  // in the buffer, cleared the moment the buffer empties. A connection
  // with no buffered bytes is idle, and idling is free.
  if (in.empty())
    conn->partial_since_us = 0;
  else if (conn->partial_since_us == 0)
    conn->partial_since_us = obs::monotonic_us();
}

void PredictionServer::handle_frame(const std::shared_ptr<Connection>& conn,
                                    const Frame& frame,
                                    std::uint64_t received_us,
                                    std::vector<PendingPredict>& burst) {
  XFL_SPAN("serve.request");
  auto& metrics = server_metrics();
  if (frame.kind != Frame::Kind::kPredict) {
    // Admin and feedback (and error replies) must observe every predict
    // decoded before them on this connection — stats' queue_depth and the
    // drain ordering tests rely on admission happening first.
    flush_predict_burst(conn, burst);
  }
  switch (frame.kind) {
    case Frame::Kind::kBad:
      metrics.bad.add(1);
      if (frame.predict.binary)
        queue_output(conn,
                     binary_error_response(frame.predict.binary_id,
                                           kErrBadRequest, frame.error));
      else
        send_response(conn,
                      error_response(frame.id, kErrBadRequest, frame.error));
      return;

    case Frame::Kind::kAdmin:
      metrics.admin.add(1);
      handle_admin(conn, frame.admin);
      return;

    case Frame::Kind::kFeedback:
      metrics.feedback.add(1);
      handle_feedback(conn, frame.feedback);
      return;

    case Frame::Kind::kPredict:
      break;
  }

  metrics.requests.add(1);
  const std::uint64_t trace_id =
      next_trace_.fetch_add(1, std::memory_order_relaxed);
  BatchItem item;
  item.transfer = frame.predict.transfer;
  item.load = frame.predict.load;
  item.explain = frame.predict.explain;
  item.trace_id = trace_id;
  item.received_us = received_us;
  if (frame.predict.deadline_ms > 0)
    item.deadline_us = obs::monotonic_us() + frame.predict.deadline_ms * 1000;
  // Response routing is captured now: `packed` mirrors how the request
  // arrived, `wrap` the connection's framing at admission — both frozen
  // so a worker-thread callback never reads mutable poll-thread state.
  const bool packed = frame.predict.binary;
  const bool wrap = conn->binary;
  const std::uint64_t wire_id = frame.predict.binary_id;
  const std::string id = frame.predict.id;
  const std::uint16_t top_k = frame.predict.top_k;
  conn->in_flight.fetch_add(1, std::memory_order_relaxed);
  // `this` outlives every callback: stop() drains the batcher before the
  // server (and its monitor) is torn down.
  item.done = [this, conn, id, wire_id, packed, wrap, trace_id, received_us,
               top_k, transfer = frame.predict.transfer,
               load = frame.predict.load](const PredictOutcome& outcome) {
    auto& m = server_metrics();
    const std::uint64_t server_us = obs::monotonic_us() - received_us;
    m.server_time.record(static_cast<double>(server_us));
    const double server_ms = static_cast<double>(server_us) / 1000.0;
    std::string response;
    if (outcome.ok) {
      m.ok.add(1);
      monitor_.record_prediction(trace_id, outcome.rate_mbps,
                                 outcome.model_version, transfer, load);
      if (outcome.explained)
        response = packed
                       ? binary_explain_response(wire_id, outcome.explanation,
                                                 outcome.model_version,
                                                 trace_id, server_ms, top_k)
                       : explain_response(id, outcome.explanation,
                                          outcome.model_version, trace_id,
                                          server_ms, top_k);
      else
        response = packed
                       ? binary_predict_response(wire_id, outcome.rate_mbps,
                                                 outcome.edge_model,
                                                 outcome.model_version,
                                                 trace_id, server_ms)
                       : predict_response(id, outcome.rate_mbps,
                                          outcome.edge_model,
                                          outcome.model_version, trace_id,
                                          server_ms);
    } else {
      m.errors.add(1);
      response = packed
                     ? binary_error_response(wire_id, outcome.error,
                                             outcome.message, trace_id,
                                             server_ms)
                     : error_response(id, outcome.error, outcome.message,
                                      trace_id, server_ms);
    }
    if (!packed && wrap) response = binary_json_frame(response);
    queue_output(conn, response);
    conn->in_flight.fetch_sub(1, std::memory_order_relaxed);
    if (conn->read_closed.load(std::memory_order_relaxed))
      request_attention(conn);
  };

  // Parked, not submitted: process_input admits the whole readiness
  // round with one submit_burst (see flush_predict_burst for rejection).
  PendingPredict pending;
  pending.item = std::move(item);
  pending.packed = packed;
  pending.wrap = wrap;
  pending.wire_id = wire_id;
  pending.id = id;
  pending.trace_id = trace_id;
  pending.received_us = received_us;
  burst.push_back(std::move(pending));
}

void PredictionServer::flush_predict_burst(
    const std::shared_ptr<Connection>& conn,
    std::vector<PendingPredict>& burst) {
  if (burst.empty()) return;
  auto& metrics = server_metrics();
  std::vector<BatchItem> items;
  items.reserve(burst.size());
  for (PendingPredict& pending : burst) items.push_back(std::move(pending.item));
  MicroBatcher::Admission status = MicroBatcher::Admission::kAccepted;
  const std::size_t admitted =
      batcher_.submit_burst(items, conn->shard, status);
  // The rejected suffix is answered here with the same structured error
  // (and the same counters — rejects are overloaded/shutting_down, never
  // serve.response.error) as a lone submit() rejection would get.
  for (std::size_t i = admitted; i < burst.size(); ++i) {
    const PendingPredict& pending = burst[i];
    const char* code = kErrOverloaded;
    const char* message = "prediction queue full";
    if (status == MicroBatcher::Admission::kShuttingDown) {
      code = kErrShuttingDown;
      message = "server draining";
      metrics.shutting_down.add(1);
    } else {
      metrics.overloaded.add(1);
    }
    const double rejected_ms =
        static_cast<double>(obs::monotonic_us() - pending.received_us) /
        1000.0;
    std::string response =
        pending.packed
            ? binary_error_response(pending.wire_id, code, message,
                                    pending.trace_id, rejected_ms)
            : error_response(pending.id, code, message, pending.trace_id,
                             rejected_ms);
    if (!pending.packed && pending.wrap) response = binary_json_frame(response);
    queue_output(conn, response);
    conn->in_flight.fetch_sub(1, std::memory_order_relaxed);
  }
  burst.clear();
}

void PredictionServer::handle_feedback(
    const std::shared_ptr<Connection>& conn,
    const FeedbackRequest& feedback) {
  // Explained BEFORE the join consumes the journal entry: feedback
  // arrives orders of magnitude below predict rate, so one single-row
  // attribution walk per join is cheap, and recording it first means the
  // alarm edge the join may trigger sees this sample's contributions in
  // its window — the drift.attribution report includes the observation
  // that tripped it.
  core::PlannedTransfer joined_transfer;
  features::ContentionFeatures joined_load;
  if (monitor_.lookup(feedback.trace_id, joined_transfer, joined_load)) {
    try {
      const auto explained = host_.snapshot().predictor->explain_rates_mbps(
          std::span(&joined_transfer, 1), std::span(&joined_load, 1));
      if (!explained.empty())
        monitor_.record_attribution(explained.front().feature_names,
                                    explained.front().contributions);
    } catch (const std::exception& error) {
      XFL_LOG(warn) << "feedback attribution failed"
                    << obs::kv("trace_id", feedback.trace_id)
                    << obs::kv("what", error.what());
    }
  }
  // Joined inline on the poll thread: one mutex-guarded map join, far
  // cheaper than a predict — no reason to batch it.
  const ServeMonitor::FeedbackResult result =
      monitor_.record_feedback(feedback.trace_id, feedback.observed_mbps);
  if (result.matched && feedback_hook_)
    feedback_hook_(result, feedback.trace_id, feedback.observed_mbps);
  send_response(conn, feedback_response(
                          feedback.id, trace_id_string(feedback.trace_id),
                          result));
}

void PredictionServer::handle_admin(const std::shared_ptr<Connection>& conn,
                                    const AdminRequest& admin) {
  if (admin.cmd == "ping") {
    send_response(conn, pong_response(admin.id, host_.version()));
    return;
  }
  if (admin.cmd == "stats") {
    auto& metrics = server_metrics();
    StatsReport report;
    report.queue_depth = batcher_.queue_depth();
    report.connections = conn_count_.load(std::memory_order_relaxed);
    report.shards = batcher_.shard_count();
    report.steals = batcher_.steals();
    report.model_version = host_.version();
    report.kernel = host_.snapshot().predictor->serving_kernel();
    report.requests = metrics.requests.value();
    report.rejected = metrics.overloaded.value() + metrics.bad.value();
    report.uptime_seconds =
        start_us_ == 0
            ? 0.0
            : static_cast<double>(obs::monotonic_us() - start_us_) / 1.0e6;
    metrics.uptime.set(report.uptime_seconds);
    report.latency_us = {
        {"server", stage_quantiles("serve.request.server_us")},
        {"parse", stage_quantiles("serve.request.parse_us")},
        {"queue_wait", stage_quantiles("serve.request.queue_wait_us")},
        {"assemble", stage_quantiles("serve.batch.assemble_us")},
        {"predict", stage_quantiles("serve.batch.predict_us")},
        {"respond", stage_quantiles("serve.batch.respond_us")},
    };
    report.batch_size = stage_quantiles("serve.batch.size");
    report.batches = obs::counter("serve.batch.count").value();
    report.batch_rows = obs::counter("serve.batch.rows").value();
    report.drift_options = monitor_.options();
    report.drift_alarm = monitor_.alarm_active();
    report.drift_alarms_total = obs::counter("serve.drift.alarms").value();
    report.feedback_count = obs::counter("serve.feedback.count").value();
    report.feedback_unmatched =
        obs::counter("serve.feedback.unmatched").value();
    report.versions = monitor_.version_stats();
    report.attribution_shift = monitor_.last_shift();
    if (admin.registry)
      report.registry_json = obs::Registry::instance().to_json();
    send_response(conn, stats_response(admin.id, report));
    return;
  }
  if (admin.cmd == "retrain-status") {
    // The provider is one status-struct snapshot under a worker mutex —
    // cheap enough to answer inline like stats.
    send_response(conn, retrain_status_response(
                            admin.id,
                            retrain_status_ ? retrain_status_()
                                            : std::string()));
    return;
  }
  // reload: runs on a short-lived thread of its own — a multi-second
  // model parse must not stall the event loop every connection shares.
  conn->in_flight.fetch_add(1, std::memory_order_relaxed);
  const bool wrap = conn->binary;
  std::lock_guard lock(admin_mutex_);
  admin_threads_.emplace_back([this, conn, admin, wrap] {
    std::string response;
    try {
      const std::uint64_t version = host_.reload_from_file(admin.path);
      response = reload_response(admin.id, version);
    } catch (const std::exception& error) {
      response = error_response(admin.id, kErrReloadFailed, error.what());
    }
    if (wrap) response = binary_json_frame(response);
    queue_output(conn, response);
    conn->in_flight.fetch_sub(1, std::memory_order_relaxed);
    if (conn->read_closed.load(std::memory_order_relaxed))
      request_attention(conn);
  });
}

void PredictionServer::send_response(const std::shared_ptr<Connection>& conn,
                                     std::string json_line) {
  if (conn->binary) json_line = binary_json_frame(json_line);
  queue_output(conn, json_line);
}

void PredictionServer::cork_begin() { cork_state().active = true; }

void PredictionServer::cork_end() {
  Cork& cork = cork_state();
  cork.active = false;
  for (const auto& conn : cork.pending) {
    bool need_attention = false;
    {
      std::lock_guard lock(conn->out_mutex);
      if (conn->closed || conn->write_failed) continue;
      while (!conn->out.empty()) {
        const ssize_t n = ::send(conn->fd, conn->out.data(), conn->out.size(),
                                 MSG_NOSIGNAL);
        if (n > 0) {
          conn->out.erase(0, static_cast<std::size_t>(n));
          continue;
        }
        if (n < 0 && errno == EINTR) continue;
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
        conn->write_failed = true;  // EPIPE, ECONNRESET, ...
        conn->out.clear();
        break;
      }
      if (conn->write_failed) {
        need_attention = true;
      } else if (!conn->out.empty() && !conn->want_write) {
        conn->want_write = true;
        need_attention = true;
      }
    }
    // A fully-flushed reply may have been the last thing a half-closed
    // peer was owed; only the poll thread may act on that.
    if (!need_attention &&
        conn->read_closed.load(std::memory_order_relaxed) &&
        conn->in_flight.load(std::memory_order_seq_cst) == 0)
      need_attention = true;
    if (need_attention) request_attention(conn);
  }
  cork.pending.clear();
}

void PredictionServer::queue_output(const std::shared_ptr<Connection>& conn,
                                    std::string_view bytes) {
  Cork& cork = cork_state();
  if (cork.active) {
    // Corked (batch worker): append only; cork_end() does one send per
    // connection for the whole batch instead of one per reply.
    bool need_attention = false;
    {
      std::lock_guard lock(conn->out_mutex);
      if (conn->closed || conn->write_failed) return;
      const bool was_empty = conn->out.empty();
      conn->out.append(bytes.data(), bytes.size());
      if (conn->out.size() > kMaxOutBufferBytes) {
        conn->write_failed = true;
        conn->out.clear();
        need_attention = true;
      } else if (was_empty) {
        // First write this batch (an already non-empty buffer is either
        // in cork.pending from an earlier reply or being flushed via
        // EPOLLOUT by the poll thread).
        cork.pending.push_back(conn);
      }
    }
    if (need_attention) request_attention(conn);
    return;
  }
  bool need_attention = false;
  {
    std::lock_guard lock(conn->out_mutex);
    if (conn->closed || conn->write_failed) return;
    if (conn->out.empty()) {
      // Fast path: the socket usually takes a whole response in one
      // non-blocking send; only the remainder is buffered.
      std::size_t sent = 0;
      while (sent < bytes.size()) {
        const ssize_t n = ::send(conn->fd, bytes.data() + sent,
                                 bytes.size() - sent, MSG_NOSIGNAL);
        if (n > 0) {
          sent += static_cast<std::size_t>(n);
          continue;
        }
        if (n < 0 && errno == EINTR) continue;
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
        conn->write_failed = true;  // EPIPE, ECONNRESET, ...
        need_attention = true;
        break;
      }
      if (!conn->write_failed && sent < bytes.size())
        conn->out.assign(bytes.data() + sent, bytes.size() - sent);
    } else {
      conn->out.append(bytes.data(), bytes.size());
    }
    if (conn->out.size() > kMaxOutBufferBytes) {
      conn->write_failed = true;
      conn->out.clear();
      need_attention = true;
    }
    if (!conn->write_failed && !conn->out.empty() && !conn->want_write) {
      conn->want_write = true;
      need_attention = true;
    }
  }
  if (need_attention) request_attention(conn);
}

void PredictionServer::handle_writable(
    const std::shared_ptr<Connection>& conn) {
  if (conn->dead) return;
  {
    std::lock_guard lock(conn->out_mutex);
    while (!conn->out.empty() && !conn->write_failed) {
      const ssize_t n = ::send(conn->fd, conn->out.data(), conn->out.size(),
                               MSG_NOSIGNAL);
      if (n > 0) {
        conn->out.erase(0, static_cast<std::size_t>(n));
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      conn->write_failed = true;
    }
    if (conn->out.empty()) conn->want_write = false;
  }
  update_epoll_interest(*conn);
  maybe_close(conn);
}

void PredictionServer::fail_connection(
    const std::shared_ptr<Connection>& conn, const char* code,
    const std::string& message) {
  if (conn->dead) return;
  queue_output(conn, conn->binary
                         ? binary_error_response(0, code, message)
                         : error_response("", code, message));
  conn->read_closed.store(true, std::memory_order_relaxed);
  conn->in.clear();
  conn->partial_since_us = 0;
  update_epoll_interest(*conn);
  maybe_close(conn);
}

void PredictionServer::maybe_close(const std::shared_ptr<Connection>& conn) {
  if (conn->dead) return;
  // Order matters: sample in_flight before the out buffer. A worker
  // queues its response before decrementing in_flight, so in_flight == 0
  // here means every response is already visible in `out` (or sent).
  const bool no_inflight =
      conn->in_flight.load(std::memory_order_seq_cst) == 0;
  bool failed = false;
  bool out_empty = false;
  {
    std::lock_guard lock(conn->out_mutex);
    failed = conn->write_failed;
    out_empty = conn->out.empty();
  }
  if (failed ||
      (conn->read_closed.load(std::memory_order_relaxed) && no_inflight &&
       out_empty))
    close_connection(conn);
}

void PredictionServer::close_connection(
    const std::shared_ptr<Connection>& conn) {
  if (conn->dead) return;
  conn->dead = true;
  {
    std::lock_guard lock(conn->out_mutex);
    conn->closed = true;
    conn->out.clear();
    conn->want_write = false;
  }
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
  ::shutdown(conn->fd, SHUT_RDWR);
  if (static_cast<std::size_t>(conn->fd) < conns_.size())
    conns_[static_cast<std::size_t>(conn->fd)].reset();
  server_metrics().active.set(static_cast<double>(
      conn_count_.fetch_sub(1, std::memory_order_relaxed) - 1));
}

void PredictionServer::sweep_partial_frame_timeouts(std::uint64_t now_us) {
  if (options_.partial_frame_timeout_ms == 0) return;
  const std::uint64_t budget_us = options_.partial_frame_timeout_ms * 1000;
  for (std::size_t fd = 0; fd < conns_.size(); ++fd) {
    const std::shared_ptr<Connection> conn = conns_[fd];
    if (!conn || conn->dead || conn->partial_since_us == 0) continue;
    if (now_us - conn->partial_since_us < budget_us) continue;
    server_metrics().frame_timeouts.add(1);
    fail_connection(conn, kErrFrameTimeout,
                    "partial frame stalled past timeout");
  }
}

void PredictionServer::update_epoll_interest(Connection& conn) {
  if (conn.dead) return;
  std::uint32_t desired =
      conn.read_closed.load(std::memory_order_relaxed) ? 0u : EPOLLIN;
  {
    std::lock_guard lock(conn.out_mutex);
    if (conn.want_write) desired |= EPOLLOUT;
  }
  if (desired == conn.interest) return;
  epoll_event ev{};
  ev.events = desired;
  ev.data.fd = conn.fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev);
  conn.interest = desired;
}

void PredictionServer::drain_pending_attention() {
  std::vector<std::shared_ptr<Connection>> pending;
  {
    std::lock_guard lock(attention_mutex_);
    pending.swap(attention_);
  }
  for (const auto& conn : pending) {
    if (conn->dead) continue;
    update_epoll_interest(*conn);
    maybe_close(conn);
  }
}

void PredictionServer::request_attention(
    const std::shared_ptr<Connection>& conn) {
  {
    std::lock_guard lock(attention_mutex_);
    attention_.push_back(conn);
  }
  wake();
}

void PredictionServer::join_admin_threads() {
  std::vector<std::thread> threads;
  {
    std::lock_guard lock(admin_mutex_);
    threads.swap(admin_threads_);
  }
  for (auto& thread : threads)
    if (thread.joinable()) thread.join();
}

}  // namespace xfl::serve
