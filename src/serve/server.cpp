#include "serve/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "common/contracts.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace xfl::serve {

namespace {

struct ServerMetrics {
  obs::Counter& accepted = obs::counter("serve.conn.accepted");
  obs::Gauge& active = obs::gauge("serve.conn.active");
  obs::Counter& requests = obs::counter("serve.request.count");
  obs::Counter& admin = obs::counter("serve.request.admin");
  obs::Counter& feedback = obs::counter("serve.request.feedback");
  obs::Counter& bad = obs::counter("serve.request.bad");
  obs::Counter& overloaded = obs::counter("serve.request.overloaded");
  obs::Counter& shutting_down = obs::counter("serve.request.shutting_down");
  obs::Counter& ok = obs::counter("serve.response.ok");
  obs::Counter& errors = obs::counter("serve.response.error");
  // Stage timers with fine log-spaced buckets (quantiles are exported).
  obs::Histogram& parse = obs::histogram("serve.request.parse_us",
                                         obs::quantile_latency_bounds_us());
  obs::Histogram& server_time = obs::histogram(
      "serve.request.server_us", obs::quantile_latency_bounds_us());
};

ServerMetrics& server_metrics() {
  static ServerMetrics metrics;
  return metrics;
}

/// Stage quantile summary for the stats report, resolved by name so the
/// batcher's TU-local histograms are reachable too.
StageQuantiles stage_quantiles(const char* name) {
  const auto snap =
      obs::Registry::instance().histogram(name, {}).snapshot();
  StageQuantiles q;
  q.count = snap.count;
  q.p50 = snap.quantile(50.0);
  q.p95 = snap.quantile(95.0);
  q.p99 = snap.quantile(99.0);
  return q;
}

}  // namespace

/// One accepted socket. The fd is closed only by the destructor, so any
/// batcher callback still holding a shared_ptr writes to a valid (if
/// possibly disconnected) descriptor — never to a recycled one.
struct PredictionServer::Connection {
  explicit Connection(int fd) : fd(fd) {}
  ~Connection() {
    if (fd >= 0) ::close(fd);
  }

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  /// Serialised, complete-frame write. MSG_NOSIGNAL turns a dead peer
  /// into EPIPE instead of SIGPIPE; after the first failure the
  /// connection goes quiet rather than spamming errno.
  void write_line(const std::string& payload) {
    std::lock_guard lock(write_mutex);
    if (write_failed) return;
    std::size_t sent = 0;
    while (sent < payload.size()) {
      const ssize_t n = ::send(fd, payload.data() + sent,
                               payload.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) {
        write_failed = true;
        return;
      }
      sent += static_cast<std::size_t>(n);
    }
  }

  void shutdown_both() { ::shutdown(fd, SHUT_RDWR); }

  int fd;
  std::mutex write_mutex;
  bool write_failed = false;  ///< Guarded by write_mutex.
};

/// A connection plus its reader thread; `done` flags the thread as
/// join-ready for the reaper.
struct PredictionServer::Worker {
  std::shared_ptr<Connection> conn;
  std::thread thread;
  bool done = false;  ///< Guarded by conn_mutex_.
};

PredictionServer::PredictionServer(ModelHost& host)
    : PredictionServer(host, Options()) {}

PredictionServer::PredictionServer(ModelHost& host, Options options)
    : host_(host),
      options_(std::move(options)),
      batcher_(host, MicroBatcher::Options{options_.max_batch,
                                           options_.queue_capacity,
                                           options_.predict_threads}),
      monitor_(options_.monitor) {}

PredictionServer::~PredictionServer() { stop(); }

void PredictionServer::start() {
  {
    std::lock_guard lock(state_mutex_);
    XFL_EXPECTS(!started_);
    started_ = true;
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0)
    throw std::runtime_error(std::string("PredictionServer: socket: ") +
                             std::strerror(errno));
  const int enable = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof enable);

  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(),
                  &address.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("PredictionServer: bad bind address '" +
                             options_.bind_address + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&address),
             sizeof address) != 0 ||
      ::listen(listen_fd_, 64) != 0) {
    const std::string what = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("PredictionServer: bind/listen on " +
                             options_.bind_address + ":" +
                             std::to_string(options_.port) + ": " + what);
  }
  socklen_t address_len = sizeof address;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&address),
                &address_len);
  port_ = ntohs(address.sin_port);

  accept_thread_ = std::thread([this] { accept_loop(); });
  XFL_LOG(info) << "prediction server listening"
                << obs::kv("address", options_.bind_address)
                << obs::kv("port", port_)
                << obs::kv("max_batch", options_.max_batch)
                << obs::kv("queue_capacity", options_.queue_capacity)
                << obs::kv("kernel",
                           host_.snapshot().predictor->serving_kernel());
}

void PredictionServer::stop() {
  {
    std::lock_guard lock(state_mutex_);
    if (!started_ || stopped_) return;
    stopped_ = true;
  }
  stopping_.store(true);

  // 1. Stop accepting; shutdown wakes the blocked accept().
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;

  // 2. Drain: everything already admitted gets a real answer; requests
  //    read after this point get a structured "shutting_down".
  batcher_.drain_and_stop();

  // 3. Wake blocked readers and join them; fds close with the last
  //    Connection reference.
  {
    std::lock_guard lock(conn_mutex_);
    for (auto& worker : workers_) worker->conn->shutdown_both();
  }
  std::vector<std::unique_ptr<Worker>> remaining;
  {
    std::lock_guard lock(conn_mutex_);
    remaining.swap(workers_);
  }
  for (auto& worker : remaining)
    if (worker->thread.joinable()) worker->thread.join();
  server_metrics().active.set(0.0);
  XFL_LOG(info) << "prediction server stopped" << obs::kv("port", port_);
}

void PredictionServer::reap_finished_workers() {
  std::vector<std::unique_ptr<Worker>> finished;
  {
    std::lock_guard lock(conn_mutex_);
    for (auto it = workers_.begin(); it != workers_.end();) {
      if ((*it)->done) {
        finished.push_back(std::move(*it));
        it = workers_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (auto& worker : finished)
    if (worker->thread.joinable()) worker->thread.join();
}

void PredictionServer::accept_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load()) return;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return;  // Listen socket is gone; stop() handles the rest.
    }
    if (stopping_.load()) {
      ::close(fd);
      return;
    }
    const int nodelay = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &nodelay, sizeof nodelay);
    server_metrics().accepted.add(1);

    auto worker = std::make_unique<Worker>();
    worker->conn = std::make_shared<Connection>(fd);
    Worker* raw = worker.get();
    {
      std::lock_guard lock(conn_mutex_);
      workers_.push_back(std::move(worker));
      server_metrics().active.set(static_cast<double>(workers_.size()));
    }
    raw->thread = std::thread([this, raw] {
      connection_loop(raw->conn);
      std::lock_guard lock(conn_mutex_);
      raw->done = true;
    });
    reap_finished_workers();
  }
}

void PredictionServer::connection_loop(
    const std::shared_ptr<Connection>& conn) {
  std::string buffer;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::recv(conn->fd, chunk, sizeof chunk, 0);
    if (n <= 0) return;  // EOF, error, or shutdown during drain.
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (;;) {
      const std::size_t newline = buffer.find('\n', start);
      if (newline == std::string::npos) break;
      std::string line = buffer.substr(start, newline - start);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (!line.empty()) handle_line(conn, line);
      start = newline + 1;
    }
    buffer.erase(0, start);
    if (buffer.size() > kMaxFrameBytes) {
      server_metrics().bad.add(1);
      conn->write_line(error_response("", kErrBadRequest,
                                      "frame exceeds maximum length"));
      return;
    }
  }
}

void PredictionServer::handle_line(const std::shared_ptr<Connection>& conn,
                                   const std::string& line) {
  XFL_SPAN("serve.request");
  const std::uint64_t received_us = obs::monotonic_us();
  const Frame frame = parse_frame(line);
  auto& metrics = server_metrics();
  metrics.parse.record(static_cast<double>(obs::monotonic_us() - received_us));

  switch (frame.kind) {
    case Frame::Kind::kBad:
      metrics.bad.add(1);
      conn->write_line(error_response(frame.id, kErrBadRequest, frame.error));
      return;

    case Frame::Kind::kAdmin:
      metrics.admin.add(1);
      handle_admin(conn, frame.admin);
      return;

    case Frame::Kind::kFeedback:
      metrics.feedback.add(1);
      handle_feedback(conn, frame.feedback);
      return;

    case Frame::Kind::kPredict:
      break;
  }

  metrics.requests.add(1);
  const std::uint64_t trace_id =
      next_trace_.fetch_add(1, std::memory_order_relaxed);
  BatchItem item;
  item.transfer = frame.predict.transfer;
  item.load = frame.predict.load;
  item.trace_id = trace_id;
  item.received_us = received_us;
  if (frame.predict.deadline_ms > 0)
    item.deadline_us =
        obs::monotonic_us() + frame.predict.deadline_ms * 1000;
  const std::string id = frame.predict.id;
  // `this` outlives every callback: stop() drains the batcher before the
  // server (and its monitor) is torn down.
  item.done = [this, conn, id, trace_id,
               received_us](const PredictOutcome& outcome) {
    auto& m = server_metrics();
    const std::uint64_t server_us = obs::monotonic_us() - received_us;
    m.server_time.record(static_cast<double>(server_us));
    const double server_ms = static_cast<double>(server_us) / 1000.0;
    if (outcome.ok) {
      m.ok.add(1);
      monitor_.record_prediction(trace_id, outcome.rate_mbps,
                                 outcome.model_version);
      conn->write_line(predict_response(id, outcome.rate_mbps,
                                        outcome.edge_model,
                                        outcome.model_version, trace_id,
                                        server_ms));
    } else {
      m.errors.add(1);
      conn->write_line(error_response(id, outcome.error, outcome.message,
                                      trace_id, server_ms));
    }
  };

  const auto rejected_ms = [received_us] {
    return static_cast<double>(obs::monotonic_us() - received_us) / 1000.0;
  };
  switch (batcher_.submit(std::move(item))) {
    case MicroBatcher::Admission::kAccepted:
      return;
    case MicroBatcher::Admission::kOverloaded:
      metrics.overloaded.add(1);
      conn->write_line(error_response(id, kErrOverloaded,
                                      "prediction queue full", trace_id,
                                      rejected_ms()));
      return;
    case MicroBatcher::Admission::kShuttingDown:
      metrics.shutting_down.add(1);
      conn->write_line(error_response(id, kErrShuttingDown,
                                      "server draining", trace_id,
                                      rejected_ms()));
      return;
  }
}

void PredictionServer::handle_feedback(
    const std::shared_ptr<Connection>& conn,
    const FeedbackRequest& feedback) {
  // Joined inline on the connection thread: one mutex-guarded map join,
  // far cheaper than a predict — no reason to batch it.
  const ServeMonitor::FeedbackResult result =
      monitor_.record_feedback(feedback.trace_id, feedback.observed_mbps);
  conn->write_line(feedback_response(
      feedback.id, trace_id_string(feedback.trace_id), result));
}

void PredictionServer::handle_admin(const std::shared_ptr<Connection>& conn,
                                    const AdminRequest& admin) {
  if (admin.cmd == "ping") {
    conn->write_line(pong_response(admin.id, host_.version()));
    return;
  }
  if (admin.cmd == "stats") {
    auto& metrics = server_metrics();
    StatsReport report;
    report.queue_depth = batcher_.queue_depth();
    report.model_version = host_.version();
    report.kernel = host_.snapshot().predictor->serving_kernel();
    report.requests = metrics.requests.value();
    report.rejected = metrics.overloaded.value() + metrics.bad.value();
    report.latency_us = {
        {"server", stage_quantiles("serve.request.server_us")},
        {"parse", stage_quantiles("serve.request.parse_us")},
        {"queue_wait", stage_quantiles("serve.request.queue_wait_us")},
        {"assemble", stage_quantiles("serve.batch.assemble_us")},
        {"predict", stage_quantiles("serve.batch.predict_us")},
        {"respond", stage_quantiles("serve.batch.respond_us")},
    };
    report.batch_size = stage_quantiles("serve.batch.size");
    report.batches = obs::counter("serve.batch.count").value();
    report.batch_rows = obs::counter("serve.batch.rows").value();
    report.drift_options = monitor_.options();
    report.drift_alarm = monitor_.alarm_active();
    report.drift_alarms_total = obs::counter("serve.drift.alarms").value();
    report.feedback_count = obs::counter("serve.feedback.count").value();
    report.feedback_unmatched =
        obs::counter("serve.feedback.unmatched").value();
    report.versions = monitor_.version_stats();
    if (admin.registry)
      report.registry_json = obs::Registry::instance().to_json();
    conn->write_line(stats_response(admin.id, report));
    return;
  }
  // reload: runs on this connection's thread — off the batch hot path, so
  // prediction latency is unaffected while the new model parses.
  try {
    const std::uint64_t version = host_.reload_from_file(admin.path);
    conn->write_line(reload_response(admin.id, version));
  } catch (const std::exception& error) {
    conn->write_line(
        error_response(admin.id, kErrReloadFailed, error.what()));
  }
}

}  // namespace xfl::serve
