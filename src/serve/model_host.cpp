#include "serve/model_host.hpp"

#include <stdexcept>
#include <utility>

#include "common/contracts.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace xfl::serve {

ModelHost::ModelHost(std::shared_ptr<const core::TransferPredictor> initial,
                     std::string source_path)
    : predictor_(std::move(initial)), source_path_(std::move(source_path)) {
  XFL_EXPECTS(predictor_ != nullptr && predictor_->fitted());
}

ModelHost::Snapshot ModelHost::snapshot() const {
  std::lock_guard lock(mutex_);
  return {predictor_, version_};
}

std::uint64_t ModelHost::version() const {
  std::lock_guard lock(mutex_);
  return version_;
}

std::string ModelHost::source_path() const {
  std::lock_guard lock(mutex_);
  return source_path_;
}

std::uint64_t ModelHost::swap(
    std::shared_ptr<const core::TransferPredictor> next) {
  XFL_EXPECTS(next != nullptr && next->fitted());
  std::lock_guard lock(mutex_);
  predictor_ = std::move(next);
  return ++version_;
}

std::uint64_t ModelHost::reload_from_file(const std::string& path) {
  XFL_SPAN("serve.reload");
  std::string target = path.empty() ? source_path() : path;
  if (target.empty())
    throw std::runtime_error(
        "ModelHost::reload_from_file: no model path configured");
  std::uint64_t published = 0;
  try {
    // The expensive part — parsing the file and recompiling the flat
    // ensembles — happens here with no lock held and the old model still
    // serving every in-flight batch.
    auto loaded = std::make_shared<const core::TransferPredictor>(
        core::TransferPredictor::load_file(target));
    std::lock_guard lock(mutex_);
    predictor_ = std::move(loaded);
    source_path_ = target;
    published = ++version_;
  } catch (const std::exception& error) {
    obs::counter("serve.reload.failed").add(1);
    XFL_LOG(warn) << "model reload failed" << obs::kv("path", target)
                  << obs::kv("what", error.what());
    throw;
  }
  obs::counter("serve.reload.count").add(1);
  XFL_LOG(info) << "model reloaded" << obs::kv("path", target)
                << obs::kv("version", published);
  return published;
}

}  // namespace xfl::serve
