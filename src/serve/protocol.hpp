// Wire protocol for the prediction server: one JSON object per line,
// newline-terminated, over a plain TCP stream. Human-speakable with nc:
//
//   $ echo '{"id":"1","src":0,"dst":1,"bytes":5e10,"files":20}' | nc host 7070
//   {"id":"1","ok":true,"rate_mbps":312.5,"model":"edge","version":1}
//
// Request frames:
//   predict: {"id":ID, "src":N, "dst":N, "bytes":X, ["files":N],
//             ["dirs":N], ["concurrency":N], ["parallelism":N],
//             ["deadline_ms":N], ["load":{"k_sout":X, ... }]}
//   admin:   {"cmd":"ping"|"stats"|"reload", ["id":ID], ["path":"m.txt"]}
//
// Response frames always carry "ok". Success echoes the request id;
// failures carry a machine-readable "error" code (kErr* below) plus a
// human-readable "message". Responses on one connection may be reordered
// relative to requests (micro-batching), so clients match on "id".
//
// Parsing is strict: unknown keys, wrong types, and out-of-range values
// are rejected as kBad frames, which the server answers with a
// "bad_request" error instead of dying — both ends live in this repo, so
// strictness catches client bugs at the boundary.
#pragma once

#include <cstdint>
#include <string>

#include "core/predictor.hpp"
#include "features/contention.hpp"
#include "serve/json.hpp"

namespace xfl::serve {

/// Upper bound on one request line; longer frames are a protocol error.
inline constexpr std::size_t kMaxFrameBytes = 1 << 20;

// Machine-readable error codes carried in the "error" response field.
inline constexpr const char* kErrBadRequest = "bad_request";
inline constexpr const char* kErrOverloaded = "overloaded";
inline constexpr const char* kErrTimeout = "timeout";
inline constexpr const char* kErrShuttingDown = "shutting_down";
inline constexpr const char* kErrInternal = "internal_error";
inline constexpr const char* kErrReloadFailed = "reload_failed";

struct PredictRequest {
  std::string id;
  core::PlannedTransfer transfer;
  features::ContentionFeatures load;
  std::uint64_t deadline_ms = 0;  ///< 0 = no deadline.
};

struct AdminRequest {
  std::string id;
  std::string cmd;   ///< "ping", "stats", or "reload".
  std::string path;  ///< reload only; empty = server's configured path.
};

/// One parsed request line. kBad carries the reason (and the id when it
/// could still be extracted, so the error response stays correlatable).
struct Frame {
  enum class Kind { kPredict, kAdmin, kBad };
  Kind kind = Kind::kBad;
  std::string id;
  PredictRequest predict;
  AdminRequest admin;
  std::string error;
};

/// Parse one request line. Never throws: malformed input yields kBad.
Frame parse_frame(const std::string& line);

/// Serialise a predict request (client side). `load` is emitted only when
/// any field is non-zero; ids are always emitted as JSON strings.
std::string predict_request_line(const std::string& id,
                                 const core::PlannedTransfer& transfer,
                                 const features::ContentionFeatures& load = {},
                                 std::uint64_t deadline_ms = 0);

// Response builders (server side). Each returns one newline-terminated
// frame. rate_mbps uses %.17g so the client's strtod reproduces the
// server's double bit-identically.
std::string predict_response(const std::string& id, double rate_mbps,
                             bool edge_model, std::uint64_t model_version);
std::string error_response(const std::string& id, const char* code,
                           const std::string& message);
std::string pong_response(const std::string& id, std::uint64_t model_version);
std::string reload_response(const std::string& id,
                            std::uint64_t model_version);
std::string stats_response(const std::string& id, std::size_t queue_depth,
                           std::uint64_t model_version,
                           std::uint64_t requests, std::uint64_t rejected);

}  // namespace xfl::serve
