// Wire protocol for the prediction server: one JSON object per line,
// newline-terminated, over a plain TCP stream. Human-speakable with nc:
//
//   $ echo '{"id":"1","src":0,"dst":1,"bytes":5e10,"files":20}' | nc host 7070
//   {"id":"1","ok":true,"rate_mbps":312.5,"model":"edge","version":1}
//
// Hot clients can negotiate a length-prefixed binary framing instead: in
// JSON mode the exact 8 bytes "XFLBIN1\n" at a frame boundary switch the
// connection to binary; the server echoes the same 8 bytes as an ack and
// every subsequent frame (both directions) is
//
//   u32 length | u8 type | payload[length - 1]      (little-endian)
//
// where `length` counts the type byte plus the payload. Type kPredict /
// kPredictOk / kExplain / kExplainOk / kError carry packed predict and
// explain traffic (doubles travel as raw IEEE-754 bits, so binary
// replies are bit-identical to JSON ones);
// type kJson wraps one JSON document, so admin/feedback/stats reuse the
// JSON grammar inside binary framing. The codec below is shared by the
// server, the client, and the property tests: decode_binary_frame never
// reads past the buffer, returns kNeedMore on any truncation (every byte
// offset), and rejects oversized or unknown frames as kBad.
//
// Request frames:
//   predict:  {"id":ID, "src":N, "dst":N, "bytes":X, ["files":N],
//              ["dirs":N], ["concurrency":N], ["parallelism":N],
//              ["deadline_ms":N], ["load":{"k_sout":X, ... }],
//              ["explain":true], ["top_k":N]}   (explain: the response
//              carries the per-feature Saabas attribution of the rate;
//              top_k keeps only the N strongest contributions, 0 = all)
//   feedback: {"id":ID, "feedback":"t17", "observed_mbps":X}
//             (reports the observed average rate of a completed transfer
//              back to the prediction it was scheduled on, by trace id)
//   admin:    {"cmd":"ping"|"stats"|"reload"|"retrain-status", ["id":ID],
//              ["path":"m.txt"], ["registry":true]}   (registry: stats
//              embeds the full metrics-registry snapshot under "metrics";
//              retrain-status reports the background refit worker)
//
// Response frames always carry "ok". Success echoes the request id;
// failures carry a machine-readable "error" code (kErr* below) plus a
// human-readable "message". Predict responses (success and failure alike)
// also carry "trace_id" — the server-assigned request trace id feedback
// joins on — and "server_ms", the in-server latency from frame receipt to
// response serialisation. Responses on one connection may be reordered
// relative to requests (micro-batching), so clients match on "id".
//
// Parsing is strict: unknown keys, wrong types, and out-of-range values
// are rejected as kBad frames, which the server answers with a
// "bad_request" error instead of dying — both ends live in this repo, so
// strictness catches client bugs at the boundary.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include <vector>

#include "core/predictor.hpp"
#include "features/contention.hpp"
#include "serve/json.hpp"
#include "serve/monitor.hpp"

namespace xfl::serve {

/// Upper bound on one request line; longer frames are a protocol error.
inline constexpr std::size_t kMaxFrameBytes = 1 << 20;

// Machine-readable error codes carried in the "error" response field.
inline constexpr const char* kErrBadRequest = "bad_request";
inline constexpr const char* kErrOverloaded = "overloaded";
inline constexpr const char* kErrTimeout = "timeout";
inline constexpr const char* kErrShuttingDown = "shutting_down";
inline constexpr const char* kErrInternal = "internal_error";
inline constexpr const char* kErrReloadFailed = "reload_failed";
/// A partially-received frame stalled past the server's patience; the
/// connection is closed after this structured error goes out.
inline constexpr const char* kErrFrameTimeout = "frame_timeout";

/// The 8-byte preamble that flips a JSON-mode connection to binary
/// framing; the server acks by echoing it. Deliberately not valid JSON.
inline constexpr std::string_view kBinaryMagic{"XFLBIN1\n", 8};

struct PredictRequest {
  std::string id;
  core::PlannedTransfer transfer;
  features::ContentionFeatures load;
  std::uint64_t deadline_ms = 0;  ///< 0 = no deadline.
  /// Explain request: the response carries the Saabas attribution of the
  /// prediction (top_k strongest contributions; 0 = all features).
  bool explain = false;
  std::uint16_t top_k = 0;
  /// Arrived as a packed binary frame; the response must be packed too.
  bool binary = false;
  std::uint64_t binary_id = 0;  ///< Wire id of a binary request.
};

struct AdminRequest {
  std::string id;
  std::string cmd;   ///< "ping", "stats", "reload", or "retrain-status".
  std::string path;  ///< reload only; empty = server's configured path.
  bool registry = false;  ///< stats only; embed the metrics registry.
};

struct FeedbackRequest {
  std::string id;
  std::uint64_t trace_id = 0;   ///< Parsed from the "feedback" field.
  double observed_mbps = 0.0;   ///< Observed average rate; finite, > 0.
};

/// One parsed request line. kBad carries the reason (and the id when it
/// could still be extracted, so the error response stays correlatable).
struct Frame {
  enum class Kind { kPredict, kFeedback, kAdmin, kBad };
  Kind kind = Kind::kBad;
  std::string id;
  PredictRequest predict;
  FeedbackRequest feedback;
  AdminRequest admin;
  std::string error;
};

/// Parse one request line. Never throws: malformed input yields kBad.
Frame parse_frame(const std::string& line);

/// Trace ids travel as "t<decimal>" strings ("t17") so they are visually
/// distinct from request ids. parse_trace_id accepts exactly that form.
std::string trace_id_string(std::uint64_t trace_id);
bool parse_trace_id(const std::string& text, std::uint64_t& trace_id);

/// Serialise a predict request (client side). `load` is emitted only when
/// any field is non-zero; ids are always emitted as JSON strings.
std::string predict_request_line(const std::string& id,
                                 const core::PlannedTransfer& transfer,
                                 const features::ContentionFeatures& load = {},
                                 std::uint64_t deadline_ms = 0);

/// Serialise an explain request (client side): a predict request with
/// "explain":true and, when top_k > 0, "top_k".
std::string explain_request_line(const std::string& id,
                                 const core::PlannedTransfer& transfer,
                                 const features::ContentionFeatures& load = {},
                                 std::uint64_t deadline_ms = 0,
                                 std::uint16_t top_k = 0);

/// Serialise a feedback request (client side).
std::string feedback_request_line(const std::string& id,
                                  const std::string& trace_id,
                                  double observed_mbps);

/// Quantile summary of one stage histogram, embedded in stats responses.
struct StageQuantiles {
  std::uint64_t count = 0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// Everything the `stats` admin command reports. The server fills this
/// from the live registry + monitor; the builder only serialises.
struct StatsReport {
  std::size_t queue_depth = 0;
  std::size_t connections = 0;  ///< Currently open connections.
  std::size_t shards = 0;       ///< Batcher shard (worker) count.
  std::uint64_t steals = 0;     ///< Items rebalanced between shards.
  std::uint64_t model_version = 0;
  /// Batch-inference kernel the serving model dispatches to ("scalar" /
  /// "avx2" / "quantized") — names the hardware path behind the latency
  /// numbers so stats are comparable across hosts and XFL_KERNEL runs.
  std::string kernel;
  std::uint64_t requests = 0;
  std::uint64_t rejected = 0;
  /// Seconds since the server started accepting connections.
  double uptime_seconds = 0.0;
  /// Stage latency quantiles, microseconds: name -> summary.
  std::vector<std::pair<std::string, StageQuantiles>> latency_us;
  /// Batch size distribution (rows per predict batch).
  StageQuantiles batch_size;
  std::uint64_t batches = 0;
  std::uint64_t batch_rows = 0;
  // Drift monitor block.
  ServeMonitor::Options drift_options;
  bool drift_alarm = false;
  std::uint64_t drift_alarms_total = 0;
  std::uint64_t feedback_count = 0;
  std::uint64_t feedback_unmatched = 0;
  std::map<std::uint64_t, ServeMonitor::VersionStats> versions;
  /// Last attribution-shift report (valid == false until the first
  /// drift.attribution event fires); serialised under "drift" as
  /// "attribution_shift".
  ServeMonitor::AttributionShift attribution_shift;
  /// Raw Registry::to_json() output, spliced under "metrics" when the
  /// request set "registry":true. Empty = omitted.
  std::string registry_json;
};

// Response builders (server side). Each returns one newline-terminated
// frame. rate_mbps uses %.17g so the client's strtod reproduces the
// server's double bit-identically. server_ms is in-server latency from
// frame receipt to response serialisation (fractional milliseconds).
std::string predict_response(const std::string& id, double rate_mbps,
                             bool edge_model, std::uint64_t model_version,
                             std::uint64_t trace_id, double server_ms);
/// Explain success: the predict response plus raw/bias/interval and the
/// top_k strongest contributions (0 = all), each {"feature","mbps"},
/// ordered by |mbps| descending (ties by feature index). With top_k == 0
/// the entries summed in ascending feature order plus bias_mbps (added
/// last) rebuild raw_mbps bit-exactly after a %.17g round trip.
std::string explain_response(const std::string& id,
                             const core::RateExplanation& explanation,
                             std::uint64_t model_version,
                             std::uint64_t trace_id, double server_ms,
                             std::uint16_t top_k);
std::string error_response(const std::string& id, const char* code,
                           const std::string& message);
/// Predict-path error: carries the trace id + server time like a success.
std::string error_response(const std::string& id, const char* code,
                           const std::string& message,
                           std::uint64_t trace_id, double server_ms);
std::string feedback_response(const std::string& id,
                              const std::string& trace_id,
                              const ServeMonitor::FeedbackResult& result);
std::string pong_response(const std::string& id, std::uint64_t model_version);
std::string reload_response(const std::string& id,
                            std::uint64_t model_version);
/// `retrain_json` is the retrain worker's status object (already
/// serialised); empty means no retrain service is attached and the reply
/// reports {"enabled":false}.
std::string retrain_status_response(const std::string& id,
                                    const std::string& retrain_json);
std::string stats_response(const std::string& id, const StatsReport& report);

// ------------------------------------------------------------ binary codec

/// Frame types of the length-prefixed binary protocol (see file header).
enum class BinaryType : std::uint8_t {
  kJson = 0,       ///< Payload is one JSON request/response document.
  kPredict = 1,    ///< Packed predict request.
  kPredictOk = 2,  ///< Packed predict success response.
  kError = 3,      ///< Packed error response.
  kExplain = 4,    ///< Packed explain request (predict + u16 top_k).
  kExplainOk = 5,  ///< Packed explain success response.
};

/// Result of scanning a byte buffer for one binary frame.
struct BinaryDecode {
  enum class Status {
    kNeedMore,  ///< A complete frame has not arrived yet; read more.
    kFrame,     ///< One well-formed frame; `consumed` bytes to discard.
    kBad,       ///< Framing is unrecoverable (oversize/unknown type).
  };
  Status status = Status::kNeedMore;
  std::size_t consumed = 0;     ///< Buffer bytes this frame occupied.
  BinaryType type = BinaryType::kJson;
  std::string_view payload;     ///< View into the caller's buffer.
  std::string error;            ///< kBad reason.
};

/// Scan `buffer` for one frame. Never throws, never reads past the
/// buffer: any truncation — at every byte offset — is kNeedMore, and
/// only a length above kMaxFrameBytes or an unknown type is kBad
/// (framing cannot resync after either, so the caller should close).
BinaryDecode decode_binary_frame(std::string_view buffer);

/// Serialise one packed predict request (client side).
std::string binary_predict_request(std::uint64_t id,
                                   const core::PlannedTransfer& transfer,
                                   const features::ContentionFeatures& load = {},
                                   std::uint64_t deadline_ms = 0);

/// Serialise one packed explain request: the predict payload with a
/// trailing u16 top_k (0 = all features).
std::string binary_explain_request(std::uint64_t id,
                                   const core::PlannedTransfer& transfer,
                                   const features::ContentionFeatures& load = {},
                                   std::uint64_t deadline_ms = 0,
                                   std::uint16_t top_k = 0);

/// Decode a kPredict payload with the same strictness as the JSON path
/// (range/finite checks). Malformed payloads yield kind kBad with the
/// wire id preserved (when readable) so the error stays correlatable;
/// never throws.
Frame parse_binary_predict(std::string_view payload);

/// Decode a kExplain payload (parse_binary_predict plus the trailing
/// top_k); the frame comes back with predict.explain set.
Frame parse_binary_explain(std::string_view payload);

/// Serialise packed predict responses (server side).
std::string binary_predict_response(std::uint64_t id, double rate_mbps,
                                    bool edge_model,
                                    std::uint64_t model_version,
                                    std::uint64_t trace_id, double server_ms);
std::string binary_error_response(std::uint64_t id, const char* code,
                                  const std::string& message,
                                  std::uint64_t trace_id = 0,
                                  double server_ms = 0.0);
/// Packed explain success: the kPredictOk fields plus raw/bias/interval
/// and the top_k strongest (u16 name_len, name, f64 mbps) contribution
/// entries — doubles as raw IEEE-754 bits, so with top_k == 0 the
/// decoded entries rebuild raw_mbps bit-exactly (see explain_response).
std::string binary_explain_response(std::uint64_t id,
                                    const core::RateExplanation& explanation,
                                    std::uint64_t model_version,
                                    std::uint64_t trace_id, double server_ms,
                                    std::uint16_t top_k);

/// Wrap one JSON document (trailing newline optional, stripped) in a
/// kJson frame, for admin/feedback traffic on a binary connection.
std::string binary_json_frame(std::string_view json_document);

/// A decoded kPredictOk / kExplainOk / kError payload (client side).
struct BinaryPredictReply {
  std::uint64_t id = 0;
  bool ok = false;
  double rate_mbps = 0.0;
  bool edge_model = false;
  std::uint64_t model_version = 0;
  std::uint64_t trace_id = 0;
  double server_ms = 0.0;
  std::string error;    ///< Error code when !ok.
  std::string message;
  // kExplainOk only: attribution block (see binary_explain_response).
  bool explained = false;
  double raw_mbps = 0.0;
  double bias_mbps = 0.0;
  double low_mbps = 0.0;
  double high_mbps = 0.0;
  std::vector<std::pair<std::string, double>> contributions;
};

/// Decode a reply payload; throws std::runtime_error on malformed input
/// (a client facing a corrupt server has no structured channel left).
BinaryPredictReply parse_binary_reply(BinaryType type,
                                      std::string_view payload);

}  // namespace xfl::serve
