// Wire protocol for the prediction server: one JSON object per line,
// newline-terminated, over a plain TCP stream. Human-speakable with nc:
//
//   $ echo '{"id":"1","src":0,"dst":1,"bytes":5e10,"files":20}' | nc host 7070
//   {"id":"1","ok":true,"rate_mbps":312.5,"model":"edge","version":1}
//
// Request frames:
//   predict:  {"id":ID, "src":N, "dst":N, "bytes":X, ["files":N],
//              ["dirs":N], ["concurrency":N], ["parallelism":N],
//              ["deadline_ms":N], ["load":{"k_sout":X, ... }]}
//   feedback: {"id":ID, "feedback":"t17", "observed_mbps":X}
//             (reports the observed average rate of a completed transfer
//              back to the prediction it was scheduled on, by trace id)
//   admin:    {"cmd":"ping"|"stats"|"reload", ["id":ID], ["path":"m.txt"],
//              ["registry":true]}   (registry: stats embeds the full
//              metrics-registry snapshot under "metrics")
//
// Response frames always carry "ok". Success echoes the request id;
// failures carry a machine-readable "error" code (kErr* below) plus a
// human-readable "message". Predict responses (success and failure alike)
// also carry "trace_id" — the server-assigned request trace id feedback
// joins on — and "server_ms", the in-server latency from frame receipt to
// response serialisation. Responses on one connection may be reordered
// relative to requests (micro-batching), so clients match on "id".
//
// Parsing is strict: unknown keys, wrong types, and out-of-range values
// are rejected as kBad frames, which the server answers with a
// "bad_request" error instead of dying — both ends live in this repo, so
// strictness catches client bugs at the boundary.
#pragma once

#include <cstdint>
#include <string>

#include <vector>

#include "core/predictor.hpp"
#include "features/contention.hpp"
#include "serve/json.hpp"
#include "serve/monitor.hpp"

namespace xfl::serve {

/// Upper bound on one request line; longer frames are a protocol error.
inline constexpr std::size_t kMaxFrameBytes = 1 << 20;

// Machine-readable error codes carried in the "error" response field.
inline constexpr const char* kErrBadRequest = "bad_request";
inline constexpr const char* kErrOverloaded = "overloaded";
inline constexpr const char* kErrTimeout = "timeout";
inline constexpr const char* kErrShuttingDown = "shutting_down";
inline constexpr const char* kErrInternal = "internal_error";
inline constexpr const char* kErrReloadFailed = "reload_failed";

struct PredictRequest {
  std::string id;
  core::PlannedTransfer transfer;
  features::ContentionFeatures load;
  std::uint64_t deadline_ms = 0;  ///< 0 = no deadline.
};

struct AdminRequest {
  std::string id;
  std::string cmd;   ///< "ping", "stats", or "reload".
  std::string path;  ///< reload only; empty = server's configured path.
  bool registry = false;  ///< stats only; embed the metrics registry.
};

struct FeedbackRequest {
  std::string id;
  std::uint64_t trace_id = 0;   ///< Parsed from the "feedback" field.
  double observed_mbps = 0.0;   ///< Observed average rate; finite, > 0.
};

/// One parsed request line. kBad carries the reason (and the id when it
/// could still be extracted, so the error response stays correlatable).
struct Frame {
  enum class Kind { kPredict, kFeedback, kAdmin, kBad };
  Kind kind = Kind::kBad;
  std::string id;
  PredictRequest predict;
  FeedbackRequest feedback;
  AdminRequest admin;
  std::string error;
};

/// Parse one request line. Never throws: malformed input yields kBad.
Frame parse_frame(const std::string& line);

/// Trace ids travel as "t<decimal>" strings ("t17") so they are visually
/// distinct from request ids. parse_trace_id accepts exactly that form.
std::string trace_id_string(std::uint64_t trace_id);
bool parse_trace_id(const std::string& text, std::uint64_t& trace_id);

/// Serialise a predict request (client side). `load` is emitted only when
/// any field is non-zero; ids are always emitted as JSON strings.
std::string predict_request_line(const std::string& id,
                                 const core::PlannedTransfer& transfer,
                                 const features::ContentionFeatures& load = {},
                                 std::uint64_t deadline_ms = 0);

/// Serialise a feedback request (client side).
std::string feedback_request_line(const std::string& id,
                                  const std::string& trace_id,
                                  double observed_mbps);

/// Quantile summary of one stage histogram, embedded in stats responses.
struct StageQuantiles {
  std::uint64_t count = 0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// Everything the `stats` admin command reports. The server fills this
/// from the live registry + monitor; the builder only serialises.
struct StatsReport {
  std::size_t queue_depth = 0;
  std::uint64_t model_version = 0;
  /// Batch-inference kernel the serving model dispatches to ("scalar" /
  /// "avx2" / "quantized") — names the hardware path behind the latency
  /// numbers so stats are comparable across hosts and XFL_KERNEL runs.
  std::string kernel;
  std::uint64_t requests = 0;
  std::uint64_t rejected = 0;
  /// Stage latency quantiles, microseconds: name -> summary.
  std::vector<std::pair<std::string, StageQuantiles>> latency_us;
  /// Batch size distribution (rows per predict batch).
  StageQuantiles batch_size;
  std::uint64_t batches = 0;
  std::uint64_t batch_rows = 0;
  // Drift monitor block.
  ServeMonitor::Options drift_options;
  bool drift_alarm = false;
  std::uint64_t drift_alarms_total = 0;
  std::uint64_t feedback_count = 0;
  std::uint64_t feedback_unmatched = 0;
  std::map<std::uint64_t, ServeMonitor::VersionStats> versions;
  /// Raw Registry::to_json() output, spliced under "metrics" when the
  /// request set "registry":true. Empty = omitted.
  std::string registry_json;
};

// Response builders (server side). Each returns one newline-terminated
// frame. rate_mbps uses %.17g so the client's strtod reproduces the
// server's double bit-identically. server_ms is in-server latency from
// frame receipt to response serialisation (fractional milliseconds).
std::string predict_response(const std::string& id, double rate_mbps,
                             bool edge_model, std::uint64_t model_version,
                             std::uint64_t trace_id, double server_ms);
std::string error_response(const std::string& id, const char* code,
                           const std::string& message);
/// Predict-path error: carries the trace id + server time like a success.
std::string error_response(const std::string& id, const char* code,
                           const std::string& message,
                           std::uint64_t trace_id, double server_ms);
std::string feedback_response(const std::string& id,
                              const std::string& trace_id,
                              const ServeMonitor::FeedbackResult& result);
std::string pong_response(const std::string& id, std::uint64_t model_version);
std::string reload_response(const std::string& id,
                            std::uint64_t model_version);
std::string stats_response(const std::string& id, const StatsReport& report);

}  // namespace xfl::serve
