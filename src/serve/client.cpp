#include "serve/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "serve/protocol.hpp"

namespace xfl::serve {

PredictionClient::PredictionClient(const std::string& host,
                                   std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0)
    throw std::runtime_error(std::string("PredictionClient: socket: ") +
                             std::strerror(errno));
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(port);
  const std::string numeric = host == "localhost" ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, numeric.c_str(), &address.sin_addr) != 1) {
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("PredictionClient: bad host '" + host + "'");
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&address),
                sizeof address) != 0) {
    const std::string what = std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("PredictionClient: connect to " + numeric + ":" +
                             std::to_string(port) + ": " + what);
  }
  const int nodelay = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &nodelay, sizeof nodelay);
}

PredictionClient::~PredictionClient() {
  if (fd_ >= 0) ::close(fd_);
}

void PredictionClient::send_raw(std::string_view bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        ::send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n <= 0)
      throw std::runtime_error(std::string("PredictionClient: send: ") +
                               std::strerror(errno));
    sent += static_cast<std::size_t>(n);
  }
}

void PredictionClient::send_line(const std::string& line) {
  std::string framed = line;
  if (framed.empty() || framed.back() != '\n') framed.push_back('\n');
  send_raw(framed);
}

void PredictionClient::negotiate_binary() {
  if (binary_) return;
  if (!buffer_.empty())
    throw std::runtime_error(
        "PredictionClient: negotiate_binary with unread replies buffered");
  send_raw(kBinaryMagic);
  while (buffer_.size() < kBinaryMagic.size()) {
    char chunk[64];
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n <= 0)
      throw std::runtime_error(
          "PredictionClient: connection closed during binary negotiation");
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
  if (buffer_.compare(0, kBinaryMagic.size(), kBinaryMagic) != 0)
    throw std::runtime_error("PredictionClient: server refused binary mode");
  buffer_.erase(0, kBinaryMagic.size());
  binary_ = true;
}

std::pair<BinaryType, std::string> PredictionClient::read_frame() {
  for (;;) {
    const BinaryDecode decoded = decode_binary_frame(buffer_);
    if (decoded.status == BinaryDecode::Status::kFrame) {
      const BinaryType type = decoded.type;
      std::string payload(decoded.payload);
      buffer_.erase(0, decoded.consumed);
      return {type, std::move(payload)};
    }
    if (decoded.status == BinaryDecode::Status::kBad)
      throw std::runtime_error("PredictionClient: bad binary frame: " +
                               decoded.error);
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n <= 0)
      throw std::runtime_error(
          "PredictionClient: connection closed by server");
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

bool PredictionClient::response_buffered() const {
  if (binary_)
    return decode_binary_frame(buffer_).status == BinaryDecode::Status::kFrame;
  return buffer_.find('\n') != std::string::npos;
}

void PredictionClient::send_document(const std::string& line) {
  if (binary_)
    send_raw(binary_json_frame(line));
  else
    send_line(line);
}

std::string PredictionClient::read_document() {
  if (!binary_) return read_line();
  // Packed predict replies arriving while an admin/feedback call waits
  // can only belong to pipelined low-level traffic; skip them.
  for (;;) {
    auto [type, payload] = read_frame();
    if (type == BinaryType::kJson) return payload;
  }
}

std::string PredictionClient::read_line() {
  for (;;) {
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      std::string line = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n <= 0)
      throw std::runtime_error(
          "PredictionClient: connection closed by server");
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

PredictReply PredictionClient::parse_reply(const std::string& line) {
  const JsonValue root = parse_json(line);
  if (!root.is_object())
    throw std::runtime_error("PredictionClient: reply is not an object");
  PredictReply reply;
  if (const JsonValue* id = root.find("id"); id && id->is_string())
    reply.id = id->string;
  if (const JsonValue* ok = root.find("ok"); ok && ok->is_bool())
    reply.ok = ok->boolean;
  if (const JsonValue* rate = root.find("rate_mbps"); rate && rate->is_number())
    reply.rate_mbps = rate->number;
  if (const JsonValue* model = root.find("model"); model && model->is_string())
    reply.model = model->string;
  if (const JsonValue* v = root.find("version"); v && v->is_number())
    reply.model_version = static_cast<std::uint64_t>(v->number);
  if (const JsonValue* trace = root.find("trace_id");
      trace && trace->is_string())
    reply.trace_id = trace->string;
  if (const JsonValue* ms = root.find("server_ms"); ms && ms->is_number())
    reply.server_ms = ms->number;
  if (const JsonValue* error = root.find("error"); error && error->is_string())
    reply.error = error->string;
  if (const JsonValue* msg = root.find("message"); msg && msg->is_string())
    reply.message = msg->string;
  return reply;
}

PredictReply PredictionClient::round_trip(const std::string& line,
                                          const std::string& id) {
  send_document(line);
  // Replies can be reordered by the batcher relative to other traffic on
  // this connection, so spin until ours appears.
  for (;;) {
    const PredictReply reply = parse_reply(read_document());
    if (reply.id == id) return reply;
  }
}

PredictReply PredictionClient::predict(
    const core::PlannedTransfer& transfer,
    const features::ContentionFeatures& load, std::uint64_t deadline_ms) {
  const std::uint64_t numeric_id = next_id_++;
  const std::string id = std::to_string(numeric_id);
  if (!binary_)
    return round_trip(predict_request_line(id, transfer, load, deadline_ms),
                      id);
  // Packed hot path: kPredict out, kPredictOk/kError back, ids numeric.
  send_raw(binary_predict_request(numeric_id, transfer, load, deadline_ms));
  for (;;) {
    auto [type, payload] = read_frame();
    if (type == BinaryType::kJson) continue;  // Pipelined admin traffic.
    const BinaryPredictReply packed = parse_binary_reply(type, payload);
    if (packed.id != numeric_id) continue;
    PredictReply reply;
    reply.id = id;
    reply.ok = packed.ok;
    reply.rate_mbps = packed.rate_mbps;
    if (packed.ok) reply.model = packed.edge_model ? "edge" : "global";
    reply.model_version = packed.model_version;
    if (packed.trace_id != 0) reply.trace_id = trace_id_string(packed.trace_id);
    reply.server_ms = packed.server_ms;
    reply.error = packed.error;
    reply.message = packed.message;
    return reply;
  }
}

ExplainReply PredictionClient::explain(
    const core::PlannedTransfer& transfer,
    const features::ContentionFeatures& load, std::uint64_t deadline_ms,
    std::uint16_t top_k) {
  const std::uint64_t numeric_id = next_id_++;
  const std::string id = std::to_string(numeric_id);
  ExplainReply reply;
  reply.id = id;
  if (!binary_) {
    send_document(explain_request_line(id, transfer, load, deadline_ms,
                                       top_k));
    for (;;) {
      const JsonValue root = parse_json(read_document());
      const JsonValue* reply_id = root.find("id");
      if (reply_id == nullptr || !reply_id->is_string() ||
          reply_id->string != id)
        continue;
      if (const JsonValue* ok = root.find("ok"); ok && ok->is_bool())
        reply.ok = ok->boolean;
      if (const JsonValue* v = root.find("rate_mbps"); v && v->is_number())
        reply.rate_mbps = v->number;
      if (const JsonValue* v = root.find("raw_mbps"); v && v->is_number())
        reply.raw_mbps = v->number;
      if (const JsonValue* v = root.find("bias_mbps"); v && v->is_number())
        reply.bias_mbps = v->number;
      if (const JsonValue* v = root.find("low_mbps"); v && v->is_number())
        reply.low_mbps = v->number;
      if (const JsonValue* v = root.find("high_mbps"); v && v->is_number())
        reply.high_mbps = v->number;
      if (const JsonValue* m = root.find("model"); m && m->is_string())
        reply.model = m->string;
      if (const JsonValue* v = root.find("version"); v && v->is_number())
        reply.model_version = static_cast<std::uint64_t>(v->number);
      if (const JsonValue* t = root.find("trace_id"); t && t->is_string())
        reply.trace_id = t->string;
      if (const JsonValue* v = root.find("server_ms"); v && v->is_number())
        reply.server_ms = v->number;
      if (const JsonValue* c = root.find("contributions");
          c && c->is_array()) {
        for (const JsonValue& entry : c->array) {
          if (!entry.is_object()) continue;
          const JsonValue* feature = entry.find("feature");
          const JsonValue* mbps = entry.find("mbps");
          if (feature && feature->is_string() && mbps && mbps->is_number())
            reply.contributions.emplace_back(feature->string, mbps->number);
        }
      }
      if (const JsonValue* e = root.find("error"); e && e->is_string())
        reply.error = e->string;
      if (const JsonValue* m = root.find("message"); m && m->is_string())
        reply.message = m->string;
      return reply;
    }
  }
  send_raw(binary_explain_request(numeric_id, transfer, load, deadline_ms,
                                  top_k));
  for (;;) {
    auto [type, payload] = read_frame();
    if (type == BinaryType::kJson) continue;  // Pipelined admin traffic.
    const BinaryPredictReply packed = parse_binary_reply(type, payload);
    if (packed.id != numeric_id) continue;
    reply.ok = packed.ok;
    reply.rate_mbps = packed.rate_mbps;
    reply.raw_mbps = packed.raw_mbps;
    reply.bias_mbps = packed.bias_mbps;
    reply.low_mbps = packed.low_mbps;
    reply.high_mbps = packed.high_mbps;
    if (packed.ok) reply.model = packed.edge_model ? "edge" : "global";
    reply.model_version = packed.model_version;
    if (packed.trace_id != 0) reply.trace_id = trace_id_string(packed.trace_id);
    reply.server_ms = packed.server_ms;
    reply.contributions = packed.contributions;
    reply.error = packed.error;
    reply.message = packed.message;
    return reply;
  }
}

FeedbackReply PredictionClient::feedback(const std::string& trace_id,
                                         double observed_mbps) {
  const std::string id = std::to_string(next_id_++);
  send_document(feedback_request_line(id, trace_id, observed_mbps));
  for (;;) {
    const JsonValue root = parse_json(read_document());
    const JsonValue* reply_id = root.find("id");
    if (reply_id == nullptr || !reply_id->is_string() ||
        reply_id->string != id)
      continue;
    FeedbackReply reply;
    reply.id = id;
    if (const JsonValue* ok = root.find("ok"); ok && ok->is_bool())
      reply.ok = ok->boolean;
    if (const JsonValue* m = root.find("matched"); m && m->is_bool())
      reply.matched = m->boolean;
    if (const JsonValue* v = root.find("ape_pct"); v && v->is_number())
      reply.ape_pct = v->number;
    if (const JsonValue* v = root.find("predicted_mbps");
        v && v->is_number())
      reply.predicted_mbps = v->number;
    if (const JsonValue* v = root.find("version"); v && v->is_number())
      reply.model_version = static_cast<std::uint64_t>(v->number);
    if (const JsonValue* v = root.find("mdape_pct"); v && v->is_number())
      reply.mdape_pct = v->number;
    if (const JsonValue* v = root.find("window"); v && v->is_number())
      reply.window = static_cast<std::uint64_t>(v->number);
    if (const JsonValue* a = root.find("alarm"); a && a->is_bool())
      reply.alarm = a->boolean;
    return reply;
  }
}

bool PredictionClient::ping() {
  const std::string id = std::to_string(next_id_++);
  std::string line = "{\"cmd\":\"ping\",\"id\":";
  append_json_string(line, id);
  line += "}";
  return round_trip(line, id).ok;
}

std::uint64_t PredictionClient::reload(const std::string& path) {
  const std::string id = std::to_string(next_id_++);
  std::string line = "{\"cmd\":\"reload\",\"id\":";
  append_json_string(line, id);
  if (!path.empty()) {
    line += ",\"path\":";
    append_json_string(line, path);
  }
  line += "}";
  const PredictReply reply = round_trip(line, id);
  if (!reply.ok)
    throw std::runtime_error("PredictionClient: reload failed: " +
                             reply.message);
  return reply.model_version;
}

JsonValue PredictionClient::stats(bool registry) {
  const std::string id = std::to_string(next_id_++);
  std::string line = "{\"cmd\":\"stats\",\"id\":";
  append_json_string(line, id);
  if (registry) line += ",\"registry\":true";
  line += "}";
  send_document(line);
  for (;;) {
    const JsonValue root = parse_json(read_document());
    const JsonValue* reply_id = root.find("id");
    if (reply_id != nullptr && reply_id->is_string() &&
        reply_id->string == id)
      return root;
  }
}

JsonValue PredictionClient::retrain_status() {
  const std::string id = std::to_string(next_id_++);
  std::string line = "{\"cmd\":\"retrain-status\",\"id\":";
  append_json_string(line, id);
  line += "}";
  send_document(line);
  for (;;) {
    const JsonValue root = parse_json(read_document());
    const JsonValue* reply_id = root.find("id");
    if (reply_id != nullptr && reply_id->is_string() &&
        reply_id->string == id)
      return root;
  }
}

}  // namespace xfl::serve
