// Long-running prediction daemon over POSIX TCP sockets. One accept
// thread plus one reader thread per connection (clients here are
// schedulers, not browsers — tens of connections, not tens of
// thousands); every parsed predict request flows through the shared
// MicroBatcher, and responses are written back from the batch worker via
// a per-connection write lock, so frames never interleave.
//
// Lifecycle: start() binds/listens (port 0 = kernel-assigned, reported
// by port()); stop() is a graceful drain — stop accepting, answer
// everything already admitted to the batcher, reject late arrivals with
// "shutting_down", then close connections. The destructor stops too.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/batcher.hpp"
#include "serve/model_host.hpp"
#include "serve/monitor.hpp"
#include "serve/protocol.hpp"

namespace xfl::serve {

class PredictionServer {
 public:
  struct Options {
    std::uint16_t port = 0;  ///< 0 = kernel-assigned ephemeral port.
    std::string bind_address = "127.0.0.1";
    std::size_t max_batch = 64;
    std::size_t queue_capacity = 1024;
    std::size_t predict_threads = 1;
    /// Drift-monitor tuning (journal size, window, alarm threshold).
    ServeMonitor::Options monitor;
  };

  // Two overloads instead of one defaulted parameter: a nested aggregate
  // with member initializers cannot appear as a default argument inside
  // its own enclosing class.
  explicit PredictionServer(ModelHost& host);
  PredictionServer(ModelHost& host, Options options);
  ~PredictionServer();

  PredictionServer(const PredictionServer&) = delete;
  PredictionServer& operator=(const PredictionServer&) = delete;

  /// Bind, listen, and start accepting. Throws std::runtime_error on
  /// socket failures (port in use, bad bind address).
  void start();

  /// Graceful drain; see file header. Idempotent, safe to call from any
  /// thread except a connection callback.
  void stop();

  /// The bound port (after start(); resolves ephemeral port 0).
  std::uint16_t port() const { return port_; }

  ModelHost& host() { return host_; }
  /// Exposed for ops levers and tests (pause/resume, queue_depth).
  MicroBatcher& batcher() { return batcher_; }
  /// The online accuracy/drift monitor fed by feedback frames.
  ServeMonitor& monitor() { return monitor_; }

 private:
  struct Connection;
  struct Worker;

  void accept_loop();
  void connection_loop(const std::shared_ptr<Connection>& conn);
  void handle_line(const std::shared_ptr<Connection>& conn,
                   const std::string& line);
  void handle_admin(const std::shared_ptr<Connection>& conn,
                    const AdminRequest& admin);
  void handle_feedback(const std::shared_ptr<Connection>& conn,
                       const FeedbackRequest& feedback);
  void reap_finished_workers();

  ModelHost& host_;
  Options options_;
  MicroBatcher batcher_;
  ServeMonitor monitor_;
  /// Trace ids are per-server-instance, dense from 1; id 0 is reserved
  /// so "t0" can never match a journalled prediction.
  std::atomic<std::uint64_t> next_trace_{1};

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};

  std::mutex state_mutex_;  ///< start/stop lifecycle flags.
  bool started_ = false;
  bool stopped_ = false;

  std::mutex conn_mutex_;  ///< Guards workers_.
  std::vector<std::unique_ptr<Worker>> workers_;
};

}  // namespace xfl::serve
