// Long-running prediction daemon over POSIX TCP sockets, built as an
// epoll readiness loop: one poll thread drives every non-blocking socket
// (accept, reads, write flushes, partial-frame timeouts), so ten
// thousand mostly-idle connections cost ten thousand fds and zero
// threads — not ten thousand blocked readers. Parsed predict requests
// flow into the sharded MicroBatcher (each connection is pinned to one
// shard; workers steal only on imbalance) and responses are appended to
// a per-connection write buffer from the batch workers; partial reads
// and short writes are first-class connection states, never blocked
// threads. Connections speak line-delimited JSON by default and may
// negotiate the length-prefixed binary framing (see protocol.hpp).
//
// Lifecycle: start() binds/listens (port 0 = kernel-assigned, reported
// by port()); stop() is a graceful drain — stop accepting, answer
// everything already admitted to the batcher, reject late arrivals with
// "shutting_down", flush every pending write buffer (bounded by
// drain_flush_timeout_ms), then close connections. The destructor stops
// too.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/batcher.hpp"
#include "serve/model_host.hpp"
#include "serve/monitor.hpp"
#include "serve/protocol.hpp"

namespace xfl::serve {

class PredictionServer {
 public:
  struct Options {
    std::uint16_t port = 0;  ///< 0 = kernel-assigned ephemeral port.
    std::string bind_address = "127.0.0.1";
    std::size_t max_batch = 64;
    std::size_t queue_capacity = 1024;  ///< Per batcher shard.
    std::size_t predict_threads = 1;
    /// Batcher shards (one owned queue + worker each); 0 = auto
    /// (hardware_concurrency clamped to [1, 4]).
    std::size_t shards = 0;
    /// A connection whose partially-received frame stalls longer than
    /// this is answered with a structured "frame_timeout" error and
    /// closed. 0 disables. Completely idle connections (no buffered
    /// partial frame) are never timed out — idling is free by design.
    std::uint64_t partial_frame_timeout_ms = 30000;
    /// Upper bound on flushing unread responses to slow clients during
    /// stop(); afterwards the remaining connections are closed anyway.
    std::uint64_t drain_flush_timeout_ms = 5000;
    /// Drift-monitor tuning (journal size, window, alarm threshold).
    ServeMonitor::Options monitor;
  };

  // Two overloads instead of one defaulted parameter: a nested aggregate
  // with member initializers cannot appear as a default argument inside
  // its own enclosing class.
  explicit PredictionServer(ModelHost& host);
  PredictionServer(ModelHost& host, Options options);
  ~PredictionServer();

  PredictionServer(const PredictionServer&) = delete;
  PredictionServer& operator=(const PredictionServer&) = delete;

  /// Bind, listen, and start the poll loop. Throws std::runtime_error on
  /// socket failures (port in use, bad bind address).
  void start();

  /// Graceful drain; see file header. Idempotent, safe to call from any
  /// thread except a connection callback.
  void stop();

  /// The bound port (after start(); resolves ephemeral port 0).
  std::uint16_t port() const { return port_; }

  ModelHost& host() { return host_; }
  /// Exposed for ops levers and tests (pause/resume, queue_depth).
  MicroBatcher& batcher() { return batcher_; }
  /// The online accuracy/drift monitor fed by feedback frames.
  ServeMonitor& monitor() { return monitor_; }

  /// Currently open connections (the soak test's scale probe).
  std::size_t connection_count() const {
    return conn_count_.load(std::memory_order_relaxed);
  }

  /// Invoked on the poll thread after every MATCHED feedback join, with
  /// the join result (which carries the captured transfer + load), the
  /// trace id, and the observed rate — the hook the retrain subsystem
  /// journals training records through. Install before start(); keep it
  /// cheap (one buffered journal append), it runs on the event loop.
  using FeedbackHook =
      std::function<void(const ServeMonitor::FeedbackResult& result,
                         std::uint64_t trace_id, double observed_mbps)>;
  void set_feedback_hook(FeedbackHook hook) {
    feedback_hook_ = std::move(hook);
  }

  /// Supplies the JSON object spliced into `retrain-status` admin
  /// replies (the retrain worker's status_json()). Install before
  /// start(); unset means the command reports {"enabled":false}.
  void set_retrain_status_provider(std::function<std::string()> provider) {
    retrain_status_ = std::move(provider);
  }

 private:
  struct Connection;
  struct Cork;

  /// Worker-thread write corking (MicroBatcher::Options::batch_hook):
  /// between cork_begin() and cork_end(), queue_output on that thread
  /// only appends to the connection's buffer; cork_end() flushes every
  /// touched connection with one send(2) burst each.
  static Cork& cork_state();
  void cork_begin();
  void cork_end();

  void poll_loop();
  void wake();
  void handle_accepts();
  void handle_readable(const std::shared_ptr<Connection>& conn);
  void handle_writable(const std::shared_ptr<Connection>& conn);
  void process_input(const std::shared_ptr<Connection>& conn);
  /// One decoded predict request parked until the end of the readiness
  /// round, so a pipelined connection's frames are admitted in one
  /// submit_burst instead of one lock round trip each.
  struct PendingPredict;
  void handle_frame(const std::shared_ptr<Connection>& conn,
                    const Frame& frame, std::uint64_t received_us,
                    std::vector<PendingPredict>& burst);
  void flush_predict_burst(const std::shared_ptr<Connection>& conn,
                           std::vector<PendingPredict>& burst);
  void handle_admin(const std::shared_ptr<Connection>& conn,
                    const AdminRequest& admin);
  void handle_feedback(const std::shared_ptr<Connection>& conn,
                       const FeedbackRequest& feedback);
  /// Route one JSON response line over the connection's negotiated
  /// framing (wrapped in a kJson binary frame after negotiation).
  void send_response(const std::shared_ptr<Connection>& conn,
                     std::string json_line);
  /// Append bytes to the connection's write buffer, flush what the
  /// socket will take, and arrange EPOLLOUT for the rest. Any thread.
  void queue_output(const std::shared_ptr<Connection>& conn,
                    std::string_view bytes);
  /// Structured error + stop reading; the connection closes once the
  /// error has been flushed.
  void fail_connection(const std::shared_ptr<Connection>& conn,
                       const char* code, const std::string& message);
  void maybe_close(const std::shared_ptr<Connection>& conn);
  void close_connection(const std::shared_ptr<Connection>& conn);
  void sweep_partial_frame_timeouts(std::uint64_t now_us);
  void update_epoll_interest(Connection& conn);
  void drain_pending_attention();
  void request_attention(const std::shared_ptr<Connection>& conn);
  void join_admin_threads();

  ModelHost& host_;
  Options options_;
  MicroBatcher batcher_;
  ServeMonitor monitor_;
  /// Both set before start() (no synchronisation of their own).
  FeedbackHook feedback_hook_;
  std::function<std::string()> retrain_status_;
  /// Trace ids are per-server-instance, dense from 1; id 0 is reserved
  /// so "t0" can never match a journalled prediction.
  std::atomic<std::uint64_t> next_trace_{1};

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;  ///< eventfd the workers poke to re-arm writes.
  std::uint16_t port_ = 0;
  /// obs::monotonic_us() at start(); stats derives uptime_seconds from it.
  std::uint64_t start_us_ = 0;
  std::thread poll_thread_;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> flush_and_exit_{false};
  std::atomic<std::size_t> conn_count_{0};
  std::atomic<std::size_t> next_shard_{0};

  std::mutex state_mutex_;  ///< start/stop lifecycle flags.
  bool started_ = false;
  bool stopped_ = false;

  /// Poll-thread-only: fd -> connection. Callbacks never touch it; they
  /// go through the attention queue below.
  std::vector<std::shared_ptr<Connection>> conns_;

  /// Connections a worker thread wants the poll thread to look at (arm
  /// EPOLLOUT, or re-check close eligibility). MPSC, drained on wake.
  std::mutex attention_mutex_;
  std::vector<std::shared_ptr<Connection>> attention_;

  /// Admin reload runs on its own short-lived thread so a multi-second
  /// model parse never stalls the event loop; joined at stop().
  std::mutex admin_mutex_;
  std::vector<std::thread> admin_threads_;
};

}  // namespace xfl::serve
