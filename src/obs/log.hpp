// Leveled structured logger (pillar 1 of the observability layer).
//
//   XFL_LOG(info) << "edge model trained" << xfl::obs::kv("rows", n);
//
// A statement whose level is below XFL_LOG_MIN_LEVEL (a compile-time
// integer, default 0 = trace) compiles away entirely; one below the
// runtime level costs a single relaxed atomic load. Records are rendered
// either as text ("ts [level] msg key=value ...") or JSON lines, and the
// sink write is the only serialised step — message formatting happens on
// the calling thread, outside any lock.
//
// This header is dependency-free within the repo so that every layer
// (common included) can log without a link cycle.
#pragma once

#include <atomic>
#include <cstdio>
#include <sstream>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

namespace xfl::obs {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

const char* to_string(LogLevel level);

/// Parse "trace"/"debug"/"info"/"warn"/"error"/"off"; false on junk.
bool parse_log_level(std::string_view text, LogLevel& out);

struct LogConfig {
  LogLevel min_level = LogLevel::kInfo;
  bool json = false;          ///< JSON-lines instead of text records.
  std::FILE* sink = nullptr;  ///< nullptr = stderr. Not owned.
};

/// Install level/format/sink. Thread-safe; applies to subsequent records.
void configure_logging(const LogConfig& config);

/// Current runtime threshold (records below it are dropped).
LogLevel log_min_level();

namespace detail {
std::atomic<int>& runtime_level();
}  // namespace detail

inline bool log_enabled(LogLevel level) {
  return static_cast<int>(level) >=
         detail::runtime_level().load(std::memory_order_relaxed);
}

/// One key=value field. `raw` values (numbers, bools) are emitted unquoted
/// in JSON; everything else is escaped and quoted.
struct LogField {
  std::string key;
  std::string value;
  bool raw = false;
};

template <typename T>
LogField kv(std::string_view key, const T& value) {
  LogField field;
  field.key = key;
  if constexpr (std::is_same_v<T, bool>) {
    field.value = value ? "true" : "false";
    field.raw = true;
  } else if constexpr (std::is_arithmetic_v<T>) {
    std::ostringstream out;
    out.precision(15);
    out << value;
    field.value = out.str();
    field.raw = true;
  } else {
    std::ostringstream out;
    out << value;
    field.value = out.str();
  }
  return field;
}

/// Accumulates one record; the destructor hands it to the sink. Created
/// only after the level checks pass, so disabled statements never pay for
/// formatting.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  LogMessage& operator<<(const LogField& field) {
    fields_.push_back(field);
    return *this;
  }
  LogMessage& operator<<(LogField&& field) {
    fields_.push_back(std::move(field));
    return *this;
  }
  template <typename T>
  LogMessage& operator<<(const T& value) {
    text_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream text_;
  std::vector<LogField> fields_;
};

/// Swallows the LogMessage in the enabled arm of XFL_LOG's ternary so both
/// arms have type void. `&` binds looser than `<<`.
struct LogVoidify {
  void operator&(const LogMessage&) const {}
};

// Level tokens for the macro (XFL_LOG(info) -> kLevel_info).
inline constexpr int kLevel_trace = 0;
inline constexpr int kLevel_debug = 1;
inline constexpr int kLevel_info = 2;
inline constexpr int kLevel_warn = 3;
inline constexpr int kLevel_error = 4;

}  // namespace xfl::obs

/// Compile-time floor: -DXFL_LOG_MIN_LEVEL=2 strips trace/debug statements
/// from the binary (the ternary condition is a constant, so the dead arm —
/// including its formatting — is removed).
#ifndef XFL_LOG_MIN_LEVEL
#define XFL_LOG_MIN_LEVEL 0
#endif

#define XFL_LOG(level)                                                       \
  (::xfl::obs::kLevel_##level < XFL_LOG_MIN_LEVEL ||                         \
   !::xfl::obs::log_enabled(                                                 \
       static_cast<::xfl::obs::LogLevel>(::xfl::obs::kLevel_##level)))       \
      ? (void)0                                                              \
      : ::xfl::obs::LogVoidify() &                                           \
            ::xfl::obs::LogMessage(                                          \
                static_cast<::xfl::obs::LogLevel>(                           \
                    ::xfl::obs::kLevel_##level),                             \
                __FILE__, __LINE__)
