// Metrics registry (pillar 2 of the observability layer): named counters,
// gauges, and fixed-bucket histograms.
//
//   static auto& rows = xfl::obs::counter("gbt.predict.rows");
//   rows.add(batch.rows());
//
// Hot-path cost model: every writer thread owns one of kMetricShards
// cache-line-padded cells per metric, so an increment is a single relaxed
// fetch_add on an uncontended line — nothing on the write path takes a
// lock or orders memory. Scrapes (value()/snapshot()) sum the shards;
// because each increment lands in exactly one shard, totals are exact, not
// sampled. A global kill switch (set_metrics_enabled) turns every write
// into one relaxed load, which is what the overhead guard benchmarks
// against.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

namespace xfl::obs {

/// Writer shards per metric. Threads are assigned round-robin, so exact
/// totals survive any thread count; 16 lines bound the per-metric memory
/// while keeping collisions rare for the pools this repo runs (<= cores).
inline constexpr std::size_t kMetricShards = 16;

namespace detail {
/// This thread's shard slot (assigned once, round-robin).
std::size_t shard_index() noexcept;
std::atomic<bool>& metrics_switch() noexcept;
}  // namespace detail

inline bool metrics_enabled() noexcept {
  return detail::metrics_switch().load(std::memory_order_relaxed);
}
void set_metrics_enabled(bool enabled) noexcept;

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    if (!metrics_enabled()) return;
    cells_[detail::shard_index()].value.fetch_add(n,
                                                  std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept;

 private:
  friend class Registry;
  void reset() noexcept;
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> value{0};
  };
  std::array<Cell, kMetricShards> cells_{};
};

/// Last-write-wins instantaneous value (queue depths, sizes).
class Gauge {
 public:
  void set(double v) noexcept {
    if (!metrics_enabled()) return;
    value_.store(v, std::memory_order_relaxed);
    // Running maximum via CAS; losing the race only means another thread
    // installed a value at least as large.
    double seen = max_.load(std::memory_order_relaxed);
    while (v > seen &&
           !max_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
    }
  }
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  double max() const noexcept { return max_.load(std::memory_order_relaxed); }

 private:
  friend class Registry;
  void reset() noexcept;
  std::atomic<double> value_{0.0};
  std::atomic<double> max_{0.0};
};

/// Fixed-bucket histogram: bucket i counts samples <= bounds[i], plus an
/// implicit overflow bucket. Counts and the running sum are sharded like
/// Counter cells.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void record(double v) noexcept;

  struct Snapshot {
    std::vector<double> upper_bounds;   ///< Ascending; +inf is implicit.
    std::vector<std::uint64_t> counts;  ///< upper_bounds.size() + 1 entries.
    std::uint64_t count = 0;
    double sum = 0.0;

    /// Streaming quantile extraction, p in [0, 100]: walk the cumulative
    /// bucket counts to the target rank and interpolate linearly inside
    /// the bucket (lower edge 0 for the first bucket). Samples landing in
    /// the overflow bucket clamp to the highest bound — register the
    /// histogram with log_bucket_bounds() wide enough that the overflow
    /// bucket stays empty. Returns 0 when the histogram is empty.
    double quantile(double p) const;
  };
  Snapshot snapshot() const;

 private:
  friend class Registry;
  void reset() noexcept;
  struct alignas(64) Shard {
    std::vector<std::atomic<std::uint64_t>> counts;
    std::atomic<double> sum{0.0};
  };
  std::vector<double> upper_bounds_;
  std::array<Shard, kMetricShards> shards_;
};

/// Default latency bucket bounds in microseconds (roughly log-spaced from
/// 10us to 10s).
std::span<const double> default_latency_bounds_us();

/// Geometric bucket bounds: lo, lo*growth, lo*growth^2, ... through hi
/// (the last bound is >= hi). With growth 1.08 the relative quantile
/// error from within-bucket interpolation is under ~4%.
std::vector<double> log_bucket_bounds(double lo, double hi, double growth);

/// Fine log-spaced latency bounds (1us..10s, ~4% resolution) for
/// histograms whose quantiles are exported — the serve-path stage timers.
std::span<const double> quantile_latency_bounds_us();

/// Process-wide name -> metric registry. Lookups lock; the returned
/// references are stable for the life of the process, so hot paths resolve
/// a metric once (function-local static) and then write lock-free.
class Registry {
 public:
  static Registry& instance();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// First registration fixes the bounds; later calls ignore `bounds`.
  Histogram& histogram(const std::string& name,
                       std::span<const double> bounds);

  /// One JSON object: {"counters":{..},"gauges":{..},"histograms":{..}}.
  void write_json(std::ostream& out) const;
  std::string to_json() const;

  /// Human-readable dump, one metric per line.
  void write_text(std::ostream& out) const;

  /// "name=value name=value ..." for counters only (bench context lines).
  std::string counters_compact() const;

  /// Zero every metric (values, not registrations). For tests and
  /// paired-overhead measurements.
  void reset();

 private:
  Registry() = default;
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

// Convenience accessors mirroring Registry::instance() methods.
Counter& counter(const std::string& name);
Gauge& gauge(const std::string& name);
Histogram& histogram(const std::string& name,
                     std::span<const double> bounds = {});

}  // namespace xfl::obs
