#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace xfl::obs {

namespace detail {

std::size_t shard_index() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t index =
      next.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
  return index;
}

std::atomic<bool>& metrics_switch() noexcept {
  static std::atomic<bool> enabled{true};
  return enabled;
}

}  // namespace detail

void set_metrics_enabled(bool enabled) noexcept {
  detail::metrics_switch().store(enabled, std::memory_order_relaxed);
}

std::uint64_t Counter::value() const noexcept {
  std::uint64_t total = 0;
  for (const auto& cell : cells_)
    total += cell.value.load(std::memory_order_relaxed);
  return total;
}

void Counter::reset() noexcept {
  for (auto& cell : cells_) cell.value.store(0, std::memory_order_relaxed);
}

void Gauge::reset() noexcept {
  value_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
}

Histogram::Histogram(std::vector<double> upper_bounds)
    : upper_bounds_(std::move(upper_bounds)) {
  std::sort(upper_bounds_.begin(), upper_bounds_.end());
  upper_bounds_.erase(
      std::unique(upper_bounds_.begin(), upper_bounds_.end()),
      upper_bounds_.end());
  for (auto& shard : shards_)
    shard.counts =
        std::vector<std::atomic<std::uint64_t>>(upper_bounds_.size() + 1);
}

void Histogram::record(double v) noexcept {
  if (!metrics_enabled()) return;
  const std::size_t bucket = static_cast<std::size_t>(
      std::lower_bound(upper_bounds_.begin(), upper_bounds_.end(), v) -
      upper_bounds_.begin());
  Shard& shard = shards_[detail::shard_index()];
  shard.counts[bucket].fetch_add(1, std::memory_order_relaxed);
  shard.sum.fetch_add(v, std::memory_order_relaxed);
}

double Histogram::Snapshot::quantile(double p) const {
  if (count == 0) return 0.0;
  p = std::min(std::max(p, 0.0), 100.0);
  // Target rank, 1-based: the sample such that `p`% of the mass is at or
  // below it (matches xfl::percentile's linear interpolation closely
  // enough for log-spaced buckets).
  const double rank = p / 100.0 * static_cast<double>(count);
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < counts.size(); ++b) {
    if (counts[b] == 0) continue;
    const std::uint64_t below = cumulative;
    cumulative += counts[b];
    if (static_cast<double>(cumulative) < rank) continue;
    // Overflow bucket: clamp to the highest bound (0 when the histogram
    // was registered with no bounds at all — every sample overflows).
    if (b >= upper_bounds.size())
      return upper_bounds.empty() ? 0.0 : upper_bounds.back();
    const double lo = b == 0 ? 0.0 : upper_bounds[b - 1];
    const double hi = upper_bounds[b];
    const double fraction =
        (rank - static_cast<double>(below)) / static_cast<double>(counts[b]);
    return lo + (hi - lo) * std::min(std::max(fraction, 0.0), 1.0);
  }
  return upper_bounds.empty() ? 0.0 : upper_bounds.back();
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot snap;
  snap.upper_bounds = upper_bounds_;
  snap.counts.assign(upper_bounds_.size() + 1, 0);
  for (const auto& shard : shards_) {
    for (std::size_t b = 0; b < shard.counts.size(); ++b)
      snap.counts[b] += shard.counts[b].load(std::memory_order_relaxed);
    snap.sum += shard.sum.load(std::memory_order_relaxed);
  }
  for (const auto c : snap.counts) snap.count += c;
  return snap;
}

void Histogram::reset() noexcept {
  for (auto& shard : shards_) {
    for (auto& c : shard.counts) c.store(0, std::memory_order_relaxed);
    shard.sum.store(0.0, std::memory_order_relaxed);
  }
}

std::span<const double> default_latency_bounds_us() {
  static const std::vector<double> bounds = {
      10.0,    30.0,    100.0,    300.0,    1.0e3,  3.0e3, 1.0e4,
      3.0e4,   1.0e5,   3.0e5,    1.0e6,    3.0e6,  1.0e7};
  return bounds;
}

std::vector<double> log_bucket_bounds(double lo, double hi, double growth) {
  std::vector<double> bounds;
  if (!(lo > 0.0) || !(hi > lo) || !(growth > 1.0)) return bounds;
  for (double bound = lo; bound < hi; bound *= growth)
    bounds.push_back(bound);
  bounds.push_back(hi);
  return bounds;
}

std::span<const double> quantile_latency_bounds_us() {
  static const std::vector<double> bounds =
      log_bucket_bounds(1.0, 1.0e7, 1.08);
  return bounds;
}

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name,
                               std::span<const double> bounds) {
  std::lock_guard lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) {
    std::vector<double> upper(bounds.begin(), bounds.end());
    if (upper.empty()) {
      const auto defaults = default_latency_bounds_us();
      upper.assign(defaults.begin(), defaults.end());
    }
    slot = std::make_unique<Histogram>(std::move(upper));
  }
  return *slot;
}

namespace {
void append_number(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}
}  // namespace

std::string Registry::to_json() const {
  std::lock_guard lock(mutex_);
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, metric] : counters_) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += name;
    out += "\":";
    out += std::to_string(metric->value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, metric] : gauges_) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += name;
    out += "\":{\"value\":";
    append_number(out, metric->value());
    out += ",\"max\":";
    append_number(out, metric->max());
    out += '}';
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, metric] : histograms_) {
    if (!first) out += ',';
    first = false;
    const auto snap = metric->snapshot();
    out += '"';
    out += name;
    out += "\":{\"count\":";
    out += std::to_string(snap.count);
    out += ",\"sum\":";
    append_number(out, snap.sum);
    out += ",\"p50\":";
    append_number(out, snap.quantile(50.0));
    out += ",\"p95\":";
    append_number(out, snap.quantile(95.0));
    out += ",\"p99\":";
    append_number(out, snap.quantile(99.0));
    out += ",\"buckets\":[";
    for (std::size_t b = 0; b < snap.counts.size(); ++b) {
      if (b != 0) out += ',';
      out += "{\"le\":";
      if (b < snap.upper_bounds.size()) {
        append_number(out, snap.upper_bounds[b]);
      } else {
        out += "\"+inf\"";
      }
      out += ",\"count\":";
      out += std::to_string(snap.counts[b]);
      out += '}';
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

void Registry::write_json(std::ostream& out) const { out << to_json(); }

void Registry::write_text(std::ostream& out) const {
  std::lock_guard lock(mutex_);
  for (const auto& [name, metric] : counters_)
    out << "counter   " << name << " = " << metric->value() << '\n';
  for (const auto& [name, metric] : gauges_)
    out << "gauge     " << name << " = " << metric->value()
        << " (max " << metric->max() << ")\n";
  for (const auto& [name, metric] : histograms_) {
    const auto snap = metric->snapshot();
    out << "histogram " << name << " count=" << snap.count
        << " sum=" << snap.sum;
    if (snap.count > 0)
      out << " mean=" << snap.sum / static_cast<double>(snap.count)
          << " p50=" << snap.quantile(50.0)
          << " p95=" << snap.quantile(95.0)
          << " p99=" << snap.quantile(99.0);
    out << '\n';
  }
}

std::string Registry::counters_compact() const {
  std::lock_guard lock(mutex_);
  std::string out;
  for (const auto& [name, metric] : counters_) {
    if (!out.empty()) out += ' ';
    out += name;
    out += '=';
    out += std::to_string(metric->value());
  }
  return out;
}

void Registry::reset() {
  std::lock_guard lock(mutex_);
  for (auto& [name, metric] : counters_) metric->reset();
  for (auto& [name, metric] : gauges_) metric->reset();
  for (auto& [name, metric] : histograms_) metric->reset();
}

Counter& counter(const std::string& name) {
  return Registry::instance().counter(name);
}

Gauge& gauge(const std::string& name) {
  return Registry::instance().gauge(name);
}

Histogram& histogram(const std::string& name, std::span<const double> bounds) {
  return Registry::instance().histogram(name, bounds);
}

}  // namespace xfl::obs
