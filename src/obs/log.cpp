#include "obs/log.hpp"

#include <chrono>
#include <cstring>
#include <mutex>

namespace xfl::obs {

namespace {

struct SinkState {
  std::mutex mutex;
  bool json = false;
  std::FILE* sink = nullptr;  // nullptr = stderr, resolved at write time.
};

SinkState& sink_state() {
  static SinkState state;
  return state;
}

/// Seconds since the Unix epoch, with sub-second precision.
double wall_time_s() {
  const auto now = std::chrono::system_clock::now().time_since_epoch();
  return std::chrono::duration<double>(now).count();
}

void json_escape(const std::string& in, std::string& out) {
  for (const char c : in) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
}

/// File basename only: full build paths are noise in every record.
const char* basename_of(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

const char* to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "trace";
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "?";
}

bool parse_log_level(std::string_view text, LogLevel& out) {
  for (const LogLevel level :
       {LogLevel::kTrace, LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarn,
        LogLevel::kError, LogLevel::kOff}) {
    if (text == to_string(level)) {
      out = level;
      return true;
    }
  }
  return false;
}

namespace detail {
std::atomic<int>& runtime_level() {
  static std::atomic<int> level{static_cast<int>(LogLevel::kInfo)};
  return level;
}
}  // namespace detail

void configure_logging(const LogConfig& config) {
  detail::runtime_level().store(static_cast<int>(config.min_level),
                                std::memory_order_relaxed);
  auto& state = sink_state();
  std::lock_guard lock(state.mutex);
  state.json = config.json;
  state.sink = config.sink;
}

LogLevel log_min_level() {
  return static_cast<LogLevel>(
      detail::runtime_level().load(std::memory_order_relaxed));
}

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level), file_(file), line_(line) {}

LogMessage::~LogMessage() {
  auto& state = sink_state();
  // Snapshot the format flag without the lock: a torn read is impossible
  // for a bool, and configure_logging mid-record at worst formats this one
  // record in the previous style.
  std::string record;
  record.reserve(128);
  const std::string msg = text_.str();
  const double ts = wall_time_s();
  char buf[64];
  if (state.json) {
    std::snprintf(buf, sizeof buf, "%.6f", ts);
    record += "{\"ts\":";
    record += buf;
    record += ",\"level\":\"";
    record += to_string(level_);
    record += "\",\"src\":\"";
    record += basename_of(file_);
    std::snprintf(buf, sizeof buf, ":%d", line_);
    record += buf;
    record += "\",\"msg\":\"";
    json_escape(msg, record);
    record += '"';
    for (const auto& field : fields_) {
      record += ",\"";
      json_escape(field.key, record);
      record += "\":";
      if (field.raw) {
        record += field.value;
      } else {
        record += '"';
        json_escape(field.value, record);
        record += '"';
      }
    }
    record += "}\n";
  } else {
    std::snprintf(buf, sizeof buf, "%.3f", ts);
    record += buf;
    record += " [";
    record += to_string(level_);
    record += "] ";
    record += msg;
    for (const auto& field : fields_) {
      record += ' ';
      record += field.key;
      record += '=';
      record += field.value;
    }
    record += '\n';
  }
  std::lock_guard lock(state.mutex);
  std::FILE* out = state.sink != nullptr ? state.sink : stderr;
  std::fwrite(record.data(), 1, record.size(), out);
  std::fflush(out);
}

}  // namespace xfl::obs
