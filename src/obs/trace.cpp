#include "obs/trace.hpp"

#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <ostream>

namespace xfl::obs {

namespace detail {
std::atomic<bool>& tracing_switch() noexcept {
  static std::atomic<bool> enabled{false};
  return enabled;
}
}  // namespace detail

void set_tracing_enabled(bool enabled) noexcept {
  detail::tracing_switch().store(enabled, std::memory_order_relaxed);
}

std::uint64_t monotonic_us() noexcept {
  using clock = std::chrono::steady_clock;
  static const clock::time_point origin = clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(clock::now() -
                                                            origin)
          .count());
}

namespace {

/// One writer thread's event buffer. The owning thread appends under the
/// buffer's own mutex (uncontended except while a collector copies), and
/// `depth` is touched only by the owner. The collector holds a shared_ptr,
/// so buffers survive thread exit with no flush-on-exit hook.
struct ThreadBuffer {
  std::mutex mutex;
  std::vector<TraceEvent> events;
  std::uint32_t tid = 0;
  std::int32_t depth = 0;
};

struct Collector {
  std::mutex mutex;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  std::uint32_t next_tid = 1;
};

Collector& collector() {
  static Collector instance;
  return instance;
}

ThreadBuffer& local_buffer() {
  thread_local std::shared_ptr<ThreadBuffer> buffer = [] {
    auto fresh = std::make_shared<ThreadBuffer>();
    auto& coll = collector();
    std::lock_guard lock(coll.mutex);
    fresh->tid = coll.next_tid++;
    coll.buffers.push_back(fresh);
    return fresh;
  }();
  return *buffer;
}

}  // namespace

void Span::begin(const char* name) noexcept {
  name_ = name;
  start_us_ = monotonic_us();
  ThreadBuffer& buffer = local_buffer();
  depth_ = buffer.depth++;
  active_ = true;
}

void Span::end() noexcept {
  const std::uint64_t now = monotonic_us();
  ThreadBuffer& buffer = local_buffer();
  --buffer.depth;
  TraceEvent event;
  event.name = name_;
  event.ts_us = start_us_;
  event.dur_us = now - start_us_;
  event.tid = buffer.tid;
  event.depth = depth_;
  std::lock_guard lock(buffer.mutex);
  buffer.events.push_back(event);
}

std::vector<TraceEvent> trace_events() {
  std::vector<TraceEvent> all;
  auto& coll = collector();
  std::lock_guard lock(coll.mutex);
  for (const auto& buffer : coll.buffers) {
    std::lock_guard buffer_lock(buffer->mutex);
    all.insert(all.end(), buffer->events.begin(), buffer->events.end());
  }
  return all;
}

void clear_trace() {
  auto& coll = collector();
  std::lock_guard lock(coll.mutex);
  for (const auto& buffer : coll.buffers) {
    std::lock_guard buffer_lock(buffer->mutex);
    buffer->events.clear();
  }
}

void write_chrome_trace(std::ostream& out) {
  const auto events = trace_events();
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  char buf[160];
  for (std::size_t i = 0; i < events.size(); ++i) {
    const auto& e = events[i];
    std::snprintf(buf, sizeof buf,
                  "%s{\"name\":\"%s\",\"cat\":\"xfl\",\"ph\":\"X\",\"pid\":1,"
                  "\"tid\":%u,\"ts\":%llu,\"dur\":%llu,"
                  "\"args\":{\"depth\":%d}}",
                  i == 0 ? "" : ",", e.name, e.tid,
                  static_cast<unsigned long long>(e.ts_us),
                  static_cast<unsigned long long>(e.dur_us), e.depth);
    out << buf;
  }
  out << "]}";
}

}  // namespace xfl::obs
