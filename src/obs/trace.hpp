// Scoped stage spans (pillar 3 of the observability layer).
//
//   void fit(...) {
//     XFL_SPAN("gbt.fit");
//     ...
//   }
//
// When tracing is off (the default) a span costs one relaxed atomic load.
// When on, entry/exit read the monotonic clock and append one event to a
// per-thread buffer (own mutex, effectively uncontended), so concurrent
// stages never serialise on a global lock. write_chrome_trace() renders
// everything recorded so far as Chrome trace_event JSON ("X" complete
// events) loadable in about:tracing or Perfetto; nesting is implied by
// interval containment per tid, and each event also carries its depth.
//
// Span names must be string literals (or otherwise outlive the trace
// session): events store the pointer, not a copy.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <vector>

namespace xfl::obs {

namespace detail {
std::atomic<bool>& tracing_switch() noexcept;
}  // namespace detail

inline bool tracing_enabled() noexcept {
  return detail::tracing_switch().load(std::memory_order_relaxed);
}
void set_tracing_enabled(bool enabled) noexcept;

/// Microseconds on the process-wide monotonic clock (0 = first use).
/// Shared with the metrics wiring so span and histogram timings agree.
std::uint64_t monotonic_us() noexcept;

struct TraceEvent {
  const char* name = nullptr;
  std::uint64_t ts_us = 0;   ///< Span start.
  std::uint64_t dur_us = 0;  ///< Span duration.
  std::uint32_t tid = 0;     ///< Small per-thread ordinal, not the OS tid.
  std::int32_t depth = 0;    ///< Nesting depth at entry (0 = top level).
};

/// Copy of every event recorded since the last clear_trace().
std::vector<TraceEvent> trace_events();

/// Drop all recorded events (buffers of finished threads included).
void clear_trace();

/// {"displayTimeUnit":"ms","traceEvents":[...]} — the Chrome/Perfetto
/// trace_event format.
void write_chrome_trace(std::ostream& out);

/// RAII span. Construct through XFL_SPAN so disabled builds stay terse.
class Span {
 public:
  explicit Span(const char* name) noexcept {
    if (tracing_enabled()) begin(name);
  }
  ~Span() {
    if (active_) end();
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  void begin(const char* name) noexcept;
  void end() noexcept;
  const char* name_ = nullptr;
  std::uint64_t start_us_ = 0;
  std::int32_t depth_ = 0;
  bool active_ = false;
};

}  // namespace xfl::obs

#define XFL_OBS_CONCAT_INNER(a, b) a##b
#define XFL_OBS_CONCAT(a, b) XFL_OBS_CONCAT_INNER(a, b)
#define XFL_SPAN(name) \
  ::xfl::obs::Span XFL_OBS_CONCAT(xfl_obs_span_, __LINE__)(name)
