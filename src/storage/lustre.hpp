// Lustre-style parallel filesystem model with LMT-style monitoring.
//
// §5.5.2 of the paper runs controlled transfers between two Lustre
// filesystems at NERSC while the Lustre Monitoring Tool samples, every five
// seconds, (a) disk I/O load on each object storage target (OST) and
// (b) CPU load on each object storage server (OSS). Those four series —
// source OSS CPU, destination OSS CPU, source OST read load, destination
// OST write load — become extra model features and collapse the prediction
// error. This module provides the corresponding simulated system: a set of
// OSTs behind OSS servers, an assignment of transfers to OSTs, and a
// sampling monitor that exposes the *true* injected load (Globus and
// non-Globus alike) exactly as LMT would.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/contracts.hpp"

namespace xfl::storage {

/// One object storage target.
struct OstSpec {
  double read_Bps = 5.0e8;
  double write_Bps = 4.0e8;
};

/// Static description of a Lustre filesystem: `osts` spread evenly over
/// `oss_count` object storage servers.
struct LustreSpec {
  std::vector<OstSpec> osts;
  std::uint32_t oss_count = 1;

  bool valid() const { return !osts.empty() && oss_count >= 1; }

  /// OSS index serving a given OST (round-robin layout).
  std::uint32_t oss_of(std::uint32_t ost_index) const {
    XFL_EXPECTS(ost_index < osts.size());
    return ost_index % oss_count;
  }
};

/// One LMT sample: instantaneous load on every OST and OSS at a timestamp.
struct LmtSample {
  double time_s = 0.0;
  std::vector<double> ost_read_Bps;   ///< Per-OST read load.
  std::vector<double> ost_write_Bps;  ///< Per-OST write load.
  std::vector<double> oss_cpu_load;   ///< Per-OSS CPU load in [0, ~1+].
};

/// Time-ordered LMT sample log for one filesystem, with interval queries.
class LmtLog {
 public:
  explicit LmtLog(std::size_t ost_count, std::size_t oss_count)
      : ost_count_(ost_count), oss_count_(oss_count) {}

  std::size_t ost_count() const { return ost_count_; }
  std::size_t oss_count() const { return oss_count_; }
  std::size_t size() const { return samples_.size(); }
  const LmtSample& operator[](std::size_t i) const { return samples_[i]; }

  /// Append a sample; samples must arrive in non-decreasing time order and
  /// match the configured OST/OSS counts.
  void append(LmtSample sample);

  /// Mean of a per-OST read series over [t0, t1] for one OST. Returns 0 if
  /// no samples fall in the window.
  double mean_ost_read(std::uint32_t ost, double t0, double t1) const;
  double mean_ost_write(std::uint32_t ost, double t0, double t1) const;
  double mean_oss_cpu(std::uint32_t oss, double t0, double t1) const;

 private:
  template <typename Extract>
  double mean_over(double t0, double t1, Extract&& extract) const;

  std::size_t ost_count_;
  std::size_t oss_count_;
  std::vector<LmtSample> samples_;
};

/// The NERSC-like configuration used by the §5.5.2 scenario: two mid-size
/// Lustre filesystems (one "Edison-shared", one "DTN") with several OSTs.
LustreSpec nersc_like_lustre(std::uint32_t osts = 8, std::uint32_t oss = 4);

}  // namespace xfl::storage
