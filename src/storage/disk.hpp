// Storage-system model for a data transfer node. The paper's Eq. 1 bound
// needs only the maximum sequential read/write rates; the feature analysis
// (Fig. 5) additionally needs per-file and per-directory costs — a transfer
// of many small files pays a metadata/open/close price per file and lock
// contention per directory on parallel filesystems (§4.2).
#pragma once

namespace xfl::storage {

/// Static description of an endpoint's storage system.
struct DiskSpec {
  double read_Bps = 1.0e9;        ///< Max aggregate sequential read rate.
  double write_Bps = 8.0e8;       ///< Max aggregate sequential write rate.
  double per_file_overhead_s = 0.05;  ///< Open/close/metadata cost per file.
  double per_dir_overhead_s = 0.2;    ///< Directory create/lock cost.

  /// Validate invariants (positive rates, non-negative overheads).
  bool valid() const {
    return read_Bps > 0.0 && write_Bps > 0.0 && per_file_overhead_s >= 0.0 &&
           per_dir_overhead_s >= 0.0;
  }
};

/// Effective throughput of one worker streaming files of mean size
/// `mean_file_bytes` when the storage+network path grants it `granted_Bps`:
/// each file costs `per_file_overhead_s` of dead time, so the worker
/// achieves granted * s / (s + granted * t_o). This is the fixed-point
/// efficiency described in DESIGN.md §5.2.
/// Preconditions: granted_Bps >= 0, mean_file_bytes > 0, overhead_s >= 0.
double file_overhead_efficiency_Bps(double granted_Bps, double mean_file_bytes,
                                    double overhead_s);

/// Pre-made specs roughly matching classes of deployments seen in the log
/// study: high-end parallel-filesystem DTNs, mid-range servers, and Globus
/// Connect Personal laptops/workstations.
DiskSpec dtn_parallel_fs();   ///< ~9.3 Gb/s read, ~7.8 Gb/s write (ESnet DTN class).
DiskSpec midrange_server();   ///< ~3 Gb/s read, ~2 Gb/s write.
DiskSpec personal_machine();  ///< ~0.8 Gb/s read, ~0.5 Gb/s write.

}  // namespace xfl::storage
