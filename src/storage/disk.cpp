#include "storage/disk.hpp"

#include "common/contracts.hpp"
#include "common/units.hpp"

namespace xfl::storage {

double file_overhead_efficiency_Bps(double granted_Bps, double mean_file_bytes,
                                    double overhead_s) {
  XFL_EXPECTS(granted_Bps >= 0.0);
  XFL_EXPECTS(mean_file_bytes > 0.0);
  XFL_EXPECTS(overhead_s >= 0.0);
  if (granted_Bps == 0.0) return 0.0;
  return granted_Bps * mean_file_bytes /
         (mean_file_bytes + granted_Bps * overhead_s);
}

DiskSpec dtn_parallel_fs() {
  DiskSpec spec;
  spec.read_Bps = gbit(9.3);
  spec.write_Bps = gbit(7.8);
  spec.per_file_overhead_s = 0.03;
  spec.per_dir_overhead_s = 0.15;
  return spec;
}

DiskSpec midrange_server() {
  DiskSpec spec;
  spec.read_Bps = gbit(3.0);
  spec.write_Bps = gbit(2.0);
  spec.per_file_overhead_s = 0.05;
  spec.per_dir_overhead_s = 0.2;
  return spec;
}

DiskSpec personal_machine() {
  DiskSpec spec;
  spec.read_Bps = gbit(0.8);
  spec.write_Bps = gbit(0.5);
  spec.per_file_overhead_s = 0.08;
  spec.per_dir_overhead_s = 0.3;
  return spec;
}

}  // namespace xfl::storage
