#include "storage/lustre.hpp"

#include <algorithm>

namespace xfl::storage {

void LmtLog::append(LmtSample sample) {
  XFL_EXPECTS(sample.ost_read_Bps.size() == ost_count_);
  XFL_EXPECTS(sample.ost_write_Bps.size() == ost_count_);
  XFL_EXPECTS(sample.oss_cpu_load.size() == oss_count_);
  XFL_EXPECTS(samples_.empty() || samples_.back().time_s <= sample.time_s);
  samples_.push_back(std::move(sample));
}

template <typename Extract>
double LmtLog::mean_over(double t0, double t1, Extract&& extract) const {
  XFL_EXPECTS(t0 <= t1);
  double sum = 0.0;
  std::size_t count = 0;
  // Samples are time-ordered; binary search the window start.
  auto first = std::lower_bound(
      samples_.begin(), samples_.end(), t0,
      [](const LmtSample& s, double t) { return s.time_s < t; });
  for (auto it = first; it != samples_.end() && it->time_s <= t1; ++it) {
    sum += extract(*it);
    ++count;
  }
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

double LmtLog::mean_ost_read(std::uint32_t ost, double t0, double t1) const {
  XFL_EXPECTS(ost < ost_count_);
  return mean_over(t0, t1,
                   [ost](const LmtSample& s) { return s.ost_read_Bps[ost]; });
}

double LmtLog::mean_ost_write(std::uint32_t ost, double t0, double t1) const {
  XFL_EXPECTS(ost < ost_count_);
  return mean_over(t0, t1,
                   [ost](const LmtSample& s) { return s.ost_write_Bps[ost]; });
}

double LmtLog::mean_oss_cpu(std::uint32_t oss, double t0, double t1) const {
  XFL_EXPECTS(oss < oss_count_);
  return mean_over(t0, t1,
                   [oss](const LmtSample& s) { return s.oss_cpu_load[oss]; });
}

LustreSpec nersc_like_lustre(std::uint32_t osts, std::uint32_t oss) {
  XFL_EXPECTS(osts >= 1 && oss >= 1);
  LustreSpec spec;
  spec.osts.assign(osts, OstSpec{});
  spec.oss_count = oss;
  return spec;
}

}  // namespace xfl::storage
