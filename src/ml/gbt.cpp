#include "ml/gbt.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <limits>
#include <memory>
#include <numeric>
#include <ostream>
#include <stdexcept>
#include <string>
#include <thread>

#include "common/contracts.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/thread_pool.hpp"
#include "ml/gbt_flat.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace xfl::ml {

namespace {
/// Training observability. Per-tree timings go to a histogram (and a span
/// per tree when tracing), so a slow fit decomposes into binning vs tree
/// growth without a profiler.
struct FitMetrics {
  obs::Counter& fits = obs::counter("gbt.fit.count");
  obs::Counter& rows = obs::counter("gbt.fit.rows");
  obs::Counter& trees = obs::counter("gbt.fit.trees");
  obs::Gauge& bins = obs::gauge("gbt.fit.bins");
  obs::Histogram& bin_us = obs::histogram("gbt.fit.bin_us");
  obs::Histogram& tree_us = obs::histogram("gbt.fit.tree_us");
};

FitMetrics& fit_metrics() {
  static FitMetrics metrics;
  return metrics;
}
}  // namespace

GradientBoostedTrees::GradientBoostedTrees(GbtConfig config)
    : config_(config) {
  XFL_EXPECTS(config_.valid());
}

double GradientBoostedTrees::Tree::predict(
    std::span<const double> features) const {
  std::int32_t index = 0;
  while (nodes[static_cast<std::size_t>(index)].feature >= 0) {
    const Node& node = nodes[static_cast<std::size_t>(index)];
    // <= matches the binning convention: bin b holds values in
    // (edges[b-1], edges[b]], so "bin <= split_bin" == "value <= threshold".
    index = features[static_cast<std::size_t>(node.feature)] <= node.threshold
                ? node.left
                : node.right;
  }
  return nodes[static_cast<std::size_t>(index)].value;
}

std::size_t GradientBoostedTrees::resolved_threads() const {
  if (config_.threads > 0) return static_cast<std::size_t>(config_.threads);
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void GradientBoostedTrees::build_bins(
    const Matrix& x, std::vector<std::vector<std::uint16_t>>& binned,
    ThreadPool* pool) {
  const std::size_t n = x.rows();
  bin_edges_.assign(x.cols(), {});
  binned.assign(x.cols(), {});
  const auto max_bins = static_cast<std::size_t>(config_.max_bins);
  auto bin_column = [&](std::size_t c) {
    // One sort of (value, row) pairs serves both jobs: the distinct values
    // define the edges, and a single merge walk assigns every row's code —
    // no per-value binary search. Codes are stored column-major for
    // cache-friendly histogram accumulation.
    std::vector<std::pair<double, std::size_t>> order(n);
    for (std::size_t r = 0; r < n; ++r) order[r] = {x.at(r, c), r};
    std::sort(order.begin(), order.end());
    std::vector<double> distinct;
    distinct.reserve(n);
    for (const auto& [value, row] : order)
      if (distinct.empty() || distinct.back() != value)
        distinct.push_back(value);

    auto& codes = binned[c];
    codes.assign(n, 0);
    auto& edges = bin_edges_[c];
    if (distinct.size() <= 1) return;  // Constant feature: no split points.
    if (distinct.size() <= max_bins) {
      // One split candidate between each pair of adjacent distinct values.
      edges.reserve(distinct.size() - 1);
      for (std::size_t i = 0; i + 1 < distinct.size(); ++i)
        edges.push_back(0.5 * (distinct[i] + distinct[i + 1]));
    } else {
      // Quantile sketch: evenly spaced quantiles of the distinct values.
      edges.reserve(max_bins - 1);
      for (std::size_t b = 1; b < max_bins; ++b) {
        const double q = static_cast<double>(b) /
                         static_cast<double>(max_bins) *
                         static_cast<double>(distinct.size() - 1);
        edges.push_back(distinct[static_cast<std::size_t>(q)]);
      }
      edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
    }
    // Code b counts the edges < value, i.e. value lands in
    // (edges[b-1], edges[b]]; values are visited ascending, so the edge
    // cursor only moves forward.
    std::size_t e = 0;
    for (const auto& [value, row] : order) {
      while (e < edges.size() && value > edges[e]) ++e;
      codes[row] = static_cast<std::uint16_t>(e);
    }
  };
  if (pool != nullptr && x.cols() > 1) {
    pool->parallel_for(x.cols(), bin_column);
  } else {
    for (std::size_t c = 0; c < x.cols(); ++c) bin_column(c);
  }
}

namespace {
/// Leaf weight under the XGBoost squared-loss objective: -G / (H + lambda).
double leaf_value(double grad_sum, double hess_sum, double lambda) {
  return -grad_sum / (hess_sum + lambda);
}

/// Best split of one candidate column, from its histogram scan. Splits are
/// compared on the score sum GL^2/(HL+l) + GR^2/(HR+l); the gain
/// 0.5 * (score_sum - parent_score) - gamma is a monotone function of it,
/// so the ordering matches and the subtraction happens once, for the
/// winner, instead of per bin.
struct SplitScan {
  bool valid = false;
  double score_sum = 0.0;
  std::size_t bin = 0;
  double left_grad = 0.0;
  std::size_t left_count = 0;
};

/// Minimum (node rows x candidate columns) before a per-node histogram
/// build is worth fanning out to the pool.
constexpr std::size_t kMinParallelHistWork = 8192;
}  // namespace

GradientBoostedTrees::Tree GradientBoostedTrees::grow_tree(
    const std::vector<std::vector<std::uint16_t>>& binned,
    const std::vector<double>& grad, std::span<const std::uint32_t> weights,
    std::vector<std::size_t>& sampled, std::vector<std::size_t>& unsampled,
    const std::vector<std::size_t>& cols, const std::vector<double>& inv_hess,
    FitScratch& fit_scratch, ThreadPool* pool,
    std::vector<std::int32_t>& leaf_of) {
  Tree tree;
  // A depth-d tree has at most 2^(d+1) - 1 nodes.
  tree.nodes.reserve((std::size_t{2} << config_.max_depth) - 1);
  const std::size_t width = cols.size();
  std::vector<std::vector<double>>& hist_pool = fit_scratch.hist_pool;
  std::vector<std::vector<std::uint32_t>>& count_pool = fit_scratch.count_pool;

  // Flat histogram layout: candidate column j owns the half-open slice
  // [offset[j], offset[j+1]) of two parallel arrays — gradient sums in a
  // double buffer and row counts (== hessian sums, squared loss) in a
  // uint32 buffer, so count accumulation, subtraction, and the scan's
  // running hessian are integer ops. Constant features get an empty slice.
  std::vector<std::size_t>& offset = fit_scratch.offset;
  offset.assign(width + 1, 0);
  for (std::size_t j = 0; j < width; ++j) {
    const auto& edges = bin_edges_[cols[j]];
    offset[j + 1] = offset[j] + (edges.empty() ? 0 : edges.size() + 1);
  }
  const std::size_t total_bins = offset[width];

  // Work queue of nodes to try to split. Each node owns a contiguous range
  // of `sampled` ([sampled_begin, sampled_end)) and of `unsampled`, plus its
  // gradient statistics and (except the root, built lazily) its histogram —
  // cached so a sibling can be derived by subtraction.
  struct Pending {
    std::int32_t node;
    int depth;
    std::size_t sampled_begin, sampled_end;
    std::size_t unsampled_begin, unsampled_end;
    double grad_sum;
    std::size_t count_sum;         // Hessian sum as an exact row count.
    std::vector<double> hist;      // Gradient sums; empty until built.
    std::vector<std::uint32_t> counts;  // Row counts; empty until built.
  };
  std::vector<Pending> pending;
  // A depth-d tree pops at most 2^(d+1) - 1 nodes and the queue holds one
  // level plus a sibling at a time; one reservation keeps push_back from
  // ever reallocating (moving a Pending drags its histogram along).
  pending.reserve(2 * static_cast<std::size_t>(config_.max_depth) + 4);

  // Histogram buffers cycle through `hist_pool` instead of being allocated
  // per node: an acquire reuses a retired node's capacity.
  auto acquire_hist = [&](std::vector<double>& hist,
                          std::vector<std::uint32_t>& counts) {
    if (!hist_pool.empty()) {
      hist = std::move(hist_pool.back());
      hist_pool.pop_back();
    }
    if (!count_pool.empty()) {
      counts = std::move(count_pool.back());
      count_pool.pop_back();
    }
    hist.assign(total_bins, 0.0);
    counts.assign(total_bins, 0);
  };
  auto release_hist = [&](std::vector<double>& hist,
                          std::vector<std::uint32_t>& counts) {
    if (hist.capacity() != 0) hist_pool.push_back(std::move(hist));
    if (counts.capacity() != 0) count_pool.push_back(std::move(counts));
  };

  // Builds the histogram of every candidate column over one node's sampled
  // rows. Each column owns its output slice, and rows are visited in the
  // partition order (ascending original row order), so the result does not
  // depend on how columns are distributed over workers.
  auto build_hist = [&](const Pending& task, std::vector<double>& hist,
                        std::vector<std::uint32_t>& counts) {
    acquire_hist(hist, counts);
    auto column_job = [&](std::size_t j) {
      if (offset[j + 1] == offset[j]) return;  // Constant feature.
      const std::uint16_t* column_bins = binned[cols[j]].data();
      const std::size_t* rows = sampled.data();
      const double* grads = grad.data();
      double* grad_slice = hist.data() + offset[j];
      std::uint32_t* count_slice = counts.data() + offset[j];
      if (weights.empty()) {
        for (std::size_t p = task.sampled_begin; p < task.sampled_end; ++p) {
          const std::size_t r = rows[p];
          const std::size_t bin = column_bins[r];
          grad_slice[bin] += grads[r];
          count_slice[bin] += 1;
        }
      } else {
        // Weighted rows carry their multiplicity into the count (hessian)
        // histogram; the gradient already folds the weight in.
        const std::uint32_t* row_weights = weights.data();
        for (std::size_t p = task.sampled_begin; p < task.sampled_end; ++p) {
          const std::size_t r = rows[p];
          const std::size_t bin = column_bins[r];
          grad_slice[bin] += grads[r];
          count_slice[bin] += row_weights[r];
        }
      }
    };
    const std::size_t rows_in_node = task.sampled_end - task.sampled_begin;
    if (pool != nullptr && width > 1 &&
        rows_in_node * width >= kMinParallelHistWork) {
      pool->parallel_for(width, column_job);
    } else {
      for (std::size_t j = 0; j < width; ++j) column_job(j);
    }
  };

  // Stable in-place partition of idx[begin, end) on the winning split;
  // returns the boundary. Stability keeps every node's rows in ascending
  // original order, which pins the histogram accumulation order.
  fit_scratch.rows.resize(std::max(sampled.size(), unsampled.size()));
  auto partition_range = [&](std::vector<std::size_t>& idx, std::size_t begin,
                             std::size_t end,
                             const std::vector<std::uint16_t>& column_bins,
                             std::size_t split_bin) {
    std::size_t* right_rows = fit_scratch.rows.data();
    std::size_t right_count = 0;
    std::size_t mid = begin;
    for (std::size_t p = begin; p < end; ++p) {
      const std::size_t r = idx[p];
      if (column_bins[r] <= split_bin)
        idx[mid++] = r;
      else
        right_rows[right_count++] = r;
    }
    std::copy_n(right_rows, right_count, idx.data() + mid);
    return mid;
  };

  auto finalize_leaf = [&](Pending& task) {
    for (std::size_t p = task.sampled_begin; p < task.sampled_end; ++p)
      leaf_of[sampled[p]] = task.node;
    for (std::size_t p = task.unsampled_begin; p < task.unsampled_end; ++p)
      leaf_of[unsampled[p]] = task.node;
    release_hist(task.hist, task.counts);
  };

  double root_grad = 0.0;
  for (std::size_t p = 0; p < sampled.size(); ++p) root_grad += grad[sampled[p]];
  std::size_t root_count = sampled.size();
  if (!weights.empty()) {
    root_count = 0;
    for (std::size_t p = 0; p < sampled.size(); ++p)
      root_count += weights[sampled[p]];
  }

  tree.nodes.push_back({});
  tree.nodes[0].value =
      leaf_value(root_grad, static_cast<double>(root_count), config_.lambda);
  pending.push_back({0, 0, 0, sampled.size(), 0, unsampled.size(), root_grad,
                     root_count, {}, {}});

  std::vector<SplitScan> scans(width);
  while (!pending.empty()) {
    Pending task = std::move(pending.back());
    pending.pop_back();
    const std::size_t sampled_count = task.sampled_end - task.sampled_begin;
    if (task.depth >= config_.max_depth || sampled_count < 2 ||
        static_cast<double>(task.count_sum) <
            2.0 * config_.min_child_weight) {
      finalize_leaf(task);
      continue;
    }

    const double parent_grad = task.grad_sum;
    const std::size_t parent_count = task.count_sum;
    // Hessian sums are exact integer row counts (squared loss, h_i == 1),
    // so every score term G^2 / (H + lambda) resolves its divisor through
    // the precomputed reciprocal table — no division in the scan.
    const double parent_score =
        parent_grad * parent_grad * inv_hess[parent_count];

    if (task.hist.empty())  // Root (children arrive with histograms).
      build_hist(task, task.hist, task.counts);

    // Scan every candidate column's histogram for its best split, then
    // reduce in candidate order (first strictly-better wins) so ties break
    // identically to a serial left-to-right scan over (column, bin).
    //
    // Counts are exact integers even in derived (subtracted) histograms, so
    // "child non-empty and heavy enough" folds into one integer comparison
    // against ceil(max(1, min_child_weight)); and because the right-hand
    // count only ever shrinks, the first starved right side ends the
    // column. A split qualifies when gain > gamma, i.e. score_sum >
    // 2 * gamma + parent_score.
    const std::size_t min_child = static_cast<std::size_t>(
        std::ceil(std::max(1.0, config_.min_child_weight)));
    const double min_score_sum = 2.0 * config_.gamma + parent_score;
    for (std::size_t j = 0; j < width; ++j) {
      SplitScan scan;
      scan.score_sum = min_score_sum;
      const std::size_t bins = offset[j + 1] - offset[j];
      if (bins != 0) {
        const double* grad_cursor = task.hist.data() + offset[j];
        const std::uint32_t* count_cursor = task.counts.data() + offset[j];
        double left_grad = 0.0;
        std::size_t left_count = 0;
        for (std::size_t b = 0; b + 1 < bins; ++b) {
          left_grad += grad_cursor[b];
          left_count += count_cursor[b];
          const std::size_t right_count = parent_count - left_count;
          if (right_count < min_child) break;
          if (left_count < min_child) continue;
          const double right_grad = parent_grad - left_grad;
          const double score_sum =
              left_grad * left_grad * inv_hess[left_count] +
              right_grad * right_grad * inv_hess[right_count];
          if (score_sum > scan.score_sum) {
            scan.valid = true;
            scan.score_sum = score_sum;
            scan.bin = b;
            scan.left_grad = left_grad;
            scan.left_count = left_count;
          }
        }
      }
      scans[j] = scan;
    }
    double best_score_sum = min_score_sum;
    std::size_t best_j = 0;
    bool found = false;
    for (std::size_t j = 0; j < width; ++j) {
      if (scans[j].valid && scans[j].score_sum > best_score_sum) {
        best_score_sum = scans[j].score_sum;
        best_j = j;
        found = true;
      }
    }
    if (!found) {  // No profitable split.
      finalize_leaf(task);
      continue;
    }

    // Materialise the split.
    const double best_gain = 0.5 * (best_score_sum - parent_score);
    const std::size_t best_col = cols[best_j];
    const std::size_t best_bin = scans[best_j].bin;
    const double left_grad = scans[best_j].left_grad;
    const std::size_t left_count = scans[best_j].left_count;
    const double right_grad = parent_grad - left_grad;
    const std::size_t right_count = parent_count - left_count;
    const auto& column_bins = binned[best_col];
    const std::size_t sampled_mid = partition_range(
        sampled, task.sampled_begin, task.sampled_end, column_bins, best_bin);
    const std::size_t unsampled_mid =
        partition_range(unsampled, task.unsampled_begin, task.unsampled_end,
                        column_bins, best_bin);
    XFL_ENSURES(sampled_mid > task.sampled_begin &&
                sampled_mid < task.sampled_end);

    const auto left_index = static_cast<std::int32_t>(tree.nodes.size());
    tree.nodes.push_back({});
    const auto right_index = static_cast<std::int32_t>(tree.nodes.size());
    tree.nodes.push_back({});
    tree.nodes[static_cast<std::size_t>(left_index)].value = leaf_value(
        left_grad, static_cast<double>(left_count), config_.lambda);
    tree.nodes[static_cast<std::size_t>(right_index)].value = leaf_value(
        right_grad, static_cast<double>(right_count), config_.lambda);
    Node& parent = tree.nodes[static_cast<std::size_t>(task.node)];
    parent.feature = static_cast<std::int32_t>(best_col);
    parent.threshold = bin_edges_[best_col][best_bin];
    parent.left = left_index;
    parent.right = right_index;
    importance_gain_[best_col] += best_gain;

    Pending left{left_index,
                 task.depth + 1,
                 task.sampled_begin,
                 sampled_mid,
                 task.unsampled_begin,
                 unsampled_mid,
                 left_grad,
                 left_count,
                 {},
                 {}};
    Pending right{right_index,
                  task.depth + 1,
                  sampled_mid,
                  task.sampled_end,
                  unsampled_mid,
                  task.unsampled_end,
                  right_grad,
                  right_count,
                  {},
                  {}};

    // Histogram subtraction: build the smaller child's histogram directly
    // and derive the sibling as parent - child, reusing the parent's
    // buffer. Which child is "smaller" depends only on the split, never on
    // threading, so results stay bit-identical across thread counts.
    // Children that the pop-time leaf check is guaranteed to finalise
    // (at max depth, too few rows, or too little hessian mass) will never
    // be scanned, so their histograms are never materialised — this halves
    // the histogram work of the deepest level.
    auto can_split = [&](const Pending& child) {
      return child.depth < config_.max_depth &&
             child.sampled_end - child.sampled_begin >= 2 &&
             static_cast<double>(child.count_sum) >=
                 2.0 * config_.min_child_weight;
    };
    Pending& small = (sampled_mid - task.sampled_begin <=
                      task.sampled_end - sampled_mid)
                         ? left
                         : right;
    Pending& large = (&small == &left) ? right : left;
    const bool small_needs = can_split(small);
    const bool large_needs = can_split(large);
    if (small_needs || large_needs) build_hist(small, small.hist, small.counts);
    if (large_needs) {
      for (std::size_t b = 0; b < total_bins; ++b) task.hist[b] -= small.hist[b];
      for (std::size_t b = 0; b < total_bins; ++b)
        task.counts[b] -= small.counts[b];
      large.hist = std::move(task.hist);
      large.counts = std::move(task.counts);
    } else {
      release_hist(task.hist, task.counts);
    }

    pending.push_back(std::move(left));
    pending.push_back(std::move(right));
  }
  return tree;
}

void GradientBoostedTrees::fit(const Matrix& x, std::span<const double> y) {
  fit(x, y, {});
}

void GradientBoostedTrees::fit(const Matrix& x, std::span<const double> y,
                               std::span<const std::uint32_t> weights) {
  XFL_EXPECTS(x.rows() == y.size());
  XFL_EXPECTS(x.rows() >= 2 && x.cols() >= 1);
  const bool weighted = !weights.empty();
  XFL_EXPECTS(!weighted || weights.size() == x.rows());
  XFL_SPAN("gbt.fit");
  auto& metrics = fit_metrics();
  const std::uint64_t fit_start_us = obs::monotonic_us();
  const std::size_t n = x.rows();
  feature_count_ = x.cols();
  trees_.clear();
  importance_gain_.assign(feature_count_, 0.0);

  const std::size_t workers = resolved_threads();
  std::unique_ptr<ThreadPool> owned_pool;
  ThreadPool* pool = nullptr;
  if (workers > 1) {
    owned_pool = std::make_unique<ThreadPool>(workers);
    pool = owned_pool.get();
  }

  // Columns are independent, so edge derivation + code assignment fans out
  // per column.
  std::vector<std::vector<std::uint16_t>> binned;
  {
    XFL_SPAN("gbt.fit.bin");
    const std::uint64_t bin_start_us = obs::monotonic_us();
    build_bins(x, binned, pool);
    metrics.bin_us.record(
        static_cast<double>(obs::monotonic_us() - bin_start_us));
  }
  std::size_t total_bins = 0;
  for (const auto& edges : bin_edges_)
    if (!edges.empty()) total_bins += edges.size() + 1;
  metrics.bins.set(static_cast<double>(total_bins));

  // Total hessian mass: n for the unweighted path, the weight sum when
  // multiplicities are supplied. Bounded to keep the uint32 count
  // histograms exact.
  std::size_t total_weight = n;
  if (weighted) {
    total_weight = 0;
    for (const std::uint32_t w : weights) {
      XFL_EXPECTS(w >= 1);
      total_weight += w;
    }
    XFL_EXPECTS(total_weight <=
                std::numeric_limits<std::uint32_t>::max());
  }

  if (weighted) {
    double weighted_sum = 0.0;
    for (std::size_t i = 0; i < n; ++i)
      weighted_sum += static_cast<double>(weights[i]) * y[i];
    base_score_ = weighted_sum / static_cast<double>(total_weight);
  } else {
    base_score_ = mean(y);
  }
  std::vector<double> predictions(n, base_score_);
  // Squared loss: g_i = prediction - y_i, h_i = 1 (folded into counts);
  // a row of multiplicity w contributes w * g_i gradient and w hessian.
  // The gradient is kept current by the post-tree scatter, so it is
  // computed directly only once, here.
  std::vector<double> grad(n);
  for (std::size_t i = 0; i < n; ++i) grad[i] = base_score_ - y[i];
  if (weighted)
    for (std::size_t i = 0; i < n; ++i)
      grad[i] *= static_cast<double>(weights[i]);

  Rng rng(config_.seed);
  std::vector<std::size_t> all_rows(n);
  std::iota(all_rows.begin(), all_rows.end(), 0);
  std::vector<std::size_t> all_cols(feature_count_);
  std::iota(all_cols.begin(), all_cols.end(), 0);

  // Squared loss makes every hessian sum an exact integer count in
  // [0, total_weight], so 1 / (H + lambda) can be tabulated once and
  // split scans run division-free — integer multiplicities preserve this.
  std::vector<double> inv_hess(total_weight + 1);
  for (std::size_t h = 0; h <= total_weight; ++h)
    inv_hess[h] = 1.0 / (static_cast<double>(h) + config_.lambda);

  std::vector<std::size_t> sampled, unsampled, cols;
  FitScratch scratch;
  std::vector<std::int32_t> leaf_of(n, 0);
  for (int t = 0; t < config_.trees; ++t) {
    XFL_SPAN("gbt.fit.tree");
    const std::uint64_t tree_start_us = obs::monotonic_us();
    sampled.clear();
    unsampled.clear();
    if (config_.subsample < 1.0) {
      sampled.reserve(static_cast<std::size_t>(
          static_cast<double>(n) * config_.subsample) + 1);
      for (std::size_t i = 0; i < n; ++i) {
        if (rng.bernoulli(config_.subsample))
          sampled.push_back(i);
        else
          unsampled.push_back(i);
      }
      if (sampled.size() < 2) {
        sampled = all_rows;
        unsampled.clear();
      }
    } else {
      sampled = all_rows;
    }

    cols.clear();
    if (config_.colsample < 1.0 && feature_count_ > 1) {
      for (std::size_t c = 0; c < feature_count_; ++c)
        if (rng.bernoulli(config_.colsample)) cols.push_back(c);
      if (cols.empty()) cols = all_cols;
    } else {
      cols = all_cols;
    }

    Tree tree = grow_tree(binned, grad, weights, sampled, unsampled, cols,
                          inv_hess, scratch, pool, leaf_of);
    // Update predictions over *all* rows with shrinkage: every row was
    // routed to a leaf during growth, so this is an O(n) scatter rather
    // than n tree traversals. The gradient refresh for the next tree rides
    // in the same pass (re-folding the multiplicity when weighted).
    if (weighted) {
      for (std::size_t i = 0; i < n; ++i) {
        predictions[i] +=
            config_.learning_rate *
            tree.nodes[static_cast<std::size_t>(leaf_of[i])].value;
        grad[i] =
            (predictions[i] - y[i]) * static_cast<double>(weights[i]);
      }
    } else {
      for (std::size_t i = 0; i < n; ++i) {
        predictions[i] +=
            config_.learning_rate *
            tree.nodes[static_cast<std::size_t>(leaf_of[i])].value;
        grad[i] = predictions[i] - y[i];
      }
    }
    trees_.push_back(std::move(tree));
    metrics.tree_us.record(
        static_cast<double>(obs::monotonic_us() - tree_start_us));
  }
  compile_flat();
  fitted_ = true;
  metrics.fits.add(1);
  metrics.rows.add(n);
  metrics.trees.add(static_cast<std::uint64_t>(config_.trees));
  XFL_LOG(debug) << "gbt fit complete"
                 << obs::kv("rows", n) << obs::kv("cols", feature_count_)
                 << obs::kv("trees", config_.trees)
                 << obs::kv("bins", total_bins)
                 << obs::kv("threads", workers)
                 << obs::kv("elapsed_us", obs::monotonic_us() - fit_start_us);
}

void GradientBoostedTrees::compile_flat() {
  FlatEnsemble::Builder builder(base_score_, config_.learning_rate);
  for (const auto& tree : trees_) {
    builder.begin_tree();
    for (const auto& node : tree.nodes)
      builder.add_node(node.feature,
                       node.feature >= 0 ? node.threshold : node.value,
                       node.left, node.right);
  }
  flat_ = std::make_shared<const FlatEnsemble>(std::move(builder).build());
}

const FlatEnsemble& GradientBoostedTrees::flat() const {
  XFL_EXPECTS(fitted_ && flat_ != nullptr);
  return *flat_;
}

double GradientBoostedTrees::predict(std::span<const double> features) const {
  XFL_EXPECTS(fitted_);
  XFL_EXPECTS(features.size() == feature_count_);
  return flat_->predict_one(features);
}

double GradientBoostedTrees::predict_nodewalk(
    std::span<const double> features) const {
  XFL_EXPECTS(fitted_);
  XFL_EXPECTS(features.size() == feature_count_);
  double value = base_score_;
  for (const auto& tree : trees_)
    value += config_.learning_rate * tree.predict(features);
  return value;
}

double GradientBoostedTrees::explain_nodewalk(
    std::span<const double> features, std::span<double> contributions,
    double& bias) const {
  XFL_EXPECTS(fitted_);
  XFL_EXPECTS(features.size() == feature_count_);
  XFL_EXPECTS(contributions.size() == feature_count_);
  std::fill(contributions.begin(), contributions.end(), 0.0);
  double value = base_score_;
  std::vector<double> expect;
  std::vector<double> weight;
  for (const auto& tree : trees_) {
    // Leaf-count-weighted subtree means, bottom-up. The expressions match
    // FlatEnsemble::Builder::build()'s attribution pass exactly — same
    // operand order — so both paths produce bitwise-identical tables.
    expect.assign(tree.nodes.size(), 0.0);
    weight.assign(tree.nodes.size(), 0.0);
    const auto fill = [&](auto&& self, std::int32_t n) -> void {
      const Node& node = tree.nodes[static_cast<std::size_t>(n)];
      if (node.feature < 0) {
        expect[static_cast<std::size_t>(n)] = node.value;
        weight[static_cast<std::size_t>(n)] = 1.0;
        return;
      }
      self(self, node.left);
      self(self, node.right);
      const double wl = weight[static_cast<std::size_t>(node.left)];
      const double wr = weight[static_cast<std::size_t>(node.right)];
      weight[static_cast<std::size_t>(n)] = wl + wr;
      expect[static_cast<std::size_t>(n)] =
          (wl * expect[static_cast<std::size_t>(node.left)] +
           wr * expect[static_cast<std::size_t>(node.right)]) /
          weight[static_cast<std::size_t>(n)];
    };
    fill(fill, 0);
    std::int32_t index = 0;
    while (tree.nodes[static_cast<std::size_t>(index)].feature >= 0) {
      const Node& node = tree.nodes[static_cast<std::size_t>(index)];
      // Same routing as Tree::predict: x <= t left, NaN right.
      const std::int32_t child =
          features[static_cast<std::size_t>(node.feature)] <= node.threshold
              ? node.left
              : node.right;
      contributions[static_cast<std::size_t>(node.feature)] +=
          config_.learning_rate * (expect[static_cast<std::size_t>(child)] -
                                   expect[static_cast<std::size_t>(index)]);
      index = child;
    }
    value += config_.learning_rate *
             tree.nodes[static_cast<std::size_t>(index)].value;
  }
  bias = finalize_attribution(value, contributions.data(),
                              contributions.size());
  return value;
}

void GradientBoostedTrees::explain_batch(const Matrix& x,
                                         std::span<double> predictions,
                                         std::span<double> bias,
                                         std::span<double> contributions,
                                         ThreadPool* pool) const {
  XFL_EXPECTS(fitted_);
  if (x.rows() == 0) return;
  XFL_EXPECTS(x.cols() == feature_count_);
  flat_->explain_batch(x, predictions, bias, contributions, pool);
}

void GradientBoostedTrees::predict_batch(const Matrix& x,
                                         std::span<double> out,
                                         ThreadPool* pool) const {
  XFL_EXPECTS(fitted_);
  XFL_EXPECTS(out.size() == x.rows());
  if (x.rows() == 0) return;
  XFL_EXPECTS(x.cols() == feature_count_);
  flat_->predict_batch(x, out, pool);
}

std::vector<double> GradientBoostedTrees::predict(const Matrix& x) const {
  std::vector<double> out(x.rows());
  if (x.rows() == 0) return out;
  const std::size_t workers = resolved_threads();
  // Small batches stay serial to skip pool setup; results are identical
  // either way.
  if (workers > 1 && x.rows() >= 512) {
    ThreadPool pool(workers);
    predict_batch(x, out, &pool);
  } else {
    predict_batch(x, out);
  }
  return out;
}

namespace {
constexpr const char* kModelMagic = "xfl-gbt-v1";
}  // namespace

void GradientBoostedTrees::save(std::ostream& out) const {
  XFL_EXPECTS(fitted_);
  out.precision(17);
  out << kModelMagic << '\n';
  out << feature_count_ << ' ' << config_.learning_rate << ' ';
  out << base_score_ << '\n';
  out << importance_gain_.size();
  for (const double gain : importance_gain_) out << ' ' << gain;
  out << '\n';
  out << trees_.size() << '\n';
  for (const auto& tree : trees_) {
    out << tree.nodes.size() << '\n';
    for (const auto& node : tree.nodes)
      out << node.feature << ' ' << node.threshold << ' ' << node.value << ' '
          << node.left << ' ' << node.right << '\n';
  }
}

GradientBoostedTrees GradientBoostedTrees::load(std::istream& in) {
  auto fail = [](const std::string& what) -> void {
    throw std::runtime_error("GradientBoostedTrees::load: " + what);
  };
  std::string magic;
  in >> magic;
  if (magic != kModelMagic) fail("bad magic '" + magic + "'");

  // Sanity caps: a corrupted header must throw, not drive a multi-gigabyte
  // resize or leave counts that later index out of bounds.
  constexpr std::size_t kMaxFeatures = 1u << 20;
  constexpr std::size_t kMaxTrees = 1u << 20;
  constexpr std::size_t kMaxNodes = 1u << 22;

  GradientBoostedTrees model;
  std::size_t importance_count = 0, tree_count = 0;
  in >> model.feature_count_ >> model.config_.learning_rate >>
      model.base_score_ >> importance_count;
  if (!in) fail("truncated header");
  if (model.feature_count_ == 0 || model.feature_count_ > kMaxFeatures)
    fail("implausible feature count");
  if (!(model.config_.learning_rate > 0.0)) fail("non-positive learning rate");
  // An importance block is either absent (count 0, e.g. stripped models)
  // or exactly one gain per feature.
  if (importance_count != 0 && importance_count != model.feature_count_)
    fail("importance count does not match feature count");
  model.importance_gain_.resize(importance_count);
  for (auto& gain : model.importance_gain_) in >> gain;
  in >> tree_count;
  if (!in) fail("truncated importance block");
  if (tree_count > kMaxTrees) fail("implausible tree count");
  model.trees_.resize(tree_count);
  for (auto& tree : model.trees_) {
    std::size_t node_count = 0;
    in >> node_count;
    if (!in || node_count == 0 || node_count > kMaxNodes)
      fail("implausible node count");
    tree.nodes.resize(node_count);
    std::vector<bool> child_seen(node_count, false);
    for (std::size_t i = 0; i < node_count; ++i) {
      Node& node = tree.nodes[i];
      in >> node.feature >> node.threshold >> node.value >> node.left >>
          node.right;
      if (!in) break;  // Reported as truncation below.
      if (node.feature < 0) continue;  // Leaf: links are unused.
      // Internal node: the feature must exist and both children must point
      // forward (grow_tree appends children after their parent), which also
      // guarantees Tree::predict terminates.
      if (static_cast<std::size_t>(node.feature) >= model.feature_count_)
        fail("split feature out of range");
      const auto index = static_cast<std::int32_t>(i);
      if (node.left <= index || node.right <= index ||
          static_cast<std::size_t>(node.left) >= node_count ||
          static_cast<std::size_t>(node.right) >= node_count)
        fail("child index out of range");
      // Each node may be a child of at most one parent: a crafted DAG
      // would predict fine but blow up the flattened compilation (every
      // path to a shared node gets its own flat copy).
      if (node.left == node.right ||
          child_seen[static_cast<std::size_t>(node.left)] ||
          child_seen[static_cast<std::size_t>(node.right)])
        fail("node referenced by multiple parents");
      child_seen[static_cast<std::size_t>(node.left)] = true;
      child_seen[static_cast<std::size_t>(node.right)] = true;
    }
  }
  if (!in) fail("truncated or malformed model");
  model.compile_flat();
  model.fitted_ = true;
  return model;
}

std::vector<double> GradientBoostedTrees::feature_importance() const {
  XFL_EXPECTS(fitted_);
  // Models loaded from files that carry no importance block are valid but
  // have nothing to report; max_element on the empty range would be UB.
  if (importance_gain_.empty()) return {};
  std::vector<double> importance = importance_gain_;
  const double max_gain =
      *std::max_element(importance.begin(), importance.end());
  if (max_gain > 0.0)
    for (double& value : importance) value /= max_gain;
  return importance;
}

}  // namespace xfl::ml
