#include "ml/gbt.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <numeric>
#include <ostream>
#include <stdexcept>
#include <string>

#include "common/contracts.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"

namespace xfl::ml {

GradientBoostedTrees::GradientBoostedTrees(GbtConfig config)
    : config_(config) {
  XFL_EXPECTS(config_.valid());
}

double GradientBoostedTrees::Tree::predict(
    std::span<const double> features) const {
  std::int32_t index = 0;
  while (nodes[static_cast<std::size_t>(index)].feature >= 0) {
    const Node& node = nodes[static_cast<std::size_t>(index)];
    // <= matches the binning convention: bin b holds values in
    // (edges[b-1], edges[b]], so "bin <= split_bin" == "value <= threshold".
    index = features[static_cast<std::size_t>(node.feature)] <= node.threshold
                ? node.left
                : node.right;
  }
  return nodes[static_cast<std::size_t>(index)].value;
}

void GradientBoostedTrees::build_bins(const Matrix& x) {
  bin_edges_.assign(x.cols(), {});
  const auto max_bins = static_cast<std::size_t>(config_.max_bins);
  for (std::size_t c = 0; c < x.cols(); ++c) {
    auto column = x.column(c);
    std::sort(column.begin(), column.end());
    column.erase(std::unique(column.begin(), column.end()), column.end());
    auto& edges = bin_edges_[c];
    if (column.size() <= 1) continue;  // Constant feature: no split points.
    if (column.size() <= max_bins) {
      // One split candidate between each pair of adjacent distinct values.
      edges.reserve(column.size() - 1);
      for (std::size_t i = 0; i + 1 < column.size(); ++i)
        edges.push_back(0.5 * (column[i] + column[i + 1]));
    } else {
      // Quantile sketch: evenly spaced quantiles of the distinct values.
      edges.reserve(max_bins - 1);
      for (std::size_t b = 1; b < max_bins; ++b) {
        const double q = static_cast<double>(b) /
                         static_cast<double>(max_bins) *
                         static_cast<double>(column.size() - 1);
        edges.push_back(column[static_cast<std::size_t>(q)]);
      }
      edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
    }
  }
}

namespace {
/// Leaf weight under the XGBoost squared-loss objective: -G / (H + lambda).
double leaf_value(double grad_sum, double hess_sum, double lambda) {
  return -grad_sum / (hess_sum + lambda);
}

/// Score term G^2 / (H + lambda).
double score(double grad_sum, double hess_sum, double lambda) {
  return grad_sum * grad_sum / (hess_sum + lambda);
}
}  // namespace

GradientBoostedTrees::Tree GradientBoostedTrees::grow_tree(
    const std::vector<std::vector<std::uint16_t>>& binned,
    const std::vector<double>& grad, const std::vector<std::size_t>& rows,
    const std::vector<std::size_t>& cols) {
  Tree tree;
  // Work queue of nodes to try to split: (node index, depth, rows).
  struct Pending {
    std::int32_t node;
    int depth;
    std::vector<std::size_t> rows;
  };
  std::vector<Pending> pending;

  auto make_leaf_stats = [&](const std::vector<std::size_t>& node_rows) {
    double grad_sum = 0.0;
    for (std::size_t r : node_rows) grad_sum += grad[r];
    return std::pair<double, double>(grad_sum,
                                     static_cast<double>(node_rows.size()));
  };

  tree.nodes.push_back({});
  {
    const auto [g, h] = make_leaf_stats(rows);
    tree.nodes[0].value = leaf_value(g, h, config_.lambda);
  }
  pending.push_back({0, 0, rows});

  while (!pending.empty()) {
    Pending task = std::move(pending.back());
    pending.pop_back();
    if (task.depth >= config_.max_depth) continue;
    if (task.rows.size() < 2) continue;

    const auto [parent_grad, parent_hess] = make_leaf_stats(task.rows);
    if (parent_hess < 2.0 * config_.min_child_weight) continue;
    const double parent_score = score(parent_grad, parent_hess, config_.lambda);

    double best_gain = config_.gamma;
    std::size_t best_col = 0;
    std::size_t best_bin = 0;

    // Histogram scan per candidate column.
    std::vector<double> hist_grad;
    std::vector<double> hist_count;
    for (std::size_t c : cols) {
      const auto& edges = bin_edges_[c];
      if (edges.empty()) continue;
      hist_grad.assign(edges.size() + 1, 0.0);
      hist_count.assign(edges.size() + 1, 0.0);
      const auto& column_bins = binned[c];
      for (std::size_t r : task.rows) {
        const std::uint16_t bin = column_bins[r];
        hist_grad[bin] += grad[r];
        hist_count[bin] += 1.0;
      }
      double left_grad = 0.0, left_hess = 0.0;
      for (std::size_t b = 0; b < edges.size(); ++b) {
        left_grad += hist_grad[b];
        left_hess += hist_count[b];
        const double right_grad = parent_grad - left_grad;
        const double right_hess = parent_hess - left_hess;
        if (left_hess < config_.min_child_weight ||
            right_hess < config_.min_child_weight)
          continue;
        const double gain =
            0.5 * (score(left_grad, left_hess, config_.lambda) +
                   score(right_grad, right_hess, config_.lambda) -
                   parent_score);
        if (gain > best_gain) {
          best_gain = gain;
          best_col = c;
          best_bin = b;
        }
      }
    }
    if (best_gain <= config_.gamma) continue;  // No profitable split.

    // Materialise the split.
    const double threshold = bin_edges_[best_col][best_bin];
    std::vector<std::size_t> left_rows, right_rows;
    left_rows.reserve(task.rows.size());
    right_rows.reserve(task.rows.size());
    const auto& column_bins = binned[best_col];
    for (std::size_t r : task.rows) {
      if (column_bins[r] <= best_bin)
        left_rows.push_back(r);
      else
        right_rows.push_back(r);
    }
    XFL_ENSURES(!left_rows.empty() && !right_rows.empty());

    const auto left_index = static_cast<std::int32_t>(tree.nodes.size());
    tree.nodes.push_back({});
    const auto right_index = static_cast<std::int32_t>(tree.nodes.size());
    tree.nodes.push_back({});
    {
      const auto [g, h] = make_leaf_stats(left_rows);
      tree.nodes[static_cast<std::size_t>(left_index)].value =
          leaf_value(g, h, config_.lambda);
    }
    {
      const auto [g, h] = make_leaf_stats(right_rows);
      tree.nodes[static_cast<std::size_t>(right_index)].value =
          leaf_value(g, h, config_.lambda);
    }
    Node& parent = tree.nodes[static_cast<std::size_t>(task.node)];
    parent.feature = static_cast<std::int32_t>(best_col);
    parent.threshold = threshold;
    parent.left = left_index;
    parent.right = right_index;
    importance_gain_[best_col] += best_gain;

    pending.push_back({left_index, task.depth + 1, std::move(left_rows)});
    pending.push_back({right_index, task.depth + 1, std::move(right_rows)});
  }
  return tree;
}

void GradientBoostedTrees::fit(const Matrix& x, std::span<const double> y) {
  XFL_EXPECTS(x.rows() == y.size());
  XFL_EXPECTS(x.rows() >= 2 && x.cols() >= 1);
  const std::size_t n = x.rows();
  feature_count_ = x.cols();
  trees_.clear();
  importance_gain_.assign(feature_count_, 0.0);

  build_bins(x);

  // Pre-bin every value: bin b means value in (edges[b-1], edges[b]];
  // value < edges[0] -> bin 0; value >= edges.back() -> last bin. Stored
  // column-major for cache-friendly histogram accumulation.
  std::vector<std::vector<std::uint16_t>> binned(feature_count_);
  for (std::size_t c = 0; c < feature_count_; ++c) {
    binned[c].resize(n, 0);
    const auto& edges = bin_edges_[c];
    if (edges.empty()) continue;
    for (std::size_t r = 0; r < n; ++r) {
      const double value = x.at(r, c);
      const auto it = std::lower_bound(edges.begin(), edges.end(), value);
      binned[c][r] =
          static_cast<std::uint16_t>(std::distance(edges.begin(), it));
    }
  }

  base_score_ = mean(y);
  std::vector<double> predictions(n, base_score_);
  std::vector<double> grad(n, 0.0);

  Rng rng(config_.seed);
  std::vector<std::size_t> all_rows(n);
  std::iota(all_rows.begin(), all_rows.end(), 0);
  std::vector<std::size_t> all_cols(feature_count_);
  std::iota(all_cols.begin(), all_cols.end(), 0);

  for (int t = 0; t < config_.trees; ++t) {
    // Squared loss: g_i = prediction - y_i, h_i = 1 (folded into counts).
    for (std::size_t i = 0; i < n; ++i) grad[i] = predictions[i] - y[i];

    std::vector<std::size_t> rows;
    if (config_.subsample < 1.0) {
      rows.reserve(static_cast<std::size_t>(
          static_cast<double>(n) * config_.subsample) + 1);
      for (std::size_t i = 0; i < n; ++i)
        if (rng.bernoulli(config_.subsample)) rows.push_back(i);
      if (rows.size() < 2) rows = all_rows;
    } else {
      rows = all_rows;
    }

    std::vector<std::size_t> cols;
    if (config_.colsample < 1.0 && feature_count_ > 1) {
      for (std::size_t c = 0; c < feature_count_; ++c)
        if (rng.bernoulli(config_.colsample)) cols.push_back(c);
      if (cols.empty()) cols = all_cols;
    } else {
      cols = all_cols;
    }

    Tree tree = grow_tree(binned, grad, rows, cols);
    // Update predictions over *all* rows with shrinkage.
    for (std::size_t i = 0; i < n; ++i)
      predictions[i] += config_.learning_rate * tree.predict(x.row(i));
    trees_.push_back(std::move(tree));
  }
  fitted_ = true;
}

double GradientBoostedTrees::predict(std::span<const double> features) const {
  XFL_EXPECTS(fitted_);
  XFL_EXPECTS(features.size() == feature_count_);
  double value = base_score_;
  for (const auto& tree : trees_)
    value += config_.learning_rate * tree.predict(features);
  return value;
}

std::vector<double> GradientBoostedTrees::predict(const Matrix& x) const {
  std::vector<double> out(x.rows());
  for (std::size_t r = 0; r < x.rows(); ++r) out[r] = predict(x.row(r));
  return out;
}

namespace {
constexpr const char* kModelMagic = "xfl-gbt-v1";
}  // namespace

void GradientBoostedTrees::save(std::ostream& out) const {
  XFL_EXPECTS(fitted_);
  out.precision(17);
  out << kModelMagic << '\n';
  out << feature_count_ << ' ' << config_.learning_rate << ' ';
  out << base_score_ << '\n';
  out << importance_gain_.size();
  for (const double gain : importance_gain_) out << ' ' << gain;
  out << '\n';
  out << trees_.size() << '\n';
  for (const auto& tree : trees_) {
    out << tree.nodes.size() << '\n';
    for (const auto& node : tree.nodes)
      out << node.feature << ' ' << node.threshold << ' ' << node.value << ' '
          << node.left << ' ' << node.right << '\n';
  }
}

GradientBoostedTrees GradientBoostedTrees::load(std::istream& in) {
  std::string magic;
  in >> magic;
  if (magic != kModelMagic)
    throw std::runtime_error("GradientBoostedTrees::load: bad magic '" +
                             magic + "'");
  GradientBoostedTrees model;
  std::size_t importance_count = 0, tree_count = 0;
  in >> model.feature_count_ >> model.config_.learning_rate >>
      model.base_score_ >> importance_count;
  model.importance_gain_.resize(importance_count);
  for (auto& gain : model.importance_gain_) in >> gain;
  in >> tree_count;
  model.trees_.resize(tree_count);
  for (auto& tree : model.trees_) {
    std::size_t node_count = 0;
    in >> node_count;
    tree.nodes.resize(node_count);
    for (auto& node : tree.nodes)
      in >> node.feature >> node.threshold >> node.value >> node.left >>
          node.right;
  }
  if (!in)
    throw std::runtime_error(
        "GradientBoostedTrees::load: truncated or malformed model");
  model.fitted_ = true;
  return model;
}

std::vector<double> GradientBoostedTrees::feature_importance() const {
  XFL_EXPECTS(fitted_);
  std::vector<double> importance = importance_gain_;
  const double max_gain =
      *std::max_element(importance.begin(), importance.end());
  if (max_gain > 0.0)
    for (double& value : importance) value /= max_gain;
  return importance;
}

}  // namespace xfl::ml
