// Gradient-boosted regression trees in the style of XGBoost (Chen &
// Guestrin), the nonlinear model of §5.2 of the paper.
//
// Implementation notes:
//   * Second-order (gradient/hessian) boosting of the squared-error
//     objective with L2 leaf regularisation `lambda`, split penalty
//     `gamma`, and `min_child_weight` — the exact XGBoost split gain
//       0.5 * [GL^2/(HL+l) + GR^2/(HR+l) - G^2/(H+l)] - gamma.
//   * Histogram (quantile-binned) split finding — the "approximate tree
//     learning algorithm" the paper credits for XGBoost's efficiency.
//   * Shrinkage (learning_rate), row subsampling, and per-tree column
//     subsampling.
//   * Gain-based feature importance, the quantity Fig. 12 visualises:
//     "the more an independent variable is used to make the main splits
//     within the tree, the higher its relative importance."
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "ml/matrix.hpp"

namespace xfl::ml {

/// Training hyperparameters.
struct GbtConfig {
  int trees = 200;
  double learning_rate = 0.08;
  int max_depth = 4;
  double min_child_weight = 5.0;  ///< Minimum hessian sum per leaf.
  double lambda = 1.0;            ///< L2 regularisation on leaf values.
  double gamma = 0.0;             ///< Minimum gain to split.
  double subsample = 0.8;         ///< Row fraction per tree.
  double colsample = 0.9;         ///< Column fraction per tree.
  int max_bins = 64;              ///< Histogram bins per feature.
  std::uint64_t seed = 7;

  bool valid() const {
    return trees >= 1 && learning_rate > 0.0 && max_depth >= 1 &&
           min_child_weight >= 0.0 && lambda >= 0.0 && gamma >= 0.0 &&
           subsample > 0.0 && subsample <= 1.0 && colsample > 0.0 &&
           colsample <= 1.0 && max_bins >= 2;
  }
};

/// Gradient-boosted regression tree ensemble.
class GradientBoostedTrees {
 public:
  explicit GradientBoostedTrees(GbtConfig config = {});

  /// Fit on (x, y). Requires x.rows() == y.size() >= 2 and x.cols() >= 1.
  void fit(const Matrix& x, std::span<const double> y);

  /// Predict one sample (width must match the fitted data).
  double predict(std::span<const double> features) const;

  /// Predict many samples.
  std::vector<double> predict(const Matrix& x) const;

  /// Total split gain attributed to each feature, normalised so the
  /// maximum is 1 (all zeros if no splits were made). Requires fit().
  std::vector<double> feature_importance() const;

  bool fitted() const { return fitted_; }
  const GbtConfig& config() const { return config_; }

  /// Serialise the fitted ensemble to a line-oriented text format
  /// (version header, base score, learning rate, per-tree node lists).
  /// Requires fit(). load() restores a model that predicts identically;
  /// training-only state (bin edges, gain importances) round-trips too.
  void save(std::ostream& out) const;
  static GradientBoostedTrees load(std::istream& in);

 private:
  struct Node {
    // Internal nodes: feature + threshold (go left when value <= threshold).
    // Leaves: feature == -1 and `value` is the leaf weight.
    std::int32_t feature = -1;
    double threshold = 0.0;
    double value = 0.0;
    std::int32_t left = -1;
    std::int32_t right = -1;
  };
  struct Tree {
    std::vector<Node> nodes;
    double predict(std::span<const double> features) const;
  };

  void build_bins(const Matrix& x);
  Tree grow_tree(const std::vector<std::vector<std::uint16_t>>& binned,
                 const std::vector<double>& grad,
                 const std::vector<std::size_t>& rows,
                 const std::vector<std::size_t>& cols);

  GbtConfig config_;
  bool fitted_ = false;
  double base_score_ = 0.0;
  std::size_t feature_count_ = 0;
  std::vector<Tree> trees_;
  /// Per-feature ascending bin upper edges (thresholds for raw values).
  std::vector<std::vector<double>> bin_edges_;
  std::vector<double> importance_gain_;
};

}  // namespace xfl::ml
