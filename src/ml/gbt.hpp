// Gradient-boosted regression trees in the style of XGBoost (Chen &
// Guestrin), the nonlinear model of §5.2 of the paper.
//
// Implementation notes:
//   * Second-order (gradient/hessian) boosting of the squared-error
//     objective with L2 leaf regularisation `lambda`, split penalty
//     `gamma`, and `min_child_weight` — the exact XGBoost split gain
//       0.5 * [GL^2/(HL+l) + GR^2/(HR+l) - G^2/(H+l)] - gamma.
//   * Histogram (quantile-binned) split finding — the "approximate tree
//     learning algorithm" the paper credits for XGBoost's efficiency.
//   * Column-parallel histogram builds over a ThreadPool, the
//     histogram-subtraction trick (build the smaller child directly and
//     derive the sibling as parent - child), and leaf-scatter prediction
//     updates (O(n) per tree instead of per-row tree traversal). Results
//     are bit-identical for a fixed seed regardless of GbtConfig::threads.
//   * Shrinkage (learning_rate), row subsampling, and per-tree column
//     subsampling.
//   * Gain-based feature importance, the quantity Fig. 12 visualises:
//     "the more an independent variable is used to make the main splits
//     within the tree, the higher its relative importance."
//   * A flattened batch-inference engine (ml/gbt_flat.hpp): every fit()
//     and load() compiles the pointer-linked trees into a contiguous SoA
//     FlatEnsemble that serves predict()/predict_batch() bit-identically
//     to the node walk, at any thread count.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <span>
#include <vector>

#include "ml/matrix.hpp"

namespace xfl {
class ThreadPool;
}

namespace xfl::ml {

class FlatEnsemble;

/// Training hyperparameters.
struct GbtConfig {
  int trees = 200;
  double learning_rate = 0.08;
  int max_depth = 4;
  double min_child_weight = 5.0;  ///< Minimum hessian sum per leaf.
  double lambda = 1.0;            ///< L2 regularisation on leaf values.
  double gamma = 0.0;             ///< Minimum gain to split.
  double subsample = 0.8;         ///< Row fraction per tree.
  double colsample = 0.9;         ///< Column fraction per tree.
  int max_bins = 64;              ///< Histogram bins per feature.
  std::uint64_t seed = 7;
  /// Worker threads for binning, histogram builds, and batch prediction.
  /// 0 = hardware concurrency, 1 = serial. Results are bit-identical for a
  /// fixed seed regardless of this value: threads split work by column (or
  /// by row block for prediction), never by interleaving accumulation.
  int threads = 1;

  bool valid() const {
    return trees >= 1 && learning_rate > 0.0 && max_depth >= 1 &&
           min_child_weight >= 0.0 && lambda >= 0.0 && gamma >= 0.0 &&
           subsample > 0.0 && subsample <= 1.0 && colsample > 0.0 &&
           colsample <= 1.0 && max_bins >= 2 && threads >= 0;
  }
};

/// Gradient-boosted regression tree ensemble.
class GradientBoostedTrees {
 public:
  explicit GradientBoostedTrees(GbtConfig config = {});

  /// Fit on (x, y). Requires x.rows() == y.size() >= 2 and x.cols() >= 1.
  void fit(const Matrix& x, std::span<const double> y);

  /// Weighted fit: `weights[i]` is an integer multiplicity — row i counts
  /// exactly as if it appeared weights[i] times (with subsample == 1 and
  /// colsample == 1 the result is bit-identical to fitting the replicated
  /// dataset). Integer weights keep the squared-loss hessian sums exact
  /// integer counts, so the division-free reciprocal-table split scan is
  /// preserved; `min_child_weight` then bounds the weighted mass per
  /// child. An empty span means all-ones and is bit-identical to the
  /// unweighted overload. Requires weights.size() == x.rows() and every
  /// weight >= 1. The recency-weighted serve-path refit (src/retrain)
  /// quantises its decay into these multiplicities.
  void fit(const Matrix& x, std::span<const double> y,
           std::span<const std::uint32_t> weights);

  /// Predict one sample (width must match the fitted data). Served by the
  /// compiled FlatEnsemble; bit-identical to predict_nodewalk().
  double predict(std::span<const double> features) const;

  /// Reference prediction path: per-row walk of the pointer-linked AoS
  /// trees. Kept (and exercised by the tier-2 equivalence suite and the
  /// BM_GbtPredict baseline) as the ground truth the flattened engine must
  /// match bit-for-bit.
  double predict_nodewalk(std::span<const double> features) const;

  /// Predict many samples through the flattened batch engine (spawns a
  /// pool per resolved_threads() for large batches).
  std::vector<double> predict(const Matrix& x) const;

  /// Reference explanation path: per-row Saabas attribution over the
  /// pointer-linked AoS trees (contributions.size() == feature count;
  /// `bias` receives the finalized remainder). Returns the prediction.
  /// The ground truth FlatEnsemble::explain_rows must match bit-for-bit:
  /// the subtree-expectation arithmetic, path accumulation order, and
  /// ml::finalize_attribution call are identical by construction.
  double explain_nodewalk(std::span<const double> features,
                          std::span<double> contributions,
                          double& bias) const;

  /// Explain every row of x through the flattened engine (see
  /// FlatEnsemble::explain_batch for the layout and exactness contract).
  void explain_batch(const Matrix& x, std::span<double> predictions,
                     std::span<double> bias, std::span<double> contributions,
                     ThreadPool* pool = nullptr) const;

  /// Predict every row of x into out (out.size() == x.rows()), blocking
  /// rows across `pool` when provided. Results are bit-identical to
  /// per-row predict() at any thread count — each row owns its output
  /// slot and its own walk, so block boundaries never change values.
  void predict_batch(const Matrix& x, std::span<double> out,
                     ThreadPool* pool = nullptr) const;

  /// The compiled inference engine. Requires fit() (or load()).
  const FlatEnsemble& flat() const;

  /// Total split gain attributed to each feature, normalised so the
  /// maximum is 1 (all zeros if no splits were made). Requires fit().
  std::vector<double> feature_importance() const;

  bool fitted() const { return fitted_; }
  const GbtConfig& config() const { return config_; }

  /// Serialise the fitted ensemble to a line-oriented text format
  /// (version header, base score, learning rate, per-tree node lists).
  /// Requires fit(). load() restores a model that predicts identically;
  /// training-only state (bin edges, gain importances) round-trips too.
  void save(std::ostream& out) const;
  static GradientBoostedTrees load(std::istream& in);

 private:
  struct Node {
    // Internal nodes: feature + threshold (go left when value <= threshold).
    // Leaves: feature == -1 and `value` is the leaf weight.
    std::int32_t feature = -1;
    double threshold = 0.0;
    double value = 0.0;
    std::int32_t left = -1;
    std::int32_t right = -1;
  };
  struct Tree {
    std::vector<Node> nodes;
    double predict(std::span<const double> features) const;
  };

  /// Derive per-feature bin edges and emit every value's bin code in one
  /// sorted pass per column (no per-value binary search). `binned[c][r]` is
  /// the code of x(r, c): code b means value in (edges[b-1], edges[b]].
  void build_bins(const Matrix& x,
                  std::vector<std::vector<std::uint16_t>>& binned,
                  ThreadPool* pool);
  /// Grow one tree over the sampled rows. `sampled` and `unsampled` together
  /// partition [0, n); both are reordered in place as nodes split so each
  /// node owns a contiguous range. On return `leaf_of[r]` names the leaf
  /// node every row r landed in, so the caller can update predictions with
  /// an O(n) scatter instead of re-traversing the tree per row.
  /// Reusable buffers shared by every grow_tree call of one fit, so the
  /// per-tree hot path performs no allocations in steady state.
  struct FitScratch {
    /// Retired histogram buffers, recycled across nodes and trees.
    std::vector<std::vector<double>> hist_pool;
    /// Retired row-count buffers, recycled alongside hist_pool.
    std::vector<std::vector<std::uint32_t>> count_pool;
    /// Right-child row staging for the stable in-place partition.
    std::vector<std::size_t> rows;
    /// Per-candidate-column histogram slice offsets.
    std::vector<std::size_t> offset;
  };
  /// `inv_hess[h]` must hold 1 / (h + lambda) for every integer hessian sum
  /// h in [0, total weight]. `weights` is empty (all rows weigh 1) or one
  /// integer multiplicity per row; histogram counts accumulate it.
  Tree grow_tree(const std::vector<std::vector<std::uint16_t>>& binned,
                 const std::vector<double>& grad,
                 std::span<const std::uint32_t> weights,
                 std::vector<std::size_t>& sampled,
                 std::vector<std::size_t>& unsampled,
                 const std::vector<std::size_t>& cols,
                 const std::vector<double>& inv_hess, FitScratch& scratch,
                 ThreadPool* pool, std::vector<std::int32_t>& leaf_of);
  /// config_.threads with 0 resolved to hardware concurrency.
  std::size_t resolved_threads() const;
  /// (Re)compile trees_ into the flattened serving engine. Called at the
  /// end of every fit() and load() — the compiled model cache is derived
  /// state, so (re)fitting or loading always invalidates and rebuilds it.
  void compile_flat();

  GbtConfig config_;
  bool fitted_ = false;
  double base_score_ = 0.0;
  std::size_t feature_count_ = 0;
  std::vector<Tree> trees_;
  /// Per-feature ascending bin upper edges (thresholds for raw values).
  std::vector<std::vector<double>> bin_edges_;
  std::vector<double> importance_gain_;
  /// Compiled SoA inference engine (immutable once built, so copies of a
  /// fitted model share it and concurrent predict calls are safe).
  std::shared_ptr<const FlatEnsemble> flat_;
};

}  // namespace xfl::ml
