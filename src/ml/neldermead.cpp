#include "ml/neldermead.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"

namespace xfl::ml {

NelderMeadResult nelder_mead(
    const std::function<double(const std::vector<double>&)>& objective,
    std::vector<double> start, const NelderMeadOptions& options) {
  XFL_EXPECTS(!start.empty());
  XFL_EXPECTS(options.max_iterations >= 1);
  const std::size_t dims = start.size();

  // Standard coefficients: reflection 1, expansion 2, contraction 0.5,
  // shrink 0.5.
  constexpr double kAlpha = 1.0, kGamma = 2.0, kRho = 0.5, kSigma = 0.5;

  std::vector<std::vector<double>> simplex(dims + 1, start);
  for (std::size_t d = 0; d < dims; ++d) {
    double step = options.initial_step * std::fabs(start[d]);
    if (step == 0.0) step = options.initial_step;
    simplex[d + 1][d] += step;
  }
  std::vector<double> values(dims + 1);
  for (std::size_t i = 0; i <= dims; ++i) values[i] = objective(simplex[i]);

  NelderMeadResult result;
  int iteration = 0;
  for (; iteration < options.max_iterations; ++iteration) {
    // Order the simplex by objective value.
    std::vector<std::size_t> order(dims + 1);
    for (std::size_t i = 0; i <= dims; ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&values](std::size_t a, std::size_t b) {
      return values[a] < values[b];
    });
    const std::size_t best = order.front();
    const std::size_t worst = order.back();
    const std::size_t second_worst = order[dims - 1];

    // Converge only when BOTH the f-spread and the simplex diameter are
    // small: an f-only test stalls on symmetric straddles (two vertices on
    // opposite slopes of the optimum with equal objective values).
    double diameter = 0.0;
    for (std::size_t i = 0; i <= dims; ++i)
      for (std::size_t d = 0; d < dims; ++d)
        diameter = std::max(
            diameter, std::fabs(simplex[i][d] - simplex[best][d]) /
                          (1.0 + std::fabs(simplex[best][d])));
    if (std::fabs(values[worst] - values[best]) <= options.tolerance &&
        diameter <= std::sqrt(options.tolerance)) {
      result.converged = true;
      break;
    }

    // Centroid of all points but the worst.
    std::vector<double> centroid(dims, 0.0);
    for (std::size_t i = 0; i <= dims; ++i) {
      if (i == worst) continue;
      for (std::size_t d = 0; d < dims; ++d) centroid[d] += simplex[i][d];
    }
    for (double& coordinate : centroid)
      coordinate /= static_cast<double>(dims);

    auto blend = [&](double factor) {
      std::vector<double> point(dims);
      for (std::size_t d = 0; d < dims; ++d)
        point[d] = centroid[d] + factor * (simplex[worst][d] - centroid[d]);
      return point;
    };

    const auto reflected = blend(-kAlpha);
    const double reflected_value = objective(reflected);
    if (reflected_value < values[best]) {
      const auto expanded = blend(-kGamma);
      const double expanded_value = objective(expanded);
      if (expanded_value < reflected_value) {
        simplex[worst] = expanded;
        values[worst] = expanded_value;
      } else {
        simplex[worst] = reflected;
        values[worst] = reflected_value;
      }
      continue;
    }
    if (reflected_value < values[second_worst]) {
      simplex[worst] = reflected;
      values[worst] = reflected_value;
      continue;
    }
    const auto contracted = blend(kRho);
    const double contracted_value = objective(contracted);
    if (contracted_value < values[worst]) {
      simplex[worst] = contracted;
      values[worst] = contracted_value;
      continue;
    }
    // Shrink towards the best vertex.
    for (std::size_t i = 0; i <= dims; ++i) {
      if (i == best) continue;
      for (std::size_t d = 0; d < dims; ++d)
        simplex[i][d] =
            simplex[best][d] + kSigma * (simplex[i][d] - simplex[best][d]);
      values[i] = objective(simplex[i]);
    }
  }

  const std::size_t best = static_cast<std::size_t>(std::distance(
      values.begin(), std::min_element(values.begin(), values.end())));
  result.x = simplex[best];
  result.fx = values[best];
  result.iterations = iteration;
  return result;
}

}  // namespace xfl::ml
