#include "ml/metrics.hpp"

#include <cmath>

#include "common/contracts.hpp"

namespace xfl::ml {

std::vector<double> absolute_percentage_errors(std::span<const double> y,
                                               std::span<const double> yhat) {
  XFL_EXPECTS(y.size() == yhat.size());
  std::vector<double> errors;
  errors.reserve(y.size());
  for (std::size_t i = 0; i < y.size(); ++i) {
    if (y[i] == 0.0) continue;
    if (!std::isfinite(y[i]) || !std::isfinite(yhat[i])) continue;
    errors.push_back(std::fabs(y[i] - yhat[i]) / std::fabs(y[i]) * 100.0);
  }
  return errors;
}

double mdape(std::span<const double> y, std::span<const double> yhat) {
  const auto errors = absolute_percentage_errors(y, yhat);
  XFL_EXPECTS(!errors.empty());
  return median(errors);
}

double mape(std::span<const double> y, std::span<const double> yhat) {
  const auto errors = absolute_percentage_errors(y, yhat);
  XFL_EXPECTS(!errors.empty());
  return mean(errors);
}

double percentile_ape(std::span<const double> y, std::span<const double> yhat,
                      double p) {
  const auto errors = absolute_percentage_errors(y, yhat);
  XFL_EXPECTS(!errors.empty());
  return percentile(errors, p);
}

double rmse(std::span<const double> y, std::span<const double> yhat) {
  XFL_EXPECTS(y.size() == yhat.size() && !y.empty());
  double sum_sq = 0.0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    const double err = y[i] - yhat[i];
    sum_sq += err * err;
  }
  return std::sqrt(sum_sq / static_cast<double>(y.size()));
}

xfl::DistributionSummary ape_summary(std::span<const double> y,
                                     std::span<const double> yhat) {
  const auto errors = absolute_percentage_errors(y, yhat);
  XFL_EXPECTS(!errors.empty());
  return summarize(errors);
}

}  // namespace xfl::ml
