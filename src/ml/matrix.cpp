#include "ml/matrix.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"

namespace xfl::ml {

double& Matrix::at(std::size_t r, std::size_t c) {
  XFL_EXPECTS(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

double Matrix::at(std::size_t r, std::size_t c) const {
  XFL_EXPECTS(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

std::span<double> Matrix::row(std::size_t r) {
  XFL_EXPECTS(r < rows_);
  return {data_.data() + r * cols_, cols_};
}

std::span<const double> Matrix::row(std::size_t r) const {
  XFL_EXPECTS(r < rows_);
  return {data_.data() + r * cols_, cols_};
}

std::vector<double> Matrix::column(std::size_t c) const {
  XFL_EXPECTS(c < cols_);
  std::vector<double> out(rows_);
  for (std::size_t r = 0; r < rows_; ++r) out[r] = data_[r * cols_ + c];
  return out;
}

void Matrix::push_row(std::span<const double> values) {
  if (rows_ == 0 && cols_ == 0) cols_ = values.size();
  XFL_EXPECTS(values.size() == cols_ && cols_ > 0);
  data_.insert(data_.end(), values.begin(), values.end());
  ++rows_;
}

Matrix Matrix::select_columns(const std::vector<bool>& keep) const {
  XFL_EXPECTS(keep.size() == cols_);
  const std::size_t kept =
      static_cast<std::size_t>(std::count(keep.begin(), keep.end(), true));
  Matrix out(rows_, kept);
  for (std::size_t r = 0; r < rows_; ++r) {
    std::size_t oc = 0;
    for (std::size_t c = 0; c < cols_; ++c)
      if (keep[c]) out.at(r, oc++) = at(r, c);
  }
  return out;
}

Matrix Matrix::select_rows(const std::vector<std::size_t>& indices) const {
  Matrix out(indices.size(), cols_);
  for (std::size_t i = 0; i < indices.size(); ++i) {
    XFL_EXPECTS(indices[i] < rows_);
    const auto src = row(indices[i]);
    std::copy(src.begin(), src.end(), out.row(i).begin());
  }
  return out;
}

std::vector<double> solve_least_squares(const Matrix& a,
                                        std::span<const double> b) {
  const std::size_t n = a.rows();
  const std::size_t m = a.cols();
  XFL_EXPECTS(n >= m && m >= 1);
  XFL_EXPECTS(b.size() == n);

  // Work on copies; Householder QR reduces `work` to upper triangular while
  // applying the same reflections to rhs.
  Matrix work = a;
  std::vector<double> rhs(b.begin(), b.end());

  for (std::size_t k = 0; k < m; ++k) {
    // Householder vector for column k below the diagonal.
    double norm = 0.0;
    for (std::size_t i = k; i < n; ++i) norm += work.at(i, k) * work.at(i, k);
    norm = std::sqrt(norm);
    if (norm == 0.0) continue;  // Zero column: leave it; ridge handles later.
    const double alpha = work.at(k, k) >= 0.0 ? -norm : norm;
    std::vector<double> v(n - k, 0.0);
    v[0] = work.at(k, k) - alpha;
    for (std::size_t i = k + 1; i < n; ++i) v[i - k] = work.at(i, k);
    double vnorm_sq = 0.0;
    for (double value : v) vnorm_sq += value * value;
    if (vnorm_sq == 0.0) continue;

    // Apply H = I - 2 v v^T / (v^T v) to remaining columns and rhs.
    for (std::size_t c = k; c < m; ++c) {
      double dot = 0.0;
      for (std::size_t i = k; i < n; ++i) dot += v[i - k] * work.at(i, c);
      const double scale = 2.0 * dot / vnorm_sq;
      for (std::size_t i = k; i < n; ++i) work.at(i, c) -= scale * v[i - k];
    }
    double dot = 0.0;
    for (std::size_t i = k; i < n; ++i) dot += v[i - k] * rhs[i];
    const double scale = 2.0 * dot / vnorm_sq;
    for (std::size_t i = k; i < n; ++i) rhs[i] -= scale * v[i - k];
  }

  // Back substitution with a tiny ridge on (near-)zero pivots.
  std::vector<double> x(m, 0.0);
  constexpr double kPivotFloor = 1.0e-10;
  for (std::size_t kk = m; kk > 0; --kk) {
    const std::size_t k = kk - 1;
    double sum = rhs[k];
    for (std::size_t c = k + 1; c < m; ++c) sum -= work.at(k, c) * x[c];
    double pivot = work.at(k, k);
    if (std::fabs(pivot) < kPivotFloor)
      pivot = pivot >= 0.0 ? kPivotFloor : -kPivotFloor;
    x[k] = sum / pivot;
  }
  return x;
}

}  // namespace xfl::ml
