// Dense row-major matrix, sized for regression problems of this library
// (tens of thousands of rows, tens of columns). Deliberately minimal: the
// ML substrate needs storage, views, and a QR least-squares solver, not a
// full BLAS.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace xfl::ml {

/// Dense row-major matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  /// Zero-initialised rows x cols matrix.
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  double& at(std::size_t r, std::size_t c);
  double at(std::size_t r, std::size_t c) const;

  /// Contiguous view of one row.
  std::span<double> row(std::size_t r);
  std::span<const double> row(std::size_t r) const;

  /// Copy of one column.
  std::vector<double> column(std::size_t c) const;

  /// Append a row (must match cols(); sets cols on the first row).
  void push_row(std::span<const double> values);

  /// New matrix keeping only the columns flagged true in `keep`
  /// (keep.size() == cols()).
  Matrix select_columns(const std::vector<bool>& keep) const;

  /// New matrix keeping only the listed rows.
  Matrix select_rows(const std::vector<std::size_t>& indices) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Solve min ||A x - b||_2 by Householder QR with column pivoting disabled
/// (A is expected well-conditioned after standardisation; a tiny ridge is
/// added on rank deficiency). Requires A.rows() >= A.cols() >= 1 and
/// b.size() == A.rows(). Returns x of size A.cols().
std::vector<double> solve_least_squares(const Matrix& a,
                                        std::span<const double> b);

}  // namespace xfl::ml
