// Ordinary least-squares linear regression (Eq. 3/4 of the paper):
//   R_i = b0 + b1 x_i1 + ... + bm x_im,
// with coefficients minimising the residual sum of squares. When fitted on
// standardised inputs, each coefficient is the unique effect of a one-sigma
// change in its feature — the quantity Fig. 9 visualises per edge.
#pragma once

#include <span>
#include <vector>

#include "ml/matrix.hpp"

namespace xfl::ml {

/// OLS linear regression with intercept.
class LinearRegression {
 public:
  /// Fit to (x, y). Requires x.rows() == y.size() >= x.cols() + 1.
  void fit(const Matrix& x, std::span<const double> y);

  /// Predict one sample (size must equal the fitted width).
  double predict(std::span<const double> features) const;

  /// Predict many samples.
  std::vector<double> predict(const Matrix& x) const;

  /// Fitted slope per feature. Requires fit() first.
  const std::vector<double>& coefficients() const { return coef_; }
  double intercept() const { return intercept_; }
  bool fitted() const { return !coef_.empty() || fitted_; }

  /// Coefficient of determination on a dataset. Returns 1 for perfect fit;
  /// can be negative for a model worse than the mean.
  double r_squared(const Matrix& x, std::span<const double> y) const;

 private:
  std::vector<double> coef_;
  double intercept_ = 0.0;
  bool fitted_ = false;
};

}  // namespace xfl::ml
