// Feature standardisation. §5 of the paper: "we normalize each input x_i to
// have zero mean and unit variance, setting x' = (x_i - mean) / sigma".
#pragma once

#include <vector>

#include "ml/matrix.hpp"

namespace xfl::ml {

/// Per-column zero-mean / unit-variance scaler. Columns with zero variance
/// are passed through centred only (sigma treated as 1).
class StandardScaler {
 public:
  /// Learn per-column mean and standard deviation. Requires rows >= 1.
  void fit(const Matrix& x);

  /// Apply the learnt transform. Requires fit() first with matching width.
  Matrix transform(const Matrix& x) const;

  /// fit() then transform().
  Matrix fit_transform(const Matrix& x);

  const std::vector<double>& means() const { return means_; }
  const std::vector<double>& sigmas() const { return sigmas_; }
  bool fitted() const { return !means_.empty(); }

  /// Rebuild a scaler from stored moments (model deserialisation).
  /// Requires equal sizes and strictly positive sigmas.
  static StandardScaler from_moments(std::vector<double> means,
                                     std::vector<double> sigmas);

 private:
  std::vector<double> means_;
  std::vector<double> sigmas_;
};

}  // namespace xfl::ml
