// Weibull-curve fitting for Fig. 4: "Aggregate incoming transfer rate vs
// total concurrency ... with Weibull curve fitted". The fitted form is a
// scaled Weibull density
//   f(x) = A * (k/l) * (x/l)^(k-1) * exp(-(x/l)^k),
// which rises to a mode and then declines — the observed shape of aggregate
// throughput versus total GridFTP instance count.
#pragma once

#include <span>

namespace xfl::ml {

/// Parameters of the scaled Weibull curve.
struct WeibullCurve {
  double amplitude = 1.0;  ///< A (scale of the y axis).
  double shape = 1.5;      ///< k (> 0).
  double scale = 1.0;      ///< l (> 0).

  /// Evaluate the curve at x >= 0.
  double operator()(double x) const;

  /// Location of the maximum: l * ((k-1)/k)^(1/k) for k > 1, else 0.
  double mode() const;
};

/// Least-squares fit of the scaled Weibull curve to (x, y) samples with
/// x >= 0. Requires at least 3 samples and equal sizes. Robust to the
/// scaling of x and y (internally normalised before Nelder-Mead).
WeibullCurve fit_weibull_curve(std::span<const double> x,
                               std::span<const double> y);

/// Sum of squared residuals of a curve on a sample set.
double weibull_sse(const WeibullCurve& curve, std::span<const double> x,
                   std::span<const double> y);

}  // namespace xfl::ml
