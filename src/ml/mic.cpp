#include "ml/mic.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "common/contracts.hpp"

namespace xfl::ml {

namespace {

double log2_safe(double p) { return p > 0.0 ? std::log2(p) : 0.0; }

/// Equal-frequency assignment of sorted values into up to q bins. Ties are
/// kept together (identical values never straddle a bin boundary), so the
/// actual bin count can be lower. Returns per-point bin ids (input order is
/// the sorted order) and sets `bins_used`.
std::vector<int> equipartition(const std::vector<double>& sorted_values,
                               std::size_t q, std::size_t& bins_used) {
  const std::size_t n = sorted_values.size();
  std::vector<int> assignment(n, 0);
  const double per_bin = static_cast<double>(n) / static_cast<double>(q);
  int bin = 0;
  std::size_t i = 0;
  double filled = 0.0;
  while (i < n) {
    // Extent of the tie group starting at i.
    std::size_t j = i;
    while (j + 1 < n && sorted_values[j + 1] == sorted_values[i]) ++j;
    const auto group = static_cast<double>(j - i + 1);
    // Advance to the next bin if this one is full and another remains.
    if (filled >= per_bin - 1.0e-9 &&
        static_cast<std::size_t>(bin) + 1 < q) {
      ++bin;
      filled = 0.0;
    }
    for (std::size_t k = i; k <= j; ++k) assignment[k] = bin;
    filled += group;
    i = j + 1;
  }
  bins_used = static_cast<std::size_t>(bin) + 1;
  return assignment;
}

/// Mutual-information maximisation over x-partitions given a fixed y-bin
/// assignment, following the MINE OptimizeXAxis dynamic program. Points
/// must be supplied sorted by x. Returns the best I (bits) for each x-bin
/// count l in [2, k] (index l-2 in the result).
std::vector<double> optimize_axis(const std::vector<double>& x_sorted,
                                  const std::vector<int>& y_bins,
                                  std::size_t q, std::size_t k, double c) {
  const std::size_t n = x_sorted.size();
  XFL_EXPECTS(y_bins.size() == n && q >= 2 && k >= 2);

  // --- Clumps: maximal runs of equal x (equal x can never be separated).
  std::vector<std::size_t> clump_end;  // Exclusive end index per clump.
  for (std::size_t i = 0; i < n;) {
    std::size_t j = i;
    while (j + 1 < n && x_sorted[j + 1] == x_sorted[i]) ++j;
    clump_end.push_back(j + 1);
    i = j + 1;
  }
  // --- Superclumps: cap the candidate boundary count at c*k by merging.
  const auto max_clumps =
      std::max<std::size_t>(static_cast<std::size_t>(c * static_cast<double>(k)),
                            k + 1);
  if (clump_end.size() > max_clumps) {
    std::vector<std::size_t> merged;
    const double per_super = static_cast<double>(n) /
                             static_cast<double>(max_clumps);
    double target = per_super;
    for (std::size_t idx = 0; idx < clump_end.size(); ++idx) {
      const bool last = idx + 1 == clump_end.size();
      if (last || static_cast<double>(clump_end[idx]) >= target - 1.0e-9) {
        merged.push_back(clump_end[idx]);
        target = static_cast<double>(clump_end[idx]) + per_super;
      }
    }
    clump_end = std::move(merged);
  }
  const std::size_t m = clump_end.size();
  if (m < 2) return {};

  // Cumulative per-y-row counts at each clump boundary: cum[t][r] = number
  // of points in clumps 1..t falling in y row r.
  std::vector<std::vector<double>> cum(m + 1, std::vector<double>(q, 0.0));
  {
    std::size_t point = 0;
    for (std::size_t t = 0; t < m; ++t) {
      cum[t + 1] = cum[t];
      for (; point < clump_end[t]; ++point)
        cum[t + 1][static_cast<std::size_t>(y_bins[point])] += 1.0;
    }
  }
  std::vector<double> total(m + 1, 0.0);
  for (std::size_t t = 1; t <= m; ++t)
    total[t] = std::accumulate(cum[t].begin(), cum[t].end(), 0.0);

  // Extensive per-bin score for clump range (s, t]:
  //   G = sum_r n_r * log2(n_r / n_bin)   (= -n_bin * H(Q | this bin)).
  auto bin_score = [&](std::size_t s, std::size_t t) {
    const double n_bin = total[t] - total[s];
    if (n_bin <= 0.0) return 0.0;
    double g = 0.0;
    for (std::size_t r = 0; r < q; ++r) {
      const double n_r = cum[t][r] - cum[s][r];
      if (n_r > 0.0) g += n_r * log2_safe(n_r / n_bin);
    }
    return g;
  };

  // DP over extensive scores: F[t][l] = best sum of bin scores partitioning
  // clumps 1..t into l bins (boundaries at clump ends, last bin ends at t).
  const std::size_t k_max = std::min(k, m);
  std::vector<std::vector<double>> dp(
      m + 1, std::vector<double>(k_max + 1, -1.0e300));
  for (std::size_t t = 1; t <= m; ++t) dp[t][1] = bin_score(0, t);
  for (std::size_t l = 2; l <= k_max; ++l) {
    for (std::size_t t = l; t <= m; ++t) {
      double best = -1.0e300;
      for (std::size_t s = l - 1; s < t; ++s) {
        const double candidate = dp[s][l - 1] + bin_score(s, t);
        if (candidate > best) best = candidate;
      }
      dp[t][l] = best;
    }
  }

  // H(Q) over all points, in bits.
  double h_q = 0.0;
  for (std::size_t r = 0; r < q; ++r) {
    const double p = cum[m][r] / total[m];
    if (p > 0.0) h_q -= p * std::log2(p);
  }

  std::vector<double> result;
  result.reserve(k_max - 1);
  for (std::size_t l = 2; l <= k_max; ++l)
    result.push_back(h_q + dp[m][l] / total[m]);
  return result;
}

/// Best normalised grid value with the y axis equipartitioned and the x
/// axis optimised. Inputs already sorted by x.
double best_over_grids(const std::vector<double>& x_sorted,
                       const std::vector<double>& y_of_x_sorted,
                       double budget, double c) {
  // Order points by y to equipartition, then map assignments back.
  const std::size_t n = x_sorted.size();
  std::vector<std::size_t> by_y(n);
  std::iota(by_y.begin(), by_y.end(), 0);
  std::sort(by_y.begin(), by_y.end(), [&](std::size_t a, std::size_t b) {
    return y_of_x_sorted[a] < y_of_x_sorted[b];
  });
  std::vector<double> y_sorted(n);
  for (std::size_t i = 0; i < n; ++i) y_sorted[i] = y_of_x_sorted[by_y[i]];

  double best = 0.0;
  const auto q_limit = static_cast<std::size_t>(budget / 2.0);
  for (std::size_t q = 2; q <= std::max<std::size_t>(2, q_limit); ++q) {
    const auto k = static_cast<std::size_t>(budget / static_cast<double>(q));
    if (k < 2) break;
    std::size_t bins_used = 0;
    const auto y_assignment_sorted = equipartition(y_sorted, q, bins_used);
    if (bins_used < 2) continue;
    // Scatter assignments back to x order.
    std::vector<int> y_bins(n);
    for (std::size_t i = 0; i < n; ++i)
      y_bins[by_y[i]] = y_assignment_sorted[i];

    const auto curve = optimize_axis(x_sorted, y_bins, bins_used, k, c);
    for (std::size_t l = 2; l - 2 < curve.size(); ++l) {
      const double denominator =
          std::log2(static_cast<double>(std::min(l, bins_used)));
      if (denominator <= 0.0) continue;
      best = std::max(best, curve[l - 2] / denominator);
    }
  }
  return std::min(best, 1.0);
}

}  // namespace

double mic(std::span<const double> x, std::span<const double> y,
           const MicOptions& options) {
  XFL_EXPECTS(x.size() == y.size());
  XFL_EXPECTS(options.alpha > 0.0 && options.alpha < 1.0 && options.c >= 1.0);
  std::size_t n = x.size();
  if (n < 4) return 0.0;

  // Deterministic stride-based down-sampling keeps the estimator cheap on
  // large edges without introducing RNG state.
  std::vector<double> xs, ys;
  if (options.max_samples > 0 && n > options.max_samples) {
    const double stride =
        static_cast<double>(n) / static_cast<double>(options.max_samples);
    xs.reserve(options.max_samples);
    ys.reserve(options.max_samples);
    for (std::size_t i = 0; i < options.max_samples; ++i) {
      const auto idx = static_cast<std::size_t>(static_cast<double>(i) * stride);
      xs.push_back(x[idx]);
      ys.push_back(y[idx]);
    }
    n = xs.size();
  } else {
    xs.assign(x.begin(), x.end());
    ys.assign(y.begin(), y.end());
  }

  // Constant inputs carry no information.
  const bool x_constant =
      std::all_of(xs.begin(), xs.end(), [&](double v) { return v == xs[0]; });
  const bool y_constant =
      std::all_of(ys.begin(), ys.end(), [&](double v) { return v == ys[0]; });
  if (x_constant || y_constant) return 0.0;

  const double budget =
      std::max(4.0, std::pow(static_cast<double>(n), options.alpha));

  // Orientation 1: optimise x partitions against y equipartition.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return xs[a] < xs[b]; });
  std::vector<double> x_sorted(n), y_in_x_order(n);
  for (std::size_t i = 0; i < n; ++i) {
    x_sorted[i] = xs[order[i]];
    y_in_x_order[i] = ys[order[i]];
  }
  double best = best_over_grids(x_sorted, y_in_x_order, budget, options.c);

  // Orientation 2: swap the roles of the axes.
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return ys[a] < ys[b]; });
  std::vector<double> y_sorted(n), x_in_y_order(n);
  for (std::size_t i = 0; i < n; ++i) {
    y_sorted[i] = ys[order[i]];
    x_in_y_order[i] = xs[order[i]];
  }
  best = std::max(best,
                  best_over_grids(y_sorted, x_in_y_order, budget, options.c));
  return best;
}

}  // namespace xfl::ml
