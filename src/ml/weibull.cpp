#include "ml/weibull.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"
#include "common/stats.hpp"
#include "ml/neldermead.hpp"

namespace xfl::ml {

double WeibullCurve::operator()(double x) const {
  XFL_EXPECTS(x >= 0.0);
  if (x == 0.0) return shape > 1.0 ? 0.0 : amplitude * shape / scale;
  const double z = x / scale;
  return amplitude * (shape / scale) * std::pow(z, shape - 1.0) *
         std::exp(-std::pow(z, shape));
}

double WeibullCurve::mode() const {
  if (shape <= 1.0) return 0.0;
  return scale * std::pow((shape - 1.0) / shape, 1.0 / shape);
}

double weibull_sse(const WeibullCurve& curve, std::span<const double> x,
                   std::span<const double> y) {
  XFL_EXPECTS(x.size() == y.size());
  double sse = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double err = curve(x[i]) - y[i];
    sse += err * err;
  }
  return sse;
}

WeibullCurve fit_weibull_curve(std::span<const double> x,
                               std::span<const double> y) {
  XFL_EXPECTS(x.size() == y.size());
  XFL_EXPECTS(x.size() >= 3);
  const double x_max = std::max(max_value(x), 1.0e-12);
  const double y_max = std::max(max_value(y), 1.0e-12);

  // Optimise in normalised log-parameter space to keep the search scale-free
  // and the positivity constraints implicit.
  auto decode = [&](const std::vector<double>& p) {
    WeibullCurve curve;
    curve.amplitude = std::exp(p[0]) * y_max * x_max;
    curve.shape = std::exp(p[1]);
    curve.scale = std::exp(p[2]) * x_max;
    return curve;
  };
  auto objective = [&](const std::vector<double>& p) {
    const WeibullCurve curve = decode(p);
    if (!std::isfinite(curve.amplitude) || !std::isfinite(curve.shape) ||
        !std::isfinite(curve.scale) || curve.shape > 50.0)
      return 1.0e300;
    return weibull_sse(curve, x, y) / (y_max * y_max);
  };

  // Multi-start over a few plausible shapes/scales; keep the best.
  NelderMeadResult best;
  best.fx = 1.0e300;
  for (const double shape0 : {1.2, 1.8, 3.0}) {
    for (const double scale0 : {0.3, 0.7}) {
      std::vector<double> start = {std::log(0.5), std::log(shape0),
                                   std::log(scale0)};
      NelderMeadOptions options;
      options.max_iterations = 4000;
      options.initial_step = 0.4;
      const auto result = nelder_mead(objective, start, options);
      if (result.fx < best.fx) best = result;
    }
  }
  return decode(best.x);
}

}  // namespace xfl::ml
