// Maximal information coefficient (Reshef et al., "Detecting novel
// associations in large data sets", Science 2011), used by Table 5 of the
// paper to expose nonlinear feature-rate dependencies that the Pearson
// coefficient misses.
//
// MIC(x, y) = max over grids (a x b) with a*b <= B(n) of
//               I(x, y; grid) / log2(min(a, b)),
// with B(n) = n^alpha (alpha = 0.6 by default). We implement the ApproxMaxMI
// scheme of the MINE paper: for each candidate bin count q on one axis,
// equipartition that axis by frequency, then run a dynamic program over
// x-axis "clumps" to find the partition maximising mutual information; both
// axis orientations are searched and the best normalised value kept.
#pragma once

#include <cstddef>
#include <span>

namespace xfl::ml {

/// MIC estimator parameters.
struct MicOptions {
  double alpha = 0.6;  ///< Grid budget exponent: B = n^alpha.
  double c = 5.0;      ///< Superclump factor: at most c*k clump candidates.
  /// Computation is O(B^3)-ish; larger samples are deterministically
  /// down-sampled to this size first (0 = never down-sample).
  std::size_t max_samples = 1000;
};

/// Estimate MIC of two equal-length samples. Returns 0 when either sample
/// is constant or fewer than 4 points are available. Result lies in [0, 1].
double mic(std::span<const double> x, std::span<const double> y,
           const MicOptions& options = {});

}  // namespace xfl::ml
