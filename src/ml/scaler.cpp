#include "ml/scaler.hpp"

#include <cmath>

#include "common/contracts.hpp"
#include "common/stats.hpp"

namespace xfl::ml {

void StandardScaler::fit(const Matrix& x) {
  XFL_EXPECTS(x.rows() >= 1);
  means_.assign(x.cols(), 0.0);
  sigmas_.assign(x.cols(), 1.0);
  for (std::size_t c = 0; c < x.cols(); ++c) {
    const auto column = x.column(c);
    means_[c] = mean(column);
    const double sd = stddev(column);
    sigmas_[c] = sd > 0.0 ? sd : 1.0;
  }
}

Matrix StandardScaler::transform(const Matrix& x) const {
  XFL_EXPECTS(fitted());
  XFL_EXPECTS(x.cols() == means_.size());
  Matrix out(x.rows(), x.cols());
  for (std::size_t r = 0; r < x.rows(); ++r)
    for (std::size_t c = 0; c < x.cols(); ++c)
      out.at(r, c) = (x.at(r, c) - means_[c]) / sigmas_[c];
  return out;
}

StandardScaler StandardScaler::from_moments(std::vector<double> means,
                                            std::vector<double> sigmas) {
  XFL_EXPECTS(!means.empty() && means.size() == sigmas.size());
  for (const double sigma : sigmas) XFL_EXPECTS(sigma > 0.0);
  StandardScaler scaler;
  scaler.means_ = std::move(means);
  scaler.sigmas_ = std::move(sigmas);
  return scaler;
}

Matrix StandardScaler::fit_transform(const Matrix& x) {
  fit(x);
  return transform(x);
}

}  // namespace xfl::ml
