// Flattened batch-inference engine for fitted tree ensembles — the serving
// path the paper motivates ("our predictions can be used for distributed
// workflow scheduling and optimization", §5): a workflow scheduler queries
// the predictor per candidate transfer at high frequency, so inference is a
// hot path alongside training.
//
// A fitted GradientBoostedTrees stores each tree as pointer-linked AoS
// nodes (32 bytes each, children anywhere in the vector). Compilation
// re-lays the whole ensemble into contiguous structure-of-arrays storage:
//
//   * feature[i]  — split feature, or -1 for a leaf          (int32)
//   * value[i]    — split threshold (internal) or leaf value (double)
//   * left[i]     — absolute index of the left child; the right child is
//                   always left[i] + 1 (siblings are laid out adjacently
//                   by a per-tree breadth-first renumbering)     (int32)
//
// which cuts a node to 16 bytes across three cache-streamable arrays and
// removes one level of indirection per step (no per-tree vector, no
// `right` load). Batch prediction walks all trees for a small block of
// rows at a time: the per-row chase of a single tree is a serial chain of
// dependent loads, but the walks of different rows are independent, so
// stepping a block of rows in lockstep converts the traversal from
// latency-bound to throughput-bound.
//
// Equivalence contract: predictions are bit-identical to the per-row
// node-walk path (`GradientBoostedTrees::predict_nodewalk`) at any thread
// count. Each step compares with the same `!(x <= threshold)` predicate
// (NaN features route right, exactly like the node walk's `x <= t ?
// left : right`), and each row accumulates `base + scale * leaf` in tree
// order, so the floating-point operation sequence per row is unchanged.
//
// Explanation kernel (PR 10): build() additionally precomputes a Saabas
// path-attribution table — for every child slot, the scaled shift in the
// leaf-count-weighted subtree expectation that taking that branch causes:
// attr[child] = scale * (E[child] - E[parent]). explain_rows() walks the
// same SoA arrays with the same predicate, credits attr[child] to the
// split feature at every step, and recomputes the prediction with the
// scalar kernel's exact operation sequence — so explain predictions are
// bit-identical to predict under every kernel. finalize_attribution()
// then reconciles the bias so the canonical reconstruction (sum the
// per-feature contributions in ascending feature order, then add the
// bias last) equals the prediction bit-exactly, always: a bounded
// ulp-stepping fix-up absorbs the summation residual, and the rare
// catastrophic-cancellation case where the prediction is unreachable on
// the reconstruction grid folds everything into the bias (contributions
// zeroed). `GradientBoostedTrees::explain_nodewalk` is the kept per-row
// reference, sharing the same expectation arithmetic and finalize.
//
// Kernel family (PR 6): the lockstep walk above is the `scalar` kernel and
// stays the oracle. Two explicitly vectorized kernels sit beside it behind
// runtime dispatch (CPUID probed once; compile-time on non-x86):
//
//   * `avx2` — walks the same SoA arrays, but a 16-row block's features
//     are first transposed into a contiguous scratch so every per-level
//     load is a single-base AVX2 gather: node features/thresholds/links
//     are gathered by node index, compares run 4 doubles per vector, and
//     the index update is a compare/blend — no per-lane branches. Leaf
//     accumulation stays scalar (`acc += scale * leaf` per row in tree
//     order), so outputs remain bit-identical to the scalar kernel.
//   * `quantized` — built at FlatEnsemble compile time: each feature's
//     distinct split thresholds are sorted into a rank table and every
//     split node stores one int32 index into a *global predicate-mask
//     table* keyed by (feature, threshold rank). Per 16-row block those
//     masks are computed once for the whole ensemble: each row's feature
//     value is ranked against the threshold table (a uniform grid maps
//     the value to a starting rank in one multiply, then a short linear
//     scan finishes — typically 0–2 steps for histogram-trained models),
//     scattered into a per-rank row bucket, and a suffix-OR turns the
//     buckets into masks[k] = 16-bit set of rows with code > k. A NaN ranks above every threshold, so it routes
//     right exactly like the `!(x <= t)` predicate. Because ensembles
//     share thresholds heavily (histogram training draws them from at
//     most max_bins-1 bin edges per feature), thousands of tree nodes
//     collapse onto a few hundred masks — every split predicate of every
//     tree is evaluated once per block instead of once per node visit.
//     Each tree is padded to a complete binary tree of its depth (child =
//     2*i+1+predicate, branch-free, no left links) and walked over all 16
//     rows as int16 lanes; the per-level mask lookup is an in-register
//     byte shuffle of the tree's (at most 16-entry) mask table, so the
//     hot loop performs *zero* hardware gathers — which are microcode-
//     crippled on many production x86 hosts. Reached leaf doubles are
//     accumulated scalar in tree order; trees deeper than 4 walk a
//     portable scalar form of the same layout.
//
// Quantization error bound: rank codes preserve the `x <= t` predicate
// exactly whenever every threshold is representable in the table — which
// build() guarantees by construction — so the quantized kernel routes
// every row to the very same leaf and its predictions are bit-identical
// (error bound zero). When an ensemble cannot be quantized losslessly
// (more than 32766 distinct thresholds on one feature, a feature id
// beyond the int16 code space, or a padded form over the size cap),
// build() *refuses* the quantized form — structured warn log plus the
// `gbt.flat.quantize_fallback` counter — and dispatch falls back to the
// exact avx2/scalar kernel instead of silently degrading accuracy.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "ml/matrix.hpp"

namespace xfl {
class ThreadPool;
}

namespace xfl::ml {

/// Batch-inference kernel selector. kAuto defers to the process-wide
/// active kernel (XFL_KERNEL env / set_active_kernel), which itself
/// resolves to the best kernel this CPU and build support.
enum class Kernel : std::uint8_t { kAuto = 0, kScalar, kAvx2, kQuantized };

/// "auto" / "scalar" / "avx2" / "quantized".
const char* kernel_name(Kernel kernel);

/// Parse a kernel name (the CLI --kernel / XFL_KERNEL vocabulary).
std::optional<Kernel> parse_kernel(std::string_view text);

/// True when this build carries the AVX2 kernels and the CPU executes
/// them (CPUID probed once, cached). Always false under XFL_DISABLE_SIMD
/// and on non-x86 hosts.
bool cpu_supports_avx2() noexcept;

/// Collapse a request onto what this CPU/build can run: kAuto becomes
/// kQuantized on SIMD hosts (the fastest exact kernel) and kScalar
/// otherwise; kAvx2 degrades to kScalar when unsupported. kScalar and
/// kQuantized pass through (the quantized kernel has a portable scalar
/// form; per-ensemble quantization failures degrade later, in
/// FlatEnsemble::effective_kernel).
Kernel resolve_kernel(Kernel requested) noexcept;

/// Process-wide default kernel, initialised once from the XFL_KERNEL
/// environment variable (unset or invalid = kAuto, invalid warns).
Kernel active_kernel() noexcept;

/// Override the process-wide default (CLI --kernel). kAuto restores
/// detection.
void set_active_kernel(Kernel kernel) noexcept;

/// Reconcile a row's raw path attributions with its prediction so the
/// canonical reconstruction — sum contributions[0..n) in ascending index
/// order, then add the returned bias LAST — equals `prediction`
/// bit-exactly. Usually the returned bias is prediction - sum (plus at
/// most a couple of ulp steps absorbing the summation residual); under
/// catastrophic cancellation the prediction can be unreachable on the
/// {fl(sum + b)} grid, in which case every contribution is zeroed and the
/// bias becomes the prediction itself — the contract holds in every case.
/// Shared by the flat explain kernel and the node-walk reference so both
/// agree bitwise.
double finalize_attribution(double prediction, double* contributions,
                            std::size_t n);

/// Immutable compiled form of a fitted ensemble. Thread-safe to query
/// concurrently; rebuild (via Builder) whenever the source model refits.
class FlatEnsemble {
 public:
  /// Assembles a FlatEnsemble from per-tree AoS node lists. Nodes are
  /// added in their original in-tree indexing; build() performs the
  /// breadth-first renumbering that makes siblings adjacent.
  class Builder {
   public:
    /// `scale` multiplies every leaf value (the ensemble's learning rate).
    Builder(double base_score, double scale);

    /// Start a new tree; node 0 of the following add_node calls is its root.
    void begin_tree();

    /// Skip (or re-enable, the default) the Saabas attribution precompute.
    /// An ensemble built without it predicts normally but must never be
    /// explained (explain_batch asserts). This is the A/B lever the
    /// obs_overhead_guard uses to prove the predict path pays nothing for
    /// explain support.
    void set_attribution(bool enabled) { attribution_ = enabled; }

    /// Append one node of the current tree. Internal nodes: feature >= 0,
    /// `threshold_or_value` is the split threshold, and left/right are
    /// in-tree indices of the children. Leaves: feature < 0 and
    /// `threshold_or_value` is the leaf value (links ignored).
    void add_node(std::int32_t feature, double threshold_or_value,
                  std::int32_t left, std::int32_t right);

    /// Flatten everything added so far. The builder is consumed.
    FlatEnsemble build() &&;

   private:
    struct RawNode {
      std::int32_t feature;
      double threshold_or_value;
      std::int32_t left;
      std::int32_t right;
    };
    double base_score_;
    double scale_;
    bool attribution_ = true;
    std::vector<std::vector<RawNode>> trees_;
  };

  double base_score() const { return base_score_; }
  double scale() const { return scale_; }
  std::size_t tree_count() const { return roots_.size(); }
  std::size_t node_count() const { return feature_.size(); }
  /// Deepest split path over all trees (0 = every tree is a lone leaf).
  int max_depth() const { return max_depth_; }

  /// True when build() produced the lossless quantized form (rank-coded
  /// thresholds, padded complete trees). False means the quantized kernel
  /// silently degrades — to dispatch, never in accuracy: requests for it
  /// fall back to the exact avx2/scalar kernel.
  bool quantized_supported() const { return quantized_ok_; }
  /// Why quantization was refused ("" when quantized_supported()).
  const std::string& quantize_reject_reason() const { return quant_reject_; }

  /// The kernel a predict call with this request would actually run:
  /// kAuto reads the process-wide active kernel, CPU support collapses
  /// avx2 on non-SIMD hosts, and an unquantizable ensemble degrades
  /// kQuantized to the best exact kernel.
  Kernel effective_kernel(Kernel requested = Kernel::kAuto) const;

  /// Ensemble prediction for one row. Bit-identical to the node walk
  /// (always the scalar walk: one row has no lanes to vectorise).
  double predict_one(std::span<const double> features) const;

  /// Predict rows [begin, end) of x into out[begin, end) — the row-blocked
  /// kernel. `out` is indexed by absolute row so concurrent callers over
  /// disjoint ranges never touch the same slot. `kernel` forces a family
  /// member (kAuto = process default); every kernel returns bit-identical
  /// results, so forcing is a perf lever, never a correctness one.
  void predict_rows(const Matrix& x, std::size_t begin, std::size_t end,
                    double* out, Kernel kernel = Kernel::kAuto) const;

  /// Predict every row of x into out (out.size() == x.rows()), blocking
  /// rows across `pool` when provided. Block boundaries never change
  /// results: each row owns its output slot and its own walk.
  void predict_batch(const Matrix& x, std::span<double> out,
                     ThreadPool* pool = nullptr,
                     Kernel kernel = Kernel::kAuto) const;

  /// Saabas path attributions for rows [begin, end): per row, zero the
  /// row's x.cols() contribution slots, credit attr[child] to the split
  /// feature along every tree's decision path, recompute the prediction
  /// with the scalar kernel's exact operation sequence, and finalize the
  /// bias (see finalize_attribution). Outputs are indexed by absolute
  /// row (contributions is row-major rows x cols), so concurrent callers
  /// over disjoint ranges never touch the same slot.
  void explain_rows(const Matrix& x, std::size_t begin, std::size_t end,
                    double* predictions, double* bias,
                    double* contributions) const;

  /// Explain every row of x (predictions/bias sized x.rows(),
  /// contributions row-major x.rows() * x.cols()), blocking rows across
  /// `pool` when provided — same gating and block floor as predict_batch.
  /// Contract: for every row, contributions summed in ascending feature
  /// order plus bias (added last) == predictions[row] bit-exactly, and
  /// predictions are bit-identical to predict_batch under every kernel.
  void explain_batch(const Matrix& x, std::span<double> predictions,
                     std::span<double> bias, std::span<double> contributions,
                     ThreadPool* pool = nullptr) const;

 private:
  FlatEnsemble() = default;

  /// Attempt the lossless quantized compile (see file header); sets
  /// quantized_ok_ or records the refusal.
  void build_quantized();

  // Kernel bodies behind predict_rows' dispatch.
  void predict_rows_scalar(const Matrix& x, std::size_t begin,
                           std::size_t end, double* out) const;
  void predict_rows_avx2(const Matrix& x, std::size_t begin, std::size_t end,
                         double* out) const;
  void predict_rows_quantized(const Matrix& x, std::size_t begin,
                              std::size_t end, double* out) const;

  /// Build the per-block predicate-mask table: for every feature f and
  /// threshold rank k, masks[qmask_off_[f] + k] has bit r set iff row r of
  /// the block routes right at any split on (f, k) — i.e. #thresholds of
  /// f strictly below x(r, f) exceeds k (NaN above all ranks). The final
  /// pad entry masks[mask_count()] is zeroed (virtual padding splits
  /// point there).
  void build_block_masks(const Matrix& x, std::size_t block,
                         std::size_t count, std::uint16_t* masks) const;

  /// Total predicate-mask entries per block (sum of per-feature distinct
  /// threshold counts); buffers hold one extra pad entry.
  std::size_t mask_count() const {
    return qmask_off_.empty() ? 0 : static_cast<std::size_t>(qmask_off_.back());
  }

  double base_score_ = 0.0;
  double scale_ = 1.0;
  /// SoA node storage; all trees share the arrays, `roots_[t]` is the
  /// absolute index of tree t's root.
  std::vector<std::int32_t> feature_;
  std::vector<double> value_;
  std::vector<std::int32_t> left_;
  std::vector<std::int32_t> roots_;
  /// Saabas attribution per node: attr_[j] = scale * (E[j] - E[parent(j)])
  /// for child slots (E = leaf-count-weighted subtree mean, built once by
  /// Builder::build()); root slots hold 0 (the explain walk never credits
  /// a root — finalize_attribution absorbs base + root expectations into
  /// the bias).
  std::vector<double> attr_;
  /// Per-tree depth: the lockstep kernel steps exactly this many times.
  std::vector<std::int32_t> depth_;
  int max_depth_ = 0;

  // Quantized form (present iff quantized_ok_). Trees are padded to
  // complete binary trees: tree t's internal slots are qmask_idx_
  // [qsplit_off_[t] .. +2^d-1) in level order (each a global predicate-
  // mask index), its leaves are qleaf_[qleaf_off_[t] .. +2^d); in-tree
  // child of slot s is 2s+1 / 2s+2. Virtual padding splits point at the
  // zeroed pad mask (index mask_count()).
  bool quantized_ok_ = false;
  std::string quant_reject_;
  std::int32_t quant_features_ = 0;  ///< 1 + max feature id seen in splits.
  std::vector<std::int32_t> qmask_idx_;
  std::vector<double> qleaf_;
  std::vector<std::int32_t> qsplit_off_;
  std::vector<std::int32_t> qleaf_off_;
  /// Per-feature ascending distinct thresholds, padded with at least one
  /// +inf terminator (to a power-of-two size) so the rank scan needs no
  /// bounds check: qtable_[qtable_off_[f] .. qtable_off_[f + 1]).
  std::vector<double> qtable_;
  std::vector<std::int32_t> qtable_off_;
  /// Per-feature predicate-mask regions: feature f owns mask ranks
  /// [qmask_off_[f], qmask_off_[f + 1]) — one per *distinct* threshold
  /// (the unpadded table size).
  std::vector<std::int32_t> qmask_off_;
  /// Per-feature uniform acceleration grid for the rank search: a value v
  /// of feature f maps to cell c = clamp((v - qgrid_lo_[f]) *
  /// qgrid_scale_[f]), and qgridrank_[qgrid_off_[f] + c] is a rank at or
  /// below rank(v) where the linear scan starts. Cells are assigned by
  /// running the *same* cell mapping over the thresholds at build time, so
  /// the start rank is a valid lower bound under any rounding.
  std::vector<std::int32_t> qgrid_off_;
  std::vector<double> qgrid_lo_;
  std::vector<double> qgrid_scale_;
  std::vector<std::int16_t> qgridrank_;
};

}  // namespace xfl::ml
