// Flattened batch-inference engine for fitted tree ensembles — the serving
// path the paper motivates ("our predictions can be used for distributed
// workflow scheduling and optimization", §5): a workflow scheduler queries
// the predictor per candidate transfer at high frequency, so inference is a
// hot path alongside training.
//
// A fitted GradientBoostedTrees stores each tree as pointer-linked AoS
// nodes (32 bytes each, children anywhere in the vector). Compilation
// re-lays the whole ensemble into contiguous structure-of-arrays storage:
//
//   * feature[i]  — split feature, or -1 for a leaf          (int32)
//   * value[i]    — split threshold (internal) or leaf value (double)
//   * left[i]     — absolute index of the left child; the right child is
//                   always left[i] + 1 (siblings are laid out adjacently
//                   by a per-tree breadth-first renumbering)     (int32)
//
// which cuts a node to 16 bytes across three cache-streamable arrays and
// removes one level of indirection per step (no per-tree vector, no
// `right` load). Batch prediction walks all trees for a small block of
// rows at a time: the per-row chase of a single tree is a serial chain of
// dependent loads, but the walks of different rows are independent, so
// stepping a block of rows in lockstep converts the traversal from
// latency-bound to throughput-bound.
//
// Equivalence contract: predictions are bit-identical to the per-row
// node-walk path (`GradientBoostedTrees::predict_nodewalk`) at any thread
// count. Each step compares with the same `!(x <= threshold)` predicate
// (NaN features route right, exactly like the node walk's `x <= t ?
// left : right`), and each row accumulates `base + scale * leaf` in tree
// order, so the floating-point operation sequence per row is unchanged.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ml/matrix.hpp"

namespace xfl {
class ThreadPool;
}

namespace xfl::ml {

/// Immutable compiled form of a fitted ensemble. Thread-safe to query
/// concurrently; rebuild (via Builder) whenever the source model refits.
class FlatEnsemble {
 public:
  /// Assembles a FlatEnsemble from per-tree AoS node lists. Nodes are
  /// added in their original in-tree indexing; build() performs the
  /// breadth-first renumbering that makes siblings adjacent.
  class Builder {
   public:
    /// `scale` multiplies every leaf value (the ensemble's learning rate).
    Builder(double base_score, double scale);

    /// Start a new tree; node 0 of the following add_node calls is its root.
    void begin_tree();

    /// Append one node of the current tree. Internal nodes: feature >= 0,
    /// `threshold_or_value` is the split threshold, and left/right are
    /// in-tree indices of the children. Leaves: feature < 0 and
    /// `threshold_or_value` is the leaf value (links ignored).
    void add_node(std::int32_t feature, double threshold_or_value,
                  std::int32_t left, std::int32_t right);

    /// Flatten everything added so far. The builder is consumed.
    FlatEnsemble build() &&;

   private:
    struct RawNode {
      std::int32_t feature;
      double threshold_or_value;
      std::int32_t left;
      std::int32_t right;
    };
    double base_score_;
    double scale_;
    std::vector<std::vector<RawNode>> trees_;
  };

  double base_score() const { return base_score_; }
  double scale() const { return scale_; }
  std::size_t tree_count() const { return roots_.size(); }
  std::size_t node_count() const { return feature_.size(); }
  /// Deepest split path over all trees (0 = every tree is a lone leaf).
  int max_depth() const { return max_depth_; }

  /// Ensemble prediction for one row. Bit-identical to the node walk.
  double predict_one(std::span<const double> features) const;

  /// Predict rows [begin, end) of x into out[begin, end) — the row-blocked
  /// kernel. `out` is indexed by absolute row so concurrent callers over
  /// disjoint ranges never touch the same slot.
  void predict_rows(const Matrix& x, std::size_t begin, std::size_t end,
                    double* out) const;

  /// Predict every row of x into out (out.size() == x.rows()), blocking
  /// rows across `pool` when provided. Block boundaries never change
  /// results: each row owns its output slot and its own walk.
  void predict_batch(const Matrix& x, std::span<double> out,
                     ThreadPool* pool = nullptr) const;

 private:
  FlatEnsemble() = default;

  double base_score_ = 0.0;
  double scale_ = 1.0;
  /// SoA node storage; all trees share the arrays, `roots_[t]` is the
  /// absolute index of tree t's root.
  std::vector<std::int32_t> feature_;
  std::vector<double> value_;
  std::vector<std::int32_t> left_;
  std::vector<std::int32_t> roots_;
  /// Per-tree depth: the lockstep kernel steps exactly this many times.
  std::vector<std::int32_t> depth_;
  int max_depth_ = 0;
};

}  // namespace xfl::ml
