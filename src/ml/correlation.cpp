#include "ml/correlation.hpp"

#include <algorithm>
#include <numeric>

#include "common/contracts.hpp"
#include "common/stats.hpp"

namespace xfl::ml {

double pearson_correlation(std::span<const double> x,
                           std::span<const double> y) {
  return xfl::pearson(x, y);
}

std::vector<double> average_ranks(std::span<const double> values) {
  const std::size_t n = values.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&values](std::size_t a, std::size_t b) {
    return values[a] < values[b];
  });
  std::vector<double> ranks(n, 0.0);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && values[order[j + 1]] == values[order[i]]) ++j;
    // Tie group [i, j]: everyone gets the mean of ranks i+1 .. j+1.
    const double rank = 0.5 * static_cast<double>(i + j) + 1.0;
    for (std::size_t k = i; k <= j; ++k) ranks[order[k]] = rank;
    i = j + 1;
  }
  return ranks;
}

double spearman_correlation(std::span<const double> x,
                            std::span<const double> y) {
  XFL_EXPECTS(x.size() == y.size());
  if (x.size() < 2) return 0.0;
  const auto rx = average_ranks(x);
  const auto ry = average_ranks(y);
  return xfl::pearson(rx, ry);
}

}  // namespace xfl::ml
