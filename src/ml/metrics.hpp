// Regression error metrics. The paper's headline metric is MdAPE — the
// median absolute percentage error — plus percentile errors (95th in the
// LMT study) and per-edge error distributions (Fig. 10 violins).
#pragma once

#include <span>
#include <vector>

#include "common/stats.hpp"

namespace xfl::ml {

/// Absolute percentage errors |y - yhat| / |y| * 100 per sample. Samples
/// with y == 0 are skipped (rate is strictly positive in practice).
/// Requires equal sizes.
std::vector<double> absolute_percentage_errors(std::span<const double> y,
                                               std::span<const double> yhat);

/// Median absolute percentage error, in percent. Requires >= 1 usable sample.
double mdape(std::span<const double> y, std::span<const double> yhat);

/// Mean absolute percentage error, in percent.
double mape(std::span<const double> y, std::span<const double> yhat);

/// p-th percentile of the absolute percentage error, in percent.
double percentile_ape(std::span<const double> y, std::span<const double> yhat,
                      double p);

/// Root mean squared error.
double rmse(std::span<const double> y, std::span<const double> yhat);

/// Distribution summary of the absolute percentage errors (Fig. 10 rows).
xfl::DistributionSummary ape_summary(std::span<const double> y,
                                     std::span<const double> yhat);

}  // namespace xfl::ml
