// Regression error metrics. The paper's headline metric is MdAPE — the
// median absolute percentage error — plus percentile errors (95th in the
// LMT study) and per-edge error distributions (Fig. 10 violins).
#pragma once

#include <span>
#include <vector>

#include "common/stats.hpp"

namespace xfl::ml {

/// Absolute percentage errors |y - yhat| / |y| * 100 per sample. Samples
/// where the error is undefined are skipped, never emitted as NaN/inf:
///   * y == 0 (percentage of nothing; rate is strictly positive in
///     practice), and
///   * non-finite y or yhat (a NaN in the sample would otherwise poison
///     every downstream sort/percentile — comparing NaN breaks the strict
///     weak ordering std::sort requires).
/// Empty input yields an empty vector. Requires equal sizes.
std::vector<double> absolute_percentage_errors(std::span<const double> y,
                                               std::span<const double> yhat);

/// Median absolute percentage error, in percent. A single usable sample is
/// its own median. Requires >= 1 usable sample (ContractViolation
/// otherwise — e.g. empty input, or every target zero / non-finite).
double mdape(std::span<const double> y, std::span<const double> yhat);

/// Mean absolute percentage error, in percent. Same usable-sample
/// requirement as mdape().
double mape(std::span<const double> y, std::span<const double> yhat);

/// p-th percentile of the absolute percentage error, in percent. Same
/// usable-sample requirement as mdape().
double percentile_ape(std::span<const double> y, std::span<const double> yhat,
                      double p);

/// Root mean squared error. No skipping: every sample participates (a
/// non-finite sample yields a non-finite RMSE). Requires non-empty input.
double rmse(std::span<const double> y, std::span<const double> yhat);

/// Distribution summary of the absolute percentage errors (Fig. 10 rows).
/// Same usable-sample requirement as mdape().
xfl::DistributionSummary ape_summary(std::span<const double> y,
                                     std::span<const double> yhat);

}  // namespace xfl::ml
