#include "ml/linreg.hpp"

#include "common/contracts.hpp"
#include "common/stats.hpp"

namespace xfl::ml {

void LinearRegression::fit(const Matrix& x, std::span<const double> y) {
  XFL_EXPECTS(x.rows() == y.size());
  XFL_EXPECTS(x.rows() >= x.cols() + 1);
  // Augment with an intercept column.
  Matrix design(x.rows(), x.cols() + 1);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    design.at(r, 0) = 1.0;
    for (std::size_t c = 0; c < x.cols(); ++c) design.at(r, c + 1) = x.at(r, c);
  }
  const auto solution = solve_least_squares(design, y);
  intercept_ = solution[0];
  coef_.assign(solution.begin() + 1, solution.end());
  fitted_ = true;
}

double LinearRegression::predict(std::span<const double> features) const {
  XFL_EXPECTS(fitted());
  XFL_EXPECTS(features.size() == coef_.size());
  double value = intercept_;
  for (std::size_t c = 0; c < coef_.size(); ++c)
    value += coef_[c] * features[c];
  return value;
}

std::vector<double> LinearRegression::predict(const Matrix& x) const {
  std::vector<double> out(x.rows());
  for (std::size_t r = 0; r < x.rows(); ++r) out[r] = predict(x.row(r));
  return out;
}

double LinearRegression::r_squared(const Matrix& x,
                                   std::span<const double> y) const {
  XFL_EXPECTS(x.rows() == y.size() && x.rows() >= 1);
  const double y_mean = mean(y);
  double ss_res = 0.0, ss_tot = 0.0;
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const double err = y[r] - predict(x.row(r));
    ss_res += err * err;
    ss_tot += (y[r] - y_mean) * (y[r] - y_mean);
  }
  if (ss_tot == 0.0) return ss_res == 0.0 ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

}  // namespace xfl::ml
