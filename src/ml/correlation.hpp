// Correlation measures for the exploratory analysis of §5.2 / Table 5:
// Pearson's linear correlation coefficient next to the (nonlinear) maximal
// information coefficient exposes relationships a linear model cannot use.
#pragma once

#include <span>
#include <vector>

namespace xfl::ml {

/// Pearson product-moment correlation (re-exported from common/stats for a
/// uniform ml:: interface). Returns 0 when either side has zero variance —
/// matching the paper's "-" entries for uniform-valued features.
double pearson_correlation(std::span<const double> x, std::span<const double> y);

/// Spearman rank correlation (Pearson on average ranks; ties averaged).
/// Requires equal sizes.
double spearman_correlation(std::span<const double> x,
                            std::span<const double> y);

/// Average ranks of a sample (1-based, ties get the mean rank).
std::vector<double> average_ranks(std::span<const double> values);

}  // namespace xfl::ml
