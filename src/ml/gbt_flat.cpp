#include "ml/gbt_flat.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>

#include "common/contracts.hpp"
#include "common/thread_pool.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

// The vectorized kernels are x86-only and gated: gcc/clang `target("avx2")`
// function attributes let one TU carry AVX2 bodies without -mavx2 on the
// whole build, and runtime dispatch (CPUID, probed once) keeps them off
// the execution path on older CPUs. -DXFL_DISABLE_SIMD compiles them out
// entirely (forced-scalar builds; the quantized kernel keeps its portable
// scalar form).
#if defined(__x86_64__) && defined(__GNUC__) && !defined(XFL_DISABLE_SIMD)
#define XFL_X86_KERNELS 1
#include <immintrin.h>
#else
#define XFL_X86_KERNELS 0
#endif

namespace xfl::ml {

const char* kernel_name(Kernel kernel) {
  switch (kernel) {
    case Kernel::kScalar:
      return "scalar";
    case Kernel::kAvx2:
      return "avx2";
    case Kernel::kQuantized:
      return "quantized";
    case Kernel::kAuto:
      break;
  }
  return "auto";
}

std::optional<Kernel> parse_kernel(std::string_view text) {
  if (text == "auto") return Kernel::kAuto;
  if (text == "scalar") return Kernel::kScalar;
  if (text == "avx2") return Kernel::kAvx2;
  if (text == "quantized") return Kernel::kQuantized;
  return std::nullopt;
}

bool cpu_supports_avx2() noexcept {
#if XFL_X86_KERNELS
  static const bool supported = __builtin_cpu_supports("avx2");
  return supported;
#else
  return false;
#endif
}

Kernel resolve_kernel(Kernel requested) noexcept {
  // Auto picks the fastest exact kernel this host runs: the quantized
  // walk when its AVX2 form is available, the scalar oracle otherwise
  // (the portable scalar-quantized walk stays opt-in — explicit requests
  // pass through).
  if (requested == Kernel::kAuto)
    return cpu_supports_avx2() ? Kernel::kQuantized : Kernel::kScalar;
  if (requested == Kernel::kAvx2 && !cpu_supports_avx2())
    return Kernel::kScalar;
  return requested;
}

namespace {

Kernel kernel_from_env() {
  const char* env = std::getenv("XFL_KERNEL");
  if (env == nullptr || *env == '\0') return Kernel::kAuto;
  if (const auto parsed = parse_kernel(env)) return *parsed;
  XFL_LOG(warn) << "unknown XFL_KERNEL value; using auto"
                << obs::kv("value", env);
  return Kernel::kAuto;
}

std::atomic<Kernel>& active_kernel_slot() {
  static std::atomic<Kernel> slot{kernel_from_env()};
  return slot;
}

}  // namespace

Kernel active_kernel() noexcept {
  return active_kernel_slot().load(std::memory_order_relaxed);
}

void set_active_kernel(Kernel kernel) noexcept {
  active_kernel_slot().store(kernel, std::memory_order_relaxed);
}

namespace {
/// Serving observability. Instrumentation sits on the batch entry point
/// and the per-row entry point — never inside the 16-row lockstep kernel —
/// so a batch pays one clock pair and a handful of relaxed adds total.
constexpr double kBatchRowBounds[] = {1,    16,   64,    256,
                                      1024, 4096, 16384, 65536};

struct ServeMetrics {
  obs::Counter& rows = obs::counter("gbt.predict.rows");
  obs::Counter& batches = obs::counter("gbt.predict.batches");
  obs::Histogram& batch_rows =
      obs::histogram("gbt.predict.batch_rows", kBatchRowBounds);
  obs::Histogram& batch_us = obs::histogram("gbt.predict.batch_us");
  /// Which kernel served the last batch (Kernel enum value) — the serve
  /// stats `kernel` field and startup log read the same dispatch state.
  obs::Gauge& kernel_active = obs::gauge("gbt.kernel.active");
};

ServeMetrics& serve_metrics() {
  static ServeMetrics metrics;
  return metrics;
}

/// Explain-path observability, on the batch entry point only — the
/// per-row walk stays instrumentation-free so the predict path pays
/// nothing when explanations are never requested.
struct ExplainMetrics {
  obs::Counter& rows = obs::counter("gbt.explain.rows");
  obs::Counter& batches = obs::counter("gbt.explain.batches");
  obs::Histogram& batch_us = obs::histogram("gbt.explain.batch_us");
};

ExplainMetrics& explain_metrics() {
  static ExplainMetrics metrics;
  return metrics;
}

/// Per-kernel row counters, so A/B runs (--kernel / XFL_KERNEL) show up
/// in the registry without parsing logs.
obs::Counter& kernel_rows_counter(Kernel kernel) {
  static obs::Counter& scalar = obs::counter("gbt.predict.kernel.scalar.rows");
  static obs::Counter& avx2 = obs::counter("gbt.predict.kernel.avx2.rows");
  static obs::Counter& quantized =
      obs::counter("gbt.predict.kernel.quantized.rows");
  switch (kernel) {
    case Kernel::kAvx2:
      return avx2;
    case Kernel::kQuantized:
      return quantized;
    default:
      return scalar;
  }
}
}  // namespace

FlatEnsemble::Builder::Builder(double base_score, double scale)
    : base_score_(base_score), scale_(scale) {}

void FlatEnsemble::Builder::begin_tree() { trees_.emplace_back(); }

void FlatEnsemble::Builder::add_node(std::int32_t feature,
                                     double threshold_or_value,
                                     std::int32_t left, std::int32_t right) {
  XFL_EXPECTS(!trees_.empty());
  trees_.back().push_back({feature, threshold_or_value, left, right});
}

FlatEnsemble FlatEnsemble::Builder::build() && {
  FlatEnsemble flat;
  flat.base_score_ = base_score_;
  flat.scale_ = scale_;
  std::size_t total = 0;
  for (const auto& tree : trees_) total += tree.size();
  flat.feature_.reserve(total);
  flat.value_.reserve(total);
  flat.left_.reserve(total);
  flat.roots_.reserve(trees_.size());
  flat.depth_.reserve(trees_.size());

  // Per-tree breadth-first renumbering. The k-th visited node takes slot
  // base + k, and an internal node's children are enqueued together, so
  // siblings always land in consecutive slots: right child == left + 1.
  std::vector<std::int32_t> order;     // Old in-tree index per new slot.
  std::vector<std::int32_t> depth_of;  // Depth per new slot.
  for (const auto& tree : trees_) {
    XFL_EXPECTS(!tree.empty());
    const auto base = static_cast<std::int32_t>(flat.feature_.size());
    flat.roots_.push_back(base);
    order.assign(1, 0);
    depth_of.assign(1, 0);
    std::int32_t tree_depth = 0;
    for (std::size_t k = 0; k < order.size(); ++k) {
      XFL_EXPECTS(static_cast<std::size_t>(order[k]) < tree.size());
      const RawNode& node = tree[static_cast<std::size_t>(order[k])];
      if (node.feature >= 0) {
        const auto child_slot = static_cast<std::int32_t>(order.size());
        order.push_back(node.left);
        order.push_back(node.right);
        depth_of.push_back(depth_of[k] + 1);
        depth_of.push_back(depth_of[k] + 1);
        tree_depth = std::max(tree_depth, depth_of[k] + 1);
        flat.feature_.push_back(node.feature);
        flat.value_.push_back(node.threshold_or_value);
        flat.left_.push_back(base + child_slot);
      } else {
        flat.feature_.push_back(-1);
        flat.value_.push_back(node.threshold_or_value);
        // Leaves self-link; the kernel never follows this, but a valid
        // index keeps every array entry in range.
        flat.left_.push_back(base + static_cast<std::int32_t>(k));
      }
      // A tree visits each node at most once; more slots than source nodes
      // means a child is shared between parents (a DAG, which the loader
      // rejects and the trainer never builds).
      XFL_EXPECTS(order.size() <= tree.size());
    }
    flat.depth_.push_back(tree_depth);
    flat.max_depth_ = std::max(flat.max_depth_, static_cast<int>(tree_depth));
  }

  // Saabas attribution table. The BFS renumbering places every child slot
  // after its parent within a tree, so one reverse pass per tree computes
  // the leaf-count-weighted subtree means bottom-up; a forward pass then
  // stores each child's scaled expectation shift. The node-walk reference
  // (GradientBoostedTrees::explain_nodewalk) evaluates the identical
  // expressions — (wl * el + wr * er) / (wl + wr), scale * (child -
  // parent) — so the two attribution paths agree bitwise.
  // set_attribution(false) skips the table entirely (predict never reads
  // it); explain_batch asserts its presence.
  const std::size_t total_nodes = flat.feature_.size();
  if (!attribution_) {
    flat.build_quantized();
    return flat;
  }
  flat.attr_.assign(total_nodes, 0.0);
  std::vector<double> expect(total_nodes);
  std::vector<double> weight(total_nodes);
  for (std::size_t t = 0; t < flat.roots_.size(); ++t) {
    const auto base = static_cast<std::size_t>(flat.roots_[t]);
    const std::size_t tree_end =
        t + 1 < flat.roots_.size()
            ? static_cast<std::size_t>(flat.roots_[t + 1])
            : total_nodes;
    for (std::size_t i = tree_end; i-- > base;) {
      if (flat.feature_[i] < 0) {
        expect[i] = flat.value_[i];
        weight[i] = 1.0;
      } else {
        const auto l = static_cast<std::size_t>(flat.left_[i]);
        const double wl = weight[l];
        const double wr = weight[l + 1];
        weight[i] = wl + wr;
        expect[i] = (wl * expect[l] + wr * expect[l + 1]) / weight[i];
      }
    }
    for (std::size_t i = base; i < tree_end; ++i) {
      if (flat.feature_[i] < 0) continue;
      const auto l = static_cast<std::size_t>(flat.left_[i]);
      flat.attr_[l] = scale_ * (expect[l] - expect[i]);
      flat.attr_[l + 1] = scale_ * (expect[l + 1] - expect[i]);
    }
  }

  flat.build_quantized();
  return flat;
}

double finalize_attribution(double prediction, double* contributions,
                            std::size_t n) {
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) sum += contributions[i];
  double bias = prediction - sum;
  // fl(prediction - sum) is within a few ulps of the bias that makes the
  // canonical reconstruction land exactly; step it there. The bound is
  // generous — in practice 0 or 1 steps.
  for (int step = 0; step < 64; ++step) {
    const double rebuilt = sum + bias;
    if (rebuilt == prediction) return bias;
    bias = std::nextafter(bias, rebuilt < prediction
                                    ? std::numeric_limits<double>::infinity()
                                    : -std::numeric_limits<double>::infinity());
  }
  // Catastrophic cancellation (|sum| >> |prediction|) can make the
  // prediction unreachable on the {fl(sum + b)} grid: ulp(bias) exceeds
  // ulp(prediction), so stepping jumps over it. Fold everything into the
  // bias — summing n zeros then adding the prediction reconstructs it
  // exactly, keeping the contract unconditional.
  for (std::size_t i = 0; i < n; ++i) contributions[i] = 0.0;
  return prediction;
}

namespace {
/// Quantized-form limits: feature ids and per-feature distinct-threshold
/// counts stay in a sane range, and the complete-tree padding must not
/// explode on degenerate deep trees.
constexpr std::int32_t kMaxQuantFeature = 32766;
constexpr std::int32_t kMaxTableEntries = 32766;
constexpr std::int32_t kMaxQuantTreeDepth = 19;
constexpr std::int64_t kMaxQuantPaddedSlots = std::int64_t{1} << 20;
/// Deepest tree the gather-free AVX2 quantized walk handles (its node
/// masks for one tree must fit a 16-entry shuffle table: 2^d - 1 <= 15).
constexpr std::int32_t kMaxVectorQuantDepth = 4;

/// Cell of value v in a feature's rank-search acceleration grid. Only
/// monotonicity in v matters for correctness (clamping keeps it so under
/// any lo/scale, including the 0 * inf = NaN corner), because cells are
/// assigned to thresholds with this same mapping at build time.
inline std::int32_t quant_grid_cell(double v, double lo, double scale,
                                    std::int32_t cells) noexcept {
  const double u = (v - lo) * scale;
  if (!(u > 0.0)) return 0;
  if (u >= static_cast<double>(cells)) return cells - 1;
  return static_cast<std::int32_t>(u);
}
}  // namespace

void FlatEnsemble::build_quantized() {
  quantized_ok_ = false;
  quant_reject_.clear();
  const auto reject = [&](std::string reason) {
    quant_reject_ = std::move(reason);
    qmask_idx_.clear();
    qleaf_.clear();
    qsplit_off_.clear();
    qleaf_off_.clear();
    qtable_.clear();
    qtable_off_.clear();
    qmask_off_.clear();
    qgrid_off_.clear();
    qgrid_lo_.clear();
    qgrid_scale_.clear();
    qgridrank_.clear();
    obs::counter("gbt.flat.quantize_fallback").add(1);
    XFL_LOG(warn) << "quantized kernel unavailable for this ensemble; "
                     "dispatch falls back to the exact kernel"
                  << obs::kv("reason", quant_reject_)
                  << obs::kv("trees", roots_.size())
                  << obs::kv("nodes", feature_.size());
  };

  // Distinct split thresholds per feature; ranks are table positions.
  std::int32_t max_feature = -1;
  for (std::size_t i = 0; i < feature_.size(); ++i) {
    if (feature_[i] < 0) continue;
    if (std::isnan(value_[i])) return reject("nan split threshold");
    max_feature = std::max(max_feature, feature_[i]);
  }
  if (max_feature > kMaxQuantFeature)
    return reject("feature id exceeds int16 code range");
  quant_features_ = max_feature + 1;

  std::vector<std::vector<double>> tables(
      static_cast<std::size_t>(quant_features_));
  for (std::size_t i = 0; i < feature_.size(); ++i)
    if (feature_[i] >= 0)
      tables[static_cast<std::size_t>(feature_[i])].push_back(value_[i]);
  for (auto& table : tables) {
    std::sort(table.begin(), table.end());
    table.erase(std::unique(table.begin(), table.end()), table.end());
    if (table.size() > static_cast<std::size_t>(kMaxTableEntries))
      return reject("threshold table exceeds int16 rank space");
  }

  // Padded complete-tree size check before allocating anything.
  std::int64_t padded = 0;
  for (const std::int32_t d : depth_) {
    if (d > kMaxQuantTreeDepth) return reject("tree too deep to pad");
    padded += (std::int64_t{1} << (d + 1)) - 1;
  }
  if (padded > kMaxQuantPaddedSlots)
    return reject("padded form exceeds size cap");

  // Threshold tables (padded to a power-of-two size with at least one
  // +inf terminator, so the rank scan needs no bounds check) and
  // per-feature predicate-mask regions: one mask rank per distinct
  // threshold.
  qtable_off_.assign(1, 0);
  qmask_off_.assign(1, 0);
  for (const auto& table : tables) {
    qmask_off_.push_back(qmask_off_.back() +
                         static_cast<std::int32_t>(table.size()));
    const std::size_t pow2 = std::bit_ceil(table.size() + 1);
    qtable_.insert(qtable_.end(), table.begin(), table.end());
    qtable_.insert(qtable_.end(), pow2 - table.size(),
                   std::numeric_limits<double>::infinity());
    qtable_off_.push_back(static_cast<std::int32_t>(qtable_.size()));
  }
  const std::int32_t pad_mask = qmask_off_.back();

  // Rank-search acceleration grid: ~2 uniform cells per threshold (capped
  // for huge tables), each storing the rank of its first threshold. The
  // block binarizer starts its linear scan there, so a lookup costs one
  // multiply plus a step or two instead of a full binary search. Cells
  // are assigned by pushing the thresholds through quant_grid_cell — the
  // identical mapping the lookup uses — so monotonicity alone guarantees
  // the start rank never overshoots, whatever floating-point rounding
  // does.
  qgrid_off_.assign(1, 0);
  for (const auto& table : tables) {
    if (table.empty()) {
      qgrid_lo_.push_back(0.0);
      qgrid_scale_.push_back(0.0);
      qgrid_off_.push_back(qgrid_off_.back());
      continue;
    }
    const auto cells = static_cast<std::int32_t>(
        std::min<std::size_t>(2048, std::bit_ceil(4 * table.size())));
    const double lo = table.front();
    const double hi = table.back();
    const double scale =
        hi > lo ? static_cast<double>(cells) / (hi - lo) : 0.0;
    qgrid_lo_.push_back(lo);
    qgrid_scale_.push_back(scale);
    std::size_t rank = 0;
    for (std::int32_t c = 0; c < cells; ++c) {
      while (rank < table.size() &&
             quant_grid_cell(table[rank], lo, scale, cells) < c)
        ++rank;
      qgridrank_.push_back(static_cast<std::int16_t>(rank));
    }
    qgrid_off_.push_back(static_cast<std::int32_t>(qgridrank_.size()));
  }

  qsplit_off_.reserve(roots_.size());
  qleaf_off_.reserve(roots_.size());
  for (std::size_t t = 0; t < roots_.size(); ++t) {
    const std::int32_t d = depth_[t];
    const std::int32_t internal = (1 << d) - 1;
    const std::int32_t soff = static_cast<std::int32_t>(qmask_idx_.size());
    const std::int32_t loff = static_cast<std::int32_t>(qleaf_.size());
    qsplit_off_.push_back(soff);
    qleaf_off_.push_back(loff);
    qmask_idx_.resize(qmask_idx_.size() + static_cast<std::size_t>(internal),
                      pad_mask);
    qleaf_.resize(qleaf_.size() + (std::size_t{1} << d), 0.0);

    // Copy the tree into its padded slots. A leaf shallower than d turns
    // into a virtual split (feature 0, rank 0) whose two children are the
    // same leaf, so routing through the padding cannot change the reached
    // value; nodes at depth d are always leaves (d is the deepest split
    // path).
    const auto fill = [&](auto&& self, std::int32_t orig,
                          std::int32_t slot) -> void {
      if (slot >= internal) {
        XFL_EXPECTS(feature_[static_cast<std::size_t>(orig)] < 0);
        qleaf_[static_cast<std::size_t>(loff + slot - internal)] =
            value_[static_cast<std::size_t>(orig)];
        return;
      }
      const std::int32_t f = feature_[static_cast<std::size_t>(orig)];
      if (f >= 0) {
        const auto& table = tables[static_cast<std::size_t>(f)];
        const auto rank = static_cast<std::int32_t>(
            std::lower_bound(table.begin(), table.end(),
                             value_[static_cast<std::size_t>(orig)]) -
            table.begin());
        qmask_idx_[static_cast<std::size_t>(soff + slot)] =
            qmask_off_[static_cast<std::size_t>(f)] + rank;
        self(self, left_[static_cast<std::size_t>(orig)], 2 * slot + 1);
        self(self, left_[static_cast<std::size_t>(orig)] + 1, 2 * slot + 2);
      } else {
        // Virtual padding split: both children are the same leaf, so the
        // predicate is irrelevant — point it at the zeroed pad mask.
        self(self, orig, 2 * slot + 1);
        self(self, orig, 2 * slot + 2);
      }
    };
    fill(fill, roots_[t], 0);
  }
  quantized_ok_ = true;
}

Kernel FlatEnsemble::effective_kernel(Kernel requested) const {
  Kernel kernel =
      resolve_kernel(requested == Kernel::kAuto ? active_kernel() : requested);
  if (kernel == Kernel::kQuantized && !quantized_ok_)
    kernel = cpu_supports_avx2() ? Kernel::kAvx2 : Kernel::kScalar;
  return kernel;
}

double FlatEnsemble::predict_one(std::span<const double> features) const {
  serve_metrics().rows.add(1);
  const std::int32_t* feat = feature_.data();
  const double* val = value_.data();
  const std::int32_t* left = left_.data();
  double acc = base_score_;
  for (const std::int32_t root : roots_) {
    std::int32_t i = root;
    std::int32_t f = feat[i];
    while (f >= 0) {
      // Same predicate as the node walk: x <= threshold goes left, anything
      // else — including NaN — goes right.
      i = left[i] +
          static_cast<std::int32_t>(!(features[static_cast<std::size_t>(f)] <=
                                      val[i]));
      f = feat[i];
    }
    acc += scale_ * val[i];
  }
  return acc;
}

namespace {
/// Rows walked in lockstep per tree. Small enough that the per-block state
/// (row pointers, node cursors, accumulators) stays in registers / L1;
/// large enough that the dependent-load chains of the walks overlap.
constexpr std::size_t kRowBlock = 16;
/// Features whose per-block scratch (transposed values / rank codes) fits
/// on the stack; wider models fall back to a per-call heap buffer.
constexpr std::size_t kStackFeatures = 64;
}  // namespace

void FlatEnsemble::predict_rows_scalar(const Matrix& x, std::size_t begin,
                                       std::size_t end, double* out) const {
  const std::int32_t* feat = feature_.data();
  const double* val = value_.data();
  const std::int32_t* left = left_.data();
  const std::size_t tree_count = roots_.size();
  const double* rows[kRowBlock];
  double acc[kRowBlock];
  std::int32_t idx[kRowBlock];
  for (std::size_t block = begin; block < end; block += kRowBlock) {
    const std::size_t count = std::min(kRowBlock, end - block);
    for (std::size_t r = 0; r < count; ++r) {
      rows[r] = x.row(block + r).data();
      acc[r] = base_score_;
    }
    for (std::size_t t = 0; t < tree_count; ++t) {
      const std::int32_t root = roots_[t];
      const std::int32_t steps = depth_[t];
      for (std::size_t r = 0; r < count; ++r) idx[r] = root;
      // Every row takes exactly depth(t) lockstep steps; rows that reach a
      // leaf early hold their position. The iterations of the inner loop
      // are independent, so the walks of the whole block overlap instead
      // of serialising on one row's dependent loads.
      for (std::int32_t s = 0; s < steps; ++s) {
        for (std::size_t r = 0; r < count; ++r) {
          const std::int32_t i = idx[r];
          const std::int32_t f = feat[i];
          idx[r] = f >= 0
                       ? left[i] + static_cast<std::int32_t>(
                                       !(rows[r][static_cast<std::size_t>(f)] <=
                                         val[i]))
                       : i;
        }
      }
      // Per-row accumulation stays in tree order — the same operation
      // sequence as predict_one and the node walk, hence bit-identical.
      for (std::size_t r = 0; r < count; ++r) acc[r] += scale_ * val[idx[r]];
    }
    for (std::size_t r = 0; r < count; ++r) out[block + r] = acc[r];
  }
}

namespace {
/// Suffix-OR mf[k] |= mf[k + 1] over mf[0 .. ranks - 1], high to low.
/// SSE2 is x86-64 baseline, so the vector form needs no dispatch: eight
/// lanes per step — an in-vector suffix by element shifts, then an OR of
/// the carry from the already-processed higher blocks.
inline void suffix_or_u16(std::uint16_t* mf, std::int32_t ranks) {
#if XFL_X86_KERNELS
  const std::int32_t nb8 = ranks & ~std::int32_t{7};
  for (std::int32_t k = ranks - 2; k >= nb8; --k) mf[k] |= mf[k + 1];
  __m128i carry = _mm_set1_epi16(
      nb8 < ranks ? static_cast<short>(mf[nb8]) : short{0});
  for (std::int32_t b = nb8 - 8; b >= 0; b -= 8) {
    __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(mf + b));
    v = _mm_or_si128(v, _mm_srli_si128(v, 2));
    v = _mm_or_si128(v, _mm_srli_si128(v, 4));
    v = _mm_or_si128(v, _mm_srli_si128(v, 8));
    v = _mm_or_si128(v, carry);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(mf + b), v);
    // Lane 0 now holds the OR of everything from this block up.
    carry = _mm_shuffle_epi32(_mm_shufflelo_epi16(v, 0), 0);
  }
#else
  for (std::int32_t k = ranks - 2; k >= 0; --k) mf[k] |= mf[k + 1];
#endif
}
}  // namespace

void FlatEnsemble::build_block_masks(const Matrix& x, std::size_t block,
                                     std::size_t count,
                                     std::uint16_t* masks) const {
  const double* rows[kRowBlock];
  for (std::size_t r = 0; r < count; ++r) rows[r] = x.row(block + r).data();
  for (std::int32_t f = 0; f < quant_features_; ++f) {
    const std::int32_t moff = qmask_off_[static_cast<std::size_t>(f)];
    const std::int32_t ranks =
        qmask_off_[static_cast<std::size_t>(f) + 1] - moff;
    if (ranks == 0) continue;  // Feature never split — no masks to build.
    std::uint16_t* mf = masks + moff;
    for (std::int32_t k = 0; k < ranks; ++k) mf[k] = 0;
    const double* table = qtable_.data() + qtable_off_[f];
    const double lo = qgrid_lo_[static_cast<std::size_t>(f)];
    const double scale = qgrid_scale_[static_cast<std::size_t>(f)];
    const std::int32_t goff = qgrid_off_[static_cast<std::size_t>(f)];
    const std::int32_t cells =
        qgrid_off_[static_cast<std::size_t>(f) + 1] - goff;
    const std::int16_t* grid = qgridrank_.data() + goff;
    for (std::size_t r = 0; r < count; ++r) {
      const double v = rows[r][static_cast<std::size_t>(f)];
      // code = #thresholds < v in [0, ranks]. The grid cell's start rank
      // can only undershoot (build time assigned cells with the same
      // mapping), and the +inf table terminator stops the scan without a
      // bounds check. The grid is ~4 cells per threshold, so one
      // branchless step almost always lands and the residual loop stays
      // predictably untaken.
      std::size_t code;
      if (std::isnan(v)) {
        code = static_cast<std::size_t>(ranks);  // Right of every split.
      } else {
        code = static_cast<std::size_t>(
            grid[quant_grid_cell(v, lo, scale, cells)]);
        code += static_cast<std::size_t>(table[code] < v);
        while (table[code] < v) ++code;
      }
      // A row with code c routes right at ranks 0..c-1: bucket its bit at
      // rank c-1, then suffix-OR below spreads it down.
      if (code > 0) mf[code - 1] |= static_cast<std::uint16_t>(1u << r);
    }
    suffix_or_u16(mf, ranks);
  }
  masks[mask_count()] = 0;  // Virtual padding splits read this entry.
}

namespace {

/// Raw views of the SoA arrays for the kernel bodies (free functions:
/// the target("avx2") attribute stays off the class interface).
struct FlatView {
  const std::int32_t* feat;
  const double* val;
  const std::int32_t* left;
  const std::int32_t* roots;
  const std::int32_t* depth;
  std::size_t tree_count;
  double scale;
};

struct QuantView {
  const std::int32_t* qmask_idx;
  const double* qleaf;
  const std::int32_t* qsplit_off;
  const std::int32_t* qleaf_off;
  const std::int32_t* depth;
  std::size_t tree_count;
  double scale;
};

/// Portable walk of one padded tree for one block — the whole quantized
/// kernel on non-SIMD builds, and the deep-tree fallback inside the AVX2
/// form. `masks` is this block's predicate-mask table: bit r of
/// masks[qmask_idx[s]] says row r routes right at slot s.
inline void quant_tree_scalar(const QuantView& m, std::size_t t,
                              const std::uint16_t* masks, std::size_t count,
                              double* acc) {
  const std::int32_t d = m.depth[t];
  const double* ql = m.qleaf + m.qleaf_off[t];
  if (d == 0) {  // Lone-leaf tree: every row lands on the same value.
    for (std::size_t r = 0; r < count; ++r) acc[r] += m.scale * ql[0];
    return;
  }
  const std::int32_t* qi = m.qmask_idx + m.qsplit_off[t];
  const std::int32_t internal = (1 << d) - 1;
  std::int32_t slot[kRowBlock];
  for (std::size_t r = 0; r < count; ++r) slot[r] = 0;
  for (std::int32_t level = 0; level < d; ++level) {
    for (std::size_t r = 0; r < count; ++r) {
      const std::int32_t s = slot[r];
      slot[r] = 2 * s + 1 +
                static_cast<std::int32_t>((masks[qi[s]] >> r) & 1u);
    }
  }
  for (std::size_t r = 0; r < count; ++r)
    acc[r] += m.scale * ql[slot[r] - internal];
}

}  // namespace

#if XFL_X86_KERNELS

namespace {

/// One 16-row block through every tree, AVX2 double form. `xs` is the
/// block-transposed feature scratch (xs[f * 16 + r]); `acc` holds all 16
/// lane accumulators (callers seed base_score and store only live lanes).
// GCC's unmasked-gather intrinsics source an undefined vector internally
// (`__Y = __Y`), which trips -Wmaybe-uninitialized; there is no actual
// read of uninitialized state.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
__attribute__((target("avx2"))) void flat_block_avx2(const FlatView& m,
                                                     const double* xs,
                                                     double* acc) {
  const __m128i one = _mm_set1_epi32(1);
  const __m128i neg_one = _mm_set1_epi32(-1);
  // Narrows a 4x64-bit compare mask to its 4x32-bit low halves.
  const __m256i narrow = _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0);
  const __m128i lanes[4] = {
      _mm_setr_epi32(0, 1, 2, 3), _mm_setr_epi32(4, 5, 6, 7),
      _mm_setr_epi32(8, 9, 10, 11), _mm_setr_epi32(12, 13, 14, 15)};
  double leaf[kRowBlock];
  for (std::size_t t = 0; t < m.tree_count; ++t) {
    const std::int32_t steps = m.depth[t];
    __m128i idx[4];
    for (int q = 0; q < 4; ++q) idx[q] = _mm_set1_epi32(m.roots[t]);
    for (std::int32_t s = 0; s < steps; ++s) {
      for (int q = 0; q < 4; ++q) {
        const __m128i i = idx[q];
        const __m128i f = _mm_i32gather_epi32(m.feat, i, 4);
        // Internal lanes step; leaf lanes hold. The feature-value gather
        // is masked on internal lanes only, so a leaf's f = -1 never
        // forms an address (masked-off gather elements do not fault).
        const __m128i internal = _mm_cmpgt_epi32(f, neg_one);
        const __m256d threshold = _mm256_i32gather_pd(m.val, i, 8);
        const __m128i fidx =
            _mm_add_epi32(_mm_slli_epi32(f, 4), lanes[q]);
        const __m256d mask =
            _mm256_castsi256_pd(_mm256_cvtepi32_epi64(internal));
        const __m256d value = _mm256_mask_i32gather_pd(
            _mm256_setzero_pd(), xs, fidx, mask, 8);
        // Same predicate as the scalar walk: x <= t left, NaN right
        // (ordered compare is false on NaN).
        const __m256d le = _mm256_cmp_pd(value, threshold, _CMP_LE_OQ);
        const __m128i lf = _mm_i32gather_epi32(m.left, i, 4);
        const __m128i le32 = _mm256_castsi256_si128(
            _mm256_permutevar8x32_epi32(_mm256_castpd_si256(le), narrow));
        // le32 is -1 for left: left + 1 + (-1) = left; 0 for right.
        const __m128i stepped =
            _mm_add_epi32(lf, _mm_add_epi32(one, le32));
        idx[q] = _mm_blendv_epi8(i, stepped, internal);
      }
    }
    for (int q = 0; q < 4; ++q)
      _mm256_storeu_pd(leaf + 4 * q, _mm256_i32gather_pd(m.val, idx[q], 8));
    // Scalar accumulation in tree order: the identical mul-then-add
    // sequence as the scalar kernel, hence bit-identical outputs.
    for (std::size_t r = 0; r < kRowBlock; ++r)
      acc[r] += m.scale * leaf[r];
  }
}
#pragma GCC diagnostic pop

/// Pass 1 of the AVX2 quantized block: resolve every vector-walkable
/// tree's node masks out of the block's predicate-mask table into that
/// tree's 16-entry shuffle table (plain scalar L1 loads, contiguous
/// stores). Separated from the walk so the stores drain before the walk
/// loads them back as vectors — fusing the two stalls every tree on
/// store-to-load forwarding.
inline void quant_fill_bits(const QuantView& m, const std::uint16_t* masks,
                            std::uint16_t* qbits) {
  for (std::size_t t = 0; t < m.tree_count; ++t) {
    const std::int32_t d = m.depth[t];
    if (d == 0 || d > kMaxVectorQuantDepth) continue;
    const std::int32_t* qi = m.qmask_idx + m.qsplit_off[t];
    std::uint16_t* bt = qbits + t * kRowBlock;
    const std::int32_t internal = (1 << d) - 1;
    // Paired 32-bit stores (x86 is little-endian and this TU is x86-only):
    // a complete tree has an odd internal count, so one tail entry remains.
    std::int32_t n = 0;
    for (; n + 1 < internal; n += 2) {
      const std::uint32_t pair =
          static_cast<std::uint32_t>(masks[qi[n]]) |
          (static_cast<std::uint32_t>(masks[qi[n + 1]]) << 16);
      std::memcpy(bt + n, &pair, sizeof(pair));
    }
    if (n < internal) bt[n] = masks[qi[n]];
  }
}

/// Pass 2: one 16-row block through every tree, quantized integer form.
/// Zero memory gathers (hardware gathers are microcode-crippled on many
/// production x86 hosts): each tree loads its prefilled shuffle table
/// and walks all 16 rows as int16 lanes — the per-level mask lookup is
/// an in-register byte shuffle, and the branch-free step is child =
/// 2i + 1 + predicate.
__attribute__((target("avx2"))) void quant_block_avx2(
    const QuantView& m, const std::uint16_t* masks,
    const std::uint16_t* qbits, std::size_t count, double* acc) {
  const __m256i one = _mm256_set1_epi16(1);
  const __m256i seven = _mm256_set1_epi16(7);
  // Shuffle control mapping slot s to the byte pair (2s, 2s + 1) of the
  // mask table: (s << 1 | s << 9) + 0x0100 (no byte carries: 2s + 1 < 64).
  const __m256i ctl_add = _mm256_set1_epi16(0x0100);
  // Lane r selects bit r of its slot's row mask.
  const __m256i row_bit = _mm256_setr_epi16(
      1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384,
      static_cast<std::int16_t>(-32768));
  const __m256d scale = _mm256_set1_pd(m.scale);
  alignas(32) std::int16_t rel[kRowBlock];
  // All 16 lane accumulators stay in registers across the tree loop (the
  // caller seeds every lane; dead tail lanes are walked but never stored).
  // Accumulation is mul-then-add per lane — the identical operation
  // sequence as the scalar kernel (FMA is not enabled in this target, so
  // nothing contracts), hence bit-identical outputs.
  __m256d a0 = _mm256_loadu_pd(acc);
  __m256d a1 = _mm256_loadu_pd(acc + 4);
  __m256d a2 = _mm256_loadu_pd(acc + 8);
  __m256d a3 = _mm256_loadu_pd(acc + 12);
  for (std::size_t t = 0; t < m.tree_count; ++t) {
    const std::int32_t d = m.depth[t];
    const double* ql = m.qleaf + m.qleaf_off[t];
    if (d == 0) {  // Lone-leaf tree: every row lands on the same value.
      const __m256d v = _mm256_set1_pd(ql[0]);
      const __m256d p = _mm256_mul_pd(scale, v);
      a0 = _mm256_add_pd(a0, p);
      a1 = _mm256_add_pd(a1, p);
      a2 = _mm256_add_pd(a2, p);
      a3 = _mm256_add_pd(a3, p);
      continue;
    }
    if (d > kMaxVectorQuantDepth) {  // Shuffle table would overflow.
      // The scalar fallback works on the in-memory accumulators: spill
      // around the call (deep trees are the rare case).
      _mm256_storeu_pd(acc, a0);
      _mm256_storeu_pd(acc + 4, a1);
      _mm256_storeu_pd(acc + 8, a2);
      _mm256_storeu_pd(acc + 12, a3);
      quant_tree_scalar(m, t, masks, count, acc);
      a0 = _mm256_loadu_pd(acc);
      a1 = _mm256_loadu_pd(acc + 4);
      a2 = _mm256_loadu_pd(acc + 8);
      a3 = _mm256_loadu_pd(acc + 12);
      continue;
    }
    const std::int32_t internal = (1 << d) - 1;
    // 16 int16 lanes walk the complete tree. Levels 0 and 1 have one and
    // two candidate masks, so a broadcast (and a blend on the level-0
    // choice) replaces the table shuffle outright.
    const std::uint16_t* bt = qbits + t * kRowBlock;
    __m256i word = _mm256_set1_epi16(static_cast<std::int16_t>(bt[0]));
    __m256i hit = _mm256_and_si256(word, row_bit);
    // go is -1 when row r routes right: 2s + 1 - (-1) = 2s + 2.
    __m256i go = _mm256_cmpeq_epi16(hit, row_bit);
    __m256i slot = _mm256_sub_epi16(one, go);
    if (d >= 2) {
      word = _mm256_blendv_epi8(
          _mm256_set1_epi16(static_cast<std::int16_t>(bt[1])),
          _mm256_set1_epi16(static_cast<std::int16_t>(bt[2])), go);
      hit = _mm256_and_si256(word, row_bit);
      go = _mm256_cmpeq_epi16(hit, row_bit);
      slot = _mm256_sub_epi16(
          _mm256_add_epi16(_mm256_add_epi16(slot, slot), one), go);
    }
    // Deeper levels: the mask table is two broadcast 128-bit halves;
    // pshufb indexes bytes mod 16, so one control vector serves both
    // halves and a lane blend on slot > 7 picks the right one. (Entries
    // >= internal are never indexed, so their contents don't matter.)
    if (d >= 3) {
      const __m256i table_lo = _mm256_broadcastsi128_si256(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(bt)));
      const __m256i table_hi = _mm256_broadcastsi128_si256(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(bt + 8)));
      for (std::int32_t level = 2; level < d; ++level) {
        const __m256i ctl = _mm256_add_epi16(
            _mm256_or_si256(_mm256_slli_epi16(slot, 1),
                            _mm256_slli_epi16(slot, 9)),
            ctl_add);
        const __m256i word_lo = _mm256_shuffle_epi8(table_lo, ctl);
        const __m256i word_hi = _mm256_shuffle_epi8(table_hi, ctl);
        word = _mm256_blendv_epi8(word_lo, word_hi,
                                  _mm256_cmpgt_epi16(slot, seven));
        hit = _mm256_and_si256(word, row_bit);
        go = _mm256_cmpeq_epi16(hit, row_bit);
        slot = _mm256_sub_epi16(
            _mm256_add_epi16(_mm256_add_epi16(slot, slot), one), go);
      }
    }
    _mm256_store_si256(
        reinterpret_cast<__m256i*>(rel),
        _mm256_sub_epi16(slot, _mm256_set1_epi16(
                                   static_cast<std::int16_t>(internal))));
    // Leaf fetch stays scalar (indexed loads — no hardware gathers) and
    // the vectors assemble in registers (no store/wide-reload round trip);
    // the accumulate is vector mul-then-add in tree order.
    const __m256d l0 =
        _mm256_setr_pd(ql[rel[0]], ql[rel[1]], ql[rel[2]], ql[rel[3]]);
    const __m256d l1 =
        _mm256_setr_pd(ql[rel[4]], ql[rel[5]], ql[rel[6]], ql[rel[7]]);
    const __m256d l2 =
        _mm256_setr_pd(ql[rel[8]], ql[rel[9]], ql[rel[10]], ql[rel[11]]);
    const __m256d l3 =
        _mm256_setr_pd(ql[rel[12]], ql[rel[13]], ql[rel[14]], ql[rel[15]]);
    a0 = _mm256_add_pd(a0, _mm256_mul_pd(scale, l0));
    a1 = _mm256_add_pd(a1, _mm256_mul_pd(scale, l1));
    a2 = _mm256_add_pd(a2, _mm256_mul_pd(scale, l2));
    a3 = _mm256_add_pd(a3, _mm256_mul_pd(scale, l3));
  }
  _mm256_storeu_pd(acc, a0);
  _mm256_storeu_pd(acc + 4, a1);
  _mm256_storeu_pd(acc + 8, a2);
  _mm256_storeu_pd(acc + 12, a3);
}

}  // namespace

#endif  // XFL_X86_KERNELS

void FlatEnsemble::predict_rows_avx2(const Matrix& x, std::size_t begin,
                                     std::size_t end, double* out) const {
#if XFL_X86_KERNELS
  const FlatView view{feature_.data(), value_.data(),  left_.data(),
                      roots_.data(),   depth_.data(),  roots_.size(),
                      scale_};
  const std::size_t features = x.cols();
  double xs_stack[kStackFeatures * kRowBlock];
  std::vector<double> xs_heap;
  double* xs = xs_stack;
  if (features > kStackFeatures) {
    xs_heap.resize(features * kRowBlock);
    xs = xs_heap.data();
  }
  double acc[kRowBlock];
  for (std::size_t block = begin; block < end; block += kRowBlock) {
    const std::size_t count = std::min(kRowBlock, end - block);
    // Block transpose: one shared base for the per-level value gathers.
    for (std::size_t r = 0; r < count; ++r) {
      const double* row = x.row(block + r).data();
      for (std::size_t f = 0; f < features; ++f) xs[f * kRowBlock + r] = row[f];
    }
    if (count < kRowBlock)  // Pad tail lanes: walked but never stored.
      for (std::size_t f = 0; f < features; ++f)
        for (std::size_t r = count; r < kRowBlock; ++r)
          xs[f * kRowBlock + r] = 0.0;
    for (std::size_t r = 0; r < kRowBlock; ++r) acc[r] = base_score_;
    flat_block_avx2(view, xs, acc);
    for (std::size_t r = 0; r < count; ++r) out[block + r] = acc[r];
  }
#else
  predict_rows_scalar(x, begin, end, out);
#endif
}

void FlatEnsemble::predict_rows_quantized(const Matrix& x, std::size_t begin,
                                          std::size_t end, double* out) const {
  XFL_EXPECTS(quantized_ok_);
  const QuantView view{qmask_idx_.data(),  qleaf_.data(),
                       qsplit_off_.data(), qleaf_off_.data(),
                       depth_.data(),      roots_.size(),
                       scale_};
  // The block's predicate-mask table (+1 zeroed pad entry for virtual
  // padding splits). A few hundred entries for histogram-trained models.
  constexpr std::size_t kStackMasks = 4096;
  std::uint16_t masks_stack[kStackMasks];
  std::vector<std::uint16_t> masks_heap;
  std::uint16_t* masks = masks_stack;
  if (mask_count() + 1 > kStackMasks) {
    masks_heap.resize(mask_count() + 1);
    masks = masks_heap.data();
  }
#if XFL_X86_KERNELS
  const bool use_avx2 = cpu_supports_avx2();
  // Per-tree shuffle tables for the vector walk (16 entries per tree).
  constexpr std::size_t kStackTreeBits = 256 * kRowBlock;
  alignas(32) std::uint16_t qbits_stack[kStackTreeBits];
  std::vector<std::uint16_t> qbits_heap;
  std::uint16_t* qbits = qbits_stack;
  if (use_avx2 && roots_.size() * kRowBlock > kStackTreeBits) {
    qbits_heap.resize(roots_.size() * kRowBlock);
    qbits = qbits_heap.data();
  }
#endif
  double acc[kRowBlock];
  for (std::size_t block = begin; block < end; block += kRowBlock) {
    const std::size_t count = std::min(kRowBlock, end - block);
    build_block_masks(x, block, count, masks);
    // Seed every lane: the vector form accumulates dead tail lanes too
    // (walked but never stored), so they must hold defined values.
    for (std::size_t r = 0; r < kRowBlock; ++r) acc[r] = base_score_;
#if XFL_X86_KERNELS
    if (use_avx2) {
      quant_fill_bits(view, masks, qbits);
      quant_block_avx2(view, masks, qbits, count, acc);
    } else
#endif
    {
      // Portable scalar walk of the same padded integer form.
      for (std::size_t t = 0; t < view.tree_count; ++t)
        quant_tree_scalar(view, t, masks, count, acc);
    }
    for (std::size_t r = 0; r < count; ++r) out[block + r] = acc[r];
  }
}

void FlatEnsemble::explain_rows(const Matrix& x, std::size_t begin,
                                std::size_t end, double* predictions,
                                double* bias, double* contributions) const {
  const std::int32_t* feat = feature_.data();
  const double* val = value_.data();
  const std::int32_t* left = left_.data();
  const double* attr = attr_.data();
  const std::size_t cols = x.cols();
  for (std::size_t r = begin; r < end; ++r) {
    const double* row = x.row(r).data();
    double* contrib = contributions + r * cols;
    std::fill(contrib, contrib + cols, 0.0);
    // The accumulation below is the scalar predict kernel's exact per-row
    // operation sequence (walk each tree with !(x <= t), then acc +=
    // scale * leaf, in tree order), so predictions here are bit-identical
    // to predict_batch under every kernel.
    double acc = base_score_;
    for (const std::int32_t root : roots_) {
      std::int32_t i = root;
      std::int32_t f = feat[i];
      while (f >= 0) {
        const std::int32_t j =
            left[i] +
            static_cast<std::int32_t>(!(row[static_cast<std::size_t>(f)] <=
                                        val[i]));
        contrib[static_cast<std::size_t>(f)] += attr[j];
        i = j;
        f = feat[i];
      }
      acc += scale_ * val[i];
    }
    predictions[r] = acc;
    bias[r] = finalize_attribution(acc, contrib, cols);
  }
}

void FlatEnsemble::explain_batch(const Matrix& x,
                                 std::span<double> predictions,
                                 std::span<double> bias,
                                 std::span<double> contributions,
                                 ThreadPool* pool) const {
  XFL_EXPECTS(predictions.size() == x.rows());
  XFL_EXPECTS(bias.size() == x.rows());
  XFL_EXPECTS(contributions.size() == x.rows() * x.cols());
  // Ensembles built with Builder::set_attribution(false) cannot explain.
  XFL_EXPECTS(attr_.size() == feature_.size());
  if (x.rows() == 0) return;
  XFL_SPAN("gbt.explain.batch");
  auto& metrics = explain_metrics();
  const std::uint64_t start_us = obs::monotonic_us();
  // Same pool gate and block floor as predict_batch; each row owns its
  // prediction/bias slot and its contribution stripe, so block boundaries
  // never change results.
  if (pool != nullptr && pool->thread_count() > 1 && x.rows() >= 256) {
    pool->parallel_for_blocks(
        x.rows(),
        [&](std::size_t begin, std::size_t end) {
          explain_rows(x, begin, end, predictions.data(), bias.data(),
                       contributions.data());
        },
        128);
  } else {
    explain_rows(x, 0, x.rows(), predictions.data(), bias.data(),
                 contributions.data());
  }
  metrics.rows.add(x.rows());
  metrics.batches.add(1);
  metrics.batch_us.record(static_cast<double>(obs::monotonic_us() - start_us));
}

void FlatEnsemble::predict_rows(const Matrix& x, std::size_t begin,
                                std::size_t end, double* out,
                                Kernel kernel) const {
  switch (effective_kernel(kernel)) {
    case Kernel::kAvx2:
      predict_rows_avx2(x, begin, end, out);
      return;
    case Kernel::kQuantized:
      predict_rows_quantized(x, begin, end, out);
      return;
    default:
      predict_rows_scalar(x, begin, end, out);
      return;
  }
}

void FlatEnsemble::predict_batch(const Matrix& x, std::span<double> out,
                                 ThreadPool* pool, Kernel kernel) const {
  XFL_EXPECTS(out.size() == x.rows());
  if (x.rows() == 0) return;
  XFL_SPAN("gbt.predict.batch");
  auto& metrics = serve_metrics();
  const std::uint64_t start_us = obs::monotonic_us();
  // Resolve once: the whole batch runs one kernel even if the process
  // default flips mid-flight (a resolved kernel re-resolves to itself).
  const Kernel resolved = effective_kernel(kernel);
  // Blocks of at least 128 rows: each index owns its output slot, so the
  // block boundaries (and hence the worker count) cannot change results.
  if (pool != nullptr && pool->thread_count() > 1 && x.rows() >= 256) {
    pool->parallel_for_blocks(
        x.rows(),
        [&](std::size_t begin, std::size_t end) {
          predict_rows(x, begin, end, out.data(), resolved);
        },
        128);
  } else {
    predict_rows(x, 0, x.rows(), out.data(), resolved);
  }
  metrics.rows.add(x.rows());
  metrics.batches.add(1);
  metrics.batch_rows.record(static_cast<double>(x.rows()));
  metrics.batch_us.record(static_cast<double>(obs::monotonic_us() - start_us));
  metrics.kernel_active.set(static_cast<double>(static_cast<int>(resolved)));
  kernel_rows_counter(resolved).add(x.rows());
}

}  // namespace xfl::ml
