#include "ml/gbt_flat.hpp"

#include <algorithm>

#include "common/contracts.hpp"
#include "common/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace xfl::ml {

namespace {
/// Serving observability. Instrumentation sits on the batch entry point
/// and the per-row entry point — never inside the 16-row lockstep kernel —
/// so a batch pays one clock pair and a handful of relaxed adds total.
constexpr double kBatchRowBounds[] = {1,    16,   64,    256,
                                      1024, 4096, 16384, 65536};

struct ServeMetrics {
  obs::Counter& rows = obs::counter("gbt.predict.rows");
  obs::Counter& batches = obs::counter("gbt.predict.batches");
  obs::Histogram& batch_rows =
      obs::histogram("gbt.predict.batch_rows", kBatchRowBounds);
  obs::Histogram& batch_us = obs::histogram("gbt.predict.batch_us");
};

ServeMetrics& serve_metrics() {
  static ServeMetrics metrics;
  return metrics;
}
}  // namespace

FlatEnsemble::Builder::Builder(double base_score, double scale)
    : base_score_(base_score), scale_(scale) {}

void FlatEnsemble::Builder::begin_tree() { trees_.emplace_back(); }

void FlatEnsemble::Builder::add_node(std::int32_t feature,
                                     double threshold_or_value,
                                     std::int32_t left, std::int32_t right) {
  XFL_EXPECTS(!trees_.empty());
  trees_.back().push_back({feature, threshold_or_value, left, right});
}

FlatEnsemble FlatEnsemble::Builder::build() && {
  FlatEnsemble flat;
  flat.base_score_ = base_score_;
  flat.scale_ = scale_;
  std::size_t total = 0;
  for (const auto& tree : trees_) total += tree.size();
  flat.feature_.reserve(total);
  flat.value_.reserve(total);
  flat.left_.reserve(total);
  flat.roots_.reserve(trees_.size());
  flat.depth_.reserve(trees_.size());

  // Per-tree breadth-first renumbering. The k-th visited node takes slot
  // base + k, and an internal node's children are enqueued together, so
  // siblings always land in consecutive slots: right child == left + 1.
  std::vector<std::int32_t> order;     // Old in-tree index per new slot.
  std::vector<std::int32_t> depth_of;  // Depth per new slot.
  for (const auto& tree : trees_) {
    XFL_EXPECTS(!tree.empty());
    const auto base = static_cast<std::int32_t>(flat.feature_.size());
    flat.roots_.push_back(base);
    order.assign(1, 0);
    depth_of.assign(1, 0);
    std::int32_t tree_depth = 0;
    for (std::size_t k = 0; k < order.size(); ++k) {
      XFL_EXPECTS(static_cast<std::size_t>(order[k]) < tree.size());
      const RawNode& node = tree[static_cast<std::size_t>(order[k])];
      if (node.feature >= 0) {
        const auto child_slot = static_cast<std::int32_t>(order.size());
        order.push_back(node.left);
        order.push_back(node.right);
        depth_of.push_back(depth_of[k] + 1);
        depth_of.push_back(depth_of[k] + 1);
        tree_depth = std::max(tree_depth, depth_of[k] + 1);
        flat.feature_.push_back(node.feature);
        flat.value_.push_back(node.threshold_or_value);
        flat.left_.push_back(base + child_slot);
      } else {
        flat.feature_.push_back(-1);
        flat.value_.push_back(node.threshold_or_value);
        // Leaves self-link; the kernel never follows this, but a valid
        // index keeps every array entry in range.
        flat.left_.push_back(base + static_cast<std::int32_t>(k));
      }
      // A tree visits each node at most once; more slots than source nodes
      // means a child is shared between parents (a DAG, which the loader
      // rejects and the trainer never builds).
      XFL_EXPECTS(order.size() <= tree.size());
    }
    flat.depth_.push_back(tree_depth);
    flat.max_depth_ = std::max(flat.max_depth_, static_cast<int>(tree_depth));
  }
  return flat;
}

double FlatEnsemble::predict_one(std::span<const double> features) const {
  serve_metrics().rows.add(1);
  const std::int32_t* feat = feature_.data();
  const double* val = value_.data();
  const std::int32_t* left = left_.data();
  double acc = base_score_;
  for (const std::int32_t root : roots_) {
    std::int32_t i = root;
    std::int32_t f = feat[i];
    while (f >= 0) {
      // Same predicate as the node walk: x <= threshold goes left, anything
      // else — including NaN — goes right.
      i = left[i] +
          static_cast<std::int32_t>(!(features[static_cast<std::size_t>(f)] <=
                                      val[i]));
      f = feat[i];
    }
    acc += scale_ * val[i];
  }
  return acc;
}

namespace {
/// Rows walked in lockstep per tree. Small enough that the per-block state
/// (row pointers, node cursors, accumulators) stays in registers / L1;
/// large enough that the dependent-load chains of the walks overlap.
constexpr std::size_t kRowBlock = 16;
}  // namespace

void FlatEnsemble::predict_rows(const Matrix& x, std::size_t begin,
                                std::size_t end, double* out) const {
  const std::int32_t* feat = feature_.data();
  const double* val = value_.data();
  const std::int32_t* left = left_.data();
  const std::size_t tree_count = roots_.size();
  const double* rows[kRowBlock];
  double acc[kRowBlock];
  std::int32_t idx[kRowBlock];
  for (std::size_t block = begin; block < end; block += kRowBlock) {
    const std::size_t count = std::min(kRowBlock, end - block);
    for (std::size_t r = 0; r < count; ++r) {
      rows[r] = x.row(block + r).data();
      acc[r] = base_score_;
    }
    for (std::size_t t = 0; t < tree_count; ++t) {
      const std::int32_t root = roots_[t];
      const std::int32_t steps = depth_[t];
      for (std::size_t r = 0; r < count; ++r) idx[r] = root;
      // Every row takes exactly depth(t) lockstep steps; rows that reach a
      // leaf early hold their position. The iterations of the inner loop
      // are independent, so the walks of the whole block overlap instead
      // of serialising on one row's dependent loads.
      for (std::int32_t s = 0; s < steps; ++s) {
        for (std::size_t r = 0; r < count; ++r) {
          const std::int32_t i = idx[r];
          const std::int32_t f = feat[i];
          idx[r] = f >= 0
                       ? left[i] + static_cast<std::int32_t>(
                                       !(rows[r][static_cast<std::size_t>(f)] <=
                                         val[i]))
                       : i;
        }
      }
      // Per-row accumulation stays in tree order — the same operation
      // sequence as predict_one and the node walk, hence bit-identical.
      for (std::size_t r = 0; r < count; ++r) acc[r] += scale_ * val[idx[r]];
    }
    for (std::size_t r = 0; r < count; ++r) out[block + r] = acc[r];
  }
}

void FlatEnsemble::predict_batch(const Matrix& x, std::span<double> out,
                                 ThreadPool* pool) const {
  XFL_EXPECTS(out.size() == x.rows());
  if (x.rows() == 0) return;
  XFL_SPAN("gbt.predict.batch");
  auto& metrics = serve_metrics();
  const std::uint64_t start_us = obs::monotonic_us();
  // Blocks of at least 128 rows: each index owns its output slot, so the
  // block boundaries (and hence the worker count) cannot change results.
  if (pool != nullptr && pool->thread_count() > 1 && x.rows() >= 256) {
    pool->parallel_for_blocks(
        x.rows(),
        [&](std::size_t begin, std::size_t end) {
          predict_rows(x, begin, end, out.data());
        },
        128);
  } else {
    predict_rows(x, 0, x.rows(), out.data());
  }
  metrics.rows.add(x.rows());
  metrics.batches.add(1);
  metrics.batch_rows.record(static_cast<double>(x.rows()));
  metrics.batch_us.record(static_cast<double>(obs::monotonic_us() - start_us));
}

}  // namespace xfl::ml
