// Derivative-free simplex minimisation (Nelder & Mead). Used to fit the
// Weibull curve of Fig. 4; general enough for other small fitting problems.
#pragma once

#include <functional>
#include <vector>

namespace xfl::ml {

/// Options for the simplex search.
struct NelderMeadOptions {
  int max_iterations = 2000;
  double tolerance = 1.0e-10;  ///< Stop when simplex f-spread is below this.
  double initial_step = 0.1;   ///< Relative perturbation building the simplex.
};

/// Result of a minimisation.
struct NelderMeadResult {
  std::vector<double> x;
  double fx = 0.0;
  int iterations = 0;
  bool converged = false;
};

/// Minimise `objective` starting at `start`. Requires a non-empty start and
/// a callable objective; returns the best point found.
NelderMeadResult nelder_mead(
    const std::function<double(const std::vector<double>&)>& objective,
    std::vector<double> start, const NelderMeadOptions& options = {});

}  // namespace xfl::ml
