// Competing-load feature engineering (§4.3.1 of the paper).
//
// For every transfer k, three groups of features aggregate the *other*
// Globus transfers that overlap it in time at its source or destination:
//
//   K (Eq. 2)  — equivalent contending transfer rate: each competitor's
//                rate scaled by the fraction of k's duration it overlaps,
//                summed by endpoint and direction (Ksout, Ksin, Kdout, Kdin).
//   G          — equivalent GridFTP instance count: overlap-scaled
//                min(C_i, F_i), summed over all competitors touching k's
//                source (Gsrc) or destination (Gdst) in either direction.
//   S          — equivalent parallel TCP streams: overlap-scaled
//                min(C_i, F_i) * P_i by endpoint and direction
//                (Ssout, Ssin, Sdout, Sdin).
//
// The sweep is an interval-overlap join per endpoint: transfers sorted by
// start time with an active set, so the cost is O(n log n + overlapping
// pairs) per endpoint.
#pragma once

#include <vector>

#include "logs/log_store.hpp"

namespace xfl::features {

/// Per-transfer contention features, aligned with Table 2's notation.
/// All K values are in bytes/second; G and S are dimensionless equivalents.
struct ContentionFeatures {
  double k_sout = 0.0;  ///< Contending outgoing rate at the source.
  double k_sin = 0.0;   ///< Contending incoming rate at the source.
  double k_dout = 0.0;  ///< Contending outgoing rate at the destination.
  double k_din = 0.0;   ///< Contending incoming rate at the destination.
  double g_src = 0.0;   ///< Equivalent GridFTP instances at the source.
  double g_dst = 0.0;   ///< Equivalent GridFTP instances at the destination.
  double s_sout = 0.0;  ///< Contending outgoing TCP streams at the source.
  double s_sin = 0.0;   ///< Contending incoming TCP streams at the source.
  double s_dout = 0.0;  ///< Contending outgoing TCP streams at the destination.
  double s_din = 0.0;   ///< Contending incoming TCP streams at the destination.
};

/// Compute contention features for every record in the log (result is
/// parallel to log.records()).
///
/// `threads`: 0 = hardware concurrency, 1 = serial, otherwise the worker
/// count. The sweep fans out per endpoint: each endpoint accumulates into
/// its own local buffer (a record appears under both its src and dst
/// endpoints, so sharing the output array across endpoint sweeps would
/// race), and the buffers are merged in ascending endpoint order at the
/// end. Because per-endpoint sweeps and the merge order are both fixed,
/// the result is bit-identical for every thread count.
std::vector<ContentionFeatures> compute_contention(const logs::LogStore& log,
                                                   int threads = 1);

/// Relative external load of one transfer (§3.2): the larger of
/// Ksout/(R+Ksout) and Kdin/(R+Kdin). Always in [0, 1).
double relative_external_load(const logs::TransferRecord& record,
                              const ContentionFeatures& features);

}  // namespace xfl::features
