#include "features/snapshot.hpp"

namespace xfl::features {

namespace {
bool in_flight(const logs::TransferRecord& record, double now_s) {
  return record.start_s <= now_s && now_s < record.end_s;
}
}  // namespace

ContentionFeatures snapshot_load(const logs::LogStore& log,
                                 const logs::EdgeKey& edge, double now_s) {
  ContentionFeatures features;
  for (const auto i : log.endpoint_transfers(edge.src)) {
    const auto& record = log[i];
    if (!in_flight(record, now_s)) continue;
    const double rate = record.rate_Bps();
    const double instances = record.effective_processes();
    const double streams = record.effective_streams();
    if (record.src == edge.src) {
      features.k_sout += rate;
      features.s_sout += streams;
      features.g_src += instances;
    }
    if (record.dst == edge.src) {
      features.k_sin += rate;
      features.s_sin += streams;
      features.g_src += instances;
    }
  }
  for (const auto i : log.endpoint_transfers(edge.dst)) {
    const auto& record = log[i];
    if (!in_flight(record, now_s)) continue;
    const double rate = record.rate_Bps();
    const double instances = record.effective_processes();
    const double streams = record.effective_streams();
    if (record.src == edge.dst) {
      features.k_dout += rate;
      features.s_dout += streams;
      features.g_dst += instances;
    }
    if (record.dst == edge.dst) {
      features.k_din += rate;
      features.s_din += streams;
      features.g_dst += instances;
    }
  }
  return features;
}

std::size_t active_transfers_at(const logs::LogStore& log,
                                endpoint::EndpointId id, double now_s) {
  std::size_t active = 0;
  for (const auto i : log.endpoint_transfers(id))
    if (in_flight(log[i], now_s)) ++active;
  return active;
}

}  // namespace xfl::features
