#include "features/endpoint_stats.hpp"

#include <algorithm>

#include "common/contracts.hpp"

namespace xfl::features {

std::map<endpoint::EndpointId, EndpointCapability> estimate_capabilities(
    const logs::LogStore& log,
    const std::vector<ContentionFeatures>& contention) {
  XFL_EXPECTS(contention.size() == log.size());
  std::map<endpoint::EndpointId, EndpointCapability> capabilities;
  for (std::size_t i = 0; i < log.size(); ++i) {
    const auto& record = log[i];
    const double rate = record.rate_Bps();
    auto& source = capabilities[record.src];
    source.dr_max_Bps = std::max(source.dr_max_Bps, rate);
    source.ro_max_Bps =
        std::max(source.ro_max_Bps, rate + contention[i].k_sout);
    auto& destination = capabilities[record.dst];
    destination.dw_max_Bps = std::max(destination.dw_max_Bps, rate);
    destination.ri_max_Bps =
        std::max(destination.ri_max_Bps, rate + contention[i].k_din);
  }
  return capabilities;
}

}  // namespace xfl::features
