#include "features/dataset.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>
#include <thread>

#include "common/contracts.hpp"
#include "common/csv.hpp"
#include "common/thread_pool.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/units.hpp"

namespace xfl::features {

namespace {

/// One raw feature row in canonical order (16 columns incl. Nflt).
std::array<double, kFeatureCount> feature_row(
    const logs::TransferRecord& record, const ContentionFeatures& contention) {
  std::array<double, kFeatureCount> row{};
  row[static_cast<std::size_t>(FeatureId::kKsout)] = to_mbps(contention.k_sout);
  row[static_cast<std::size_t>(FeatureId::kKdin)] = to_mbps(contention.k_din);
  row[static_cast<std::size_t>(FeatureId::kC)] = record.concurrency;
  row[static_cast<std::size_t>(FeatureId::kP)] = record.parallelism;
  row[static_cast<std::size_t>(FeatureId::kSsout)] = contention.s_sout;
  row[static_cast<std::size_t>(FeatureId::kSsin)] = contention.s_sin;
  row[static_cast<std::size_t>(FeatureId::kSdout)] = contention.s_dout;
  row[static_cast<std::size_t>(FeatureId::kSdin)] = contention.s_din;
  row[static_cast<std::size_t>(FeatureId::kKsin)] = to_mbps(contention.k_sin);
  row[static_cast<std::size_t>(FeatureId::kKdout)] = to_mbps(contention.k_dout);
  row[static_cast<std::size_t>(FeatureId::kNd)] =
      static_cast<double>(record.dirs);
  row[static_cast<std::size_t>(FeatureId::kNb)] = record.bytes;
  row[static_cast<std::size_t>(FeatureId::kNflt)] =
      static_cast<double>(record.faults);
  row[static_cast<std::size_t>(FeatureId::kGsrc)] = contention.g_src;
  row[static_cast<std::size_t>(FeatureId::kGdst)] = contention.g_dst;
  row[static_cast<std::size_t>(FeatureId::kNf)] =
      static_cast<double>(record.files);
  return row;
}

std::vector<std::string> base_names(bool include_nflt) {
  std::vector<std::string> names;
  names.reserve(kFeatureCount);
  for (std::size_t c = 0; c < kFeatureCount; ++c) {
    if (!include_nflt && c == static_cast<std::size_t>(FeatureId::kNflt))
      continue;
    names.emplace_back(kFeatureNames[c]);
  }
  return names;
}

void push_base_row(const logs::TransferRecord& record,
                   const ContentionFeatures& contention, bool include_nflt,
                   std::vector<double>& scratch) {
  const auto row = feature_row(record, contention);
  scratch.clear();
  for (std::size_t c = 0; c < kFeatureCount; ++c) {
    if (!include_nflt && c == static_cast<std::size_t>(FeatureId::kNflt))
      continue;
    scratch.push_back(row[c]);
  }
}

}  // namespace

Dataset Dataset::select_features(const std::vector<bool>& keep) const {
  XFL_EXPECTS(keep.size() == feature_names.size());
  Dataset out;
  out.x = x.select_columns(keep);
  out.y = y;
  out.record_indices = record_indices;
  for (std::size_t c = 0; c < keep.size(); ++c)
    if (keep[c]) out.feature_names.push_back(feature_names[c]);
  return out;
}

Dataset build_edge_dataset(const logs::LogStore& log,
                           const std::vector<ContentionFeatures>& contention,
                           const logs::EdgeKey& edge,
                           const DatasetOptions& options) {
  XFL_EXPECTS(contention.size() == log.size());
  const auto indices = log.edge_transfers(edge);
  XFL_EXPECTS(!indices.empty());
  const double min_rate =
      options.load_threshold > 0.0
          ? options.load_threshold * log.edge_max_rate(edge)
          : 0.0;

  Dataset dataset;
  dataset.feature_names = base_names(options.include_nflt);
  std::vector<double> scratch;
  for (const std::size_t i : indices) {
    const auto& record = log[i];
    const double rate = record.rate_Bps();
    if (rate < min_rate) continue;
    push_base_row(record, contention[i], options.include_nflt, scratch);
    dataset.x.push_row(scratch);
    dataset.y.push_back(to_mbps(rate));
    dataset.record_indices.push_back(i);
  }
  return dataset;
}

Dataset build_global_dataset(
    const logs::LogStore& log,
    const std::vector<ContentionFeatures>& contention,
    const std::vector<logs::EdgeKey>& edges,
    const std::map<endpoint::EndpointId, EndpointCapability>& capabilities,
    const DatasetOptions& options) {
  XFL_EXPECTS(contention.size() == log.size());
  XFL_EXPECTS(!edges.empty());
  Dataset dataset;
  dataset.feature_names = base_names(options.include_nflt);
  dataset.feature_names.emplace_back("ROmax_src");
  dataset.feature_names.emplace_back("RImax_dst");
  if (options.edge_rtt_s != nullptr)
    dataset.feature_names.emplace_back("RTT");

  std::vector<double> scratch;
  for (const auto& edge : edges) {
    const auto indices = log.edge_transfers(edge);
    if (indices.empty()) continue;
    const double min_rate =
        options.load_threshold > 0.0
            ? options.load_threshold * log.edge_max_rate(edge)
            : 0.0;
    double rtt_s = 0.0;
    if (options.edge_rtt_s != nullptr) {
      const auto rtt_it = options.edge_rtt_s->find(edge);
      XFL_EXPECTS(rtt_it != options.edge_rtt_s->end());
      rtt_s = rtt_it->second;
    }
    for (const std::size_t i : indices) {
      const auto& record = log[i];
      const double rate = record.rate_Bps();
      if (rate < min_rate) continue;
      push_base_row(record, contention[i], options.include_nflt, scratch);
      const auto src_it = capabilities.find(record.src);
      const auto dst_it = capabilities.find(record.dst);
      XFL_EXPECTS(src_it != capabilities.end() &&
                  dst_it != capabilities.end());
      scratch.push_back(to_mbps(src_it->second.ro_max_Bps));
      scratch.push_back(to_mbps(dst_it->second.ri_max_Bps));
      if (options.edge_rtt_s != nullptr) scratch.push_back(rtt_s);
      dataset.x.push_row(scratch);
      dataset.y.push_back(to_mbps(rate));
      dataset.record_indices.push_back(i);
    }
  }
  return dataset;
}

std::vector<bool> variance_mask(const ml::Matrix& x, double mode_threshold,
                                int threads) {
  XFL_EXPECTS(mode_threshold > 0.0 && mode_threshold <= 1.0);
  XFL_EXPECTS(threads >= 0);
  // Per-column results land in a byte buffer: vector<bool> is bit-packed,
  // so concurrent writes to neighbouring elements would race.
  std::vector<unsigned char> flags(x.cols(), 1);
  constexpr double kEpsilon = 1.0e-12;
  auto column_job = [&](std::size_t c) {
    auto column = x.column(c);
    // Modal share: sort and find the longest run of equal values.
    std::sort(column.begin(), column.end());
    std::size_t mode_count = 0, run = 1;
    for (std::size_t i = 1; i < column.size(); ++i) {
      if (column[i] == column[i - 1]) {
        ++run;
      } else {
        mode_count = std::max(mode_count, run);
        run = 1;
      }
    }
    mode_count = std::max(mode_count, run);
    const double mode_fraction =
        column.empty() ? 1.0
                       : static_cast<double>(mode_count) /
                             static_cast<double>(column.size());
    const double sd = stddev(column);
    const double scale = std::fabs(mean(column)) + kEpsilon;
    flags[c] = mode_fraction < mode_threshold && sd > 0.01 * scale ? 1 : 0;
  };
  std::size_t workers = threads > 0 ? static_cast<std::size_t>(threads)
                                    : std::thread::hardware_concurrency();
  if (workers == 0) workers = 1;
  if (workers > 1 && x.cols() > 1) {
    ThreadPool pool(std::min(workers, x.cols()));
    pool.parallel_for(x.cols(), column_job);
  } else {
    for (std::size_t c = 0; c < x.cols(); ++c) column_job(c);
  }
  return std::vector<bool>(flags.begin(), flags.end());
}

void write_dataset_csv(const Dataset& dataset, std::ostream& out) {
  CsvWriter writer(out);
  CsvRow header(dataset.feature_names.begin(), dataset.feature_names.end());
  header.push_back("rate_mbps");
  writer.write_row(header);
  std::vector<double> row(dataset.cols() + 1);
  for (std::size_t r = 0; r < dataset.rows(); ++r) {
    for (std::size_t c = 0; c < dataset.cols(); ++c)
      row[c] = dataset.x.at(r, c);
    row[dataset.cols()] = dataset.y[r];
    writer.write_row(row);
  }
}

Dataset read_dataset_csv(std::istream& in) {
  const auto rows = read_csv(in);
  if (rows.empty()) throw std::runtime_error("read_dataset_csv: empty input");
  const auto& header = rows.front();
  if (header.size() < 2 || header.back() != "rate_mbps")
    throw std::runtime_error(
        "read_dataset_csv: last column must be rate_mbps");
  Dataset dataset;
  dataset.feature_names.assign(header.begin(), header.end() - 1);
  std::vector<double> scratch(dataset.feature_names.size());
  for (std::size_t r = 1; r < rows.size(); ++r) {
    const auto& row = rows[r];
    if (row.size() != header.size())
      throw std::runtime_error("read_dataset_csv: bad column count in row " +
                               std::to_string(r));
    for (std::size_t c = 0; c + 1 < row.size(); ++c)
      scratch[c] = std::stod(row[c]);
    dataset.x.push_row(scratch);
    dataset.y.push_back(std::stod(row.back()));
    dataset.record_indices.push_back(r - 1);
  }
  return dataset;
}

TrainTestSplit split_dataset(const Dataset& dataset, double train_fraction,
                             std::uint64_t seed) {
  XFL_EXPECTS(train_fraction > 0.0 && train_fraction < 1.0);
  XFL_EXPECTS(dataset.rows() >= 2);
  Rng rng(seed);
  const auto permutation = rng.permutation(dataset.rows());
  const auto train_count = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::llround(train_fraction * static_cast<double>(dataset.rows()))));
  std::vector<std::size_t> train_rows(permutation.begin(),
                                      permutation.begin() + train_count);
  std::vector<std::size_t> test_rows(permutation.begin() + train_count,
                                     permutation.end());
  if (test_rows.empty()) {
    test_rows.push_back(train_rows.back());
    train_rows.pop_back();
  }

  auto subset = [&dataset](const std::vector<std::size_t>& rows) {
    Dataset out;
    out.feature_names = dataset.feature_names;
    out.x = dataset.x.select_rows(rows);
    out.y.reserve(rows.size());
    out.record_indices.reserve(rows.size());
    for (const std::size_t r : rows) {
      out.y.push_back(dataset.y[r]);
      out.record_indices.push_back(dataset.record_indices[r]);
    }
    return out;
  };
  return {subset(train_rows), subset(test_rows)};
}

}  // namespace xfl::features
