// Live-load snapshots: the bridge between a historical log and a
// *prediction-time* query.
//
// The paper's features are computed after the fact (each transfer's
// competitors are known once it completes). A scheduler asking "how fast
// would a transfer starting NOW run?" instead needs the load it should
// expect: the currently running transfers at the candidate source and
// destination. This module derives the same K/G/S quantities from the
// transfers active at a given instant, under the assumption that they keep
// running at their historical average rate — exactly what a scheduler can
// know at decision time.
#pragma once

#include "features/contention.hpp"
#include "logs/log_store.hpp"

namespace xfl::features {

/// Competing-load features a transfer on `edge` submitted at time `now_s`
/// should expect, derived from the transfers in `log` that are in flight
/// at `now_s` (start <= now < end). Each active competitor contributes its
/// full average rate / instance count / stream count (overlap weight 1:
/// the candidate transfer is assumed to start inside the competitor's
/// lifetime).
ContentionFeatures snapshot_load(const logs::LogStore& log,
                                 const logs::EdgeKey& edge, double now_s);

/// Number of transfers in flight at `now_s` touching endpoint `id`.
std::size_t active_transfers_at(const logs::LogStore& log,
                                endpoint::EndpointId id, double now_s);

}  // namespace xfl::features
