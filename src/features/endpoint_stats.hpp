// Endpoint capability estimation from history.
//
// §3.2: with no access to remote endpoints, the paper estimates DRmax as the
// maximum rate observed with the endpoint as source and DWmax as the maximum
// with it as destination. §5.4 refines these for the single global model:
// ROmax(E) = max over transfers x out of E of (R_x + Ksout(x)) and
// RImax(E) = max over transfers x into E of (R_x + Kdin(x)) — adding back
// the known competing Globus traffic recovers a tighter capability bound.
#pragma once

#include <map>
#include <vector>

#include "features/contention.hpp"
#include "logs/log_store.hpp"

namespace xfl::features {

/// Historical capability estimates for one endpoint.
struct EndpointCapability {
  double dr_max_Bps = 0.0;  ///< Max observed rate as source (§3.2 DRmax).
  double dw_max_Bps = 0.0;  ///< Max observed rate as destination (DWmax).
  double ro_max_Bps = 0.0;  ///< Max outgoing rate incl. known load (§5.4).
  double ri_max_Bps = 0.0;  ///< Max incoming rate incl. known load (§5.4).
};

/// Estimate capabilities for every endpoint appearing in the log.
/// `contention` must be parallel to log.records() (from compute_contention).
std::map<endpoint::EndpointId, EndpointCapability> estimate_capabilities(
    const logs::LogStore& log,
    const std::vector<ContentionFeatures>& contention);

}  // namespace xfl::features
